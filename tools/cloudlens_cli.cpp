// cloudlens — command-line front end for the file-based workflow:
//
//   cloudlens generate --out DIR [--scale F] [--seed N] [--util-vms N]
//       synthesize a one-week dual-cloud trace and write topology.csv,
//       vmtable.csv, utilization.csv, and kb.csv into DIR.
//   cloudlens analyze --in DIR
//       load a trace directory and print the full characterization.
//   cloudlens insights --in DIR
//       evaluate the paper's four insights against the trace.
//   cloudlens advise --in DIR [--cloud private|public]
//       run the workload-aware advisor from the stored knowledge base.
//
// Any directory holding CSVs in the documented schema — including
// preprocessed external traces — can be analyzed the same way.
//
// Every command runs through the stage-graph pipeline (pipeline/run_plan.h):
// the trace, telemetry panel, and knowledge-base prefixes are content-keyed
// stages whose binary snapshots land in an artifact cache, so a warm rerun
// loads them instead of regenerating/reimporting — bit-identically, at any
// --threads setting. The analysis commands also run without --in, resolving
// the generated scenario for (--scale, --seed) straight from the cache that
// `generate` populated. `--cache-dir DIR` relocates the cache (default:
// `<dir>/.cloudlens-cache`), `--no-cache` disables it, and each run prints
// a per-stage hit/miss + timing table.
//
// Observability: every command honours `--metrics-out FILE.json` (counter /
// gauge / histogram snapshot of the run plus an end-of-run summary table on
// stdout) and `--trace-out FILE.json` (Chrome Trace Event spans, loadable
// in chrome://tracing or ui.perfetto.dev). Both are write-only side
// channels: enabling them never changes any output.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "analysis/context.h"
#include "analysis/deployment.h"
#include "common/args.h"
#include "analysis/figures.h"
#include "analysis/insights.h"
#include "analysis/report.h"
#include "cloudsim/trace_io.h"
#include "common/parallel.h"
#include "common/table.h"
#include "ingest/backend.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "pipeline/run_plan.h"
#include "policies/advisor.h"
#include "serve/engine.h"
#include "serve/stream.h"
#include "stats/kernels/dispatch.h"
#include "workloads/fit.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

struct CliArgs {
  std::string command;
  std::string dir;
  bool in_given = false;  ///< dir came from --in (CSV source mode)
  std::string report_path;
  std::string metrics_out;
  std::string trace_out;
  std::string cache_dir;  ///< empty = default <dir>/.cloudlens-cache
  bool no_cache = false;
  /// Ingest backend for --in directories: cloudlens|azure|google.
  std::string backend;
  bool help = false;
  double scale = 0.3;
  std::uint64_t seed = 42;
  std::size_t util_vms = 1500;
  /// Worker threads for generation and analysis: 0 = all hardware threads,
  /// 1 = serial. Outputs are bit-identical at any setting.
  std::size_t threads = 0;
  /// Out-of-core telemetry: shard count (0 = resident panel). Outputs
  /// are bit-identical either way.
  std::uint32_t panel_shards = 0;
  /// Out-of-core VM/subscription records: shard count (0 = resident).
  std::uint32_t record_shards = 0;
  /// Shared residency budget for both out-of-core stores; the old
  /// --panel-budget-mib spelling is a deprecated alias
  /// (pipeline::resolve_shard_budget_mib arbitrates).
  std::uint64_t shard_budget_mib = 256;
  bool shard_budget_given = false;
  std::uint64_t panel_budget_mib = 256;
  bool panel_budget_given = false;
  CloudType cloud = CloudType::kPublic;
  bool cloud_given = false;
  /// serve: optional AF_UNIX listen socket (empty = stdin/stdout only),
  /// rolling-window width in weeks, and checkpoint snapshot directory.
  std::string listen_path;
  std::uint64_t window_weeks = 2;
  std::string checkpoint_dir;

  ParallelConfig parallel() const {
    return ParallelConfig::with_threads(threads);
  }

  /// Artifact-cache root: --cache-dir wins, else hidden dir next to the
  /// trace (or the working directory when no trace dir is involved).
  std::string effective_cache_dir() const {
    if (!cache_dir.empty()) return cache_dir;
    if (!dir.empty()) return dir + "/.cloudlens-cache";
    return ".cloudlens-cache";
  }
};

constexpr const char* kCommonFlagHelp =
    "  --threads N         worker threads (0 = all cores, 1 = serial);\n"
    "                      output is bit-identical at any setting\n"
    "  --cache-dir DIR     artifact cache location (default:\n"
    "                      <dir>/.cloudlens-cache); safe to delete anytime\n"
    "  --no-cache          neither read nor write the artifact cache\n"
    "  --metrics-out FILE  write a metrics JSON snapshot and print\n"
    "                      an end-of-run summary table\n"
    "  --trace-out FILE    write Chrome Trace Event spans (load in\n"
    "                      chrome://tracing or ui.perfetto.dev)\n"
    "  --kernels T         SIMD kernel tier: scalar|sse2|avx2|auto\n"
    "                      (default auto = best supported; also via\n"
    "                      CLOUDLENS_KERNELS)\n"
    "  --kernel-mode M     strict (bit-identical to scalar, default) or\n"
    "                      fast (SIMD reductions, tiny |Δr| tolerance;\n"
    "                      also via CLOUDLENS_KERNEL_MODE)\n"
    "  --panel-shards N    out-of-core telemetry: spill the panel as N\n"
    "                      mmap'd shards instead of holding it resident;\n"
    "                      output is bit-identical (0 = resident, default)\n"
    "  --record-shards N   out-of-core population: spill the VM records\n"
    "                      as N CLSN shards instead of holding them\n"
    "                      resident; output is byte-identical\n"
    "                      (0 = resident, default)\n"
    "  --shard-budget-mib N  shared residency budget for --panel-shards\n"
    "                      and --record-shards (default 256; execution\n"
    "                      knob, never cached). --panel-budget-mib is a\n"
    "                      deprecated alias\n"
    "  --backend B         ingest backend for --in directories:\n"
    "                      cloudlens (default) | azure | google\n"
    "flags also accept the --flag=VALUE spelling\n";

/// Prints the top-level usage text. Exit code 2 on the error paths
/// (unknown command/flag, missing value); 0 when help was asked for.
int usage(int rc = 2) {
  (rc == 0 ? std::cout : std::cerr)
      << "usage: cloudlens "
               "<generate|import|analyze|insights|figures|fit|advise|"
               "stream|serve>\n"
               "  generate --out DIR [--scale F] [--seed N] [--util-vms N]\n"
               "  import   --in DIR [--backend cloudlens|azure|google]\n"
               "  analyze  [--in DIR] [--report out.md]\n"
               "  insights [--in DIR]\n"
               "  figures  --in DIR | --out DIR  (writes fig*.csv there)\n"
               "  fit      [--in DIR]   (estimate generative parameters)\n"
               "  advise   [--in DIR] [--cloud private|public]\n"
               "  stream   [--in DIR]   (print the trace as an event stream)\n"
               "  serve    [--window-weeks N] [--listen SOCK]\n"
               "           (ingest an event stream on stdin; answer queries)\n"
               "analysis commands without --in resolve the generated\n"
               "scenario for (--scale, --seed) through the artifact cache.\n"
               "run `cloudlens <command> --help` for per-command flags.\n"
            << kCommonFlagHelp;
  return rc;
}

int command_help(const std::string& command) {
  if (command == "generate") {
    std::cout
        << "usage: cloudlens generate --out DIR [flags]\n"
           "synthesize a one-week dual-cloud trace; write topology.csv,\n"
           "vmtable.csv, utilization.csv, kb.csv into DIR and populate the\n"
           "artifact cache (trace + panel + kb stages) for later commands.\n"
           "  --out DIR           output directory (required)\n"
           "  --scale F           population scale (default 0.3)\n"
           "  --seed N            generator seed (default 42)\n"
           "  --util-vms N        cap on VMs with utilization.csv rows\n"
           "                      (default 1500; 0 = all; excess VMs are\n"
           "                      dropped with a stderr note)\n";
  } else if (command == "import") {
    std::cout
        << "usage: cloudlens import --in DIR [--backend B] [flags]\n"
           "import a raw trace directory through an ingest backend and\n"
           "print the import + fidelity summary. Decode is parallel\n"
           "(--threads) and bit-identical at any thread count; the\n"
           "resulting trace is cached by the input files' raw bytes, so\n"
           "a following analyze/figures run over the same directory is\n"
           "a warm cache hit.\n"
           "  --in DIR            trace directory (required)\n"
           "  --backend B         cloudlens (default): topology.csv,\n"
           "                      vmtable.csv, utilization.csv\n"
           "                      azure: vmtable.csv, vm_cpu_readings.csv\n"
           "                      (Azure Public Dataset v1/v2 schema)\n"
           "                      google: task_events.csv, task_usage.csv\n"
           "                      (Google cluster-trace schema)\n"
           "  --report FILE.md    also write the full characterization\n"
           "                      report for the imported trace\n";
  } else if (command == "analyze") {
    std::cout
        << "usage: cloudlens analyze [--in DIR] [flags]\n"
           "print the full characterization (or write --report markdown).\n"
           "  --in DIR            trace directory (omit to analyze the\n"
           "                      generated scenario for --scale/--seed)\n"
           "  --report FILE.md    write the markdown report instead\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "insights") {
    std::cout
        << "usage: cloudlens insights [--in DIR] [flags]\n"
           "evaluate the paper's four insights; exit 0 iff all hold.\n"
           "  --in DIR            trace directory (omit for generated mode)\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "figures") {
    std::cout
        << "usage: cloudlens figures --in DIR | --out DIR [flags]\n"
           "write the data series behind each paper figure as fig*.csv.\n"
           "  --in DIR            trace directory; figures land next to it\n"
           "  --out DIR           generated mode: figure output directory\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "fit") {
    std::cout
        << "usage: cloudlens fit [--in DIR] [flags]\n"
           "estimate generative CloudProfile parameters from the trace.\n"
           "  --in DIR            trace directory (omit for generated mode)\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "advise") {
    std::cout
        << "usage: cloudlens advise [--in DIR] [--cloud private|public]\n"
           "run the workload-aware advisor from the knowledge base\n"
           "(DIR/kb.csv when present, else extracted via the kb stage).\n"
           "  --in DIR            trace directory (omit for generated mode)\n"
           "  --cloud C           advise one cloud only\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "stream") {
    std::cout
        << "usage: cloudlens stream [--in DIR] [flags]\n"
           "render the trace as the line-delimited event stream `serve`\n"
           "ingests (VM lifecycle + 5-minute samples, time-ordered) on\n"
           "stdout. Progress goes to stderr, so stdout pipes cleanly.\n"
           "  --in DIR            trace directory (omit for generated mode)\n"
           "  --scale F --seed N  generated-mode scenario parameters\n";
  } else if (command == "serve") {
    std::cout
        << "usage: cloudlens serve [flags]\n"
           "ingest an event stream on stdin. Lines of the form\n"
           "`query,<what>` are answered on stdout mid-stream; everything\n"
           "else is ingested. Query kinds: report, insights,\n"
           "shares,private|public, figures, kb, kb-longterm, stats,\n"
           "checkpoint. Results are byte-identical to the batch pipeline\n"
           "over the same data, at any --threads setting.\n"
           "  --window-weeks N    rolling analysis window (default 2;\n"
           "                      0 = never roll). Evicted weeks fold into\n"
           "                      the long-term knowledge base\n"
           "  --listen SOCK      also answer one-query-per-connection\n"
           "                      requests on an AF_UNIX socket\n"
           "  --checkpoint-dir D  where `query,checkpoint` writes binary\n"
           "                      snapshots (disabled when empty)\n";
  } else {
    return usage();
  }
  std::cout << "common flags:\n" << kCommonFlagHelp;
  return 0;
}

/// Declarative flag table over common/args.h. Every command shares one
/// table: per-command validation (required flags, flags that only make
/// sense for one command) stays in the cmd_* functions.
bool parse(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h") {
    args.help = true;
    args.command.clear();
    return true;
  }
  bool out_given = false;
  args::FlagSet flags;
  flags.flag("--help", &args.help)
      .flag("-h", &args.help)
      .flag("--no-cache", &args.no_cache)
      .value("--out", &args.dir, &out_given)
      .value("--in", &args.dir, &args.in_given)
      .value("--scale", &args.scale)
      .value("--seed", &args.seed)
      .value("--util-vms", &args.util_vms)
      .value("--threads", &args.threads)
      .value("--panel-shards", &args.panel_shards)
      .value("--record-shards", &args.record_shards)
      .value("--shard-budget-mib", &args.shard_budget_mib,
             &args.shard_budget_given)
      .value("--panel-budget-mib", &args.panel_budget_mib,
             &args.panel_budget_given)
      .value("--report", &args.report_path)
      .value("--metrics-out", &args.metrics_out)
      .value("--trace-out", &args.trace_out)
      .value("--cache-dir", &args.cache_dir)
      .value(
          "--backend",
          [&args](const std::string& v) {
            if (ingest::find_backend(v) == nullptr) return false;
            args.backend = v;
            return true;
          },
          "want cloudlens|azure|google")
      .value("--listen", &args.listen_path)
      .value("--window-weeks", &args.window_weeks)
      .value("--checkpoint-dir", &args.checkpoint_dir)
      .value("--kernels", stats::kernels::set_tier_from_string,
             "want scalar|sse2|avx2|auto")
      .value("--kernel-mode", stats::kernels::set_mode_from_string,
             "want strict|fast")
      .value(
          "--cloud",
          [&args](const std::string& v) {
            if (v != "private" && v != "public") return false;
            args.cloud =
                v == "private" ? CloudType::kPrivate : CloudType::kPublic;
            args.cloud_given = true;
            return true;
          },
          "want private|public");
  if (!flags.parse(argc, argv, /*start=*/2)) {
    std::cerr << flags.error() << "\n";
    return false;
  }
  if (out_given && args.in_given) {
    std::cerr << "--in and --out are mutually exclusive\n";
    return false;
  }
  return true;
}

/// Shared run-plan scaffolding: CSV mode when --in was given, generated
/// mode (same scenario parameters as `generate`) otherwise.
pipeline::RunPlanOptions make_plan(const CliArgs& args) {
  pipeline::RunPlanOptions plan;
  if (args.in_given) {
    plan.trace_dir = args.dir;
    plan.trace_backend = args.backend;
  } else {
    plan.scenario.scale = args.scale;
    plan.scenario.seed = args.seed;
  }
  plan.parallel = args.parallel();
  plan.panel_shards = args.panel_shards;
  plan.record_shards = args.record_shards;
  plan.shard_budget_mib = pipeline::resolve_shard_budget_mib(
      args.shard_budget_given, args.shard_budget_mib, args.panel_budget_given,
      args.panel_budget_mib, std::cerr);
  plan.cache_dir = args.effective_cache_dir();
  plan.cache_enabled = !args.no_cache;
  return plan;
}

void print_stage_reports(const pipeline::ResolvedRun& run) {
  std::cout << "pipeline stages (cache: "
            << "hit = loaded, miss+stored = computed and cached):\n"
            << pipeline::render_stage_table(run.reports) << "\n";
}

pipeline::ResolvedRun resolve_and_report(const pipeline::RunPlanOptions& plan,
                                         const CliArgs& args) {
  if (plan.trace_dir.empty()) {
    std::cout << "resolving generated scenario (scale=" << args.scale
              << ", seed=" << args.seed << ")...\n";
  }
  auto run = pipeline::run_trace_plan(plan);
  print_stage_reports(run);
  return run;
}

int cmd_generate(const CliArgs& args) {
  if (args.dir.empty()) {
    std::cerr << "generate requires --out DIR\n";
    return 2;
  }
  pipeline::RunPlanOptions plan = make_plan(args);
  plan.trace_dir.clear();  // generate is always generated-mode
  plan.want_kb = true;
  plan.kb_options.max_classified_vms = 4;
  std::cout << "generating scenario (scale=" << args.scale
            << ", seed=" << args.seed << ")...\n";
  auto run = pipeline::run_trace_plan(plan);
  const TraceStore& trace = *run.trace->trace;
  std::cout << "  " << trace.vm_count() << " VMs, "
            << trace.subscription_count() << " subscriptions\n";

  {
    std::ofstream out(args.dir + "/topology.csv");
    if (!out) {
      std::cerr << "cannot write to " << args.dir << "\n";
      return 1;
    }
    export_topology(*run.trace->topology, out);
  }
  {
    std::ofstream out(args.dir + "/vmtable.csv");
    export_vm_table(trace, out);
  }
  {
    std::ofstream out(args.dir + "/utilization.csv");
    TraceExportOptions ex;
    ex.max_vms_with_utilization = args.util_vms;
    export_utilization(trace, out, ex);
  }
  {
    std::ofstream out(args.dir + "/kb.csv");
    out << run.knowledge->to_csv();
    std::cout << "  " << run.knowledge->size() << " knowledge records\n";
  }
  std::cout << "wrote topology.csv, vmtable.csv, utilization.csv, kb.csv to "
            << args.dir << "\n";
  print_stage_reports(run);
  return 0;
}

/// Import a raw trace directory through an ingest backend: resolve the
/// trace stage (which caches the decoded trace by input bytes), print
/// the import + fidelity report, and optionally write the full
/// characterization report.
int cmd_import(const CliArgs& args) {
  if (!args.in_given) {
    std::cerr << "import requires --in DIR\n";
    return 2;
  }
  pipeline::RunPlanOptions plan = make_plan(args);
  plan.want_panel = false;  // decode + cache; analyses resolve it later
  const ingest::IngestBackend& backend =
      *ingest::find_backend(plan.trace_backend);
  std::cout << "importing " << args.dir << " via the " << backend.name()
            << " backend (" << backend.description() << ")...\n";
  const auto run = pipeline::run_trace_plan(plan);
  const TraceStore& trace = *run.trace->trace;
  std::cout << "loaded " << trace.vm_count() << " VMs, "
            << trace.subscription_count() << " subscriptions, "
            << trace.topology().nodes().size() << " nodes\n\n";
  if (run.trace->ingest.rows > 0) {
    std::cout << ingest::render_ingest_report(run.trace->ingest) << "\n";
  } else {
    std::cout << "(trace stage was a warm cache hit; files were not "
                 "re-decoded)\n";
  }
  print_stage_reports(run);
  if (!args.report_path.empty()) {
    const AnalysisContext ctx(trace, args.parallel());
    std::ofstream out(args.report_path);
    CL_CHECK_MSG(out.good(), "cannot write " << args.report_path);
    analysis::write_characterization_report(ctx, out);
    std::cout << "markdown report written to " << args.report_path << "\n";
  }
  return 0;
}

int cmd_analyze(const CliArgs& args) {
  const auto run = resolve_and_report(make_plan(args), args);
  const TraceStore& trace = *run.trace->trace;
  std::cout << "loaded " << trace.vm_count() << " VMs over "
            << trace.topology().regions().size() << " regions\n\n";
  const AnalysisContext ctx(trace, args.parallel());
  if (!args.report_path.empty()) {
    std::ofstream out(args.report_path);
    CL_CHECK_MSG(out.good(), "cannot write " << args.report_path);
    analysis::write_characterization_report(ctx, out);
    std::cout << "markdown report written to " << args.report_path << "\n";
    return 0;
  }
  const auto verdicts = analysis::evaluate_insights(ctx);
  std::cout << analysis::render_insights(verdicts);
  return 0;
}

int cmd_insights(const CliArgs& args) {
  const auto run = resolve_and_report(make_plan(args), args);
  const AnalysisContext ctx(*run.trace->trace, args.parallel());
  const auto verdicts = analysis::evaluate_insights(ctx);
  std::cout << analysis::render_insights(verdicts);
  std::cout << "\noverall: "
            << (verdicts.all() ? "all four insights hold"
                               : "some insights not observed")
            << "\n";
  return verdicts.all() ? 0 : 1;
}

/// Write the raw data series behind each paper figure as CSVs, ready for
/// external plotting (the series themselves come from analysis/figures.h).
int cmd_figures(const CliArgs& args) {
  if (args.dir.empty()) {
    std::cerr << "figures requires --in DIR (CSV mode) or --out DIR "
                 "(generated mode)\n";
    return 2;
  }
  const auto run = resolve_and_report(make_plan(args), args);
  const AnalysisContext ctx(*run.trace->trace, args.parallel());

  std::ofstream fig_out;
  const auto open = [&](const std::string& name) -> std::ostream& {
    if (fig_out.is_open()) fig_out.close();
    fig_out.clear();
    fig_out.open(args.dir + "/" + name);
    CL_CHECK_MSG(fig_out.good(), "cannot write " << args.dir << "/" << name);
    return fig_out;
  };
  analysis::write_figure_csvs(ctx, open);
  fig_out.close();
  std::cout << "figure data written to " << args.dir << "/fig*.csv\n";
  return 0;
}

/// Estimate generative CloudProfile parameters from a trace directory (the
/// inverse problem; see workloads/fit.h). Prints the fitted parameter set
/// for each cloud present in the trace.
int cmd_fit(const CliArgs& args) {
  const auto run = resolve_and_report(make_plan(args), args);
  const TraceStore& trace = *run.trace->trace;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    bool present = false;
    for (const auto& sub : trace.subscriptions()) {
      if (sub.cloud == cloud) {
        present = true;
        break;
      }
    }
    if (!present) continue;
    const auto base = cloud == CloudType::kPrivate
                          ? workloads::CloudProfile::azure_private()
                          : workloads::CloudProfile::azure_public();
    workloads::FitOptions fit_options;
    fit_options.parallel = args.parallel();
    const auto fit = workloads::fit_profile(trace, cloud, base, fit_options);
    const auto& p = fit.profile;
    std::cout << "\n--- fitted profile: " << p.name << " ---\n";
    TextTable t({"parameter", "value"});
    t.row().add("first_party_services").add(p.first_party_services);
    t.row().add("third_party_subscriptions").add(p.third_party_subscriptions);
    t.row().add("subs_per_service_mean").add(p.subs_per_service_mean, 2);
    t.row().add("deploy_size_mu (log VMs)").add(p.deploy_size_mu, 3);
    t.row().add("deploy_size_sigma").add(p.deploy_size_sigma, 3);
    t.row().add("deploy_size_mu_decay_per_region")
        .add(p.deploy_size_mu_decay_per_region, 3);
    t.row().add("single-region weight").add(p.region_count_weights[0], 3);
    t.row().add("region_agnostic_prob").add(p.region_agnostic_prob, 2);
    t.row().add("shortest lifetime bin share")
        .add(p.lifetime.shortest_bin_share(), 3);
    t.row().add("pattern mix d/s/i/h")
        .add(format_double(p.pattern_mix.diurnal, 2) + "/" +
             format_double(p.pattern_mix.stable, 2) + "/" +
             format_double(p.pattern_mix.irregular, 2) + "/" +
             format_double(p.pattern_mix.hourly_peak, 2));
    t.row().add("diurnal churn peak (per hour per region)")
        .add(p.diurnal_churn.base_per_hour, 1);
    t.row().add("weekend scale").add(p.diurnal_churn.weekend_scale, 2);
    t.row().add("bursts per week per region")
        .add(p.burst_churn.bursts_per_week, 2);
    t.row().add("standing_end_prob").add(p.standing_end_prob, 3);
    std::cout << t;
    std::cout << "(from " << fit.deployments_observed << " deployments, "
              << fit.ended_vms_observed << " ended VMs, "
              << fit.classified_vms << " classified VMs)\n";
  }
  return 0;
}

int cmd_advise(const CliArgs& args) {
  pipeline::RunPlanOptions plan = make_plan(args);
  // CSV mode keeps the historical contract: DIR/kb.csv is the knowledge
  // base when present. Generated mode resolves the kb stage (same options
  // as `generate`, so a prior generate run is a cache hit).
  std::ifstream kb_file(args.in_given ? args.dir + "/kb.csv" : "");
  const bool kb_from_file = args.in_given && kb_file.good();
  if (!args.in_given) {
    plan.want_kb = true;
    plan.kb_options.max_classified_vms = 4;
  } else if (!kb_from_file) {
    plan.want_kb = true;
  }
  const auto run = resolve_and_report(plan, args);

  kb::KnowledgeBase knowledge;
  if (kb_from_file) {
    std::stringstream buffer;
    buffer << kb_file.rdbuf();
    knowledge = kb::KnowledgeBase::from_csv(buffer.str());
    std::cout << "loaded knowledge base: " << knowledge.size()
              << " records\n";
  } else {
    if (args.in_given) std::cout << "no kb.csv found; using kb stage...\n";
    knowledge = *run.knowledge;
  }
  const auto clouds =
      args.cloud_given
          ? std::vector<CloudType>{args.cloud}
          : std::vector<CloudType>{CloudType::kPrivate, CloudType::kPublic};
  for (const CloudType cloud : clouds) {
    const auto report = policies::advise(*run.trace->trace, knowledge, cloud);
    std::cout << "\n" << policies::render_report(*run.trace->trace, report);
  }
  return 0;
}

/// Print the trace as the serve event stream on stdout. Stage reports and
/// progress go to stderr so `cloudlens stream | cloudlens serve` carries
/// only stream bytes.
int cmd_stream(const CliArgs& args) {
  if (!args.metrics_out.empty() || !args.trace_out.empty()) {
    std::cerr << "stream: --metrics-out/--trace-out would interleave with "
                 "the stream; not supported\n";
    return 2;
  }
  if (!args.dir.empty() && !args.in_given) {
    std::cerr << "stream writes to stdout; --out makes no sense here\n";
    return 2;
  }
  const auto run = pipeline::run_trace_plan(make_plan(args));
  std::cerr << "streaming " << run.trace->trace->vm_count() << " VMs over "
            << run.trace->trace->telemetry_grid().count << " ticks...\n";
  serve::write_event_stream(*run.trace->topology, *run.trace->trace,
                            std::cout);
  return 0;
}

/// Ingest an event stream on stdin; `query,<what>` lines are answered
/// inline on stdout. With --listen, an AF_UNIX socket answers one query
/// per connection concurrently with ingestion.
int cmd_serve(const CliArgs& args) {
  serve::ServeOptions options;
  options.window_weeks = args.window_weeks;
  options.parallel = args.parallel();
  options.checkpoint_dir = args.checkpoint_dir;
  serve::ServeEngine engine(options);

#ifdef __unix__
  int listen_fd = -1;
  std::thread listener;
  if (!args.listen_path.empty()) {
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CL_CHECK_MSG(listen_fd >= 0, "cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CL_CHECK_MSG(args.listen_path.size() < sizeof(addr.sun_path),
                 "--listen path too long: " << args.listen_path);
    std::strncpy(addr.sun_path, args.listen_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(args.listen_path.c_str());
    CL_CHECK_MSG(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "cannot bind " << args.listen_path);
    CL_CHECK_MSG(::listen(listen_fd, 8) == 0,
                 "cannot listen on " << args.listen_path);
    std::cerr << "listening on " << args.listen_path << "\n";
    listener = std::thread([&engine, listen_fd] {
      for (;;) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn < 0) return;  // listen socket closed: shutting down
        std::string request;
        char ch;
        while (::read(conn, &ch, 1) == 1 && ch != '\n') request += ch;
        if (request.rfind("query,", 0) == 0) request = request.substr(6);
        std::string response;
        try {
          response = engine.query(request);
        } catch (const std::exception& e) {
          response = std::string("error: ") + e.what() + "\n";
        }
        const char* p = response.data();
        std::size_t left = response.size();
        while (left > 0) {
          const ssize_t wrote = ::write(conn, p, left);
          if (wrote <= 0) break;
          p += wrote;
          left -= static_cast<std::size_t>(wrote);
        }
        ::close(conn);
      }
    });
  }
#else
  if (!args.listen_path.empty()) {
    std::cerr << "--listen requires AF_UNIX sockets (unsupported here)\n";
    return 2;
  }
#endif

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.rfind("query,", 0) == 0) {
      std::cout << engine.query(line.substr(6)) << std::flush;
    } else {
      engine.ingest_line(line);
    }
  }
  std::cerr << "serve: " << engine.query("stats");

#ifdef __unix__
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    listener.join();
    ::unlink(args.listen_path.c_str());
  }
#endif
  return 0;
}

/// Flush the observability side channels requested on the command line:
/// JSON snapshots to the given paths plus an end-of-run summary table on
/// stdout (non-zero counters, then per-phase latency from the histograms).
void write_obs_outputs(const CliArgs& args) {
  if (!args.metrics_out.empty()) {
    const auto snap = obs::MetricsRegistry::global().snapshot();
    {
      std::ofstream out(args.metrics_out);
      if (!out) {
        std::cerr << "cannot write " << args.metrics_out << "\n";
      } else {
        obs::MetricsRegistry::global().write_json(out);
      }
    }
    std::cout << "\n--- run metrics (written to " << args.metrics_out
              << ") ---\n";
    TextTable counters({"counter", "count"});
    for (const auto& [name, value] : snap.counters) {
      if (value > 0) counters.row().add(std::string(name)).add(value);
    }
    if (counters.row_count() > 0) std::cout << counters;
    TextTable phases({"phase", "count", "mean_ms", "total_ms"});
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      phases.row()
          .add(std::string(h.name))
          .add(h.count)
          .add(h.mean_seconds() * 1e3, 2)
          .add(h.sum_seconds() * 1e3, 2);
    }
    if (phases.row_count() > 0) std::cout << "\n" << phases;
  }
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    if (!out) {
      std::cerr << "cannot write " << args.trace_out << "\n";
      return;
    }
    obs::TraceSink::global().write_json(out);
    std::cout << "\ntrace spans written to " << args.trace_out << " ("
              << obs::TraceSink::global().event_count()
              << " events; load in chrome://tracing or ui.perfetto.dev)\n";
  }
}

int run_command(const CliArgs& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "import") return cmd_import(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "insights") return cmd_insights(args);
  if (args.command == "figures") return cmd_figures(args);
  if (args.command == "fit") return cmd_fit(args);
  if (args.command == "advise") return cmd_advise(args);
  if (args.command == "stream") return cmd_stream(args);
  if (args.command == "serve") return cmd_serve(args);
  std::cerr << "unknown command: " << args.command << "\n";
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse(argc, argv, args)) return usage();
  if (args.help) {
    return args.command.empty() ? usage(0) : command_help(args.command);
  }
  // Observability is opt-in per run: the global registry and sink start
  // disabled, and enabling them never changes command output.
  if (!args.metrics_out.empty())
    obs::MetricsRegistry::global().set_enabled(true);
  if (!args.trace_out.empty()) obs::TraceSink::global().set_enabled(true);
  int rc = 0;
  try {
    // Scoped so the top-level span completes before the sink is written.
    const obs::Span span("cli." + args.command, nullptr, "cli");
    rc = run_command(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (rc < 0) return usage();
  write_obs_outputs(args);
  return rc;
}
