// cloudlens — command-line front end for the file-based workflow:
//
//   cloudlens generate --out DIR [--scale F] [--seed N] [--util-vms N]
//       synthesize a one-week dual-cloud trace and write topology.csv,
//       vmtable.csv, utilization.csv, and kb.csv into DIR.
//   cloudlens analyze --in DIR
//       load a trace directory and print the full characterization.
//   cloudlens insights --in DIR
//       evaluate the paper's four insights against the trace.
//   cloudlens advise --in DIR [--cloud private|public]
//       run the workload-aware advisor from the stored knowledge base.
//
// Any directory holding CSVs in the documented schema — including
// preprocessed external traces — can be analyzed the same way.
//
// Observability: every command honours `--metrics-out FILE.json` (counter /
// gauge / histogram snapshot of the run plus an end-of-run summary table on
// stdout) and `--trace-out FILE.json` (Chrome Trace Event spans, loadable
// in chrome://tracing or ui.perfetto.dev). Both are write-only side
// channels: enabling them never changes any output.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/context.h"
#include "analysis/deployment.h"
#include "analysis/insights.h"
#include "analysis/report.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "cloudsim/trace_io.h"
#include "common/parallel.h"
#include "common/table.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "policies/advisor.h"
#include "stats/ecdf.h"
#include "workloads/fit.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

struct CliArgs {
  std::string command;
  std::string dir;
  std::string report_path;
  std::string metrics_out;
  std::string trace_out;
  double scale = 0.3;
  std::uint64_t seed = 42;
  std::size_t util_vms = 1500;
  /// Worker threads for generation and analysis: 0 = all hardware threads,
  /// 1 = serial. Outputs are bit-identical at any setting.
  std::size_t threads = 0;
  CloudType cloud = CloudType::kPublic;
  bool cloud_given = false;

  ParallelConfig parallel() const {
    return ParallelConfig::with_threads(threads);
  }
};

int usage() {
  std::cerr << "usage: cloudlens <generate|analyze|insights|figures|fit|advise>\n"
               "  generate --out DIR [--scale F] [--seed N] [--util-vms N]\n"
               "  analyze  --in DIR [--report out.md]\n"
               "  insights --in DIR\n"
               "  figures  --in DIR   (writes fig*.csv next to the trace)\n"
               "  fit      --in DIR   (estimate generative profile parameters)\n"
               "  advise   --in DIR [--cloud private|public]\n"
               "common flags:\n"
               "  --threads N         worker threads (0 = all cores, 1 = serial);\n"
               "                      output is bit-identical at any setting\n"
               "  --metrics-out FILE  write a metrics JSON snapshot and print\n"
               "                      an end-of-run summary table\n"
               "  --trace-out FILE    write Chrome Trace Event spans (load in\n"
               "                      chrome://tracing or ui.perfetto.dev)\n"
               "flags also accept the --flag=VALUE spelling\n";
  return 2;
}

bool parse(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--flag VALUE" and "--flag=VALUE".
    std::string inline_value;
    bool has_inline = false;
    if (a.rfind("--", 0) == 0) {
      if (const auto eq = a.find('='); eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--out" || a == "--in") {
      const char* v = next();
      if (!v) return false;
      args.dir = v;
    } else if (a == "--scale") {
      const char* v = next();
      if (!v) return false;
      args.scale = std::atof(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--util-vms") {
      const char* v = next();
      if (!v) return false;
      args.util_vms = std::strtoull(v, nullptr, 10);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = std::strtoull(v, nullptr, 10);
    } else if (a == "--report") {
      const char* v = next();
      if (!v) return false;
      args.report_path = v;
    } else if (a == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (a == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      args.trace_out = v;
    } else if (a == "--cloud") {
      const char* v = next();
      if (!v) return false;
      args.cloud = std::strcmp(v, "private") == 0 ? CloudType::kPrivate
                                                  : CloudType::kPublic;
      args.cloud_given = true;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return false;
    }
  }
  return !args.dir.empty();
}

int cmd_generate(const CliArgs& args) {
  workloads::ScenarioOptions options;
  options.scale = args.scale;
  options.seed = args.seed;
  options.parallel = args.parallel();
  std::cout << "generating scenario (scale=" << args.scale
            << ", seed=" << args.seed << ")...\n";
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& trace = *scenario.trace;
  std::cout << "  " << trace.vms().size() << " VMs, "
            << trace.subscriptions().size() << " subscriptions\n";

  {
    std::ofstream out(args.dir + "/topology.csv");
    if (!out) {
      std::cerr << "cannot write to " << args.dir << "\n";
      return 1;
    }
    export_topology(*scenario.topology, out);
  }
  {
    std::ofstream out(args.dir + "/vmtable.csv");
    export_vm_table(trace, out);
  }
  {
    std::ofstream out(args.dir + "/utilization.csv");
    TraceExportOptions ex;
    ex.max_vms_with_utilization = args.util_vms;
    export_utilization(trace, out, ex);
  }
  {
    std::cout << "extracting knowledge base..." << std::flush;
    kb::ExtractorOptions ex;
    ex.max_classified_vms = 4;
    const AnalysisContext ctx(trace, args.parallel());
    const kb::KnowledgeBase knowledge(kb::extract_all(ctx, ex));
    std::ofstream out(args.dir + "/kb.csv");
    out << knowledge.to_csv();
    std::cout << " " << knowledge.size() << " records\n";
  }
  std::cout << "wrote topology.csv, vmtable.csv, utilization.csv, kb.csv to "
            << args.dir << "\n";
  return 0;
}

ImportedTrace load(const std::string& dir) {
  std::ifstream topo(dir + "/topology.csv");
  std::ifstream vms(dir + "/vmtable.csv");
  CL_CHECK_MSG(topo.good(), "missing " << dir << "/topology.csv");
  CL_CHECK_MSG(vms.good(), "missing " << dir << "/vmtable.csv");
  std::ifstream util(dir + "/utilization.csv");
  return import_trace(topo, vms, util.good() ? &util : nullptr);
}

int cmd_analyze(const CliArgs& args) {
  const auto imported = load(args.dir);
  const TraceStore& trace = *imported.trace;
  std::cout << "loaded " << trace.vms().size() << " VMs over "
            << trace.topology().regions().size() << " regions\n\n";
  const AnalysisContext ctx(trace, args.parallel());
  if (!args.report_path.empty()) {
    std::ofstream out(args.report_path);
    CL_CHECK_MSG(out.good(), "cannot write " << args.report_path);
    analysis::write_characterization_report(ctx, out);
    std::cout << "markdown report written to " << args.report_path << "\n";
    return 0;
  }
  const auto verdicts = analysis::evaluate_insights(ctx);
  std::cout << analysis::render_insights(verdicts);
  return 0;
}

int cmd_insights(const CliArgs& args) {
  const auto imported = load(args.dir);
  const AnalysisContext ctx(*imported.trace, args.parallel());
  const auto verdicts = analysis::evaluate_insights(ctx);
  std::cout << analysis::render_insights(verdicts);
  std::cout << "\noverall: "
            << (verdicts.all() ? "all four insights hold"
                               : "some insights not observed")
            << "\n";
  return verdicts.all() ? 0 : 1;
}

/// Write the raw data series behind each paper figure as CSVs, ready for
/// external plotting.
int cmd_figures(const CliArgs& args) {
  const auto imported = load(args.dir);
  const TraceStore& trace = *imported.trace;
  const AnalysisContext ctx(trace, args.parallel());
  const SimTime snap = analysis::kDefaultSnapshot;

  auto open_out = [&](const std::string& name) {
    std::ofstream out(args.dir + "/" + name);
    CL_CHECK_MSG(out.good(), "cannot write " << args.dir << "/" << name);
    return out;
  };
  auto write_two_cloud_cdf = [&](const std::string& name,
                                 const std::vector<double>& priv,
                                 const std::vector<double>& pub,
                                 const char* x_name) {
    auto out = open_out(name);
    const stats::Ecdf priv_cdf(priv), pub_cdf(pub);
    out << x_name << ",private_cdf,public_cdf\n";
    const double hi = std::max(priv.empty() ? 1.0 : priv.back(),
                               pub.empty() ? 1.0 : pub.back());
    for (double x = 1.0; x <= hi; x *= 1.15)
      out << x << ',' << priv_cdf.at(x) << ',' << pub_cdf.at(x) << '\n';
  };

  // Fig. 1(a) + Fig. 3(a).
  write_two_cloud_cdf(
      "fig1a_vms_per_subscription.csv",
      analysis::vms_per_subscription(ctx, CloudType::kPrivate, snap),
      analysis::vms_per_subscription(ctx, CloudType::kPublic, snap),
      "vms_per_subscription");
  write_two_cloud_cdf("fig3a_lifetimes.csv",
                      analysis::vm_lifetimes(ctx, CloudType::kPrivate),
                      analysis::vm_lifetimes(ctx, CloudType::kPublic),
                      "lifetime_seconds");

  // Fig. 3(b,c): hourly series for region 0.
  {
    auto out = open_out("fig3bc_temporal.csv");
    const auto priv_count =
        analysis::vm_count_per_hour(ctx, CloudType::kPrivate, RegionId(0));
    const auto pub_count =
        analysis::vm_count_per_hour(ctx, CloudType::kPublic, RegionId(0));
    const auto priv_new =
        analysis::creations_per_hour(ctx, CloudType::kPrivate, RegionId(0));
    const auto pub_new =
        analysis::creations_per_hour(ctx, CloudType::kPublic, RegionId(0));
    out << "hour,private_count,public_count,private_created,public_created\n";
    for (std::size_t i = 0; i < priv_count.size(); ++i)
      out << i << ',' << priv_count[i] << ',' << pub_count[i] << ','
          << priv_new[i] << ',' << pub_new[i] << '\n';
  }

  // Fig. 5(d).
  {
    auto out = open_out("fig5d_pattern_shares.csv");
    const auto priv =
        analysis::classify_population(ctx, CloudType::kPrivate, 1000);
    const auto pub =
        analysis::classify_population(ctx, CloudType::kPublic, 1000);
    out << "pattern,private,public\n";
    out << "diurnal," << priv.diurnal << ',' << pub.diurnal << '\n';
    out << "stable," << priv.stable << ',' << pub.stable << '\n';
    out << "irregular," << priv.irregular << ',' << pub.irregular << '\n';
    out << "hourly-peak," << priv.hourly_peak << ',' << pub.hourly_peak
        << '\n';
  }

  // Fig. 6: weekly percentile bands per cloud.
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const std::string name = std::string("fig6_weekly_") +
                             std::string(to_string(cloud)) + ".csv";
    auto out = open_out(name);
    const auto dist = analysis::utilization_distribution(ctx, cloud, 800);
    out << "hour,p25,p50,p75,p95\n";
    for (std::size_t i = 0; i < dist.weekly.grid.count; ++i)
      out << i << ',' << dist.weekly.p25[i] << ',' << dist.weekly.p50[i]
          << ',' << dist.weekly.p75[i] << ',' << dist.weekly.p95[i] << '\n';
  }

  // Fig. 7(a): correlation CDFs.
  {
    auto out = open_out("fig7a_node_correlation.csv");
    const stats::Ecdf priv(
        analysis::node_vm_correlations(ctx, CloudType::kPrivate, 200));
    const stats::Ecdf pub(
        analysis::node_vm_correlations(ctx, CloudType::kPublic, 200));
    out << "correlation,private_cdf,public_cdf\n";
    for (double x = -1.0; x <= 1.0; x += 0.02)
      out << x << ',' << priv.at(x) << ',' << pub.at(x) << '\n';
  }

  std::cout << "figure data written to " << args.dir << "/fig*.csv\n";
  return 0;
}


/// Estimate generative CloudProfile parameters from a trace directory (the
/// inverse problem; see workloads/fit.h). Prints the fitted parameter set
/// for each cloud present in the trace.
int cmd_fit(const CliArgs& args) {
  const auto imported = load(args.dir);
  const TraceStore& trace = *imported.trace;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    bool present = false;
    for (const auto& sub : trace.subscriptions()) {
      if (sub.cloud == cloud) {
        present = true;
        break;
      }
    }
    if (!present) continue;
    const auto base = cloud == CloudType::kPrivate
                          ? workloads::CloudProfile::azure_private()
                          : workloads::CloudProfile::azure_public();
    workloads::FitOptions fit_options;
    fit_options.parallel = args.parallel();
    const auto fit = workloads::fit_profile(trace, cloud, base, fit_options);
    const auto& p = fit.profile;
    std::cout << "\n--- fitted profile: " << p.name << " ---\n";
    TextTable t({"parameter", "value"});
    t.row().add("first_party_services").add(p.first_party_services);
    t.row().add("third_party_subscriptions").add(p.third_party_subscriptions);
    t.row().add("subs_per_service_mean").add(p.subs_per_service_mean, 2);
    t.row().add("deploy_size_mu (log VMs)").add(p.deploy_size_mu, 3);
    t.row().add("deploy_size_sigma").add(p.deploy_size_sigma, 3);
    t.row().add("deploy_size_mu_decay_per_region")
        .add(p.deploy_size_mu_decay_per_region, 3);
    t.row().add("single-region weight").add(p.region_count_weights[0], 3);
    t.row().add("region_agnostic_prob").add(p.region_agnostic_prob, 2);
    t.row().add("shortest lifetime bin share")
        .add(p.lifetime.shortest_bin_share(), 3);
    t.row().add("pattern mix d/s/i/h")
        .add(format_double(p.pattern_mix.diurnal, 2) + "/" +
             format_double(p.pattern_mix.stable, 2) + "/" +
             format_double(p.pattern_mix.irregular, 2) + "/" +
             format_double(p.pattern_mix.hourly_peak, 2));
    t.row().add("diurnal churn peak (per hour per region)")
        .add(p.diurnal_churn.base_per_hour, 1);
    t.row().add("weekend scale").add(p.diurnal_churn.weekend_scale, 2);
    t.row().add("bursts per week per region")
        .add(p.burst_churn.bursts_per_week, 2);
    t.row().add("standing_end_prob").add(p.standing_end_prob, 3);
    std::cout << t;
    std::cout << "(from " << fit.deployments_observed << " deployments, "
              << fit.ended_vms_observed << " ended VMs, "
              << fit.classified_vms << " classified VMs)\n";
  }
  return 0;
}

int cmd_advise(const CliArgs& args) {
  const auto imported = load(args.dir);
  std::ifstream kb_file(args.dir + "/kb.csv");
  kb::KnowledgeBase knowledge;
  if (kb_file.good()) {
    std::stringstream buffer;
    buffer << kb_file.rdbuf();
    knowledge = kb::KnowledgeBase::from_csv(buffer.str());
    std::cout << "loaded knowledge base: " << knowledge.size()
              << " records\n";
  } else {
    std::cout << "no kb.csv found; extracting from trace...\n";
    const AnalysisContext ctx(*imported.trace, args.parallel());
    knowledge = kb::KnowledgeBase(kb::extract_all(ctx));
  }
  const auto clouds =
      args.cloud_given
          ? std::vector<CloudType>{args.cloud}
          : std::vector<CloudType>{CloudType::kPrivate, CloudType::kPublic};
  for (const CloudType cloud : clouds) {
    const auto report = policies::advise(*imported.trace, knowledge, cloud);
    std::cout << "\n" << policies::render_report(*imported.trace, report);
  }
  return 0;
}

/// Flush the observability side channels requested on the command line:
/// JSON snapshots to the given paths plus an end-of-run summary table on
/// stdout (non-zero counters, then per-phase latency from the histograms).
void write_obs_outputs(const CliArgs& args) {
  if (!args.metrics_out.empty()) {
    const auto snap = obs::MetricsRegistry::global().snapshot();
    {
      std::ofstream out(args.metrics_out);
      if (!out) {
        std::cerr << "cannot write " << args.metrics_out << "\n";
      } else {
        obs::MetricsRegistry::global().write_json(out);
      }
    }
    std::cout << "\n--- run metrics (written to " << args.metrics_out
              << ") ---\n";
    TextTable counters({"counter", "count"});
    for (const auto& [name, value] : snap.counters) {
      if (value > 0) counters.row().add(std::string(name)).add(value);
    }
    if (counters.row_count() > 0) std::cout << counters;
    TextTable phases({"phase", "count", "mean_ms", "total_ms"});
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      phases.row()
          .add(std::string(h.name))
          .add(h.count)
          .add(h.mean_seconds() * 1e3, 2)
          .add(h.sum_seconds() * 1e3, 2);
    }
    if (phases.row_count() > 0) std::cout << "\n" << phases;
  }
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    if (!out) {
      std::cerr << "cannot write " << args.trace_out << "\n";
      return;
    }
    obs::TraceSink::global().write_json(out);
    std::cout << "\ntrace spans written to " << args.trace_out << " ("
              << obs::TraceSink::global().event_count()
              << " events; load in chrome://tracing or ui.perfetto.dev)\n";
  }
}

int run_command(const CliArgs& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "insights") return cmd_insights(args);
  if (args.command == "figures") return cmd_figures(args);
  if (args.command == "fit") return cmd_fit(args);
  if (args.command == "advise") return cmd_advise(args);
  return -1;  // unknown command
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse(argc, argv, args)) return usage();
  // Observability is opt-in per run: the global registry and sink start
  // disabled, and enabling them never changes command output.
  if (!args.metrics_out.empty())
    obs::MetricsRegistry::global().set_enabled(true);
  if (!args.trace_out.empty()) obs::TraceSink::global().set_enabled(true);
  int rc = 0;
  try {
    // Scoped so the top-level span completes before the sink is written.
    const obs::Span span("cli." + args.command, nullptr, "cli");
    rc = run_command(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (rc < 0) return usage();
  write_obs_outputs(args);
  return rc;
}
