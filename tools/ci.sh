#!/bin/sh
# Local CI: the build flavours that gate a change to cloudlens.
#
#   1. Release        — optimized build, full ctest suite.
#   2. ThreadSanitizer — same suite under TSan; this is the build that
#      polices the deterministic parallel engine (common/parallel.*),
#      every parallel call site, and the telemetry panel's concurrent
#      lazy build. Run it whenever you touch them.
#   3. UBSan          — address+undefined (incl. float-cast-overflow);
#      runs the kernel + stats suites, policing the SIMD kernel tier's
#      integer/float conversions and intrinsic shims.
#
# The Release and TSan flavours run the kernel differential/dispatch/
# property suites twice — CLOUDLENS_KERNELS=scalar and =auto — so both
# sides of the dispatch seam stay covered whatever the host CPU is.
#
# Both flavours re-run the telemetry-panel suites explicitly (panel
# lifecycle, sample()==at() contract, panel-vs-legacy bit identity) and
# the observability suites (metrics/span/context determinism — the TSan
# pass polices the sharded registry and the span sink under concurrency).
# Both also re-run the snapshot + pipeline suites (binary snapshot round
# trips, cache-key invariants, cold/warm equivalence) — the TSan pass
# matters here because warm runs adopt cached panels into the same lazy
# publication path the panel build uses — and the serve suites (stream
# format pins, streamed-vs-batch byte identity, concurrent ingest/query),
# where the TSan pass polices the serve engine's snapshot publication.
# The Release flavour finishes with five perf smokes: a small-trace
# bench_telemetry run that checks panel/legacy checksum identity, a
# bench_obs run that fails if enabling metrics+tracing costs more than 3%
# on the panel-mode analysis suite, a bench_simd checksum smoke (strict
# kernel outputs and the rendered report must match the scalar oracle
# bit-for-bit), a bench_pipeline run that fails unless a warm artifact
# cache reproduces the cold run byte-for-byte and is faster, and a
# bench_outofcore run that fails unless the sharded streaming analyses
# stay under a peak-RSS budget while matching the resident-panel
# checksum exactly, plus a bench_ingest decode smoke (parallel CSV
# decode bit-identical to serial) and an end-to-end azure import smoke
# over the checked-in fixture (1-vs-8-thread report identity + warm
# cache hit), and a full-scale bench_population run — the record-sharded
# tentpole's acceptance gate: generation + the whole analysis suite over
# population shards must stay under a peak-RSS cap while byte-matching a
# resident regeneration at 1 and 8 threads. Every smoke must leave its
# JSON document behind — a bench that silently emits nothing fails the
# run. The TSan flavour re-runs bench_outofcore and bench_population (no
# RSS gates — shadow memory dwarfs them) to police the two shard stores'
# concurrent map/evict paths, and bench_ingest to police the decode
# chunk fan-out.
# (The full-size numbers recorded in EXPERIMENTS.md come from
# `bench_telemetry --scale=0.1`, `bench_obs --scale=0.1`,
# `bench_simd --min-speedup=1.5`, `bench_pipeline --scale=0.35`,
# `bench_outofcore --scale=1.0`, and `bench_population` at its
# scale-1.0 defaults.)
#
# Usage: tools/ci.sh [build-root]       (default: ./ci-build)
# Environment: CTEST_PARALLEL_LEVEL (default 2), CLOUDLENS_CI_JOBS
# (default: nproc).
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_ROOT=${1:-"$ROOT/ci-build"}
JOBS=${CLOUDLENS_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}
export CTEST_PARALLEL_LEVEL=${CTEST_PARALLEL_LEVEL:-2}
# Fail the TSan flavour on any report, and keep runs reproducible.
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1"}

run_flavour() {
    name=$1
    shift
    dir="$BUILD_ROOT/$name"
    echo "== [$name] configure =="
    cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
    echo "== [$name] build (-j$JOBS) =="
    cmake --build "$dir" -j "$JOBS"
    echo "== [$name] ctest =="
    ctest --test-dir "$dir" --output-on-failure
    echo "== [$name] telemetry panel suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'TelemetryPanel|SampleContract|PearsonFused|PanelEquivalence'
    echo "== [$name] observability suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'ObsDeterminism|ObsMetrics|ObsSpan|ObsContext'
    echo "== [$name] snapshot + pipeline suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'Snapshot|ContentHash|ArtifactCache|PipelineRunner|RunPlan|PipelineEquivalence|StageTable|TraceIo'
    echo "== [$name] population shard suites =="
    # Out-of-core record store: conversion/streaming round trips, eviction
    # budget, failure paths, and the resident-vs-sharded byte-identity
    # contract (the TSan pass polices the concurrent shard acquire).
    ctest --test-dir "$dir" --output-on-failure \
        -R 'Population|ShardBudgetFlag'
    echo "== [$name] serve suites =="
    # Streaming ingest: the event-stream format pins, the engine's
    # epoch/cutoff accounting, the streamed-vs-batch byte-identity
    # contract, and the concurrent ingest/query test (the TSan pass is
    # what polices the snapshot publication and query caches under a
    # live ingester).
    ctest --test-dir "$dir" --output-on-failure -R 'Serve'
    echo "== [$name] ingest suites =="
    # Trace ingest: strict field parsing (file:line:column errors, no
    # silent truncation), CRLF/LF identity, chunked parallel decode
    # bit-identity (the TSan pass polices the chunk fan-out), and the
    # exact fixture pins for the azure/google backends.
    ctest --test-dir "$dir" --output-on-failure -R 'Ingest'
    # Kernel-tier suites (differential vs scalar oracle, dispatch, property
    # invariants) run twice: once with the dispatch forced to the scalar
    # reference and once letting it pick the best SIMD tier, so an
    # environment override can never hide a broken variant.
    echo "== [$name] kernel suites (CLOUDLENS_KERNELS=scalar) =="
    CLOUDLENS_KERNELS=scalar ctest --test-dir "$dir" --output-on-failure \
        -R 'Kernel'
    echo "== [$name] kernel suites (CLOUDLENS_KERNELS=auto) =="
    CLOUDLENS_KERNELS=auto ctest --test-dir "$dir" --output-on-failure \
        -R 'Kernel'
}

# A bench smoke that exits 0 but writes no JSON is a silent no-op;
# require the document it promised.
require_json() {
    if [ ! -s "$1" ]; then
        echo "ci: bench smoke did not emit $1" >&2
        exit 1
    fi
}

run_flavour release -DCMAKE_BUILD_TYPE=Release -DCLOUDLENS_WERROR=ON
run_flavour tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLOUDLENS_SANITIZE=thread

echo "== [tsan] serve ingest/query smoke =="
# Small streaming pass under TSan: an ingester thread drains the event
# stream while the main thread fires queries — polices the serve
# engine's snapshot publication, kb cache, and metrics under real
# concurrency. The byte-identity gate still applies.
"$BUILD_ROOT/tsan/bench/bench_serve" \
    --scale=0.01 --util-vms=100 --threads=2 \
    --out="$BUILD_ROOT/BENCH_serve_tsan_smoke.json"
require_json "$BUILD_ROOT/BENCH_serve_tsan_smoke.json"

echo "== [tsan] ingest decode smoke =="
# Chunked parallel CSV decode under TSan: polices the superblock fan-out
# and the ordered merge. The checksum identity gate is binding; the
# speedup gate is off (sanitizer wall-clock is meaningless).
"$BUILD_ROOT/tsan/bench/bench_ingest" \
    --size-mb=4 --min-speedup=0 \
    --out="$BUILD_ROOT/BENCH_ingest_tsan_smoke.json"
require_json "$BUILD_ROOT/BENCH_ingest_tsan_smoke.json"

echo "== [tsan] out-of-core shard smoke =="
# Small sharded end-to-end pass under TSan: polices the shard store's
# concurrent acquire/publish path and the streamed analyses. RSS gates
# are off (TSan shadow memory dominates); the checksum identity and
# paging gates are what matter.
"$BUILD_ROOT/tsan/bench/bench_outofcore" \
    --scale=0.02 --shards=4 --budget-mib=8 --rss-gate=0 \
    --out="$BUILD_ROOT/BENCH_outofcore_tsan_smoke.json"
require_json "$BUILD_ROOT/BENCH_outofcore_tsan_smoke.json"

# UBSan flavour (address+undefined plus float-cast-overflow): polices the
# kernel tier's u64→f64 conversions and intrinsic shims. Builds the full
# tree but runs only the kernel + stats suites — the full ctest pass under
# ASan is covered well enough by the two flavours above.
ubsan_dir="$BUILD_ROOT/ubsan"
echo "== [tsan] population shard smoke =="
# Small record-sharded end-to-end pass under TSan: polices the population
# store's concurrent acquire/publish path while the full analysis suite
# streams shard-grouped records. RSS gate off (shadow memory dominates);
# the report/figure/kb checksum identity and paging gates still bind.
"$BUILD_ROOT/tsan/bench/bench_population" \
    --scale=0.02 --shards=4 --budget-mib=0 --rss-gate=0 \
    --out="$BUILD_ROOT/BENCH_population_tsan_smoke.json"
require_json "$BUILD_ROOT/BENCH_population_tsan_smoke.json"

echo "== [ubsan] configure =="
cmake -S "$ROOT" -B "$ubsan_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCLOUDLENS_SANITIZE=address >/dev/null
echo "== [ubsan] build (-j$JOBS) =="
cmake --build "$ubsan_dir" -j "$JOBS"
echo "== [ubsan] kernel + stats suites =="
ctest --test-dir "$ubsan_dir" --output-on-failure \
    -R 'Kernel|StatsProperty|QuantileProperty|Correlation|Fft|Periodicity'

echo "== [release] telemetry perf smoke =="
"$BUILD_ROOT/release/bench/bench_telemetry" \
    --scale=0.02 --passes=1 --min-speedup=1.0 \
    --out="$BUILD_ROOT/BENCH_telemetry_smoke.json"
require_json "$BUILD_ROOT/BENCH_telemetry_smoke.json"

echo "== [release] observability overhead smoke =="
"$BUILD_ROOT/release/bench/bench_obs" \
    --scale=0.02 --passes=1 --reps=3 --max-overhead-pct=3.0 \
    --out="$BUILD_ROOT/BENCH_obs_smoke.json"
require_json "$BUILD_ROOT/BENCH_obs_smoke.json"

echo "== [release] kernel checksum smoke =="
# Quick bench_simd pass: strict-mode checksums (all four kernel families
# plus the rendered report) must be bit-identical to the scalar oracle;
# fast-mode Pearson must stay within the documented tolerance. No perf
# gate here — CI machines are too noisy; the recorded numbers come from
# `bench/bench_simd --min-speedup=1.5` (see EXPERIMENTS.md).
"$BUILD_ROOT/release/bench/bench_simd" --quick \
    --json="$BUILD_ROOT/BENCH_simd_smoke.json"
require_json "$BUILD_ROOT/BENCH_simd_smoke.json"

echo "== [release] pipeline cache smoke =="
# Cold + warm run of the full stage graph against one cache: fails unless
# the warm pass is all cache hits, faster, and checksum-identical. Leaves
# BENCH_pipeline.json next to the other bench documents.
( cd "$BUILD_ROOT" && "$BUILD_ROOT/release/bench/bench_pipeline" --scale=0.05 )
require_json "$BUILD_ROOT/BENCH_pipeline.json"

echo "== [release] serve streaming smoke =="
# Streamed ingest + live-query latency: the drained engine's report must
# byte-match the batch pipeline over the same data, and sustained ingest
# must clear a (deliberately loose) ticks/sec floor. The full-size
# numbers in BENCH_serve.json come from
# `bench_serve --scale=0.1 --util-vms=2000`.
"$BUILD_ROOT/release/bench/bench_serve" \
    --scale=0.02 --min-ticks-per-sec=100 \
    --out="$BUILD_ROOT/BENCH_serve_smoke.json"
require_json "$BUILD_ROOT/BENCH_serve_smoke.json"

echo "== [release] out-of-core RSS budget smoke =="
# Sharded streaming analyses at reduced scale: peak RSS must stay under
# the budget and the FNV checksum must match the resident path at 1 and
# 8 threads (the full-scale gate lives in `bench_outofcore --scale=1.0`,
# recorded in BENCH_outofcore.json).
"$BUILD_ROOT/release/bench/bench_outofcore" \
    --scale=0.05 --shards=8 --budget-mib=8 --rss-limit-mib=64 \
    --out="$BUILD_ROOT/BENCH_outofcore_smoke.json"
require_json "$BUILD_ROOT/BENCH_outofcore_smoke.json"

echo "== [release] population RSS budget smoke =="
# Record-sharded path at FULL scale: generation streams the VM records
# straight into population shards, the whole analysis suite runs over
# them under the decoded-bytes budget, peak RSS must stay under the cap,
# and the report/figure/kb checksums must byte-match a fully resident
# regeneration at 1 and 8 threads. This is the tentpole's acceptance
# gate, so it runs at scale 1.0 even in the smoke.
"$BUILD_ROOT/release/bench/bench_population" \
    --scale=1.0 --rss-limit-mib=512 \
    --out="$BUILD_ROOT/BENCH_population.json"
require_json "$BUILD_ROOT/BENCH_population.json"

echo "== [release] ingest decode smoke =="
# Small synthetic-CSV pass: parallel decode must be bit-identical to
# serial (FNV digest gate). No speedup gate here — CI machines are too
# noisy/small; the recorded numbers come from `bench_ingest
# --size-mb=120` (see BENCH_ingest.json and EXPERIMENTS.md).
"$BUILD_ROOT/release/bench/bench_ingest" \
    --size-mb=8 --min-speedup=0 \
    --out="$BUILD_ROOT/BENCH_ingest_smoke.json"
require_json "$BUILD_ROOT/BENCH_ingest_smoke.json"

echo "== [release] azure import round-trip smoke =="
# Real-trace ingest end to end, no network (the fixture is checked in):
# the azure fixture must produce a byte-identical characterization
# report at 1 vs 8 decode threads, and a rerun against the warm cache
# must skip the decode entirely.
import_dir="$BUILD_ROOT/ingest-smoke"
rm -rf "$import_dir" && mkdir -p "$import_dir"
"$BUILD_ROOT/release/tools/cloudlens" import \
    --in "$ROOT/tests/fixtures/azure" --backend azure --threads 1 \
    --cache-dir "$import_dir/cache" \
    --report "$import_dir/report_t1.md" >/dev/null
"$BUILD_ROOT/release/tools/cloudlens" import \
    --in "$ROOT/tests/fixtures/azure" --backend azure --threads 8 \
    --cache-dir "$import_dir/cache8" \
    --report "$import_dir/report_t8.md" >/dev/null
cmp "$import_dir/report_t1.md" "$import_dir/report_t8.md"
"$BUILD_ROOT/release/tools/cloudlens" import \
    --in "$ROOT/tests/fixtures/azure" --backend azure \
    --cache-dir "$import_dir/cache" | grep -q "warm cache hit"

echo "ci: all flavours green"
