#!/bin/sh
# Local CI: the two build flavours that gate a change to cloudlens.
#
#   1. Release        — optimized build, full ctest suite.
#   2. ThreadSanitizer — same suite under TSan; this is the build that
#      polices the deterministic parallel engine (common/parallel.*),
#      every parallel call site, and the telemetry panel's concurrent
#      lazy build. Run it whenever you touch them.
#
# Both flavours re-run the telemetry-panel suites explicitly (panel
# lifecycle, sample()==at() contract, panel-vs-legacy bit identity) and
# the observability suites (metrics/span/context determinism — the TSan
# pass polices the sharded registry and the span sink under concurrency).
# Both also re-run the snapshot + pipeline suites (binary snapshot round
# trips, cache-key invariants, cold/warm equivalence) — the TSan pass
# matters here because warm runs adopt cached panels into the same lazy
# publication path the panel build uses.
# The Release flavour finishes with three perf smokes: a small-trace
# bench_telemetry run that checks panel/legacy checksum identity, and a
# bench_obs run that fails if enabling metrics+tracing costs more than 3%
# on the panel-mode analysis suite, and a bench_pipeline run that fails
# unless a warm artifact cache reproduces the cold run byte-for-byte and
# is faster. (The full-size numbers recorded in EXPERIMENTS.md come from
# `bench_telemetry --scale=0.1`, `bench_obs --scale=0.1`, and
# `bench_pipeline --scale=0.35`.)
#
# Usage: tools/ci.sh [build-root]       (default: ./ci-build)
# Environment: CTEST_PARALLEL_LEVEL (default 2), CLOUDLENS_CI_JOBS
# (default: nproc).
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_ROOT=${1:-"$ROOT/ci-build"}
JOBS=${CLOUDLENS_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}
export CTEST_PARALLEL_LEVEL=${CTEST_PARALLEL_LEVEL:-2}
# Fail the TSan flavour on any report, and keep runs reproducible.
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1"}

run_flavour() {
    name=$1
    shift
    dir="$BUILD_ROOT/$name"
    echo "== [$name] configure =="
    cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
    echo "== [$name] build (-j$JOBS) =="
    cmake --build "$dir" -j "$JOBS"
    echo "== [$name] ctest =="
    ctest --test-dir "$dir" --output-on-failure
    echo "== [$name] telemetry panel suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'TelemetryPanel|SampleContract|PearsonFused|PanelEquivalence'
    echo "== [$name] observability suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'ObsDeterminism|ObsMetrics|ObsSpan|ObsContext'
    echo "== [$name] snapshot + pipeline suites =="
    ctest --test-dir "$dir" --output-on-failure \
        -R 'Snapshot|ContentHash|ArtifactCache|PipelineRunner|RunPlan|PipelineEquivalence|StageTable|TraceIo'
}

run_flavour release -DCMAKE_BUILD_TYPE=Release -DCLOUDLENS_WERROR=ON
run_flavour tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLOUDLENS_SANITIZE=thread

echo "== [release] telemetry perf smoke =="
"$BUILD_ROOT/release/bench/bench_telemetry" \
    --scale=0.02 --passes=1 --min-speedup=1.0 \
    --out="$BUILD_ROOT/BENCH_telemetry_smoke.json"

echo "== [release] observability overhead smoke =="
"$BUILD_ROOT/release/bench/bench_obs" \
    --scale=0.02 --passes=1 --reps=3 --max-overhead-pct=3.0 \
    --out="$BUILD_ROOT/BENCH_obs_smoke.json"

echo "== [release] pipeline cache smoke =="
# Cold + warm run of the full stage graph against one cache: fails unless
# the warm pass is all cache hits, faster, and checksum-identical. Leaves
# BENCH_pipeline.json next to the other bench documents.
( cd "$BUILD_ROOT" && "$BUILD_ROOT/release/bench/bench_pipeline" --scale=0.05 )

echo "ci: all flavours green"
