#!/bin/sh
# Local CI: the two build flavours that gate a change to cloudlens.
#
#   1. Release        — optimized build, full ctest suite.
#   2. ThreadSanitizer — same suite under TSan; this is the build that
#      polices the deterministic parallel engine (common/parallel.*) and
#      every parallel call site. Run it whenever you touch them.
#
# Usage: tools/ci.sh [build-root]       (default: ./ci-build)
# Environment: CTEST_PARALLEL_LEVEL (default 2), CLOUDLENS_CI_JOBS
# (default: nproc).
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_ROOT=${1:-"$ROOT/ci-build"}
JOBS=${CLOUDLENS_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}
export CTEST_PARALLEL_LEVEL=${CTEST_PARALLEL_LEVEL:-2}
# Fail the TSan flavour on any report, and keep runs reproducible.
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1"}

run_flavour() {
    name=$1
    shift
    dir="$BUILD_ROOT/$name"
    echo "== [$name] configure =="
    cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
    echo "== [$name] build (-j$JOBS) =="
    cmake --build "$dir" -j "$JOBS"
    echo "== [$name] ctest =="
    ctest --test-dir "$dir" --output-on-failure
}

run_flavour release -DCMAKE_BUILD_TYPE=Release -DCLOUDLENS_WERROR=ON
run_flavour tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCLOUDLENS_SANITIZE=thread

echo "ci: all flavours green"
