#!/usr/bin/env python3
"""Regenerates the checked-in ingest fixtures under tests/fixtures/.

The fixtures are deliberately quirky miniatures of the real datasets:

  azure/   Azure Public Dataset v1-shaped vmtable + vm_cpu_readings.
           vmtable.csv is CRLF-terminated (the real dataset ships with
           \r\n); it contains v2-style bucketed capacities (">24"),
           "Unknown" capacities, a missing avgcpu summary, and one
           nonpositive-lifetime row. The readings contain out-of-window
           rows, readings for an unknown vmid, and one >100% cpu value.
  google/  Google cluster-trace task_events + task_usage, with a
           schedule-without-submit (missing_info set), a terminal event
           for a never-scheduled task, an evict+reschedule cycle, an
           out-of-range cpu_request, an out-of-order event, a SCHEDULE
           with no machine, usage rows for an unknown task, out-of-window
           usage rows, and one usage reading above the task's request.

tests/ingest_test.cpp pins the exact row/VM/fidelity counts these files
produce; rerun this script (and update the pins) if you change anything.
"""
import os

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                    "tests", "fixtures")
WEEK = 604800


def write(path, lines, eol="\n"):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as f:
        f.write((eol.join(lines) + eol).encode())


def azure():
    vmtable = []
    for i in range(40):
        vmid = f"vm{i:04d}"
        sub = f"sub{i % 8}"
        dep = f"dep{i % 12}"
        created = (i * 7919) % 300000 // 300 * 300
        if i % 4 == 1:
            created = 0  # covers the full week -> report percentile bands
        if i % 3 == 0:
            deleted = str(created + 86400 + i * 3600)
        else:
            deleted = "2592000"  # past the one-week window -> alive
        if i == 7:
            deleted = str(created)  # nonpositive lifetime (violation)
        maxcpu, avgcpu, p95 = 40 + i % 50, 10 + i % 30, 30 + i % 40
        avg = "" if i == 5 else f"{avgcpu}.25"
        cores, mem = [1, 2, 4, 8, 16][i % 5], 4 * [1, 2, 4, 8, 16][i % 5]
        cores, mem = str(cores), str(mem)
        if i in (10, 25):
            cores, mem = ">24", ">64"  # v2 bucket spelling
        if i == 33:
            cores, mem = "Unknown", "Unknown"
        cat = ["Delay-insensitive", "Interactive", "Unknown"][i % 3]
        vmtable.append(f"{vmid},{sub},{dep},{created},{deleted},"
                       f"{maxcpu}.5,{avg},{p95}.75,{cat},{cores},{mem}")
    write(os.path.join(ROOT, "azure", "vmtable.csv"), vmtable, eol="\r\n")

    readings = []
    for i in range(25):
        for k in range(24):
            t = k * 3600
            cpu = 10 + (i * 13 + k * 7) % 80
            if i == 2 and k == 5:
                cpu = 250  # >100%: clamped with a violation
            readings.append(f"{t},vm{i:04d},{max(0, cpu - 8)}.0,"
                            f"{min(100, cpu + 8)}.0,{cpu}.0")
    for t in (604800, 608400, 2591700):  # out of the one-week window
        readings.append(f"{t},vm0000,1.0,3.0,2.0")
    for ghost in ("ghost1", "ghost2"):  # vmid absent from the vmtable
        readings.append(f"3600,{ghost},1.0,3.0,2.0")
    write(os.path.join(ROOT, "azure", "vm_cpu_readings.csv"), readings)


def google():
    US = 1000000
    SUBMIT, SCHEDULE, EVICT, FAIL, FINISH, KILL = 0, 1, 2, 3, 4, 5
    UPDATE_RUNNING = 8

    def row(t_s, missing, job, index, machine, etype, user, cpu, mem):
        cpu = "" if cpu is None else f"{cpu}"
        mem = "" if mem is None else f"{mem}"
        return (t_s * US, f",{missing},{job},{index},{machine},{etype},"
                          f"{user},0,100,{cpu},{mem},0.0001,0")

    events = []
    for k in range(24):
        job, index = f"j{k % 6}", k // 6
        user, machine = f"u{k % 4}", f"m{k % 10}"
        cpu = 0.03125 * (1 + k % 4)
        mem = 0.0078125 * (1 + k % 4)
        if k == 6:
            events.append(row(600 + 100 * k, 0, job, index, "", SUBMIT,
                              user, 1.5, mem))  # cpu_request > 1 (violation)
        else:
            events.append(row(600 + 100 * k, 0, job, index, "", SUBMIT,
                              user, cpu, mem))
        events.append(row(600 + 100 * k + 50, 0, job, index, machine,
                          SCHEDULE, user, cpu, mem))
        if k % 2 == 0:
            events.append(row(600 + 100 * k + 50 + 3600 + k * 600, 0, job,
                              index, machine, FINISH, user, cpu, mem))
    # Evict + reschedule + kill cycle for k=3 (j3/0, scheduled at 950s).
    events.append(row(950 + 1800, 0, "j3", 0, "m3", EVICT, "u3",
                      0.125, 0.03125))
    events.append(row(950 + 3600, 0, "j3", 0, "m3", SCHEDULE, "u3",
                      0.125, 0.03125))
    events.append(row(950 + 7200, 0, "j3", 0, "m3", KILL, "u3",
                      0.125, 0.03125))
    # SCHEDULE without SUBMIT, marked missing_info (benign per the docs).
    events.append(row(4000, 1, "j0", 99, "m0", SCHEDULE, "u0",
                      0.0625, 0.015625))
    # Terminal event for a task that never scheduled (violation).
    events.append(row(4100, 0, "j1", 99, "m1", FINISH, "u1", None, None))
    # SCHEDULE with no machine id (violation; lands on "<missing>").
    events.append(row(4200, 0, "j2", 99, "", SUBMIT, "u0",
                      0.0625, 0.015625))
    events.append(row(4250, 0, "j2", 99, "", SCHEDULE, "u0",
                      0.0625, 0.015625))
    events.sort(key=lambda e: e[0])
    # One deliberately out-of-order row at the end (violation).
    events.append(row(700, 0, "j0", 0, "m0", UPDATE_RUNNING, "u0",
                      None, None))
    write(os.path.join(ROOT, "google", "task_events.csv"),
          [f"{us}{rest}" for us, rest in events])

    usage = []
    for k in range(20):
        job, index = f"j{k % 6}", k // 6
        machine = f"m{k % 10}"
        cpu = 0.03125 * (1 + k % 4)
        sched = 600 + 100 * k + 50
        for j in range(6):
            rate = cpu * (0.2 + 0.1 * (j % 3))
            if k == 1 and j == 5:
                rate = cpu * 1.5  # above allocation: clamped, benign
            start = (sched + j * 300) * US
            usage.append(f"{start},{start + 300 * US},{job},{index},"
                         f"{machine},{rate:.6f}")
    for n in (1, 2):  # usage for a task absent from task_events
        usage.append(f"{3600 * US},{3900 * US},jX,{n},m0,0.01")
    for t in (WEEK + 600, WEEK + 900, WEEK + 86400):  # out of window
        usage.append(f"{t * US},{(t + 300) * US},j0,0,m0,0.01")
    write(os.path.join(ROOT, "google", "task_usage.csv"), usage)


azure()
google()
print("fixtures written under", ROOT)
