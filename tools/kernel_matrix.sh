#!/bin/sh
# Compiler/flag matrix for the kernel tier: builds bench_simd under three
# optimization flavours and runs the full scalar vs best-tier comparison
# in each, so EXPERIMENTS.md can record how much of the SIMD win survives
# (or is matched by) compiler auto-vectorization.
#
#   o2      -O2                      (RelWithDebInfo's optimization level)
#   o3      -O3                      (the default Release build)
#   native  -O3 -march=native        (everything the host ISA offers)
#
# Each flavour runs bench_simd, which internally measures scalar/strict,
# best-tier/strict, and best-tier/fast for all four kernel families and
# enforces the checksum gates. The native flavour adds -ffp-contract=off:
# without it GCC may contract mul+add in the *scalar* oracle into FMA
# (the intrinsic TUs never use FMA), which would legitimately break the
# strict bit-identity gate. That caveat is the reason the shipped default
# build stays on baseline codegen.
#
# Usage: tools/kernel_matrix.sh [build-root] [--quick]
#   build-root  where the per-flavour build trees go (default ./matrix-build)
#   --quick     reduced reps (CI smoke); full reps otherwise
# JSON documents land in <build-root>/BENCH_simd_<flavour>.json.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_ROOT="$ROOT/matrix-build"
QUICK=""
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK="--quick" ;;
        *) BUILD_ROOT="$arg" ;;
    esac
done
JOBS=${CLOUDLENS_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}

run_flavour() {
    name=$1
    flags=$2
    dir="$BUILD_ROOT/$name"
    echo "== [$name] configure ($flags) =="
    cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_FLAGS_RELEASE="$flags -DNDEBUG" >/dev/null
    echo "== [$name] build bench_simd (-j$JOBS) =="
    cmake --build "$dir" --target bench_simd -j "$JOBS" >/dev/null
    gates=$3
    echo "== [$name] run =="
    "$dir/bench/bench_simd" $QUICK --min-speedup=1.5 $gates \
        --json="$BUILD_ROOT/BENCH_simd_$name.json"
}

# The 3% strict-overhead gate is meaningful against the shipped codegen;
# under -march=native the scalar baseline itself moves (different
# scheduling, no contraction), so the native flavour only checks that the
# seam stays within 10% — checksum gates are identical in all flavours.
run_flavour o2 "-O2" ""
run_flavour o3 "-O3" ""
run_flavour native "-O3 -march=native -ffp-contract=off" "--max-strict-overhead=10"

echo ""
echo "== matrix summary (best fast-mode kernel speedup vs scalar) =="
for name in o2 o3 native; do
    json="$BUILD_ROOT/BENCH_simd_$name.json"
    speedup=$(sed -n 's/.*"best_fast_speedup": \([0-9.eE+-]*\).*/\1/p' "$json")
    printf "  %-8s %sx\n" "$name" "$speedup"
done
echo "kernel matrix: all flavours green"
