// capacity_advisor — turns workload knowledge into the management actions
// the paper's implications call for:
//   * public cloud: spot-VM adoption for short-lived workloads (Sec. III-B)
//     and chance-constrained oversubscription for stable ones;
//   * private cloud: valley filling with deferrable jobs and predictive
//     pre-provisioning for hourly-peak workloads (Sec. IV-A).
//
// Usage: capacity_advisor [scale]
#include <iostream>

#include "common/table.h"
#include "policies/deferral.h"
#include "policies/oversub.h"
#include "policies/oversub_placement.h"
#include "policies/preprovision.h"
#include "policies/spot.h"
#include "policies/spot_market.h"
#include "workloads/generator.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  workloads::ScenarioOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::cout << "Generating dual-cloud trace (scale=" << options.scale
            << ")...\n";
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& trace = *scenario.trace;

  // --- Public cloud: spot VMs -------------------------------------------
  std::cout << "\n[public] Spot VM adoption analysis\n";
  const auto spot = policies::evaluate_spot_adoption(trace, CloudType::kPublic);
  TextTable t1({"metric", "value"});
  t1.row().add("ended VMs").add(spot.ended_vms);
  t1.row().add("spot candidates (lifetime <= 2h)").add(spot.candidate_vms);
  t1.row().add("candidate share").add(spot.candidate_share, 3);
  t1.row().add("projected cost savings").add(
      format_double(100 * spot.cost_savings_fraction, 1) + "%");
  t1.row().add("candidates interrupted (sim)").add(spot.evicted_share, 4);
  t1.row().add("spot core-hours in valley").add(spot.valley_spot_share, 3);
  std::cout << t1;

  // --- Public cloud: spot market simulation ---------------------------------
  std::cout << "\n[public] Spot capacity market (region 0)\n";
  policies::SpotMarketOptions market_options;
  market_options.region = RegionId(0);
  market_options.jobs_per_hour = 40;
  const auto market = policies::simulate_spot_market(trace, market_options);
  TextTable tm({"metric", "value"});
  tm.row().add("spot jobs completed / submitted").add(
      std::to_string(market.jobs_completed) + " / " +
      std::to_string(market.jobs_submitted));
  tm.row().add("eviction rate").add(market.eviction_rate, 4);
  tm.row().add("utilization lift").add(
      format_double(market.utilization_before, 3) + " -> " +
      format_double(market.utilization_with_spot, 3));
  std::cout << tm;

  // --- Public cloud: oversubscription --------------------------------------
  std::cout << "\n[public] Chance-constrained oversubscription (q = 0.99)\n";
  const auto oversub =
      policies::evaluate_oversubscription(trace, CloudType::kPublic);
  const auto placement = policies::simulate_oversubscribed_placement(
      trace, CloudType::kPublic);
  TextTable t2({"metric", "value"});
  t2.row().add("nodes evaluated").add(oversub.nodes_evaluated);
  t2.row().add("reservation shrink").add(oversub.reservation_shrink, 3);
  t2.row().add("utilization improvement").add(
      format_double(100 * oversub.utilization_improvement, 1) + "%");
  t2.row().add("violation rate").add(oversub.violation_rate, 4);
  t2.row().add("repacked nodes saved").add(placement.nodes_saved_fraction, 3);
  t2.row().add("hot interval share after repack")
      .add(placement.hot_interval_share, 4);
  std::cout << t2;

  // --- Private cloud: valley filling ----------------------------------------
  std::cout << "\n[private] Deferrable-workload valley filling (region 0)\n";
  std::vector<policies::DeferrableJob> jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back({8.0, 3 * kHour, 0, kWeek});  // batch analytics jobs
  const auto deferral = policies::schedule_deferrable(
      trace, CloudType::kPrivate, RegionId(0), jobs);
  TextTable t3({"metric", "value"});
  t3.row().add("jobs scheduled").add(deferral.jobs_scheduled);
  t3.row().add("jobs rejected").add(deferral.jobs_rejected);
  t3.row().add("peak demand before (cores)").add(deferral.peak_before, 1);
  t3.row().add("peak demand after (cores)").add(deferral.peak_after, 1);
  t3.row().add("valley/mean before").add(deferral.valley_to_mean_before, 3);
  t3.row().add("valley/mean after").add(deferral.valley_to_mean_after, 3);
  std::cout << t3;

  // --- Private cloud: pre-provisioning ---------------------------------------
  std::cout << "\n[private] Predictive pre-provisioning for hourly peaks\n";
  const auto pre =
      policies::evaluate_preprovisioning(trace, CloudType::kPrivate);
  TextTable t4({"controller", "violation rate", "mean capacity (cores)"});
  t4.row()
      .add("reactive (trailing avg + headroom)")
      .add(pre.reactive_violation_rate, 4)
      .add(pre.reactive_mean_capacity, 1);
  t4.row()
      .add("predictive (buffer before :00/:30)")
      .add(pre.predictive_violation_rate, 4)
      .add(pre.predictive_mean_capacity, 1);
  std::cout << t4;
  std::cout << "(" << pre.vms_used << " hourly-peak VMs aggregated)\n";

  return 0;
}
