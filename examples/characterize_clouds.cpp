// characterize_clouds — the full paper-style characterization pipeline:
// generate (or conceptually: ingest) a one-week dual-cloud trace, run every
// analysis of Sections III & IV, and build the workload knowledge base the
// paper's Section V motivates, exporting it as CSV.
//
// Usage: characterize_clouds [scale] [output.csv]
#include <fstream>
#include <iostream>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/deployment.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "common/table.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "stats/descriptive.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

void characterize(const AnalysisContext& ctx, CloudType cloud) {
  std::cout << "\n--- " << to_string(cloud) << " cloud ---\n";

  const auto sizes =
      analysis::vms_per_subscription(ctx, cloud, analysis::kDefaultSnapshot);
  const auto lifetimes = analysis::vm_lifetimes(ctx, cloud);
  const auto cvs = analysis::creation_cv_by_region(ctx, cloud);
  const auto spread =
      analysis::region_spread(ctx, cloud, analysis::kDefaultSnapshot);
  const auto mix = analysis::classify_population(ctx, cloud, 800);
  const auto node_corr = analysis::node_vm_correlations(ctx, cloud, 150);

  TextTable t({"characteristic", "value"});
  t.row().add("subscriptions with alive VMs").add(sizes.size());
  t.row().add("median VMs per subscription").add(
      stats::quantile_sorted(sizes, 0.5), 1);
  t.row().add("ended VMs in window").add(lifetimes.size());
  t.row().add("share of lifetimes < 30 min").add(
      analysis::shortest_bin_share(lifetimes), 3);
  t.row().add("median CV of hourly creations").add(
      cvs.empty() ? 0.0 : stats::quantile(cvs, 0.5), 3);
  t.row().add("single-region core share").add(
      spread.single_region_core_share, 3);
  t.row().add("pattern mix d/s/i/h").add(
      format_double(mix.diurnal, 2) + "/" + format_double(mix.stable, 2) +
      "/" + format_double(mix.irregular, 2) + "/" +
      format_double(mix.hourly_peak, 2));
  t.row().add("median VM-node correlation")
      .add(node_corr.empty() ? 0.0 : stats::quantile_sorted(node_corr, 0.5),
           3);
  std::cout << t;
}

}  // namespace

int main(int argc, char** argv) {
  workloads::ScenarioOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  const std::string csv_path = argc > 2 ? argv[2] : "workload_kb.csv";

  std::cout << "Generating one-week dual-cloud trace (scale="
            << options.scale << ")...\n";
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& trace = *scenario.trace;
  const AnalysisContext ctx(trace);  // every analysis runs through a context
  std::cout << "  " << trace.vms().size() << " VMs, "
            << trace.subscriptions().size() << " subscriptions, "
            << trace.services().size() << " services\n";

  characterize(ctx, CloudType::kPrivate);
  characterize(ctx, CloudType::kPublic);

  // Region-agnostic detection (Insight 4).
  const auto verdicts =
      analysis::detect_region_agnostic_services(ctx, CloudType::kPrivate);
  std::size_t agnostic = 0;
  for (const auto& v : verdicts) {
    if (v.region_agnostic) ++agnostic;
  }
  std::cout << "\nRegion-agnostic detection (private multi-region services): "
            << agnostic << "/" << verdicts.size() << " flagged agnostic\n";

  // Build and persist the knowledge base (Sec. V).
  std::cout << "\nExtracting workload knowledge base..." << std::flush;
  kb::ExtractorOptions ex;
  ex.max_classified_vms = 4;
  const kb::KnowledgeBase knowledge(kb::extract_all(ctx, ex));
  std::cout << " " << knowledge.size() << " records\n";
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto summary = knowledge.summarize(cloud);
    std::cout << "  " << to_string(cloud) << ": " << summary.subscriptions
              << " subs; spot-candidate share "
              << format_double(summary.spot_candidate_share, 2)
              << ", oversub-candidate share "
              << format_double(summary.oversub_candidate_share, 2)
              << ", region-agnostic share "
              << format_double(summary.region_agnostic_share, 2) << "\n";
  }

  std::ofstream out(csv_path);
  out << knowledge.to_csv();
  std::cout << "\nknowledge base written to " << csv_path << "\n";
  return 0;
}
