// Quickstart: generate the dual-cloud scenario and print the headline
// contrasts the paper reports, demonstrating the core public API:
// make_scenario() -> analysis::*.
#include <cstdio>
#include <iostream>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/deployment.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "common/table.h"
#include "stats/descriptive.h"
#include "workloads/generator.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  workloads::ScenarioOptions options;
  options.seed = 42;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.35;

  std::printf("Generating dual-cloud scenario (scale=%.2f)...\n",
              options.scale);
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& trace = *scenario.trace;
  // Every analysis entry point takes an AnalysisContext: a borrowed trace
  // plus the parallelism knob (and optionally metrics/trace sinks).
  const AnalysisContext ctx(trace);

  std::printf("  private: %llu placed, %llu failures\n",
              (unsigned long long)scenario.private_stats.placed,
              (unsigned long long)scenario.private_stats.allocation_failures);
  std::printf("  public : %llu placed, %llu failures\n",
              (unsigned long long)scenario.public_stats.placed,
              (unsigned long long)scenario.public_stats.allocation_failures);

  TextTable table({"metric", "private", "public"});

  // Fig. 1(a): deployment size medians.
  const auto priv_sizes = analysis::vms_per_subscription(ctx, CloudType::kPrivate, analysis::kDefaultSnapshot);
  const auto pub_sizes = analysis::vms_per_subscription(ctx, CloudType::kPublic, analysis::kDefaultSnapshot);
  table.row()
      .add("median VMs per subscription")
      .add(stats::quantile_sorted(priv_sizes, 0.5), 1)
      .add(stats::quantile_sorted(pub_sizes, 0.5), 1);

  // Fig. 1(b): subscriptions per cluster.
  const auto priv_spc = analysis::subscriptions_per_cluster(ctx, CloudType::kPrivate, analysis::kDefaultSnapshot);
  const auto pub_spc = analysis::subscriptions_per_cluster(ctx, CloudType::kPublic, analysis::kDefaultSnapshot);
  table.row()
      .add("median subscriptions per cluster")
      .add(stats::quantile_sorted(priv_spc, 0.5), 1)
      .add(stats::quantile_sorted(pub_spc, 0.5), 1);

  // Fig. 3(a): shortest lifetime bin share.
  const auto priv_life = analysis::vm_lifetimes(ctx, CloudType::kPrivate);
  const auto pub_life = analysis::vm_lifetimes(ctx, CloudType::kPublic);
  table.row()
      .add("share of lifetimes < 30 min")
      .add(analysis::shortest_bin_share(priv_life), 2)
      .add(analysis::shortest_bin_share(pub_life), 2);

  // Fig. 3(d): creation burstiness (median CV across regions).
  const auto priv_cv =
      analysis::creation_cv_by_region(ctx, CloudType::kPrivate);
  const auto pub_cv =
      analysis::creation_cv_by_region(ctx, CloudType::kPublic);
  table.row()
      .add("median CV of hourly creations")
      .add(stats::quantile(priv_cv, 0.5), 2)
      .add(stats::quantile(pub_cv, 0.5), 2);

  // Fig. 4(b): single-region core share.
  const auto priv_spread = analysis::region_spread(ctx, CloudType::kPrivate,
                                                   analysis::kDefaultSnapshot);
  const auto pub_spread = analysis::region_spread(ctx, CloudType::kPublic,
                                                  analysis::kDefaultSnapshot);
  table.row()
      .add("single-region core share")
      .add(priv_spread.single_region_core_share, 2)
      .add(pub_spread.single_region_core_share, 2);

  // Fig. 5(d): pattern shares.
  const auto priv_mix =
      analysis::classify_population(ctx, CloudType::kPrivate, 600);
  const auto pub_mix =
      analysis::classify_population(ctx, CloudType::kPublic, 600);
  table.row().add("diurnal share").add(priv_mix.diurnal, 2).add(
      pub_mix.diurnal, 2);
  table.row().add("stable share").add(priv_mix.stable, 2).add(pub_mix.stable,
                                                              2);
  table.row()
      .add("hourly-peak share")
      .add(priv_mix.hourly_peak, 2)
      .add(pub_mix.hourly_peak, 2);
  table.row()
      .add("irregular share")
      .add(priv_mix.irregular, 2)
      .add(pub_mix.irregular, 2);

  // Fig. 7(a): median VM-node utilization correlation.
  const auto priv_corr =
      analysis::node_vm_correlations(ctx, CloudType::kPrivate, 120);
  const auto pub_corr =
      analysis::node_vm_correlations(ctx, CloudType::kPublic, 120);
  table.row()
      .add("median VM-node correlation")
      .add(priv_corr.empty() ? 0 : stats::quantile_sorted(priv_corr, 0.5), 2)
      .add(pub_corr.empty() ? 0 : stats::quantile_sorted(pub_corr, 0.5), 2);

  std::cout << '\n' << table << '\n';
  std::cout << "Paper expectations: private deployments larger; public "
               "clusters host ~20x subscriptions;\npublic short-lifetime "
               "share ~81% vs private ~49%; private CV larger; private "
               "node\ncorrelation ~0.55 vs public ~0.02.\n";
  return 0;
}
