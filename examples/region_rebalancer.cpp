// region_rebalancer — replays the paper's Azure pilot: find the unhealthiest
// private-cloud region, pick a region-agnostic service there, recommend
// shifting it to an idle region, and report the what-if capacity metrics
// (the paper's Canada-A -> Canada-B experiment, Sec. IV-B).
//
// Usage: region_rebalancer [scale]
#include <iostream>

#include "common/table.h"
#include "policies/rebalance.h"
#include "workloads/generator.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  workloads::ScenarioOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::cout << "Generating dual-cloud trace (scale=" << options.scale
            << ")...\n";
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& trace = *scenario.trace;

  std::cout << "\nPrivate-cloud region health:\n";
  TextTable t({"region", "core util rate", "underutilized core %"});
  for (const auto& load :
       policies::all_region_loads(trace, CloudType::kPrivate)) {
    t.row()
        .add(trace.topology().region(load.region).name)
        .add(load.core_utilization_rate, 3)
        .add(load.underutilized_core_pct, 3);
  }
  std::cout << t;

  const auto rec = policies::recommend_shift(trace, CloudType::kPrivate);
  if (!rec) {
    std::cout << "\nNo region-agnostic service qualifies for a shift.\n";
    return 1;
  }
  std::cout << "\nRecommendation: move "
            << trace.service(rec->service).name << " ("
            << rec->cores_moved << " cores, mean utilization "
            << format_double(rec->service_mean_utilization, 3) << ")\n  from "
            << trace.topology().region(rec->from).name << " to "
            << trace.topology().region(rec->to).name << "\n";

  const auto outcome =
      policies::evaluate_shift(trace, CloudType::kPrivate, *rec);
  auto pct = [](double v) { return format_double(100 * v, 1) + "%"; };
  std::cout << "\nWhat-if outcome for the source region ("
            << trace.topology().region(rec->from).name << "):\n"
            << "  underutilized cores: "
            << pct(outcome.source_before.underutilized_core_pct) << " -> "
            << pct(outcome.source_after.underutilized_core_pct)
            << "  (paper's pilot: 23% -> 16%)\n"
            << "  core utilization rate: "
            << pct(outcome.source_before.core_utilization_rate) << " -> "
            << pct(outcome.source_after.core_utilization_rate)
            << "  (paper's pilot: 42% -> 37%)\n"
            << "Destination ("
            << trace.topology().region(rec->to).name
            << ") core utilization rate: "
            << pct(outcome.dest_before.core_utilization_rate) << " -> "
            << pct(outcome.dest_after.core_utilization_rate)
            << "  (paper: minor change)\n";
  return 0;
}
