// Fig. 1 — (a) CDFs of VMs per subscription; (b) box-plots of
// subscriptions per cluster, private vs public cloud.
//
// Paper: private-cloud workloads deploy in larger groups; a public cluster
// hosts ~20x more subscriptions than a private cluster at the median.
#include "analysis/context.h"
#include "analysis/deployment.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "stats/boxplot.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;
  const SimTime snapshot = analysis::kDefaultSnapshot;

  // ---- Fig. 1(a): CDFs of VMs per subscription -------------------------
  bench::banner("Fig. 1(a): CDF of VMs per subscription (weekday snapshot)");
  const auto priv = analysis::vms_per_subscription(AnalysisContext(trace), CloudType::kPrivate, snapshot);
  const auto pub =
      analysis::vms_per_subscription(AnalysisContext(trace), CloudType::kPublic, snapshot);
  const stats::Ecdf priv_cdf(priv), pub_cdf(pub);

  // Shared log-scaled x-axis: evaluate both CDFs at geometric steps.
  std::vector<double> priv_curve, pub_curve;
  const double x_max = std::max(priv_cdf.max(), pub_cdf.max());
  for (double x = 1.0; x <= x_max; x *= 1.25) {
    priv_curve.push_back(priv_cdf.at(x));
    pub_curve.push_back(pub_cdf.at(x));
  }
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_min = 0;
  chart.y_max = 1;
  chart.title = "CDF vs normalized VMs/subscription (log x)";
  std::printf("%s", render_lines({{"private", priv_curve},
                                  {"public", pub_curve}},
                                 chart)
                        .c_str());

  TextTable t1({"metric", "private", "public"});
  t1.row()
      .add("subscriptions with alive VMs")
      .add(priv.size())
      .add(pub.size());
  t1.row()
      .add("median VMs per subscription")
      .add(stats::quantile_sorted(priv, 0.5), 1)
      .add(stats::quantile_sorted(pub, 0.5), 1);
  t1.row()
      .add("p90 VMs per subscription")
      .add(stats::quantile_sorted(priv, 0.9), 1)
      .add(stats::quantile_sorted(pub, 0.9), 1);
  t1.row()
      .add("KS distance between clouds")
      .add(stats::ks_statistic(priv_cdf, pub_cdf), 3)
      .add("-");
  std::printf("\n%s", t1.to_string().c_str());

  // ---- Fig. 1(b): subscriptions per cluster ------------------------------
  bench::banner("Fig. 1(b): subscriptions per cluster (box-plots)");
  const auto priv_spc =
      analysis::subscriptions_per_cluster(AnalysisContext(trace), CloudType::kPrivate, snapshot);
  const auto pub_spc =
      analysis::subscriptions_per_cluster(AnalysisContext(trace), CloudType::kPublic, snapshot);
  const auto priv_box = stats::box_stats(priv_spc);
  const auto pub_box = stats::box_stats(pub_spc);

  std::printf("%s",
              render_boxes({{"private", priv_box.whisker_lo, priv_box.q1,
                             priv_box.median, priv_box.q3, priv_box.whisker_hi},
                            {"public", pub_box.whisker_lo, pub_box.q1,
                             pub_box.median, pub_box.q3, pub_box.whisker_hi}},
                           56, "subscriptions per cluster")
                  .c_str());

  const double ratio =
      pub_box.median / std::max(1.0, priv_box.median);
  TextTable t2({"metric", "paper", "measured"});
  t2.row().add("public/private subs-per-cluster ratio (median)").add("~20x").add(
      format_double(ratio, 1) + "x");
  std::printf("\n%s", t2.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(stats::quantile_sorted(priv, 0.5) >
                    5 * stats::quantile_sorted(pub, 0.5),
                "private deployments are much larger (Fig. 1(a))");
  checks.expect(ratio > 8 && ratio < 60,
                "public clusters host an order of magnitude more "
                "subscriptions (paper: ~20x)");
  return checks.exit_code();
}
