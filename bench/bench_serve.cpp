// Streaming-ingest bench: sustained `cloudlens serve` throughput and
// query latency under live ingestion.
//
// Phases:
//
//   stream      — generate a dual-cloud scenario, export/import it (the
//                 batch oracle), and render its event stream;
//   ingest      — feed every event line into a fresh ServeEngine and
//                 measure sustained events/sec and telemetry ticks/sec;
//   query@live  — a second fresh engine with an ingester thread replaying
//                 the stream while the main thread issues rolling
//                 "shares" + "stats" queries; per-query latency is
//                 recorded and summarized as p50/p95/p99;
//   verify      — the drained engine's "report" must byte-match the batch
//                 pipeline's report over the same trace (the serve
//                 determinism contract, enforced here as a perf-smoke
//                 gate so a fast-but-wrong engine can never pass CI).
//
// Gates (ShapeChecks): streamed report == batch report byte-for-byte;
// epoch reaches the full grid; ingest sustains >= --min-ticks-per-sec;
// every live query returned a parseable shares CSV. Emits
// BENCH_serve.json.
//
// Usage: bench_serve [--scale=F] [--seed=N] [--threads=N] [--util-vms=N]
//                    [--min-ticks-per-sec=F] [--out=PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/context.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "cloudsim/trace_io.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/stream.h"

using namespace cloudlens;

namespace {

struct ServeBenchArgs {
  double scale = 0.05;
  std::uint64_t seed = 42;
  int threads = 4;
  int util_vms = 400;
  double min_ticks_per_sec = 1.0;
  std::string out = "BENCH_serve.json";
};

ServeBenchArgs parse_serve_args(int argc, char** argv) {
  ServeBenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--util-vms=", 11) == 0) {
      args.util_vms = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--min-ticks-per-sec=", 20) == 0) {
      args.min_ticks_per_sec = std::atof(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--scale=F] [--seed=N] [--threads=N] [--util-vms=N]\n"
          "          [--min-ticks-per-sec=F] [--out=PATH]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const ServeBenchArgs args = parse_serve_args(argc, argv);
  bench::ShapeChecks checks;
  bench::BenchJson json("serve");
  json.meta()
      .num("scale", args.scale)
      .num("seed", static_cast<double>(args.seed))
      .num("threads", args.threads);

  bench::banner("bench_serve: streaming ingest + live-query latency");

  // -- stream: scenario -> batch oracle -> event stream ------------------
  std::printf("generating dual-cloud scenario (scale=%.2f seed=%llu)...\n",
              args.scale, (unsigned long long)args.seed);
  workloads::ScenarioOptions scenario_options;
  scenario_options.scale = args.scale;
  scenario_options.seed = args.seed;
  const auto scenario = workloads::make_scenario(scenario_options);

  // The stream is rendered from an export/import round trip so the batch
  // oracle and the streamed engine see the identical model population.
  std::ostringstream topo_csv, vm_csv, util_csv;
  export_topology(*scenario.topology, topo_csv);
  export_vm_table(*scenario.trace, vm_csv);
  TraceExportOptions export_options;
  export_options.max_vms_with_utilization =
      static_cast<std::size_t>(args.util_vms);
  export_utilization(*scenario.trace, util_csv, export_options);
  std::istringstream topo_in(topo_csv.str()), vm_in(vm_csv.str()),
      util_in(util_csv.str());
  const auto batch = import_trace(topo_in, vm_in, &util_in,
                                  scenario.trace->telemetry_grid());

  std::ostringstream stream;
  serve::write_event_stream(*batch.topology, *batch.trace, stream);
  std::vector<std::string> lines;
  {
    std::istringstream in(stream.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  std::printf("stream: %zu lines, %zu VMs, grid of %zu ticks\n", lines.size(),
              batch.trace->vms().size(), batch.trace->telemetry_grid().count);

  ParallelConfig parallel;
  parallel.threads = args.threads;

  // -- ingest: sustained drain throughput --------------------------------
  bench::banner("ingest throughput");
  double ingest_seconds = 0.0;
  std::size_t final_epoch = 0;
  {
    serve::ServeOptions options;
    options.parallel = parallel;
    serve::ServeEngine engine(options);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& line : lines) engine.ingest_line(line);
    ingest_seconds = seconds_since(start);
    final_epoch = engine.epoch();
    const double events_per_sec =
        static_cast<double>(engine.events_ingested()) / ingest_seconds;
    const double ticks_per_sec =
        static_cast<double>(final_epoch) / ingest_seconds;
    std::printf("  %zu events in %.3fs  (%.3g events/s, %.3g ticks/s)\n",
                engine.events_ingested(), ingest_seconds, events_per_sec,
                ticks_per_sec);
    json.record("ingest")
        .num("events", static_cast<double>(engine.events_ingested()))
        .num("seconds", ingest_seconds)
        .num("events_per_sec", events_per_sec)
        .num("ticks_per_sec", ticks_per_sec)
        .num("epoch", static_cast<double>(final_epoch));
    checks.expect(final_epoch == batch.trace->telemetry_grid().count,
                  "ingest drains the full grid");
    checks.expect(ticks_per_sec >= args.min_ticks_per_sec,
                  "sustained ingest >= --min-ticks-per-sec");
  }

  // -- query@live: latency while an ingester replays the stream ----------
  bench::banner("query latency under live ingest");
  std::vector<double> query_seconds;
  std::size_t malformed = 0;
  double live_report_match = 0.0;
  std::string streamed_report;
  {
    obs::MetricsRegistry metrics;
    metrics.set_enabled(true);
    serve::ServeOptions options;
    options.parallel = parallel;
    options.metrics = &metrics;
    serve::ServeEngine engine(options);
    std::atomic<bool> done{false};
    std::thread ingester([&] {
      for (const auto& line : lines) engine.ingest_line(line);
      done.store(true, std::memory_order_release);
    });
    // Queries are defined once the first telemetry tick completes; wait
    // for the engine to go live before timing anything.
    while (engine.epoch() == 0 && !done.load(std::memory_order_acquire)) {}
    while (!done.load(std::memory_order_acquire)) {
      const auto start = std::chrono::steady_clock::now();
      const auto shares = engine.query("shares,private");
      const auto stats = engine.query("stats");
      query_seconds.push_back(seconds_since(start) / 2.0);
      if (shares.rfind("cloud,", 0) != 0 ||
          stats.find("events=") == std::string::npos) {
        ++malformed;
      }
    }
    ingester.join();
    streamed_report = engine.query("report");
    const auto snapshot = metrics.snapshot();
    json.record("query_live")
        .num("queries", static_cast<double>(query_seconds.size()) * 2.0)
        .num("p50_ms", percentile(query_seconds, 0.50) * 1e3)
        .num("p95_ms", percentile(query_seconds, 0.95) * 1e3)
        .num("p99_ms", percentile(query_seconds, 0.99) * 1e3)
        .num("snapshots_built",
             static_cast<double>(snapshot.counter("serve.snapshots_built")))
        .num("snapshot_reuses",
             static_cast<double>(snapshot.counter("serve.snapshot_reuses")));
    std::printf("  %zu query pairs   p50=%.2fms p95=%.2fms p99=%.2fms\n",
                query_seconds.size(), percentile(query_seconds, 0.50) * 1e3,
                percentile(query_seconds, 0.95) * 1e3,
                percentile(query_seconds, 0.99) * 1e3);
    checks.expect(!query_seconds.empty(),
                  "at least one query completed during ingest");
    checks.expect(malformed == 0, "every live query returned well-formed text");
  }

  // -- verify: streamed report == batch report ---------------------------
  bench::banner("determinism gate");
  {
    const AnalysisContext ctx(*batch.trace, parallel);
    std::ostringstream batch_report;
    analysis::write_characterization_report(ctx, batch_report);
    live_report_match = streamed_report == batch_report.str() ? 1.0 : 0.0;
    checks.expect(live_report_match == 1.0,
                  "streamed report byte-matches the batch pipeline");
    json.record("verify")
        .num("report_bytes", static_cast<double>(streamed_report.size()))
        .num("report_match", live_report_match);
  }

  json.meta().num("peak_rss_mib", bench::peak_rss_mib());
  if (!json.write(args.out)) return 1;
  return checks.exit_code();
}
