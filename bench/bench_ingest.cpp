// Chunked parallel CSV decode bench: the ingest hot path.
//
// Writes a synthetic long-format readings file (vm,timestamp,avg_cpu —
// the shape of Azure's vm_cpu_readings, the largest file a real import
// touches) of --size-mb, then decodes it twice through ingest/csv.h:
//
//   serial      — ParallelConfig::serial(), the scalar oracle;
//   parallel@N  — N decode threads (default: the host's core count).
//
// Every decoded row feeds an FNV-1a digest (field bytes + parsed
// numerics, in file order), so the two runs must produce the same
// checksum bit for bit — the same discipline the ingest tests pin at
// fixture scale, here verified at ≥100 MB scale.
//
// Gates (ShapeChecks): checksums identical; parallel throughput ≥
// --min-speedup x serial (default 2.0). The speedup gate needs real
// cores: on hosts with fewer than 4 hardware threads it is skipped with
// a note (the checksum gate always holds), and --min-speedup=0 disables
// it explicitly for CI smokes. Emits BENCH_ingest.json.
//
// Usage: bench_ingest [--size-mb=N] [--threads=N] [--min-speedup=F]
//                     [--out=PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "ingest/csv.h"

using namespace cloudlens;

namespace {

struct IngestBenchArgs {
  double size_mb = 120;
  double min_speedup = 2.0;
  unsigned threads = 0;  // 0 = hardware_concurrency
  std::string out = "BENCH_ingest.json";
};

IngestBenchArgs parse_ingest_args(int argc, char** argv) {
  IngestBenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--size-mb=", 10) == 0) {
      args.size_mb = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      args.min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      args.threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      args.out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--size-mb=N] [--threads=N] [--min-speedup=F] "
          "[--out=PATH]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// FNV-1a over parsed rows, mixed strictly in file order.
class Fnv64 {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t fnv_bytes(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct ReadingRow {
  std::uint64_t vm_hash = 0;
  std::int64_t t = 0;
  double cpu = 0;
};

/// Deterministic synthetic readings file; returns the row count.
std::uint64_t write_synthetic_csv(const std::string& path, double size_mb) {
  std::ofstream out(path, std::ios::binary);
  SplitMix64 rng(20260809);
  const std::size_t target = static_cast<std::size_t>(size_mb * 1048576.0);
  std::uint64_t rows = 0;
  std::string buf;
  buf.reserve(1 << 20);
  std::size_t written = 0;
  char line[96];
  while (written + buf.size() < target) {
    const std::uint64_t vm = rng.next() % 2600000;  // Azure-scale id space
    const std::uint64_t t = (rng.next() % 2016) * 300;
    const double cpu = double(rng.next() % 10000) / 100.0;
    const int n = std::snprintf(line, sizeof line, "vm%llu,%llu,%.2f\n",
                                (unsigned long long)vm, (unsigned long long)t,
                                cpu);
    buf.append(line, static_cast<std::size_t>(n));
    ++rows;
    if (buf.size() >= (1 << 20)) {
      out << buf;
      written += buf.size();
      buf.clear();
    }
  }
  out << buf;
  return rows;
}

struct DecodeResult {
  std::uint64_t checksum = 0;
  std::uint64_t rows = 0;
  double seconds = 0;
};

DecodeResult decode_file(const std::string& path,
                         const ParallelConfig& parallel) {
  std::ifstream in(path, std::ios::binary);
  ingest::CsvDecodeOptions options;
  options.file = "synthetic.csv";
  options.parallel = parallel;
  DecodeResult result;
  Fnv64 digest;
  const auto start = std::chrono::steady_clock::now();
  ingest::decode_csv<ReadingRow>(
      in, options,
      [](const ingest::CsvRow& row) {
        row.expect_fields(3);
        ReadingRow r;
        r.vm_hash = fnv_bytes(row.field(0));
        r.t = row.i64(1);
        r.cpu = row.f64(2);
        return r;
      },
      [&](ReadingRow&& r) {
        digest.u64(r.vm_hash);
        digest.u64(static_cast<std::uint64_t>(r.t));
        digest.f64(r.cpu);
        ++result.rows;
      });
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.checksum = digest.value();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const IngestBenchArgs args = parse_ingest_args(argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = args.threads != 0 ? args.threads : (hw ? hw : 1);

  bench::banner("bench_ingest — chunked parallel CSV decode");
  const std::string path =
      (std::filesystem::temp_directory_path() / "cloudlens_bench_ingest.csv")
          .string();
  std::printf("writing %.0f MB synthetic readings CSV to %s...\n",
              args.size_mb, path.c_str());
  const std::uint64_t rows = write_synthetic_csv(path, args.size_mb);
  const double actual_mb =
      double(std::filesystem::file_size(path)) / 1048576.0;
  std::printf("%llu rows, %.1f MB on disk, host threads %u\n\n",
              (unsigned long long)rows, actual_mb, hw);

  const DecodeResult serial = decode_file(path, ParallelConfig::serial());
  const DecodeResult parallel =
      decode_file(path, ParallelConfig::with_threads(threads));
  std::filesystem::remove(path);

  const double serial_mbps = actual_mb / serial.seconds;
  const double parallel_mbps = actual_mb / parallel.seconds;
  const double speedup = serial.seconds / parallel.seconds;

  TextTable table({"config", "seconds", "MB/s", "rows", "checksum"});
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                (unsigned long long)serial.checksum);
  table.row()
      .add("serial")
      .add(serial.seconds, 3)
      .add(serial_mbps, 1)
      .add(double(serial.rows), 0)
      .add(hex);
  std::snprintf(hex, sizeof hex, "%016llx",
                (unsigned long long)parallel.checksum);
  table.row()
      .add("parallel@" + std::to_string(threads))
      .add(parallel.seconds, 3)
      .add(parallel_mbps, 1)
      .add(double(parallel.rows), 0)
      .add(hex);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("speedup: %.2fx, peak RSS %.0f MiB\n\n", speedup,
              bench::peak_rss_mib());

  bench::ShapeChecks checks;
  checks.expect(serial.rows == rows && parallel.rows == rows,
                "both runs decode every generated row");
  checks.expect(serial.checksum == parallel.checksum,
                "parallel decode bit-identical to serial (FNV digest)");
  double min_speedup = args.min_speedup;
  if (min_speedup > 0 && hw < 4) {
    std::printf(
        "  [SKIP] speedup gate: host has %u hardware thread(s); the chunk\n"
        "         grid and ordered merge are exercised, but wall-clock\n"
        "         parallel gains need >= 4 cores (checksum gate still "
        "binding)\n",
        hw);
    min_speedup = 0;
  }
  if (min_speedup > 0) {
    char what[128];
    std::snprintf(what, sizeof what,
                  "parallel decode >= %.1fx serial (measured %.2fx)",
                  min_speedup, speedup);
    checks.expect(speedup >= min_speedup, what);
  }

  bench::BenchJson json("ingest");
  json.meta()
      .num("size_mb", actual_mb)
      .num("rows", double(rows))
      .num("host_threads", double(hw))
      .num("decode_threads", double(threads))
      .num("peak_rss_mib", bench::peak_rss_mib())
      .num("min_speedup_gate", min_speedup);
  char serial_hex[32], parallel_hex[32];
  std::snprintf(serial_hex, sizeof serial_hex, "%016llx",
                (unsigned long long)serial.checksum);
  std::snprintf(parallel_hex, sizeof parallel_hex, "%016llx",
                (unsigned long long)parallel.checksum);
  json.record("serial")
      .num("seconds", serial.seconds)
      .num("mb_per_s", serial_mbps)
      .str("checksum", serial_hex);
  json.record("parallel")
      .num("threads", double(threads))
      .num("seconds", parallel.seconds)
      .num("mb_per_s", parallel_mbps)
      .num("speedup", speedup)
      .str("checksum", parallel_hex);
  json.write(args.out);
  return checks.exit_code();
}
