// Out-of-core sharded-telemetry bench: bounded-RSS streaming analyses.
//
// Demonstrates that the sharded + mmap'd telemetry path runs the heavy
// panel consumers (Fig. 6 utilization bands, Fig. 5 pattern shares,
// Fig. 7 node/VM correlations, kb extraction) on a workload whose
// resident panel would not fit the memory budget — with a peak RSS under
// a hard cap and results bit-identical to the in-memory path.
//
// Phases (each with its own VmHWM window — Linux lets us reset the
// kernel's RSS high-water mark via /proc/self/clear_refs between phases):
//
//   spill       — build the shard store: fill + write K shard snapshots,
//                 one shard in memory at a time;
//   streamed@1  — the analysis suite over mmap'd shards, serial;
//   streamed@N  — same, 8 worker threads (checksum must not move);
//   fallback    — sharding off, panel off: the scratch recompute path,
//                 the bit-identity oracle for the streamed checksums;
//   resident    — optional (--resident=1): materialize the full panel for
//                 the wall-clock and memory comparison.
//
// Gates (ShapeChecks): streamed checksums at both thread counts equal the
// fallback checksum exactly; streamed VmHWM stays under --rss-limit-mib;
// the resident panel estimate exceeds the cap by at least 2x (i.e. the
// out-of-core machinery was actually load-bearing, not idle); shards were
// really paged in and evicted. Emits BENCH_outofcore.json.
//
// Usage: bench_outofcore [--scale=F] [--seed=N] [--shards=K]
//                        [--budget-mib=N] [--rss-limit-mib=N]
//                        [--rss-gate=0|1] [--resident=0|1] [--out=PATH]
//
// --rss-gate=0 drops the two RSS expectations (the <= cap check and the
// resident-estimate >= 2x cap check) while keeping the checksum and
// paging gates — for sanitizer flavours, where shadow memory makes RSS
// meaningless but the bit-identity contract still must hold.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "bench_common.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "common/table.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"

using namespace cloudlens;

namespace {

/// FNV-1a over the suite's output values: any single changed bit in any
/// figure series changes the digest.
class Fnv64 {
 public:
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }
  void bytes(const std::string& s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    u64(s.size());
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// The streaming-analysis suite: every consumer the tentpole converted,
/// digested into one checksum. Identical bits => identical digest.
std::uint64_t suite_checksum(const TraceStore& trace,
                             const ParallelConfig& parallel) {
  const AnalysisContext ctx(trace, parallel);
  Fnv64 h;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto shares = analysis::classify_population(ctx, cloud, 400);
    h.u64(shares.classified);
    h.f64(shares.diurnal);
    h.f64(shares.stable);
    h.f64(shares.irregular);
    h.f64(shares.hourly_peak);

    const auto bands = analysis::utilization_distribution(ctx, cloud, 400);
    h.u64(bands.vms_used);
    for (const auto* series :
         {&bands.weekly.p25, &bands.weekly.p50, &bands.weekly.p75,
          &bands.weekly.p95, &bands.daily_p25, &bands.daily_p50,
          &bands.daily_p75, &bands.daily_p95}) {
      for (const double v : *series) h.f64(v);
    }
  }
  const auto node_rs =
      analysis::node_vm_correlations(ctx, CloudType::kPrivate, 150);
  h.u64(node_rs.size());
  for (const double r : node_rs) h.f64(r);

  kb::ExtractorOptions kb_options;
  kb_options.max_classified_vms = 4;
  const kb::KnowledgeBase knowledge(kb::extract_all(ctx, kb_options));
  h.bytes(knowledge.to_csv());
  return h.digest();
}

/// Peak RSS (VmHWM) in MiB from /proc — unlike ru_maxrss this can be
/// reset per phase via /proc/self/clear_refs.
double vm_hwm_mib() {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::atof(line.c_str() + 6) / 1024.0;
  }
#endif
  return bench::peak_rss_mib();
}

/// Resets the kernel's RSS high-water mark so the next vm_hwm_mib() call
/// reports the peak of this phase only. Returns false when unsupported.
bool reset_peak_rss() {
#if defined(__linux__)
  std::ofstream out("/proc/self/clear_refs");
  if (!out.good()) return false;
  out << "5";
  out.flush();
  return out.good();
#else
  return false;
#endif
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_args(argc, argv);
  args.scale = 1.0;  // the point is a panel that should NOT sit resident
  std::uint32_t shards = 32;
  std::size_t budget_mib = 64;
  double rss_limit_mib = 256.0;
  bool rss_gate = true;
  bool resident = false;
  std::string out_path = "BENCH_outofcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      args.scale = std::atof(argv[i] + 8);
    else if (std::strncmp(argv[i], "--shards=", 9) == 0)
      shards = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    else if (std::strncmp(argv[i], "--budget-mib=", 13) == 0)
      budget_mib = static_cast<std::size_t>(std::atoll(argv[i] + 13));
    else if (std::strncmp(argv[i], "--rss-limit-mib=", 16) == 0)
      rss_limit_mib = std::atof(argv[i] + 16);
    else if (std::strncmp(argv[i], "--rss-gate=", 11) == 0)
      rss_gate = std::atoi(argv[i] + 11) != 0;
    else if (std::strncmp(argv[i], "--resident=", 11) == 0)
      resident = std::atoi(argv[i] + 11) != 0;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
  }

  obs::MetricsRegistry::global().set_enabled(true);

  auto scenario = bench::make_bench_scenario(args);
  TraceStore& trace = *scenario.trace;
  const TimeGrid& grid = trace.telemetry_grid();
  const std::size_t vms = trace.vms().size();

  // What the resident panel WOULD cost, computed arithmetically so this
  // bench never has to materialize it: full-resolution rows plus the
  // hourly companion view, 8 bytes a sample, one row per VM.
  const std::size_t hourly_count =
      grid.step > 0 && kHour % grid.step == 0
          ? grid.count / static_cast<std::size_t>(kHour / grid.step)
          : 0;
  const double resident_panel_mib =
      static_cast<double>(vms) *
      static_cast<double>(grid.count + hourly_count) * 8.0 /
      (1024.0 * 1024.0);
  std::printf("  %zu VMs x %zu ticks: resident panel would need %.0f MiB\n",
              vms, grid.count, resident_panel_mib);

  bench::BenchJson json("outofcore");
  json.meta()
      .num("scale", args.scale)
      .num("seed", static_cast<double>(args.seed))
      .num("vms", static_cast<double>(vms))
      .num("shards", shards)
      .num("budget_mib", static_cast<double>(budget_mib))
      .num("rss_limit_mib", rss_limit_mib)
      .num("resident_panel_mib", resident_panel_mib);

  bench::banner("Spill: shard the panel to disk, one shard at a time");
  const std::string spill_dir =
      (std::filesystem::temp_directory_path() /
       ("cloudlens-outofcore-" + std::to_string(args.seed)))
          .string();
  TelemetryShardingOptions sharding;
  sharding.shards = shards;
  sharding.budget_bytes = budget_mib << 20;
  sharding.spill_dir = spill_dir;
  sharding.keep_files = false;
  auto spill_start = std::chrono::steady_clock::now();
  trace.set_telemetry_sharding(sharding);
  const TelemetryShardStore* store = trace.telemetry_shards();
  const double spill_ms = ms_since(spill_start);
  const double spill_mib =
      static_cast<double>(store->spill_bytes()) / (1024.0 * 1024.0);
  std::printf("  %u shards, %.0f MiB spilled in %.1f ms\n", shards, spill_mib,
              spill_ms);
  json.record("spill")
      .num("wall_ms", spill_ms)
      .num("spill_mib", spill_mib)
      .num("shard_files", shards);

  const bool rss_windows = reset_peak_rss();
  if (!rss_windows)
    std::printf("  note: VmHWM reset unavailable; RSS figures are "
                "whole-process peaks\n");

  bench::banner("Streamed analyses over mmap'd shards (1 thread)");
  auto t1_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_1t =
      suite_checksum(trace, ParallelConfig::with_threads(1));
  const double streamed_1t_ms = ms_since(t1_start);
  const double streamed_1t_rss = vm_hwm_mib();
  std::printf("  %.1f ms, peak RSS %.1f MiB, checksum %016llx\n",
              streamed_1t_ms, streamed_1t_rss,
              static_cast<unsigned long long>(sum_1t));
  json.record("streamed_1t")
      .num("wall_ms", streamed_1t_ms)
      .num("peak_rss_mib", streamed_1t_rss);

  reset_peak_rss();
  bench::banner("Streamed analyses over mmap'd shards (8 threads)");
  auto t8_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_8t =
      suite_checksum(trace, ParallelConfig::with_threads(8));
  const double streamed_8t_ms = ms_since(t8_start);
  const double streamed_8t_rss = vm_hwm_mib();
  std::printf("  %.1f ms, peak RSS %.1f MiB, checksum %016llx\n",
              streamed_8t_ms, streamed_8t_rss,
              static_cast<unsigned long long>(sum_8t));
  json.record("streamed_8t")
      .num("wall_ms", streamed_8t_ms)
      .num("peak_rss_mib", streamed_8t_rss);

  const auto metrics = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t page_ins = metrics.counter("panel.shard_page_ins");
  const std::uint64_t evictions = metrics.counter("panel.shard_evictions");
  const std::uint64_t row_reads = metrics.counter("panel.shard_row_reads");
  json.record("paging")
      .num("page_ins", static_cast<double>(page_ins))
      .num("evictions", static_cast<double>(evictions))
      .num("row_reads", static_cast<double>(row_reads));

  bench::banner("Oracle: sharding off, panel off (scratch recompute)");
  trace.clear_telemetry_sharding();
  trace.set_telemetry_panel_enabled(false);
  reset_peak_rss();
  auto fb_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_fallback =
      suite_checksum(trace, ParallelConfig::with_threads(8));
  const double fallback_ms = ms_since(fb_start);
  const double fallback_rss = vm_hwm_mib();
  std::printf("  %.1f ms, peak RSS %.1f MiB, checksum %016llx\n", fallback_ms,
              fallback_rss, static_cast<unsigned long long>(sum_fallback));
  json.record("fallback_no_panel")
      .num("wall_ms", fallback_ms)
      .num("peak_rss_mib", fallback_rss);

  double resident_rss = 0.0, resident_ms = 0.0, resident_build_ms = 0.0;
  if (resident) {
    bench::banner("Comparison: resident columnar panel");
    trace.set_telemetry_panel_enabled(true);
    reset_peak_rss();
    auto build_start = std::chrono::steady_clock::now();
    const TelemetryPanel* panel = trace.telemetry_panel();
    resident_build_ms = ms_since(build_start);
    auto res_start = std::chrono::steady_clock::now();
    const std::uint64_t sum_resident =
        suite_checksum(trace, ParallelConfig::with_threads(8));
    resident_ms = ms_since(res_start);
    resident_rss = vm_hwm_mib();
    std::printf(
        "  build %.1f ms (%.0f MiB), suite %.1f ms, peak RSS %.1f MiB, "
        "checksum %016llx%s\n",
        resident_build_ms,
        panel ? static_cast<double>(panel->memory_bytes()) / (1024.0 * 1024.0)
              : 0.0,
        resident_ms, resident_rss,
        static_cast<unsigned long long>(sum_resident),
        sum_resident == sum_fallback ? "" : "  (MISMATCH)");
    json.record("resident_panel")
        .num("panel_build_ms", resident_build_ms)
        .num("wall_ms", resident_ms)
        .num("peak_rss_mib", resident_rss);
  }

  bench::banner("Summary");
  TextTable table({"config", "wall ms", "peak RSS MiB"});
  table.row().add("spill (build shards)").add(spill_ms, 1).add("-");
  table.row().add("streamed @1t").add(streamed_1t_ms, 1).add(streamed_1t_rss, 1);
  table.row().add("streamed @8t").add(streamed_8t_ms, 1).add(streamed_8t_rss, 1);
  table.row().add("fallback (no panel)").add(fallback_ms, 1).add(fallback_rss, 1);
  if (resident)
    table.row()
        .add("resident panel (incl build)")
        .add(resident_build_ms + resident_ms, 1)
        .add(resident_rss, 1);
  std::printf("%s", table.to_string().c_str());
  std::printf("  resident panel estimate: %.0f MiB; RSS cap: %.0f MiB\n",
              resident_panel_mib, rss_limit_mib);
  json.write(out_path);

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(sum_1t == sum_fallback && sum_8t == sum_fallback,
                "streamed checksums at 1 and 8 threads equal the in-memory "
                "oracle exactly");
  if (rss_gate) {
    char gate[128];
    std::snprintf(gate, sizeof gate,
                  "streamed peak RSS stays <= %.0f MiB at both thread counts",
                  rss_limit_mib);
    checks.expect(streamed_1t_rss <= rss_limit_mib &&
                      streamed_8t_rss <= rss_limit_mib,
                  gate);
    checks.expect(resident_panel_mib >= 2.0 * rss_limit_mib,
                  "resident panel estimate is >= 2x the RSS cap (the cap is "
                  "load-bearing)");
  } else {
    std::printf("  (RSS gates skipped: --rss-gate=0)\n");
  }
  if (args.scale >= 1.0)
    checks.expect(resident_panel_mib > 1536.0,
                  "at full scale the resident panel would exceed 1.5 GiB");
  checks.expect(page_ins > 0 && evictions > 0,
                "shards were paged in and evicted under the budget");
  return checks.exit_code();
}
