// Fig. 6 — CPU-utilization distribution over time:
//   (a, b) weekly percentile bands (p25/p50/p75/p95) for private & public;
//   (c, d) daily (hour-of-day) percentile profiles.
//
// Paper: the 75th percentile stays below ~30% in both clouds; the public
// bands are more stable; the private daily profile follows working hours
// while the public daily profile is almost constant.
#include "analysis/context.h"
#include "analysis/utilization.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "stats/descriptive.h"

using namespace cloudlens;

namespace {

void show_weekly(const std::string& title,
                 const analysis::UtilizationDistribution& dist) {
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_max = 0.6;
  chart.height = 12;
  chart.title = title;
  auto vec = [](const std::vector<double>& v) { return v; };
  std::printf("%s\n", render_lines({{"p25", vec(dist.weekly.p25)},
                                    {"p50", vec(dist.weekly.p50)},
                                    {"p75", vec(dist.weekly.p75)},
                                    {"p95", vec(dist.weekly.p95)}},
                                   chart)
                          .c_str());
}

void show_daily(const std::string& title,
                const analysis::UtilizationDistribution& dist) {
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_max = 0.6;
  chart.height = 10;
  chart.title = title;
  std::printf("%s\n", render_lines({{"p25", dist.daily_p25},
                                    {"p50", dist.daily_p50},
                                    {"p75", dist.daily_p75},
                                    {"p95", dist.daily_p95}},
                                   chart)
                          .c_str());
}

double swing(const std::vector<double>& profile) {
  double lo = 1e9, hi = -1e9;
  for (double v : profile) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);

  const auto priv =
      analysis::utilization_distribution(AnalysisContext(*scenario.trace), CloudType::kPrivate);
  const auto pub =
      analysis::utilization_distribution(AnalysisContext(*scenario.trace), CloudType::kPublic);

  bench::banner("Fig. 6(a): weekly distribution, private cloud");
  show_weekly("CPU utilization percentiles over one week (x = 168 h)", priv);
  bench::banner("Fig. 6(b): weekly distribution, public cloud");
  show_weekly("CPU utilization percentiles over one week (x = 168 h)", pub);
  bench::banner("Fig. 6(c): daily distribution, private cloud");
  show_daily("percentiles vs hour of day (x = 0..23)", priv);
  bench::banner("Fig. 6(d): daily distribution, public cloud");
  show_daily("percentiles vs hour of day (x = 0..23)", pub);

  const double priv_p75 = stats::quantile(priv.weekly.p75, 0.5);
  const double pub_p75 = stats::quantile(pub.weekly.p75, 0.5);
  const double priv_p75_band_swing = swing(priv.weekly.p75);
  const double pub_p75_band_swing = swing(pub.weekly.p75);
  const double priv_daily_swing = swing(priv.daily_p50);
  const double pub_daily_swing = swing(pub.daily_p50);

  TextTable t({"metric", "paper", "private", "public"});
  t.row()
      .add("median level of weekly p75")
      .add("< 0.30 in both")
      .add(priv_p75, 3)
      .add(pub_p75, 3);
  t.row()
      .add("weekly p75 band swing")
      .add("public more stable")
      .add(priv_p75_band_swing, 3)
      .add(pub_p75_band_swing, 3);
  t.row()
      .add("daily p50 swing (working hours)")
      .add("private varies, public ~flat")
      .add(priv_daily_swing, 3)
      .add(pub_daily_swing, 3);
  t.row()
      .add("VMs sampled")
      .add("-")
      .add(priv.vms_used)
      .add(pub.vms_used);
  std::printf("%s", t.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(priv_p75 < 0.35 && pub_p75 < 0.35,
                "p75 utilization below ~30% in both clouds");
  checks.expect(pub_p75_band_swing < priv_p75_band_swing,
                "public weekly bands more stable than private");
  checks.expect(priv_daily_swing > 1.5 * pub_daily_swing,
                "private daily profile swings with working hours; public "
                "nearly constant");
  return checks.exit_code();
}
