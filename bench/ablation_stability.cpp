// Ablation — statistical stability. The paper asserts its observations are
// "statistically meaningful and consistent across time" and that "similar
// results (not shown) are also observed at other time points". Here we
// regenerate the scenario under several seeds (independent weeks) and at
// several snapshot instants and check that every headline statistic keeps
// its value and, more importantly, its cross-cloud ordering.
#include "analysis/context.h"
#include "analysis/insights.h"
#include "bench_common.h"
#include "common/table.h"
#include "stats/descriptive.h"
#include "workloads/generator.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  bench::banner("Stability across seeds (independent weeks)");
  const std::vector<std::uint64_t> seeds = {args.seed, args.seed + 101,
                                            args.seed + 202};
  struct Row {
    std::uint64_t seed;
    analysis::InsightVerdicts verdicts;
  };
  std::vector<Row> rows;
  for (const auto seed : seeds) {
    workloads::ScenarioOptions options;
    options.scale = args.scale;
    options.seed = seed;
    const auto scenario = workloads::make_scenario(options);
    rows.push_back({seed, analysis::evaluate_insights(AnalysisContext(*scenario.trace))});
  }

  TextTable t({"seed", "vms/sub (pri/pub)", "creation CV (pri/pub)",
               "diurnal share (pri/pub)", "node corr (pri/pub)",
               "all insights"});
  for (const auto& row : rows) {
    const auto& v = row.verdicts;
    t.row()
        .add(row.seed)
        .add(format_double(v.median_vms_per_subscription.private_value, 0) +
             "/" +
             format_double(v.median_vms_per_subscription.public_value, 0))
        .add(format_double(v.median_creation_cv.private_value, 2) + "/" +
             format_double(v.median_creation_cv.public_value, 2))
        .add(format_double(v.private_mix.diurnal, 2) + "/" +
             format_double(v.public_mix.diurnal, 2))
        .add(format_double(v.median_node_correlation.private_value, 2) + "/" +
             format_double(v.median_node_correlation.public_value, 2))
        .add(v.all() ? "yes" : "NO");
  }
  std::printf("%s", t.to_string().c_str());

  bench::banner("Stability across snapshot instants (one week)");
  workloads::ScenarioOptions options;
  options.scale = args.scale;
  options.seed = args.seed;
  const auto scenario = workloads::make_scenario(options);
  const std::vector<SimTime> snapshots = {
      kDay + 10 * kHour, 2 * kDay + 14 * kHour, 3 * kDay + 20 * kHour,
      4 * kDay + 9 * kHour};
  TextTable t2({"snapshot", "median vms/sub (pri/pub)",
                "single-region core share (pri/pub)"});
  std::vector<double> pri_medians;
  for (const SimTime snap : snapshots) {
    analysis::InsightOptions io;
    io.snapshot = snap;
    const auto priv = analysis::vms_per_subscription(AnalysisContext(*scenario.trace), CloudType::kPrivate, snap);
    const auto pub = analysis::vms_per_subscription(AnalysisContext(*scenario.trace), CloudType::kPublic, snap);
    const auto pri_spread =
        analysis::region_spread(AnalysisContext(*scenario.trace), CloudType::kPrivate, snap);
    const auto pub_spread =
        analysis::region_spread(AnalysisContext(*scenario.trace), CloudType::kPublic, snap);
    const double pri_med = stats::quantile_sorted(priv, 0.5);
    pri_medians.push_back(pri_med);
    t2.row()
        .add(format_sim_time(snap))
        .add(format_double(pri_med, 0) + "/" +
             format_double(stats::quantile_sorted(pub, 0.5), 0))
        .add(format_double(pri_spread.single_region_core_share, 2) + "/" +
             format_double(pub_spread.single_region_core_share, 2));
  }
  std::printf("%s", t2.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  bool all_seeds_hold = true;
  for (const auto& row : rows) all_seeds_hold &= row.verdicts.all();
  checks.expect(all_seeds_hold, "all four insights hold under every seed");
  const double cv_across_snapshots =
      stats::coefficient_of_variation(pri_medians);
  checks.expect(cv_across_snapshots < 0.15,
                "deployment-size median stable across snapshot instants "
                "(CV < 0.15)");
  return checks.exit_code();
}
