// bench_simd: kernel-tier benchmark + checksum gate.
//
// Measures the four dispatched kernel families (Pearson co-moments, band
// percentiles, FFT butterflies, batched hash-normal fills) under
// scalar/strict (the oracle), best-tier/strict, and best-tier/fast, plus
// an end-to-end characterization-report checksum. Prints a per-kernel
// table, writes BENCH_simd.json, and enforces two classes of gate:
//
//   * checksum gates (always on): strict-mode outputs are bit-identical
//     to scalar for every family; fast-mode Pearson stays within the
//     documented tolerance; the strict-mode report hash matches scalar's.
//   * perf gates (only with --min-speedup=F > 0): the best fast-mode
//     kernel speedup must reach F, and best-tier strict Pearson must stay
//     within 3% of scalar (the dispatch seam must not tax strict mode).
//
// Flags: --scale=F --seed=N (report scenario), --min-speedup=F,
//        --quick (reduced reps for CI smoke), --json=PATH.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "common/rng.h"
#include "stats/fft.h"
#include "stats/kernels/kernels.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

namespace kernels = stats::kernels;

struct SimdArgs {
  double scale = 0.05;
  std::uint64_t seed = 42;
  double min_speedup = 0.0;  ///< 0 = report-only, no perf gates
  /// Max strict-mode pearson slowdown vs scalar, in percent. Strict
  /// best-tier pearson runs the same scalar loop plus one atomic load, so
  /// any measured gap is scheduler noise — but the gate still catches a
  /// dispatch seam that grew a real per-call cost. Only enforced together
  /// with --min-speedup.
  double max_strict_overhead_pct = 3.0;
  bool quick = false;
  std::string json_path = "BENCH_simd.json";
};

SimdArgs parse_simd_args(int argc, char** argv) {
  SimdArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      args.min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--max-strict-overhead=", 22) == 0) {
      args.max_strict_overhead_pct = std::atof(argv[i] + 22);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      args.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--scale=F] [--seed=N] [--min-speedup=F] "
          "[--max-strict-overhead=PCT] [--quick] [--json=PATH]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

std::vector<double> random_series(std::uint64_t seed, std::size_t n) {
  SplitMix64 sm(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return out;
}

struct Variant {
  const char* name;
  kernels::Config config;
};

std::vector<Variant> bench_variants() {
  const kernels::Tier best = kernels::best_supported_tier();
  std::vector<Variant> v = {
      {"scalar/strict", {kernels::Tier::kScalar, kernels::Mode::kStrict}}};
  if (best != kernels::Tier::kScalar) {
    v.push_back({"best/strict", {best, kernels::Mode::kStrict}});
    v.push_back({"best/fast", {best, kernels::Mode::kFast}});
  } else {
    std::printf("note: no SIMD tier supported; best == scalar\n");
  }
  return v;
}

/// FNV-1a over a string: stable cross-run checksum for report bytes.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct KernelResult {
  std::string variant;
  double seconds = 1e300;
  double checksum = 0;
};

/// Times `body(config, result)` for every variant, interleaving the
/// best-of trials (scalar, strict, fast, scalar, strict, fast, ...) so
/// slow drift in machine state — frequency scaling, cache pressure from
/// neighbours — biases no variant, and keeping the per-variant minimum.
/// Sequential per-variant phases measured spurious 3-4% gaps between two
/// runs of the *same* scalar loop on a busy host; interleaving removes
/// that bias, which is what lets the strict-overhead gate sit at 3%.
template <typename Fn>
std::vector<KernelResult> measure_family(const std::vector<Variant>& variants,
                                         int best_of, Fn&& body) {
  std::vector<KernelResult> out;
  for (const Variant& v : variants) out.push_back(KernelResult{v.name});
  for (int k = 0; k < best_of; ++k) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      body(variants[i].config, out[i]);
      const auto t1 = std::chrono::steady_clock::now();
      out[i].seconds = std::min(
          out[i].seconds, std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return out;
}

void print_row(const char* kernel, const KernelResult& r, double base_s) {
  std::printf("  %-10s %-14s %9.3f ms   speedup %5.2fx   checksum %.12g\n",
              kernel, r.variant.c_str(), r.seconds * 1e3,
              base_s / r.seconds, r.checksum);
}

}  // namespace

int run(int argc, char** argv) {
  const SimdArgs args = parse_simd_args(argc, argv);
  bench::ShapeChecks checks;
  bench::BenchJson json("simd");
  const kernels::Tier best = kernels::best_supported_tier();
  json.meta()
      .str("best_tier", std::string(kernels::to_string(best)))
      .num("quick", args.quick ? 1 : 0)
      .num("min_speedup", args.min_speedup);

  bench::banner("kernel micro-benchmarks (n = one telemetry week = 2016)");
  const std::size_t n = 2016;
  const auto x = random_series(1, n);
  const auto y = random_series(2, n);
  const int scale_reps = args.quick ? 10 : 1;
  const int best_of = args.quick ? 3 : 5;
  const std::vector<Variant> variants = bench_variants();

  auto report_family = [&](const char* label, const char* json_name,
                           int calls, const std::vector<KernelResult>& rs) {
    for (const KernelResult& r : rs) {
      print_row(label, r, rs.front().seconds);
      json.record(json_name)
          .str("variant", r.variant)
          .num("seconds", r.seconds)
          .num("calls", calls)
          .num("speedup", rs.front().seconds / r.seconds)
          .num("checksum", r.checksum);
    }
  };

  // --- Pearson co-moments ------------------------------------------------
  const int pearson_reps = 40000 / scale_reps;
  const auto pearson = measure_family(
      variants, best_of, [&](kernels::Config c, KernelResult& r) {
        double acc = 0;
        for (int i = 0; i < pearson_reps; ++i) {
          const auto s = kernels::pearson_sums_with(c, x, y);
          acc += s.sxy;
        }
        r.checksum = acc;
      });
  report_family("pearson", "pearson", pearson_reps, pearson);

  // --- Batched hash-normal fill -----------------------------------------
  const int fill_reps = 20000 / scale_reps;
  std::vector<std::int64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<std::int64_t>(i);
  std::vector<double> fill_out(n);
  const auto fills = measure_family(
      variants, best_of, [&](kernels::Config c, KernelResult& r) {
        double acc = 0;
        for (int i = 0; i < fill_reps; ++i) {
          kernels::hash_normal_fill_with(
              c, args.seed + static_cast<unsigned>(i), keys, fill_out);
          acc += fill_out[i % n];
        }
        r.checksum = acc;
      });
  report_family("hashfill", "hash_normal_fill", fill_reps, fills);

  // --- FFT (autocorrelation: two 8192-point transforms per call) ---------
  const int fft_reps = 400 / scale_reps;
  const auto series = random_series(3, 2 * n);
  const auto ffts = measure_family(
      variants, best_of, [&](kernels::Config c, KernelResult& r) {
        kernels::set_active(c);  // autocorrelation dispatches on active()
        double acc = 0;
        for (int i = 0; i < fft_reps; ++i) {
          const auto acf = stats::autocorrelation(series);
          acc += acf[24];
        }
        r.checksum = acc;
      });
  kernels::reset_from_env();
  report_family("fft", "fft_autocorr", fft_reps, ffts);

  // --- Band percentiles (256-VM population × one week) -------------------
  const int band_reps = std::max(1, 60 / scale_reps);
  const std::size_t band_rows = 256;
  std::vector<std::vector<double>> population(band_rows);
  std::vector<const double*> rows(band_rows);
  for (std::size_t r = 0; r < band_rows; ++r) {
    population[r] = random_series(100 + r, n);
    rows[r] = population[r].data();
  }
  std::vector<double> p25(n), p50(n), p75(n), p95(n);
  const auto bands = measure_family(
      variants, best_of, [&](kernels::Config c, KernelResult& r) {
        double acc = 0;
        for (int i = 0; i < band_reps; ++i) {
          kernels::band_percentiles_with(
              c, rows, n, kernels::BandOutputs{p25, p50, p75, p95});
          acc += p50[i % n];
        }
        r.checksum = acc;
      });
  report_family("bands", "band_percentiles", band_reps, bands);

  // --- End-to-end report checksum ---------------------------------------
  bench::banner("characterization report checksum (strict must match)");
  bench::BenchArgs scenario_args;
  scenario_args.scale = args.quick ? std::min(args.scale, 0.02) : args.scale;
  scenario_args.seed = args.seed;
  std::vector<std::pair<std::string, std::uint64_t>> report_hashes;
  for (const Variant& v : variants) {
    kernels::set_active(v.config);
    const auto scenario = bench::make_bench_scenario(scenario_args);
    const AnalysisContext ctx(*scenario.trace);
    std::ostringstream out;
    analysis::write_characterization_report(ctx, out);
    const std::uint64_t h = fnv1a(out.str());
    report_hashes.emplace_back(v.name, h);
    std::printf("  report %-14s fnv1a %016llx\n", v.name,
                (unsigned long long)h);
    json.record("report").str("variant", v.name).num(
        "fnv1a_lo32", static_cast<double>(h & 0xFFFFFFFFULL));
  }
  kernels::reset_from_env();

  // --- Gates -------------------------------------------------------------
  bench::banner("gates");
  // Checksum gates: strict variants must reproduce scalar bytes exactly.
  for (std::size_t i = 1; i < pearson.size(); ++i) {
    const auto& r = pearson[i];
    if (r.variant == "best/strict") {
      checks.expect(r.checksum == pearson.front().checksum,
                    "pearson strict checksum identical to scalar");
    } else {
      checks.expect(std::fabs(r.checksum - pearson.front().checksum) <=
                        1e-5 * static_cast<double>(pearson_reps),
                    "pearson fast checksum within documented tolerance");
    }
  }
  for (std::size_t i = 1; i < fills.size(); ++i)
    checks.expect(fills[i].checksum == fills.front().checksum,
                  std::string("hash_normal_fill checksum identical (") +
                      fills[i].variant + ")");
  for (std::size_t i = 1; i < ffts.size(); ++i)
    checks.expect(ffts[i].checksum == ffts.front().checksum,
                  std::string("fft checksum identical (") + ffts[i].variant +
                      ")");
  for (std::size_t i = 1; i < bands.size(); ++i)
    checks.expect(bands[i].checksum == bands.front().checksum,
                  std::string("band checksum identical (") +
                      bands[i].variant + ")");
  for (std::size_t i = 1; i < report_hashes.size(); ++i) {
    if (report_hashes[i].first == "best/strict") {
      checks.expect(report_hashes[i].second == report_hashes.front().second,
                    "strict-mode report hash identical to scalar");
    }
  }

  // Perf gates (opt-in): fast-mode speedup and strict-mode overhead.
  double best_fast_speedup = 0;
  for (const auto* family : {&pearson, &fills, &ffts}) {
    for (const auto& r : *family) {
      if (r.variant == "best/fast" ||
          (family != &pearson && r.variant == "best/strict")) {
        best_fast_speedup = std::max(
            best_fast_speedup, family->front().seconds / r.seconds);
      }
    }
  }
  json.meta().num("best_fast_speedup", best_fast_speedup);
  std::printf("  best kernel speedup vs scalar: %.2fx\n", best_fast_speedup);
  if (args.min_speedup > 0 && best != kernels::Tier::kScalar) {
    checks.expect(best_fast_speedup >= args.min_speedup,
                  "fast-mode kernel speedup >= --min-speedup");
    for (const auto& r : pearson) {
      if (r.variant == "best/strict" && args.max_strict_overhead_pct > 0) {
        const double limit = 1.0 + args.max_strict_overhead_pct / 100.0;
        char what[96];
        std::snprintf(what, sizeof what,
                      "strict-mode pearson within %g%% of scalar",
                      args.max_strict_overhead_pct);
        checks.expect(r.seconds <= pearson.front().seconds * limit, what);
      }
    }
  }

  json.meta().num("peak_rss_mib", bench::peak_rss_mib());
  json.write(args.json_path);
  return checks.exit_code();
}

}  // namespace cloudlens

int main(int argc, char** argv) { return cloudlens::run(argc, argv); }
