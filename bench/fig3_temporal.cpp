// Fig. 3 — temporal deployment behaviour:
//   (a) lifetime CDFs (49% private vs 81% public in the shortest bin);
//   (b) VM counts per hour, one region (diurnal + weekend dip; private
//       shows occasional spikes);
//   (c) VMs created per hour (public: clean diurnal; private: low
//       amplitude with bursts);
//   (d) box-plots of the CV of hourly creations across regions.
#include "analysis/context.h"
#include "analysis/temporal.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "stats/boxplot.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

using namespace cloudlens;
using namespace cloudlens::analysis;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  // ---- Fig. 3(a): lifetime CDFs -----------------------------------------
  bench::banner("Fig. 3(a): CDFs of VM lifetimes (VMs started+ended in week)");
  const auto priv_life = analysis::vm_lifetimes(AnalysisContext(trace), CloudType::kPrivate);
  const auto pub_life = analysis::vm_lifetimes(AnalysisContext(trace), CloudType::kPublic);
  const stats::Ecdf priv_cdf(priv_life), pub_cdf(pub_life);

  std::vector<double> priv_curve, pub_curve;
  for (double x = double(5 * kMinute); x <= double(6 * kDay); x *= 1.35) {
    priv_curve.push_back(priv_cdf.at(x));
    pub_curve.push_back(pub_cdf.at(x));
  }
  ChartOptions cdf_chart;
  cdf_chart.fixed_y_range = true;
  cdf_chart.y_max = 1;
  cdf_chart.title = "CDF vs lifetime (log x: 5 min .. 6 days)";
  std::printf("%s", render_lines({{"private", priv_curve},
                                  {"public", pub_curve}},
                                 cdf_chart)
                        .c_str());

  const double priv_share = analysis::shortest_bin_share(priv_life);
  const double pub_share = analysis::shortest_bin_share(pub_life);
  TextTable t1({"metric", "paper", "measured"});
  t1.row()
      .add("private share in shortest bin")
      .add("0.49")
      .add(priv_share, 3);
  t1.row().add("public share in shortest bin").add("0.81").add(pub_share, 3);
  std::printf("\n%s", t1.to_string().c_str());

  // ---- Fig. 3(b): VM counts per hour, one region --------------------------
  bench::banner("Fig. 3(b): normalized VM counts per hour (one region)");
  const RegionId region(0);
  auto priv_count = vm_count_per_hour(AnalysisContext(trace), CloudType::kPrivate, region);
  auto pub_count = vm_count_per_hour(AnalysisContext(trace), CloudType::kPublic, region);
  // Normalize each curve by its own mean, as the paper does.
  const double priv_mean = priv_count.mean(), pub_mean = pub_count.mean();
  if (priv_mean > 0) priv_count.scale(1.0 / priv_mean);
  if (pub_mean > 0) pub_count.scale(1.0 / pub_mean);
  ChartOptions count_chart;
  count_chart.title = "normalized VM count, Mon..Sun (168 h)";
  std::printf("%s",
              render_lines({{"private",
                             {priv_count.values().begin(),
                              priv_count.values().end()}},
                            {"public",
                             {pub_count.values().begin(),
                              pub_count.values().end()}}},
                           count_chart)
                  .c_str());

  // ---- Fig. 3(c): creations per hour --------------------------------------
  bench::banner("Fig. 3(c): VMs created per hour (one region)");
  const auto priv_created =
      creations_per_hour(AnalysisContext(trace), CloudType::kPrivate, region);
  const auto pub_created =
      creations_per_hour(AnalysisContext(trace), CloudType::kPublic, region);
  ChartOptions created_chart;
  created_chart.title = "creations per hour, Mon..Sun";
  std::printf("%s",
              render_lines({{"private",
                             {priv_created.values().begin(),
                              priv_created.values().end()}},
                            {"public",
                             {pub_created.values().begin(),
                              pub_created.values().end()}}},
                           created_chart)
                  .c_str());

  // Removals behave like creations (the paper notes this in passing).
  const auto priv_removed =
      removals_per_hour(AnalysisContext(trace), CloudType::kPrivate, region);
  std::printf("(removals/hour private: mean %.1f, max %.0f — mirrors "
              "creations)\n",
              priv_removed.mean(), priv_removed.max());

  // ---- Fig. 3(d): CV across regions ---------------------------------------
  bench::banner("Fig. 3(d): CV of hourly VM creations across regions");
  const auto priv_cv = creation_cv_by_region(AnalysisContext(trace), CloudType::kPrivate);
  const auto pub_cv = creation_cv_by_region(AnalysisContext(trace), CloudType::kPublic);
  const auto priv_box = stats::box_stats(priv_cv);
  const auto pub_box = stats::box_stats(pub_cv);
  std::printf("%s",
              render_boxes({{"private", priv_box.whisker_lo, priv_box.q1,
                             priv_box.median, priv_box.q3, priv_box.whisker_hi},
                            {"public", pub_box.whisker_lo, pub_box.q1,
                             pub_box.median, pub_box.q3, pub_box.whisker_hi}},
                           56, "CV of hourly creations (one box per cloud, " +
                                   std::to_string(priv_cv.size()) + " regions)")
                  .c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(std::abs(priv_share - 0.49) < 0.08,
                "private shortest-bin share near 0.49");
  checks.expect(std::abs(pub_share - 0.81) < 0.06,
                "public shortest-bin share near 0.81");
  checks.expect(pub_share > priv_share + 0.2,
                "gap persists (public >> private)");
  checks.expect(priv_box.median > 1.3 * pub_box.median,
                "private creation CV higher across regions (bursts)");
  checks.expect(priv_count.max() > pub_count.max(),
                "private VM-count curve shows larger spikes");
  return checks.exit_code();
}
