// Ablation — profile fitting and the synthetic twin.
//
// Fit CloudProfiles from a generated trace (as one would from an imported
// external trace), regenerate a "twin" scenario from the fitted parameters
// alone, and compare the headline statistics of original and twin. Close
// agreement means the fitted parameter set captures what matters — the
// platform can run capacity what-ifs without retaining the raw trace.
#include "analysis/context.h"
#include "analysis/insights.h"
#include "bench_common.h"
#include "common/table.h"
#include "workloads/fit.h"
#include "workloads/generator.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto original = bench::make_bench_scenario(args);

  bench::banner("Fitting profiles from the observed trace");
  const auto priv_fit =
      workloads::fit_profile(*original.trace, CloudType::kPrivate,
                             workloads::CloudProfile::azure_private());
  const auto pub_fit =
      workloads::fit_profile(*original.trace, CloudType::kPublic,
                             workloads::CloudProfile::azure_public());
  std::printf("private: %zu services, %zu deployments, %zu ended VMs, "
              "%zu classified\n",
              priv_fit.services_observed, priv_fit.deployments_observed,
              priv_fit.ended_vms_observed, priv_fit.classified_vms);
  std::printf("public : %zu subscriptions, %zu deployments, %zu ended VMs, "
              "%zu classified\n",
              priv_fit.subscriptions_observed + pub_fit.subscriptions_observed,
              pub_fit.deployments_observed, pub_fit.ended_vms_observed,
              pub_fit.classified_vms);

  TextTable params({"parameter", "planted (private)", "fitted (private)"});
  const auto planted = workloads::CloudProfile::azure_private().scaled(args.scale);
  params.row()
      .add("deploy_size_mu")
      .add(planted.deploy_size_mu, 3)
      .add(priv_fit.profile.deploy_size_mu, 3);
  params.row()
      .add("deploy_size_sigma")
      .add(planted.deploy_size_sigma, 3)
      .add(priv_fit.profile.deploy_size_sigma, 3);
  params.row()
      .add("single-region weight")
      .add(planted.region_count_weights[0], 3)
      .add(priv_fit.profile.region_count_weights[0], 3);
  params.row()
      .add("shortest lifetime bin share")
      .add(planted.lifetime.shortest_bin_share(), 3)
      .add(priv_fit.profile.lifetime.shortest_bin_share(), 3);
  params.row()
      .add("pattern mix diurnal")
      .add(planted.pattern_mix.diurnal, 3)
      .add(priv_fit.profile.pattern_mix.diurnal, 3);
  params.row()
      .add("bursts per week per region")
      .add(planted.burst_churn.bursts_per_week, 2)
      .add(priv_fit.profile.burst_churn.bursts_per_week, 2);
  params.row()
      .add("region-agnostic probability")
      .add(planted.region_agnostic_prob, 2)
      .add(priv_fit.profile.region_agnostic_prob, 2);
  std::printf("\n%s", params.to_string().c_str());

  bench::banner("Regenerating the synthetic twin from fitted parameters");
  workloads::ScenarioOptions twin_options;
  twin_options.scale = 1.0;  // fitted counts already carry the scale
  twin_options.seed = args.seed + 1;
  twin_options.private_profile = priv_fit.profile;
  twin_options.public_profile = pub_fit.profile;
  const auto twin = workloads::make_scenario(twin_options);

  const auto v_orig = analysis::evaluate_insights(AnalysisContext(*original.trace));
  const auto v_twin = analysis::evaluate_insights(AnalysisContext(*twin.trace));

  TextTable cmp({"headline statistic", "original", "twin"});
  cmp.row()
      .add("median VMs/sub (private)")
      .add(v_orig.median_vms_per_subscription.private_value, 1)
      .add(v_twin.median_vms_per_subscription.private_value, 1);
  cmp.row()
      .add("median VMs/sub (public)")
      .add(v_orig.median_vms_per_subscription.public_value, 1)
      .add(v_twin.median_vms_per_subscription.public_value, 1);
  cmp.row()
      .add("creation CV (private)")
      .add(v_orig.median_creation_cv.private_value, 2)
      .add(v_twin.median_creation_cv.private_value, 2);
  cmp.row()
      .add("shortest-bin share (public)")
      .add(v_orig.shortest_lifetime_share.public_value, 2)
      .add(v_twin.shortest_lifetime_share.public_value, 2);
  cmp.row()
      .add("diurnal share (private)")
      .add(v_orig.private_mix.diurnal, 2)
      .add(v_twin.private_mix.diurnal, 2);
  cmp.row()
      .add("node correlation (private)")
      .add(v_orig.median_node_correlation.private_value, 2)
      .add(v_twin.median_node_correlation.private_value, 2);
  cmp.row()
      .add("all four insights")
      .add(v_orig.all() ? "hold" : "NO")
      .add(v_twin.all() ? "hold" : "NO");
  std::printf("%s", cmp.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(v_twin.all(),
                "twin regenerated from fitted parameters reproduces all "
                "four insights");
  checks.expect(std::abs(v_twin.shortest_lifetime_share.public_value -
                         v_orig.shortest_lifetime_share.public_value) < 0.05,
                "lifetime share carried through the fit");
  checks.expect(std::abs(priv_fit.profile.deploy_size_mu -
                         planted.deploy_size_mu) < 0.6,
                "deployment-size mu recovered");
  checks.expect(priv_fit.profile.burst_churn.bursts_per_week > 0,
                "private bursts detected by the fit");
  checks.expect(pub_fit.profile.burst_churn.bursts_per_week <
                    priv_fit.profile.burst_churn.bursts_per_week + 1e-9,
                "public fits as less bursty than private");
  return checks.exit_code();
}
