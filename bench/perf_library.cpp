// google-benchmark microbenchmarks for the cloudlens primitives that the
// analysis pipeline leans on: correlation, ECDF construction, period
// detection, pattern evaluation, classification, and allocation — plus
// thread-scaling sweeps (1/2/4/8 workers) of the parallelized hot paths.
// The parallel variants use `state.range(0)` as the thread count; outputs
// are bit-identical across the sweep by the engine's determinism contract,
// so only wall-clock changes.
#include <benchmark/benchmark.h>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "cloudsim/allocator.h"
#include "cloudsim/telemetry_panel.h"
#include "cloudsim/topology.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/ecdf.h"
#include "stats/fft.h"
#include "stats/periodicity.h"
#include "workloads/generator.h"
#include "workloads/patterns.h"

namespace cloudlens {
namespace {

std::vector<double> random_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform();
  return xs;
}

void BM_Pearson(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(stats::pearson(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Pearson)->Arg(2016)->Arg(1 << 14);

void BM_PearsonFused(benchmark::State& state) {
  // Single-pass co-moment kernel vs the two-pass BM_Pearson above.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_series(n, 1);
  const auto y = random_series(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(stats::pearson_fused(x, y));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PearsonFused)->Arg(2016)->Arg(1 << 14);

void BM_EcdfBuild(benchmark::State& state) {
  const auto xs = random_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(stats::Ecdf(xs));
}
BENCHMARK(BM_EcdfBuild)->Arg(1024)->Arg(1 << 16);

void BM_Periodogram(benchmark::State& state) {
  const auto xs = random_series(2016, 4);
  for (auto _ : state) benchmark::DoNotOptimize(stats::periodogram(xs));
}
BENCHMARK(BM_Periodogram);

void BM_Autocorrelation(benchmark::State& state) {
  const auto xs = random_series(2016, 5);
  for (auto _ : state) benchmark::DoNotOptimize(stats::autocorrelation(xs));
}
BENCHMARK(BM_Autocorrelation);

void BM_PatternEvaluationWeek(benchmark::State& state) {
  const workloads::DiurnalUtilization model({}, 6);
  const TimeGrid grid = week_telemetry_grid();
  for (auto _ : state) {
    double acc = 0;
    for (std::size_t i = 0; i < grid.count; ++i) acc += model.at(grid.at(i));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_PatternEvaluationWeek);

void BM_PatternSampleWeek(benchmark::State& state) {
  // Batched sample() vs the per-tick at() loop of BM_PatternEvaluationWeek:
  // same bits, hoisted envelope/noise tables, no per-tick virtual dispatch.
  const workloads::DiurnalUtilization model({}, 6);
  const TimeGrid grid = week_telemetry_grid();
  std::vector<double> row(grid.count);
  for (auto _ : state) {
    model.sample(grid, row);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_PatternSampleWeek);

void BM_ClassifyWeekSeries(benchmark::State& state) {
  const workloads::HourlyPeakUtilization model({}, 7);
  const TimeGrid grid = week_telemetry_grid();
  stats::TimeSeries series(grid);
  for (std::size_t i = 0; i < grid.count; ++i) series[i] = model.at(grid.at(i));
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::classify(series));
}
BENCHMARK(BM_ClassifyWeekSeries);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(8);
  std::vector<double> w(1000);
  for (auto& x : w) x = rng.uniform(0.1, 10.0);
  const AliasTable table(w);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_AliasTableSample);

void BM_ScenarioGeneration(benchmark::State& state) {
  // End-to-end generation + placement of a small dual-cloud week.
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto scenario = workloads::make_scenario(options);
    benchmark::DoNotOptimize(scenario.trace->vms().size());
  }
}
BENCHMARK(BM_ScenarioGeneration)->Unit(benchmark::kMillisecond);

void BM_NodeUtilizationWeek(benchmark::State& state) {
  workloads::ScenarioOptions options;
  options.scale = 0.05;
  const auto scenario = workloads::make_scenario(options);
  const TimeGrid grid = week_telemetry_grid();
  // A node with several VMs.
  NodeId busiest;
  std::size_t most = 0;
  for (const auto& node : scenario.topology->nodes()) {
    const auto vms = scenario.trace->vms_on_node(node.id).size();
    if (vms > most) {
      most = vms;
      busiest = node.id;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario.trace->node_utilization(busiest, grid));
  }
  state.SetLabel(std::to_string(most) + " VMs on node");
}
BENCHMARK(BM_NodeUtilizationWeek)->Unit(benchmark::kMillisecond);

void BM_AllocateRelease(benchmark::State& state) {
  TopologySpec spec;
  spec.regions = {{"r", 0}};
  spec.clusters_per_cloud = 2;
  spec.racks_per_cluster = 10;
  spec.nodes_per_rack = 16;
  const Topology topo = build_topology(spec);
  Allocator allocator(topo);
  VmRequest request;
  request.subscription = SubscriptionId(0);
  request.cloud = CloudType::kPublic;
  request.region = RegionId(0);
  request.cores = 4;
  request.memory_gb = 16;
  std::uint32_t next = 0;
  for (auto _ : state) {
    const VmId vm(next++);
    benchmark::DoNotOptimize(allocator.allocate(request, vm));
    allocator.release(vm);
  }
}
BENCHMARK(BM_AllocateRelease);

// --- Thread-scaling sweeps -------------------------------------------------
// One shared scenario for all parallel benchmarks (built once).

const workloads::Scenario& shared_scenario() {
  static const workloads::Scenario scenario = [] {
    workloads::ScenarioOptions options;
    options.scale = 0.1;
    return workloads::make_scenario(options);
  }();
  return scenario;
}

void BM_ClassifyPopulationThreads(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classify_population(
        AnalysisContext(*scenario.trace, ParallelConfig::with_threads(threads)),
        CloudType::kPrivate, 400));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ClassifyPopulationThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_NodeCorrelationsThreads(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::node_vm_correlations(
        AnalysisContext(*scenario.trace, ParallelConfig::with_threads(threads)),
        CloudType::kPrivate, 150));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_NodeCorrelationsThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_UtilizationBandsThreads(benchmark::State& state) {
  const auto& scenario = shared_scenario();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::utilization_distribution(
        AnalysisContext(*scenario.trace, ParallelConfig::with_threads(threads)),
        CloudType::kPublic, 400));
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_UtilizationBandsThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Repeated-analysis suite: columnar panel on vs off ---------------------
// The panel's raison d'être: one characterization run executes many
// analyses over the same VM × tick telemetry. With the panel off, every
// analysis re-derives rows through the shared fill kernel (the pre-panel
// cost model); with it on, the matrix is materialized once and every pass
// reads contiguous rows. Outputs are bit-identical either way.

double repeated_analysis_suite(const TraceStore& trace) {
  const AnalysisContext ctx(trace);
  double acc = 0;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic})
    acc += analysis::classify_population(ctx, cloud, 400).stable;
  acc += static_cast<double>(
      analysis::node_vm_correlations(ctx, CloudType::kPrivate, 150).size());
  acc += analysis::utilization_distribution(ctx, CloudType::kPublic, 400)
             .weekly.p50.front();
  acc += analysis::region_used_cores_hourly(ctx, CloudType::kPrivate,
                                            RegionId(), 400)
             .mean();
  return acc;
}

void BM_RepeatedAnalysesLegacy(benchmark::State& state) {
  TraceStore& trace = *shared_scenario().trace;
  trace.set_telemetry_panel_enabled(false);
  for (auto _ : state)
    benchmark::DoNotOptimize(repeated_analysis_suite(trace));
  trace.set_telemetry_panel_enabled(true);
  state.SetLabel("panel off");
}
BENCHMARK(BM_RepeatedAnalysesLegacy)->Unit(benchmark::kMillisecond);

void BM_RepeatedAnalysesPanel(benchmark::State& state) {
  TraceStore& trace = *shared_scenario().trace;
  trace.set_telemetry_panel_enabled(true);
  trace.telemetry_panel();  // warm the build outside the timed region
  for (auto _ : state)
    benchmark::DoNotOptimize(repeated_analysis_suite(trace));
  state.SetLabel("panel on");
}
BENCHMARK(BM_RepeatedAnalysesPanel)->Unit(benchmark::kMillisecond);

void BM_PanelBuild(benchmark::State& state) {
  // Cost of materializing the columnar cache itself (parallel row fill).
  const auto& scenario = shared_scenario();
  const TraceStore& trace = *scenario.trace;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    TelemetryPanel panel(trace, trace.telemetry_grid(),
                         ParallelConfig::with_threads(threads));
    benchmark::DoNotOptimize(panel.memory_bytes());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_PanelBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GenerationThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  workloads::ScenarioOptions options;
  options.scale = 0.05;
  options.parallel = ParallelConfig::with_threads(threads);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto scenario = workloads::make_scenario(options);
    benchmark::DoNotOptimize(scenario.trace->vms().size());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_GenerationThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cloudlens

BENCHMARK_MAIN();
