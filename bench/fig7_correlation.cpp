// Fig. 7 — spatial utilization similarity:
//   (a) CDFs of Pearson correlation between each VM and its host node
//       (paper medians: 0.55 private vs 0.02 public);
//   (b) CDFs of cross-region utilization correlation per subscription
//       (US regions, ~9 time zones);
//   (c) the ServiceX case study: per-region daily utilization of a
//       region-agnostic service peaks at the same instants everywhere.
//
// Kernel dispatch flags (default strict, bit-identical to scalar):
//   --kernels=scalar|sse2|avx2|auto   SIMD tier for the Pearson kernels
//   --kernel-mode=strict|fast         fast opts this figure's correlation
//                                     sweeps into the SIMD Pearson
//                                     reduction end-to-end (3.9x on the
//                                     kernel; see BENCH_simd.json)
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/kernels/dispatch.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels=", 10) == 0) {
      if (!stats::kernels::set_tier_from_string(argv[i] + 10)) {
        std::printf("invalid --kernels (want scalar|sse2|avx2|auto)\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--kernel-mode=", 14) == 0) {
      if (!stats::kernels::set_mode_from_string(argv[i] + 14)) {
        std::printf("invalid --kernel-mode (want strict|fast)\n");
        return 2;
      }
    }
  }
  const auto kernels = stats::kernels::active();
  std::printf("kernel dispatch: tier=%s mode=%s\n",
              std::string(stats::kernels::to_string(kernels.tier)).c_str(),
              std::string(stats::kernels::to_string(kernels.mode)).c_str());
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  // ---- Fig. 7(a): VM-node correlation CDFs ------------------------------
  bench::banner("Fig. 7(a): CDF of VM-to-host-node utilization correlation");
  const auto priv_corr =
      analysis::node_vm_correlations(AnalysisContext(trace), CloudType::kPrivate, 250);
  const auto pub_corr =
      analysis::node_vm_correlations(AnalysisContext(trace), CloudType::kPublic, 250);
  const stats::Ecdf priv_cdf(priv_corr), pub_cdf(pub_corr);

  std::vector<double> priv_curve, pub_curve;
  for (double x = -1.0; x <= 1.0; x += 0.04) {
    priv_curve.push_back(priv_cdf.at(x));
    pub_curve.push_back(pub_cdf.at(x));
  }
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_max = 1;
  chart.title = "CDF vs correlation (x = -1 .. 1)";
  std::printf("%s", render_lines({{"private", priv_curve},
                                  {"public", pub_curve}},
                                 chart)
                        .c_str());

  const double priv_median = stats::quantile_sorted(priv_corr, 0.5);
  const double pub_median = stats::quantile_sorted(pub_corr, 0.5);
  TextTable t1({"metric", "paper", "measured"});
  t1.row().add("private median VM-node corr").add("0.55").add(priv_median, 3);
  t1.row().add("public median VM-node corr").add("0.02").add(pub_median, 3);
  std::printf("\n%s", t1.to_string().c_str());

  // ---- Fig. 7(b): cross-region correlation CDFs ---------------------------
  bench::banner("Fig. 7(b): CDF of cross-region utilization correlation");
  const auto priv_xr =
      analysis::cross_region_correlations(AnalysisContext(trace), CloudType::kPrivate, 300);
  const auto pub_xr =
      analysis::cross_region_correlations(AnalysisContext(trace), CloudType::kPublic, 300);
  const stats::Ecdf priv_xr_cdf(priv_xr), pub_xr_cdf(pub_xr);
  std::vector<double> priv_xr_curve, pub_xr_curve;
  for (double x = -1.0; x <= 1.0; x += 0.04) {
    priv_xr_curve.push_back(priv_xr_cdf.at(x));
    pub_xr_curve.push_back(pub_xr_cdf.at(x));
  }
  chart.title = "CDF vs cross-region correlation (x = -1 .. 1)";
  std::printf("%s", render_lines({{"private", priv_xr_curve},
                                  {"public", pub_xr_curve}},
                                 chart)
                        .c_str());
  const double priv_xr_median = stats::quantile_sorted(priv_xr, 0.5);
  const double pub_xr_median = stats::quantile_sorted(pub_xr, 0.5);
  std::printf("\nregion pairs: private %zu, public %zu; medians: private "
              "%.3f, public %.3f\n",
              priv_xr.size(), pub_xr.size(), priv_xr_median, pub_xr_median);

  // ---- Fig. 7(c): ServiceX per-region profiles ----------------------------
  bench::banner("Fig. 7(c): 'ServiceX' daily utilization across regions");
  const auto verdicts =
      analysis::detect_region_agnostic_services(AnalysisContext(trace), CloudType::kPrivate);
  // Pick the region-agnostic service spanning the most regions.
  const analysis::RegionAgnosticVerdict* service_x = nullptr;
  for (const auto& v : verdicts) {
    if (!v.region_agnostic) continue;
    if (service_x == nullptr || v.regions > service_x->regions) service_x = &v;
  }
  bench::ShapeChecks checks;
  if (service_x == nullptr) {
    std::printf("no region-agnostic service detected (increase --scale)\n");
    checks.expect(false, "a ServiceX candidate exists");
    return checks.exit_code();
  }

  // Per-region hour-of-day profiles of one of its subscriptions.
  std::vector<std::pair<std::string, std::vector<double>>> profiles;
  for (const auto& sub : trace.subscriptions()) {
    if (sub.service != service_x->service) continue;
    for (const auto& profile :
         analysis::subscription_region_profiles(AnalysisContext(trace), sub.id)) {
      if (profiles.size() >= 4) break;
      profiles.emplace_back(
          trace.topology().region(profile.region).name,
          profile.hourly_utilization.hour_of_day_profile());
    }
    break;
  }
  ChartOptions daily;
  daily.fixed_y_range = true;
  daily.y_max = 0.6;
  daily.height = 12;
  daily.title = "average CPU utilization vs hour of day (sim clock), "
                "one curve per region";
  std::printf("%s", render_lines(profiles, daily).c_str());
  std::printf("\nServiceX = %s: %zu regions, min pairwise corr %.3f "
              "(confirmed geo-load-balanced: aligned peaks despite "
              "different time zones)\n",
              trace.service(service_x->service).name.c_str(),
              service_x->regions, service_x->min_pair_correlation);

  // Peak-hour alignment across regions.
  std::vector<int> peak_hours;
  for (const auto& [_, profile] : profiles) {
    int best = 0;
    for (int h = 1; h < 24; ++h)
      if (profile[h] > profile[best]) best = h;
    peak_hours.push_back(best);
  }
  int max_gap = 0;
  for (std::size_t i = 1; i < peak_hours.size(); ++i) {
    int gap = std::abs(peak_hours[i] - peak_hours[0]);
    gap = std::min(gap, 24 - gap);
    max_gap = std::max(max_gap, gap);
  }

  bench::banner("Shape checks");
  checks.expect(priv_median > 0.35, "private node correlation high");
  checks.expect(pub_median < 0.30, "public node correlation near zero");
  checks.expect(priv_median - pub_median > 0.25,
                "node correlation gap (paper: 0.55 vs 0.02)");
  checks.expect(priv_xr_median > pub_xr_median + 0.2,
                "private cross-region correlation higher (Fig. 7(b))");
  checks.expect(max_gap <= 2,
                "ServiceX peaks aligned across regions (Fig. 7(c))");
  return checks.exit_code();
}
