// Ablation — chance-constrained oversubscription safety-level sweep.
// The paper cites 20%-86% utilization improvement in Azure "depending on
// the level of safety constraint" (ref [17]). Sweeping the safety quantile
// must reproduce that monotone trade-off: lower safety, higher improvement,
// higher violation rate.
#include "bench_common.h"
#include "common/table.h"
#include "policies/oversub.h"
#include "policies/oversub_placement.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  bench::banner(
      "Ablation: oversubscription safety level (public cloud nodes)");
  TextTable t({"safety quantile", "reservation shrink", "util improvement",
               "violation rate", "nodes"});
  std::vector<double> improvements;
  std::vector<double> violations;
  for (const double q : {0.90, 0.95, 0.99, 0.995, 0.999, 1.0}) {
    policies::OversubscriptionOptions options;
    options.safety_quantile = q;
    options.max_nodes = 250;
    const auto report =
        policies::evaluate_oversubscription(trace, CloudType::kPublic, options);
    improvements.push_back(report.utilization_improvement);
    violations.push_back(report.violation_rate);
    t.row()
        .add(q, 3)
        .add(report.reservation_shrink, 3)
        .add(format_double(100 * report.utilization_improvement, 1) + "%")
        .add(report.violation_rate, 4)
        .add(report.nodes_evaluated);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nPaper reference: chance-constrained oversubscription "
              "improved utilization by 20%%-86%%\nin Azure depending on the "
              "safety constraint level [17]. The sweep reproduces the\n"
              "monotone safety/efficiency trade-off; absolute numbers depend "
              "on the workload mix.\n");

  bench::banner("Consolidation: repack VMs by effective (quantile) size");
  TextTable t2({"safety quantile", "baseline nodes", "oversub nodes",
                "nodes saved", "hot interval share", "worst pressure"});
  std::vector<double> saved;
  for (const double q : {0.90, 0.99, 1.0}) {
    policies::OversubPlacementOptions options;
    options.safety_quantile = q;
    const auto placement = policies::simulate_oversubscribed_placement(
        trace, CloudType::kPublic, options);
    saved.push_back(placement.nodes_saved_fraction);
    t2.row()
        .add(q, 3)
        .add(placement.baseline_nodes)
        .add(placement.oversub_nodes)
        .add(placement.nodes_saved_fraction, 3)
        .add(placement.hot_interval_share, 4)
        .add(placement.worst_node_pressure, 2);
  }
  std::printf("%s", t2.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  bool improvement_monotone = true, violation_monotone = true;
  for (std::size_t i = 1; i < improvements.size(); ++i) {
    if (improvements[i] > improvements[i - 1] + 1e-9)
      improvement_monotone = false;
    if (violations[i] > violations[i - 1] + 1e-6) violation_monotone = false;
  }
  checks.expect(improvement_monotone,
                "utilization improvement decreases with stricter safety");
  checks.expect(violation_monotone,
                "violation rate decreases with stricter safety");
  checks.expect(improvements.front() > 0.20,
                "lax safety exceeds +20% improvement (paper's lower bound)");
  checks.expect(violations.back() == 0.0,
                "peak reservation (q=1) never violates");
  checks.expect(saved.front() >= saved.back(),
                "laxer safety consolidates at least as hard");
  checks.expect(saved.front() > 0.3,
                "oversubscribed packing saves a large node fraction");
  return checks.exit_code();
}
