// Ablation — classifier threshold sensitivity (Fig. 5(d)'s method).
// Sweeps the stable-σ cutoff and the periodicity-score thresholds and
// reports classification accuracy against the generator's planted ground
// truth, showing the default operating point sits on a plateau.
#include "analysis/classifier.h"
#include "bench_common.h"
#include "cloudsim/telemetry_panel.h"
#include "common/table.h"
#include "workloads/patterns.h"

using namespace cloudlens;

namespace {

/// Accuracy of `options` against planted labels over covering VMs.
struct Accuracy {
  double overall = 0;
  std::size_t evaluated = 0;
};

Accuracy measure(const TraceStore& trace,
                 const analysis::ClassifierOptions& options,
                 std::size_t max_vms) {
  const TimeGrid& grid = trace.telemetry_grid();
  // The sweep re-classifies the same VMs under 15+ threshold settings;
  // reading the shared panel rows makes each sweep point pay only for the
  // ACF tests, not for re-evaluating every utilization model.
  const TelemetryPanel* panel = trace.telemetry_panel();
  std::vector<double> scratch;
  Accuracy acc;
  std::size_t correct = 0;
  std::size_t seen = 0;
  for (const auto& vm : trace.vms()) {
    if (!vm.covers(grid) || !vm.utilization) continue;
    ++seen;
    if (seen % 7 != 0) continue;  // stride for speed
    const auto truth = workloads::ground_truth_pattern(vm.utilization.get());
    if (!truth) continue;
    const std::span<const double> row =
        vm_telemetry_row(trace, panel, vm.id, grid, scratch);
    const auto predicted = analysis::classify(row, grid, options);
    // PatternType and UtilizationClass share the enum order.
    if (static_cast<int>(predicted) == static_cast<int>(*truth)) ++correct;
    ++acc.evaluated;
    if (acc.evaluated >= max_vms) break;
  }
  if (acc.evaluated)
    acc.overall = double(correct) / double(acc.evaluated);
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  bench::banner("Ablation: stable-sigma threshold sweep");
  TextTable t1({"stable_stddev_max", "accuracy vs planted", "VMs"});
  double best_default = 0;
  for (const double sigma : {0.005, 0.02, 0.045, 0.09, 0.18}) {
    analysis::ClassifierOptions options;
    options.stable_stddev_max = sigma;
    const auto acc = measure(trace, options, 600);
    if (sigma == 0.045) best_default = acc.overall;
    t1.row().add(sigma, 3).add(acc.overall, 3).add(acc.evaluated);
  }
  std::printf("%s", t1.to_string().c_str());

  bench::banner("Ablation: periodicity-score threshold sweep");
  TextTable t2({"diurnal_min", "hourly_min", "accuracy vs planted"});
  for (const double d : {0.1, 0.3, 0.6}) {
    for (const double h : {0.08, 0.18, 0.5}) {
      analysis::ClassifierOptions options;
      options.diurnal_score_min = d;
      options.hourly_score_min = h;
      const auto acc = measure(trace, options, 600);
      t2.row().add(d, 2).add(h, 2).add(acc.overall, 3);
    }
  }
  std::printf("%s", t2.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(best_default > 0.75,
                "default thresholds recover >75% of planted labels");
  {
    // Degenerate thresholds must hurt.
    analysis::ClassifierOptions everything_stable;
    everything_stable.stable_stddev_max = 10.0;
    const auto degenerate = measure(trace, everything_stable, 600);
    checks.expect(degenerate.overall < best_default,
                  "degenerate thresholds underperform the default");
  }
  return checks.exit_code();
}
