// Observability overhead bench: pins the cost of the obs layer on the
// panel-mode repeated-analysis suite (the same workload bench_telemetry
// measures) and checks the seven-subsystem counter coverage contract.
//
// Three configurations of the identical suite:
//
//   disabled       — registry and sink both off: every record call is one
//                    predicted-not-taken branch (the production default);
//   metrics        — MetricsRegistry enabled (lock-free sharded counters,
//                    gauges, histograms);
//   metrics+spans  — registry AND TraceSink enabled (mutex-guarded span
//                    append; spans are per-phase, never per-VM).
//
// Configurations alternate inside each repetition and the best-of-N wall
// time per configuration is compared, so slow-drift noise (thermal, cache
// warm-up, container neighbours) cancels instead of biasing one side. The
// gate: both instrumented configurations stay within --max-overhead-pct
// (default 3%) of disabled. Checksums must be identical across all three —
// enabling observability never perturbs results.
//
// A separate coverage pass runs one instrumented end-to-end workload
// (generate -> panel build -> analysis suite -> kb extraction -> advisor)
// and asserts that every instrumented subsystem prefix (parallel., sim.,
// alloc., panel., gen., analysis., kb., policy.) recorded at least one
// non-zero counter — the schema contract --metrics-out consumers rely on.
//
// Usage: bench_obs [--scale=F] [--seed=N] [--passes=N] [--reps=N]
//                  [--out=PATH] [--max-overhead-pct=F]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "bench_common.h"
#include "cloudsim/telemetry_panel.h"
#include "common/table.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "policies/advisor.h"

using namespace cloudlens;

namespace {

/// The panel-consuming analysis suite of bench_telemetry, expressed against
/// the AnalysisContext API. Returns a value sum so no stage can be dropped.
double analysis_suite(const AnalysisContext& ctx) {
  double acc = 0;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto shares = analysis::classify_population(ctx, cloud, 400);
    acc += shares.diurnal + shares.stable;
  }
  const auto node_rs =
      analysis::node_vm_correlations(ctx, CloudType::kPrivate, 150);
  acc += node_rs.empty() ? 0.0 : node_rs.front();
  const auto bands =
      analysis::utilization_distribution(ctx, CloudType::kPublic, 400);
  acc += bands.weekly.p50.empty() ? 0.0 : bands.weekly.p50.front();
  const auto cross =
      analysis::cross_region_correlations(ctx, CloudType::kPrivate, 150, 25);
  acc += cross.empty() ? 0.0 : cross.front();
  const auto verdicts = analysis::detect_region_agnostic_services(
      ctx, CloudType::kPrivate, 0.7, 25);
  acc += static_cast<double>(verdicts.size());
  acc += analysis::region_used_cores_hourly(ctx, CloudType::kPrivate,
                                            RegionId(), 400)
             .mean();
  return acc;
}

struct Mode {
  const char* name;
  bool metrics;
  bool spans;
  double best_ms = 1e300;
  double checksum = 0;
  bool checksum_set = false;
};

double run_timed(const AnalysisContext& ctx, int passes, double& checksum) {
  checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) checksum += analysis_suite(ctx);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_args(argc, argv);
  args.scale = 0.1;
  int passes = 2;
  int reps = 5;
  double max_overhead_pct = 3.0;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      args.scale = std::atof(argv[i] + 8);
    else if (std::strncmp(argv[i], "--passes=", 9) == 0)
      passes = std::atoi(argv[i] + 9);
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = std::atoi(argv[i] + 7);
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strncmp(argv[i], "--max-overhead-pct=", 19) == 0)
      max_overhead_pct = std::atof(argv[i] + 19);
  }

  // ---------------------------------------------------------------------
  // Coverage pass: one fully instrumented end-to-end workload against the
  // global registry (generation and simulation have no context parameter).
  auto& global = obs::MetricsRegistry::global();
  global.reset();
  global.set_enabled(true);
  const auto scenario = bench::make_bench_scenario(args);
  TraceStore& trace = *scenario.trace;
  trace.set_telemetry_panel_enabled(true);
  trace.telemetry_panel();  // panel.* counters + build histogram
  {
    const AnalysisContext ctx(trace);
    analysis_suite(ctx);  // analysis.* counters
    kb::ExtractorOptions ex;
    ex.max_classified_vms = 3;
    const kb::KnowledgeBase kb(kb::extract_all(ctx, ex));  // kb.*
    policies::advise(trace, kb, CloudType::kPrivate);      // policy.*
  }
  const auto coverage = global.snapshot();
  global.set_enabled(false);

  const std::vector<std::string> prefixes = {
      "parallel.", "sim.", "alloc.", "panel.",
      "gen.",      "analysis.", "kb.", "policy."};
  auto prefix_covered = [&](const std::string& prefix) {
    for (const auto& [name, value] : coverage.counters) {
      if (value > 0 && name.substr(0, prefix.size()) == prefix) return true;
    }
    return false;
  };

  const std::size_t vms = trace.vms().size();
  bench::BenchJson json("obs");
  json.meta()
      .num("scale", args.scale)
      .num("seed", static_cast<double>(args.seed))
      .num("passes", passes)
      .num("reps", reps)
      .num("vms", static_cast<double>(vms))
      .num("max_overhead_pct", max_overhead_pct);

  // ---------------------------------------------------------------------
  // Overhead: best-of-reps per configuration, configurations alternating
  // inside each rep. Private registry/sink instances keep the measurement
  // independent of the global backends.
  obs::MetricsRegistry registry;
  obs::TraceSink sink;

  Mode modes[] = {
      {"disabled", false, false},
      {"metrics", true, false},
      {"metrics+spans", true, true},
  };

  bench::banner("Observability overhead on the panel-mode analysis suite");
  // Warm-up: panel built above; one untimed suite to settle caches.
  {
    const AnalysisContext warm(trace, {}, &registry, &sink);
    analysis_suite(warm);
  }
  for (int rep = 0; rep < reps; ++rep) {
    for (Mode& mode : modes) {
      registry.set_enabled(mode.metrics);
      sink.set_enabled(mode.spans);
      const AnalysisContext ctx(trace, {}, &registry, &sink);
      double checksum = 0;
      const double ms = run_timed(ctx, passes, checksum);
      mode.best_ms = std::min(mode.best_ms, ms);
      if (!mode.checksum_set) {
        mode.checksum = checksum;
        mode.checksum_set = true;
      } else if (mode.checksum != checksum) {
        mode.best_ms = -1;  // within-mode nondeterminism: fail loudly below
      }
      sink.reset();  // bound span memory across reps
    }
  }
  registry.set_enabled(false);
  sink.set_enabled(false);

  const double base = modes[0].best_ms;
  TextTable table({"config", "best wall ms", "overhead %"});
  for (const Mode& mode : modes) {
    const double pct = base > 0 ? 100.0 * (mode.best_ms - base) / base : 0.0;
    table.row().add(mode.name).add(mode.best_ms, 1).add(pct, 2);
    json.record(mode.name).num("best_wall_ms", mode.best_ms).num(
        "overhead_pct", pct);
  }
  std::printf("%s", table.to_string().c_str());

  bench::banner("Counter coverage (instrumented end-to-end run)");
  bool all_covered = true;
  for (const auto& prefix : prefixes) {
    const bool ok = prefix_covered(prefix);
    all_covered = all_covered && ok;
    std::printf("  %-10s %s\n", prefix.c_str(), ok ? "covered" : "MISSING");
    json.record("coverage_" + prefix.substr(0, prefix.size() - 1))
        .num("covered", ok ? 1 : 0);
  }
  json.write(out_path);

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(modes[0].checksum == modes[1].checksum &&
                    modes[0].checksum == modes[2].checksum &&
                    modes[0].best_ms >= 0 && modes[1].best_ms >= 0 &&
                    modes[2].best_ms >= 0,
                "identical checksums with observability off/metrics/full");
  char gate[96];
  const double metrics_pct =
      base > 0 ? 100.0 * (modes[1].best_ms - base) / base : 0.0;
  const double full_pct =
      base > 0 ? 100.0 * (modes[2].best_ms - base) / base : 0.0;
  std::snprintf(gate, sizeof gate, "metrics overhead %.2f%% <= %.1f%%",
                metrics_pct, max_overhead_pct);
  checks.expect(metrics_pct <= max_overhead_pct, gate);
  std::snprintf(gate, sizeof gate, "metrics+spans overhead %.2f%% <= %.1f%%",
                full_pct, max_overhead_pct);
  checks.expect(full_pct <= max_overhead_pct, gate);
  checks.expect(all_covered,
                "all seven instrumented subsystems recorded counters");
  return checks.exit_code();
}
