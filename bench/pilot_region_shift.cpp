// The paper's Azure pilot (Sec. IV-B): shifting the region-agnostic
// Service-X out of an unhealthy region. Paper numbers: the source region's
// underutilized-core percentage dropped from 23% to 16% and its core
// utilization rate from 42% to 37%, while the destination (with ample idle
// capacity) changed only marginally.
#include "bench_common.h"
#include "common/table.h"
#include "policies/rebalance.h"
#include "workloads/patterns.h"

using namespace cloudlens;

namespace {

/// Recreate the pilot's situation: "Canada-A" (region 0) hosts a large,
/// mostly-idle, geo-load-balanced first-party service. The service also
/// runs in region 1 so the region-agnosticism test has a second deployment
/// to compare against (as ServiceX did in the paper).
void inject_service_x(TraceStore& trace, double region_core_fraction) {
  const Topology& topo = trace.topology();
  ServiceInfo svc;
  svc.name = "Service-X";
  svc.cloud = CloudType::kPrivate;
  svc.region_agnostic = true;
  const ServiceId service = trace.add_service(svc);
  SubscriptionInfo sub_info;
  sub_info.cloud = CloudType::kPrivate;
  sub_info.party = PartyType::kFirstParty;
  sub_info.service = service;
  const SubscriptionId sub = trace.add_subscription(sub_info);

  workloads::DiurnalUtilization::Params idle;
  idle.base = 0.01;
  idle.weekday_peak = 0.08;  // mostly idle: mean well under 10%
  idle.weekend_peak = 0.03;
  idle.tz_offset_hours = -5;  // one global anchor (geo load balancer)
  idle.noise_sigma = 0.01;

  std::uint64_t seed = 9000;
  for (const RegionId region : {RegionId(0), RegionId(1)}) {
    const double budget =
        topo.region_total_cores(region, CloudType::kPrivate) *
        (region == RegionId(0) ? region_core_fraction
                               : region_core_fraction / 4);
    const auto clusters = topo.clusters_in(region, CloudType::kPrivate);
    double placed = 0;
    std::size_t node_cursor = 0;
    while (placed < budget) {
      const Cluster& cluster =
          topo.cluster(clusters[node_cursor % clusters.size()]);
      const NodeId node =
          cluster.nodes[(node_cursor / clusters.size()) % cluster.nodes.size()];
      ++node_cursor;
      VmRecord rec;
      rec.subscription = sub;
      rec.service = service;
      rec.cloud = CloudType::kPrivate;
      rec.party = PartyType::kFirstParty;
      rec.region = region;
      rec.cluster = cluster.id;
      rec.rack = topo.node(node).rack;
      rec.node = node;
      rec.cores = 8;
      rec.memory_gb = 32;
      rec.created = -kDay;
      rec.deleted = kNoEnd;
      rec.utilization =
          std::make_shared<workloads::DiurnalUtilization>(idle, seed++);
      placed += rec.cores;
      trace.add_vm(std::move(rec));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto scenario = bench::make_bench_scenario(args);
  // Stage the paper's pilot: a large idle region-agnostic service in
  // region 0 (the paper's "Canada-A"), ~12% of the region's cores.
  inject_service_x(*scenario.trace, 0.12);
  const TraceStore& trace = *scenario.trace;

  bench::banner("Region capacity health (private cloud, all regions)");
  const auto loads = policies::all_region_loads(trace, CloudType::kPrivate);
  TextTable t0({"region", "total cores", "allocated", "core util rate",
                "underutilized core %"});
  for (const auto& load : loads) {
    t0.row()
        .add(trace.topology().region(load.region).name)
        .add(load.total_cores, 0)
        .add(load.allocated_cores, 0)
        .add(load.core_utilization_rate, 3)
        .add(load.underutilized_core_pct, 3);
  }
  std::printf("%s", t0.to_string().c_str());

  bench::banner("Recommendation: shift a region-agnostic service");
  const auto rec = policies::recommend_shift(trace, CloudType::kPrivate);
  bench::ShapeChecks checks;
  if (!rec) {
    std::printf("no shiftable region-agnostic service found\n");
    checks.expect(false, "a shift recommendation exists");
    return checks.exit_code();
  }
  std::printf("move %s (%.0f cores, mean util %.3f) from %s to %s\n",
              trace.service(rec->service).name.c_str(), rec->cores_moved,
              rec->service_mean_utilization,
              trace.topology().region(rec->from).name.c_str(),
              trace.topology().region(rec->to).name.c_str());

  const auto outcome =
      policies::evaluate_shift(trace, CloudType::kPrivate, *rec);

  bench::banner("What-if outcome (paper vs measured)");
  TextTable t({"metric", "paper (Canada pilot)", "measured"});
  auto pct = [](double v) { return format_double(100 * v, 1) + "%"; };
  t.row()
      .add("source underutilized cores: before -> after")
      .add("23% -> 16%")
      .add(pct(outcome.source_before.underutilized_core_pct) + " -> " +
           pct(outcome.source_after.underutilized_core_pct));
  t.row()
      .add("source core utilization rate: before -> after")
      .add("42% -> 37%")
      .add(pct(outcome.source_before.core_utilization_rate) + " -> " +
           pct(outcome.source_after.core_utilization_rate));
  t.row()
      .add("destination core utilization rate: before -> after")
      .add("minor change (idle capacity)")
      .add(pct(outcome.dest_before.core_utilization_rate) + " -> " +
           pct(outcome.dest_after.core_utilization_rate));
  std::printf("%s", t.to_string().c_str());

  bench::banner("Shape checks");
  checks.expect(outcome.source_after.underutilized_core_pct <
                    outcome.source_before.underutilized_core_pct,
                "source underutilized-core share drops");
  checks.expect(outcome.source_after.core_utilization_rate <
                    outcome.source_before.core_utilization_rate,
                "source core utilization rate drops");
  const double dest_delta = outcome.dest_after.core_utilization_rate -
                            outcome.dest_before.core_utilization_rate;
  checks.expect(dest_delta >= 0 && dest_delta < 0.25,
                "destination absorbs the move with bounded change");
  const double cores_before = outcome.source_before.allocated_cores +
                              outcome.dest_before.allocated_cores;
  const double cores_after = outcome.source_after.allocated_cores +
                             outcome.dest_after.allocated_cores;
  checks.expect(std::abs(cores_before - cores_after) < 1e-6,
                "allocated cores conserved across the pair");
  return checks.exit_code();
}
