// Policy bench — lifetime-aware node evacuation (the paper's introductory
// motivating example: migrate out only VMs with long remaining time when a
// node shows unhealthy signals).
//
// Compares the knowledge-aware plan against the migrate-everything baseline
// on both clouds. With the public cloud's 81%-short-lived churn the plan
// should skip most migrations; the private cloud's longer lifetimes leave
// less to save.
#include "analysis/lifetime_predictor.h"
#include "bench_common.h"
#include "cloudsim/simulator.h"
#include "common/table.h"
#include "policies/migration.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

/// Rebuild the scenario's request streams deterministically (same seed as
/// make_scenario) and replay them with the given outages.
struct Replay {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  SimulationStats stats;
};

Replay replay_with_outages(const bench::BenchArgs& args,
                           const std::vector<NodeOutage>& outages,
                           const FailurePolicy& policy) {
  Replay r;
  r.topology =
      std::make_unique<Topology>(build_topology(default_topology_spec()));
  r.trace = std::make_unique<TraceStore>(r.topology.get());
  workloads::WorkloadGenerator generator(*r.topology, args.seed);
  const auto priv = workloads::CloudProfile::azure_private().scaled(args.scale);
  const auto pub = workloads::CloudProfile::azure_public().scaled(args.scale);
  auto requests = generator.generate(priv, *r.trace);
  auto pub_requests = generator.generate(pub, *r.trace);
  requests.insert(requests.end(),
                  std::make_move_iterator(pub_requests.begin()),
                  std::make_move_iterator(pub_requests.end()));
  r.stats = run_simulation(*r.topology, *r.trace, std::move(requests), {},
                           outages, policy);
  return r;
}

policies::EvacuationEvaluation run_cloud(const TraceStore& trace,
                                         CloudType cloud) {
  const auto predictor = analysis::LifetimePredictor::fit(trace, cloud);
  policies::EvacuationOptions options;
  options.now = 2 * kDay + 10 * kHour;
  return policies::evaluate_fleet_evacuation(trace, predictor, cloud,
                                             /*max_nodes=*/400, options);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  bench::banner("Lifetime-aware node evacuation vs naive baseline");
  const auto priv = run_cloud(trace, CloudType::kPrivate);
  const auto pub = run_cloud(trace, CloudType::kPublic);

  TextTable t({"metric", "private", "public"});
  t.row().add("alive VMs on evacuated nodes").add(priv.alive_vms).add(
      pub.alive_vms);
  t.row()
      .add("baseline migrations (naive)")
      .add(priv.baseline_migrations)
      .add(pub.baseline_migrations);
  t.row()
      .add("planned migrations (knowledge)")
      .add(priv.planned_migrations)
      .add(pub.planned_migrations);
  auto saved_share = [](const policies::EvacuationEvaluation& e) {
    return e.baseline_migrations == 0
               ? 0.0
               : 1.0 - double(e.planned_migrations) /
                           double(e.baseline_migrations);
  };
  t.row()
      .add("migrations avoided")
      .add(saved_share(priv), 3)
      .add(saved_share(pub), 3);
  t.row()
      .add("wasted migrations (VM died anyway)")
      .add(priv.wasted_migrations)
      .add(pub.wasted_migrations);
  t.row()
      .add("exposed VMs (drained but survived)")
      .add(priv.exposed_vms)
      .add(pub.exposed_vms);
  std::printf("%s", t.to_string().c_str());

  auto exposure_rate = [](const policies::EvacuationEvaluation& e) {
    const auto drained = e.baseline_migrations - e.planned_migrations;
    return drained == 0 ? 0.0 : double(e.exposed_vms) / double(drained);
  };
  std::printf("\nexposure among drained VMs: private %.3f, public %.3f\n",
              exposure_rate(priv), exposure_rate(pub));

  // Where the knowledge pays off: the young-VM slice. A node's standing
  // population is long-lived in both clouds (it must be migrated either
  // way); the churn slice is where draining saves migrations — and the
  // public cloud's churn is 81% short-lived.
  const SimTime now = 2 * kDay + 10 * kHour;
  std::size_t young_pub = 0, young_pub_short = 0;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != CloudType::kPublic || !vm.alive_at(now)) continue;
    if (now - vm.created > 2 * kHour) continue;
    ++young_pub;
    if (vm.deleted <= now + 2 * kHour) ++young_pub_short;
  }
  std::printf("young public VMs (age < 2h) alive at the signal: %zu, of "
              "which %zu (%.0f%%) end within the grace window — the slice "
              "lifetime knowledge lets the platform drain instead of "
              "migrate.\n",
              young_pub, young_pub_short,
              young_pub ? 100.0 * double(young_pub_short) / double(young_pub)
                        : 0.0);

  // ---- End-to-end outage replay -----------------------------------------
  bench::banner("End-to-end outage replay (simulator failure injection)");
  // Fail 20 private nodes mid-week, with and without platform recovery.
  std::vector<NodeOutage> outages;
  const SimTime outage_time = 2 * kDay + 10 * kHour;
  for (const auto& node : trace.topology().nodes()) {
    if (node.cloud != CloudType::kPrivate) continue;
    if (!trace.vms_on_node(node.id).empty()) {
      outages.push_back({node.id, outage_time});
      if (outages.size() >= 20) break;
    }
  }
  FailurePolicy with_recovery;
  FailurePolicy no_recovery;
  no_recovery.resubmit = false;
  const auto recovered = replay_with_outages(args, outages, with_recovery);
  const auto abandoned = replay_with_outages(args, outages, no_recovery);

  TextTable t2({"metric", "with recovery", "no recovery"});
  t2.row()
      .add("VMs killed by the outages")
      .add(recovered.stats.vms_failed)
      .add(abandoned.stats.vms_failed);
  t2.row()
      .add("resubmissions issued")
      .add(recovered.stats.vms_resubmitted)
      .add(abandoned.stats.vms_resubmitted);
  t2.row()
      .add("allocation failures")
      .add(recovered.stats.allocation_failures)
      .add(abandoned.stats.allocation_failures);
  std::printf("%s", t2.to_string().c_str());
  std::printf("(recovery delay %lld min; identical workload stream replayed "
              "under both policies)\n",
              (long long)(with_recovery.recovery_delay / kMinute));

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(priv.alive_vms > 0 && pub.alive_vms > 0,
                "both clouds have populated nodes");
  checks.expect(recovered.stats.vms_failed == abandoned.stats.vms_failed,
                "identical failure footprint under both policies");
  checks.expect(recovered.stats.vms_failed > 0, "outages killed VMs");
  checks.expect(recovered.stats.vms_resubmitted > 0 &&
                    recovered.stats.vms_resubmitted <=
                        recovered.stats.vms_failed,
                "recovery resubmits a subset of killed VMs");
  checks.expect(
      priv.planned_migrations <= priv.baseline_migrations &&
          pub.planned_migrations <= pub.baseline_migrations,
      "the plan never migrates more than the baseline");
  checks.expect(exposure_rate(pub) < 0.5,
                "most drained public VMs really ended before the failure");
  return checks.exit_code();
}
