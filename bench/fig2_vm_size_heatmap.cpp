// Fig. 2 — heatmaps of per-VM core and memory size, private vs public.
//
// Paper: the central mass of VM shapes is similar in both clouds, but the
// public-cloud distribution extends into the top-right (large VMs) and
// bottom-left (tiny burstable VMs) corners.
#include "analysis/context.h"
#include "analysis/deployment.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"

using namespace cloudlens;

namespace {

/// Fraction of VM mass in the extreme corners of the shape space.
struct CornerMass {
  double bottom_left = 0;  // <= 1 core and < 2 GB
  double top_right = 0;    // >= 32 cores or >= 256 GB
};

CornerMass corner_mass(const TraceStore& trace, CloudType cloud,
                       SimTime snapshot) {
  CornerMass mass;
  std::size_t total = 0;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.alive_at(snapshot)) continue;
    ++total;
    if (vm.cores <= 1 && vm.memory_gb < 2) mass.bottom_left += 1;
    if (vm.cores >= 32 || vm.memory_gb >= 256) mass.top_right += 1;
  }
  if (total > 0) {
    mass.bottom_left /= double(total);
    mass.top_right /= double(total);
  }
  return mass;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;
  const SimTime snapshot = analysis::kDefaultSnapshot;

  bench::banner("Fig. 2: core x memory heatmaps (log-binned, normalized)");
  const auto priv =
      analysis::vm_size_heatmap(AnalysisContext(trace), CloudType::kPrivate, snapshot);
  const auto pub =
      analysis::vm_size_heatmap(AnalysisContext(trace), CloudType::kPublic, snapshot);

  std::printf("%s\n", render_heatmap(priv.normalized_grid(),
                                     "(a) private cloud", "cores (log)",
                                     "memory GB (log)")
                          .c_str());
  std::printf("%s\n", render_heatmap(pub.normalized_grid(),
                                     "(b) public cloud", "cores (log)",
                                     "memory GB (log)")
                          .c_str());

  const auto priv_mass = corner_mass(trace, CloudType::kPrivate, snapshot);
  const auto pub_mass = corner_mass(trace, CloudType::kPublic, snapshot);

  auto occupied = [](const stats::Histogram2D& h) {
    std::size_t n = 0;
    for (std::size_t y = 0; y < h.y_axis().bins(); ++y)
      for (std::size_t x = 0; x < h.x_axis().bins(); ++x)
        if (h.weight_at(x, y) > 0) ++n;
    return n;
  };

  TextTable t({"metric", "private", "public"});
  t.row().add("VMs at snapshot").add(priv.total_count()).add(pub.total_count());
  t.row()
      .add("occupied heatmap cells")
      .add(occupied(priv))
      .add(occupied(pub));
  t.row()
      .add("bottom-left corner share (tiny VMs)")
      .add(priv_mass.bottom_left, 4)
      .add(pub_mass.bottom_left, 4);
  t.row()
      .add("top-right corner share (huge VMs)")
      .add(priv_mass.top_right, 4)
      .add(pub_mass.top_right, 4);
  std::printf("%s", t.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(occupied(pub) > occupied(priv),
                "public shape space wider than private");
  checks.expect(pub_mass.bottom_left > priv_mass.bottom_left,
                "public extends into the bottom-left (tiny) corner");
  checks.expect(pub_mass.top_right > priv_mass.top_right,
                "public extends into the top-right (huge) corner");
  return checks.exit_code();
}
