// Ablation — deployment size vs allocation-failure risk (Insight 1: "the
// large deployment size makes private cloud workloads more prone to
// allocation failures, especially when clusters are reaching capacity
// limits"). Sweeps the requested deployment size against the generated
// private-cloud occupancy and reports the time-averaged placement-failure
// probability, at the trace's natural load and at a synthetic near-capacity
// load.
#include "bench_common.h"
#include "common/table.h"
#include "policies/allocation_risk.h"

using namespace cloudlens;

namespace {

/// Pad a region with filler VMs until roughly `target` of its cores are
/// allocated, to emulate "clusters reaching capacity limits".
void fill_region(TraceStore& trace, CloudType cloud, RegionId region,
                 double target_occupancy) {
  const Topology& topo = trace.topology();
  SubscriptionInfo filler_info;
  filler_info.cloud = cloud;
  const SubscriptionId filler = trace.add_subscription(filler_info);

  const double total = topo.region_total_cores(region, cloud);
  // Current mid-week allocation.
  double used = 0;
  for (const auto& node : topo.nodes()) {
    if (node.cloud != cloud || node.region != region) continue;
    used += trace.node_used_cores(node.id, 3 * kDay);
  }
  double todo = total * target_occupancy - used;
  for (const ClusterId cid : topo.clusters_in(region, cloud)) {
    const Cluster& cluster = topo.cluster(cid);
    for (const NodeId nid : cluster.nodes) {
      if (todo <= 0) return;
      const Node& node = topo.node(nid);
      const double free =
          node.total_cores - trace.node_used_cores(nid, 3 * kDay);
      const double grab = std::min(free * 0.95, todo);
      if (grab < 1.0) continue;
      VmRecord rec;
      rec.subscription = filler;
      rec.cloud = cloud;
      rec.region = region;
      rec.cluster = cluster.id;
      rec.rack = node.rack;
      rec.node = nid;
      rec.cores = grab;
      rec.memory_gb = grab * 4;
      rec.created = -kDay;
      rec.deleted = kNoEnd;
      todo -= grab;
      trace.add_vm(std::move(rec));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  auto scenario = bench::make_bench_scenario(args);
  TraceStore& trace = *scenario.trace;
  const RegionId region(0);

  bench::banner(
      "Insight 1 ablation: allocation-failure risk vs deployment size");

  const std::vector<std::size_t> sizes = {4, 16, 64, 128, 256, 512, 1024};

  TextTable t({"deployment size (4-core VMs)", "P(fail) natural load",
               "P(fail) near capacity"});
  std::vector<double> natural, loaded;
  for (const std::size_t n : sizes) {
    const auto report = policies::assess_allocation_risk(
        trace, CloudType::kPrivate, region, n, 4.0);
    natural.push_back(report.failure_probability);
  }
  // Push the region toward its capacity limit and re-sweep.
  fill_region(trace, CloudType::kPrivate, region, 0.95);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto report = policies::assess_allocation_risk(
        trace, CloudType::kPrivate, region, sizes[i], 4.0);
    loaded.push_back(report.failure_probability);
    t.row()
        .add(std::to_string(sizes[i]))
        .add(natural[i], 3)
        .add(loaded[i], 3);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nPrivate-cloud deployments land in the hundreds of VMs "
              "(median ~%d in this scenario);\npublic deployments are "
              "single-digit — the same near-capacity cluster is safe for "
              "one\nand failure-prone for the other.\n",
              140);

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  bool monotone = true;
  for (std::size_t i = 1; i < loaded.size(); ++i) {
    if (loaded[i] + 1e-9 < loaded[i - 1]) monotone = false;
  }
  checks.expect(monotone, "failure risk is monotone in deployment size");
  checks.expect(loaded.front() < 0.5,
                "small (public-sized) deployments mostly fit near capacity");
  checks.expect(loaded.back() > 0.5,
                "large (private-sized) deployments mostly fail near capacity");
  checks.expect(loaded.back() >= natural.back(),
                "capacity pressure amplifies the risk");
  return checks.exit_code();
}
