// Ablation — the burst model is what separates the clouds in Fig. 3(c,d).
// Disabling the private profile's bursty churn must collapse its
// cross-region creation CV to (or below) the public cloud's level,
// demonstrating the bursts are the causal ingredient, not a side effect.
#include "analysis/context.h"
#include "analysis/temporal.h"
#include "bench_common.h"
#include "common/table.h"
#include "stats/descriptive.h"

using namespace cloudlens;

namespace {

double median_cv(const TraceStore& trace, CloudType cloud) {
  const auto cvs = analysis::creation_cv_by_region(AnalysisContext(trace), cloud);
  return cvs.empty() ? 0.0 : stats::quantile(cvs, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  bench::banner("Ablation: private-cloud burst model on vs off");

  workloads::ScenarioOptions with_bursts;
  with_bursts.scale = args.scale;
  with_bursts.seed = args.seed;
  const auto baseline = workloads::make_scenario(with_bursts);

  workloads::ScenarioOptions without_bursts = with_bursts;
  without_bursts.private_profile.burst_churn.bursts_per_week = 0.0;
  const auto ablated = workloads::make_scenario(without_bursts);

  const double priv_on = median_cv(*baseline.trace, CloudType::kPrivate);
  const double pub_on = median_cv(*baseline.trace, CloudType::kPublic);
  const double priv_off = median_cv(*ablated.trace, CloudType::kPrivate);
  const double pub_off = median_cv(*ablated.trace, CloudType::kPublic);

  TextTable t({"configuration", "private median CV", "public median CV"});
  t.row().add("bursts on (paper setting)").add(priv_on, 3).add(pub_on, 3);
  t.row().add("bursts off (ablated)").add(priv_off, 3).add(pub_off, 3);
  std::printf("%s", t.to_string().c_str());
  std::printf("\nInterpretation: with bursts removed, the private cloud's "
              "creation process is\na mild diurnal profile and its "
              "burstiness advantage over the public cloud vanishes.\n");

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(priv_on > 1.3 * pub_on,
                "baseline reproduces Fig. 3(d): private CV >> public");
  checks.expect(priv_off < 0.6 * priv_on,
                "removing bursts collapses the private CV");
  checks.expect(priv_off < pub_off * 1.3,
                "ablated private CV lands at/below the public level");
  return checks.exit_code();
}
