// Ablation — region-agnostic detector calibration (Insight 4's method).
// Sweeps the fraction of geo-load-balanced services planted by the
// generator and checks that the detected region-agnostic share tracks it,
// including the endpoints (0 planted -> ~0 detected; all planted -> most
// detected). This is the detector's calibration curve — the evidence that
// the utilization-similarity test measures the design property and not an
// artifact of the workload mix.
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "bench_common.h"
#include "common/table.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

struct Point {
  double planted = 0;
  double detected_share = 0;
  double detector_accuracy = 0;
  std::size_t services_judged = 0;
};

Point run_point(const bench::BenchArgs& args, double agnostic_prob) {
  workloads::ScenarioOptions options;
  options.scale = args.scale;
  options.seed = args.seed;
  options.private_profile.region_agnostic_prob = agnostic_prob;
  const auto scenario = workloads::make_scenario(options);

  Point p;
  p.planted = agnostic_prob;
  const auto verdicts = analysis::detect_region_agnostic_services(AnalysisContext(*scenario.trace), CloudType::kPrivate, 0.7);
  std::size_t agnostic = 0, correct = 0;
  for (const auto& v : verdicts) {
    if (v.region_agnostic) ++agnostic;
    if (scenario.trace->service(v.service).region_agnostic ==
        v.region_agnostic)
      ++correct;
  }
  p.services_judged = verdicts.size();
  if (!verdicts.empty()) {
    p.detected_share = double(agnostic) / double(verdicts.size());
    p.detector_accuracy = double(correct) / double(verdicts.size());
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  bench::banner(
      "Ablation: planted region-agnostic share vs detected share");
  TextTable t({"planted share", "detected share", "detector accuracy",
               "multi-region services judged"});
  std::vector<Point> points;
  for (const double prob : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto p = run_point(args, prob);
    points.push_back(p);
    t.row()
        .add(p.planted, 2)
        .add(p.detected_share, 2)
        .add(p.detector_accuracy, 2)
        .add(p.services_judged);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nDetection = minimum pairwise cross-region utilization "
              "correlation >= 0.7 over the\nservice's region-level average "
              "utilization (Sec. IV-B's similarity test).\n");

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  bool monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].detected_share + 0.10 < points[i - 1].detected_share)
      monotone = false;
  }
  checks.expect(monotone, "detected share tracks the planted share");
  checks.expect(points.front().detected_share < 0.25,
                "near-zero detections with nothing planted");
  checks.expect(points.back().detected_share > 0.75,
                "near-complete detection with everything planted");
  double worst_accuracy = 1.0;
  for (const auto& p : points)
    worst_accuracy = std::min(worst_accuracy, p.detector_accuracy);
  checks.expect(worst_accuracy > 0.7,
                "detector agrees with ground truth at every sweep point");
  return checks.exit_code();
}
