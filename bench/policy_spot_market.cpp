// Policy bench — the spot capacity market on the generated public cloud
// (Sec. III-B implication: adopt spot VMs for short-lived workloads to
// improve platform utilization, "especially during valley hours"; refs
// [15] eviction prediction and [16] Snape spot/on-demand mixture).
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "policies/spot_market.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  policies::SpotMarketOptions options;
  options.region = RegionId(0);
  options.jobs_per_hour = 60;
  options.job_cores = 4;
  options.job_duration = 4 * kHour;
  options.seed = args.seed;

  bench::banner("Spot market simulation (public cloud, one region)");
  const auto report = policies::simulate_spot_market(trace, options);

  TextTable t({"metric", "value"});
  t.row().add("spot jobs submitted").add(report.jobs_submitted);
  t.row().add("completed").add(report.jobs_completed);
  t.row().add("evicted").add(report.jobs_evicted);
  t.row().add("rejected at submission").add(report.jobs_rejected);
  t.row().add("eviction rate").add(report.eviction_rate, 4);
  t.row().add("spot core-hours served").add(report.spot_core_hours, 0);
  t.row().add("valley share of spot core-hours").add(report.valley_share, 3);
  t.row()
      .add("region utilization without spot")
      .add(report.utilization_before, 3);
  t.row()
      .add("region utilization with spot")
      .add(report.utilization_with_spot, 3);
  std::printf("%s", t.to_string().c_str());

  ChartOptions chart;
  chart.height = 10;
  chart.title = "\ncores over the week: spare capacity vs spot usage";
  std::printf("%s",
              render_lines({{"free", {report.free_cores.values().begin(),
                                      report.free_cores.values().end()}},
                            {"spot", {report.spot_cores.values().begin(),
                                      report.spot_cores.values().end()}}},
                           chart)
                  .c_str());

  bench::banner("Learned eviction risk by submission hour (ref [15])");
  std::vector<std::pair<std::string, double>> bars;
  for (int h = 0; h < 24; h += 2)
    bars.emplace_back("h" + std::to_string(h),
                      report.eviction_risk_by_hour[h]);
  std::printf("%s", render_bars(bars, 40).c_str());

  bench::banner("Snape-style mixture policy (ref [16])");
  const auto cmp = policies::compare_mixture_policy(trace, options, 0.10);
  TextTable t2({"policy", "normalized cost", "completion"});
  t2.row().add("all on-demand").add(cmp.all_ondemand_cost, 0).add("1.000");
  t2.row()
      .add("all spot")
      .add(cmp.all_spot_cost, 0)
      .add(cmp.all_spot_completion, 3);
  t2.row()
      .add("risk-aware mixture")
      .add(cmp.mixture_cost, 0)
      .add(cmp.mixture_completion, 3);
  std::printf("%s", t2.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(report.utilization_with_spot > report.utilization_before,
                "spot adoption lifts platform utilization");
  checks.expect(cmp.mixture_cost < cmp.all_ondemand_cost,
                "mixture is cheaper than all on-demand");
  checks.expect(cmp.mixture_completion >= cmp.all_spot_completion,
                "mixture completes at least as much as all-spot");
  checks.expect(report.eviction_rate < 0.5,
                "most admitted spot jobs survive");
  return checks.exit_code();
}
