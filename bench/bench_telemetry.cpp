// Telemetry-panel throughput bench.
//
// Measures the repeated-analysis workload the panel was built for: every
// paper figure consumes the same VM × tick utilization matrix, so one
// characterization run evaluates each VM's week many times. The bench runs
// the full analysis suite (pattern shares for both clouds, node/VM
// correlations, utilization bands, cross-region correlations,
// region-agnostic detection, used-cores roll-up) twice per configuration:
//
//   per-tick — the pre-PR cost model: panel disabled AND every model
//              evaluated through the per-tick virtual at() loop (models are
//              wrapped so their batched sample() overrides can't kick in);
//   batched  — panel disabled: rows re-derived on demand, but through the
//              hoisted batch samplers (this PR's fill kernel, uncached);
//   panel    — panel enabled: the columnar cache is materialized once,
//              every later pass reads contiguous rows.
//
// Results are bit-identical in all three (see parallel_equivalence_test);
// only wall-clock and memory move. Emits BENCH_telemetry.json with wall-ms,
// peak-RSS, and VM-weeks/s per configuration for CI and EXPERIMENTS.md.
//
// Usage: bench_telemetry [--scale=F] [--seed=N] [--passes=N] [--out=PATH]
//                        [--min-speedup=F]
//
// --min-speedup sets the shape-check gate on the panel-vs-per-tick
// speedup (default 5.0). CI's smoke run lowers it: on a tiny trace the
// fixed analysis overheads dominate and the full ratio is meaningless,
// but checksum identity and panel coverage must still hold.
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "bench_common.h"
#include "cloudsim/telemetry_panel.h"
#include "common/table.h"

using namespace cloudlens;

namespace {

/// One full characterization pass: the panel-consuming analyses a figure
/// reproduction run executes back to back. Returns a value sum so the
/// compiler cannot drop any stage.
double analysis_suite(const TraceStore& trace) {
  double acc = 0;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto shares = analysis::classify_population(AnalysisContext(trace), cloud, 400);
    acc += shares.diurnal + shares.stable;
  }
  const auto node_rs =
      analysis::node_vm_correlations(AnalysisContext(trace), CloudType::kPrivate, 150);
  acc += node_rs.empty() ? 0.0 : node_rs.front();
  const auto bands =
      analysis::utilization_distribution(AnalysisContext(trace), CloudType::kPublic, 400);
  acc += bands.weekly.p50.empty() ? 0.0 : bands.weekly.p50.front();
  const auto cross =
      analysis::cross_region_correlations(AnalysisContext(trace), CloudType::kPrivate, 150, 25);
  acc += cross.empty() ? 0.0 : cross.front();
  const auto verdicts = analysis::detect_region_agnostic_services(AnalysisContext(trace), CloudType::kPrivate, 0.7, 25);
  acc += static_cast<double>(verdicts.size());
  acc += analysis::region_used_cores_hourly(AnalysisContext(trace), CloudType::kPrivate,
                                            RegionId(), 400)
             .mean();
  return acc;
}

struct Measurement {
  double wall_ms = 0;
  double checksum = 0;
};

/// Forwards at() but deliberately does NOT override sample(), so row fills
/// run the base per-tick virtual loop — the pre-PR evaluation cost.
class PerTickModel final : public UtilizationModel {
 public:
  explicit PerTickModel(std::shared_ptr<const UtilizationModel> inner)
      : inner_(std::move(inner)) {}
  double at(SimTime t) const override { return inner_->at(t); }
  std::string_view kind() const override { return inner_->kind(); }

 private:
  std::shared_ptr<const UtilizationModel> inner_;
};

/// Clone of `trace` (same topology, subscriptions, VM records and ids) with
/// every utilization model wrapped in PerTickModel and the panel disabled:
/// the faithful "before this optimization" trace.
std::unique_ptr<TraceStore> per_tick_clone(const TraceStore& trace) {
  auto clone = std::make_unique<TraceStore>(&trace.topology(),
                                            trace.telemetry_grid());
  for (const auto& svc : trace.services()) clone->add_service(svc);
  for (const auto& sub : trace.subscriptions()) clone->add_subscription(sub);
  for (VmRecord rec : trace.vms()) {  // intentional copy per record
    if (rec.utilization)
      rec.utilization = std::make_shared<PerTickModel>(rec.utilization);
    clone->add_vm(std::move(rec));
  }
  clone->set_telemetry_panel_enabled(false);
  return clone;
}

Measurement run_passes(const TraceStore& trace, int passes) {
  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) m.checksum += analysis_suite(trace);
  m.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_args(argc, argv);
  args.scale = 0.1;  // repeated-analysis default; override with --scale=
  int passes = 3;
  double min_speedup = 5.0;
  std::string out_path = "BENCH_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      args.scale = std::atof(argv[i] + 8);
    else if (std::strncmp(argv[i], "--passes=", 9) == 0)
      passes = std::atoi(argv[i] + 9);
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
    else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0)
      min_speedup = std::atof(argv[i] + 14);
  }

  const auto scenario = bench::make_bench_scenario(args);
  TraceStore& trace = *scenario.trace;
  const std::size_t vms = trace.vms().size();

  bench::BenchJson json("telemetry");
  json.meta()
      .num("scale", args.scale)
      .num("seed", static_cast<double>(args.seed))
      .num("passes", passes)
      .num("vms", static_cast<double>(vms));

  bench::banner("Repeated-analysis suite: per-tick baseline (pre-PR)");
  Measurement baseline;
  double baseline_rss = 0;
  {
    const auto before = per_tick_clone(trace);
    baseline = run_passes(*before, passes);
    baseline_rss = bench::peak_rss_mib();
  }
  const double baseline_vm_weeks_s =
      1000.0 * static_cast<double>(vms) * passes / baseline.wall_ms;
  std::printf("  %.1f ms for %d passes (%.0f VM-weeks/s)\n", baseline.wall_ms,
              passes, baseline_vm_weeks_s);
  json.record("repeated_analyses_per_tick_baseline")
      .num("wall_ms", baseline.wall_ms)
      .num("peak_rss_mib", baseline_rss)
      .num("vm_weeks_per_s", baseline_vm_weeks_s);

  bench::banner("Repeated-analysis suite: batched samplers (panel off)");
  trace.set_telemetry_panel_enabled(false);
  const auto legacy = run_passes(trace, passes);
  const double legacy_rss = bench::peak_rss_mib();
  const double legacy_vm_weeks_s =
      1000.0 * static_cast<double>(vms) * passes / legacy.wall_ms;
  std::printf("  %.1f ms for %d passes (%.0f VM-weeks/s)\n", legacy.wall_ms,
              passes, legacy_vm_weeks_s);
  json.record("repeated_analyses_batched_no_panel")
      .num("wall_ms", legacy.wall_ms)
      .num("peak_rss_mib", legacy_rss)
      .num("vm_weeks_per_s", legacy_vm_weeks_s);

  bench::banner("Repeated-analysis suite: columnar panel");
  trace.set_telemetry_panel_enabled(true);
  // Time the build separately so the JSON shows where the first pass goes.
  const auto build_start = std::chrono::steady_clock::now();
  const TelemetryPanel* panel = trace.telemetry_panel();
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - build_start)
                              .count();
  const double panel_mib =
      panel ? static_cast<double>(panel->memory_bytes()) / (1024.0 * 1024.0)
            : 0.0;
  const auto with_panel = run_passes(trace, passes);
  const double panel_rss = bench::peak_rss_mib();
  const double panel_vm_weeks_s =
      1000.0 * static_cast<double>(vms) * passes / with_panel.wall_ms;
  std::printf(
      "  build %.1f ms (%.1f MiB), %.1f ms for %d passes (%.0f VM-weeks/s)\n",
      build_ms, panel_mib, with_panel.wall_ms, passes, panel_vm_weeks_s);
  json.record("repeated_analyses_panel")
      .num("wall_ms", with_panel.wall_ms)
      .num("panel_build_ms", build_ms)
      .num("panel_mib", panel_mib)
      .num("peak_rss_mib", panel_rss)
      .num("vm_weeks_per_s", panel_vm_weeks_s);

  const double speedup =
      with_panel.wall_ms > 0 ? baseline.wall_ms / with_panel.wall_ms : 0.0;
  const double speedup_incl_build =
      baseline.wall_ms / (with_panel.wall_ms + build_ms);
  const double batched_speedup =
      legacy.wall_ms > 0 ? baseline.wall_ms / legacy.wall_ms : 0.0;
  json.record("summary")
      .num("speedup_vs_per_tick", speedup)
      .num("speedup_vs_per_tick_incl_build", speedup_incl_build)
      .num("batched_speedup_vs_per_tick", batched_speedup)
      .num("panel_speedup_vs_batched",
           with_panel.wall_ms > 0 ? legacy.wall_ms / with_panel.wall_ms
                                  : 0.0);

  bench::banner("Summary");
  TextTable table({"config", "wall ms", "VM-weeks/s", "peak RSS MiB"});
  table.row()
      .add("per-tick baseline (pre-PR)")
      .add(baseline.wall_ms, 1)
      .add(baseline_vm_weeks_s, 0)
      .add(baseline_rss, 1);
  table.row()
      .add("batched samplers, no panel")
      .add(legacy.wall_ms, 1)
      .add(legacy_vm_weeks_s, 0)
      .add(legacy_rss, 1);
  table.row()
      .add("columnar panel")
      .add(with_panel.wall_ms, 1)
      .add(panel_vm_weeks_s, 0)
      .add(panel_rss, 1);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "  panel vs per-tick baseline: %.1fx (%.1fx including the one-time "
      "build); batched-only: %.1fx\n",
      speedup, speedup_incl_build, batched_speedup);
  json.write(out_path);

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(with_panel.checksum == legacy.checksum &&
                    with_panel.checksum == baseline.checksum,
                "all three configurations produce identical checksums");
  char gate[96];
  std::snprintf(gate, sizeof gate,
                "panel gives >= %.1fx repeated-analysis speedup over the "
                "per-tick baseline",
                min_speedup);
  checks.expect(speedup >= min_speedup, gate);
  checks.expect(panel != nullptr && panel->vm_count() == vms,
                "panel covers every VM");
  return checks.exit_code();
}
