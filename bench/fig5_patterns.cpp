// Fig. 5 — typical utilization patterns and their population shares:
//   (a) a diurnal sample (weekday peak ~60%, weekend ~20%);
//   (b) stable and irregular samples;
//   (c) an hourly-peak sample (peaks at :00/:30 marks);
//   (d) pattern shares per cloud, private vs public.
#include "analysis/context.h"
#include "analysis/classifier.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "workloads/patterns.h"

using namespace cloudlens;
using workloads::DiurnalUtilization;
using workloads::HourlyPeakUtilization;
using workloads::IrregularUtilization;
using workloads::StableUtilization;

namespace {

template <typename Model>
std::vector<double> evaluate(const Model& model, SimTime begin, SimTime end,
                             SimDuration step = kTelemetryInterval) {
  std::vector<double> out;
  for (SimTime t = begin; t < end; t += step) out.push_back(model.at(t));
  return out;
}

void show(const std::string& title, const std::vector<double>& series) {
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_max = 1;
  chart.height = 10;
  chart.title = title;
  std::printf("%s\n", render_lines({{"cpu", series}}, chart).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  // ---- Fig. 5(a-c): sample patterns --------------------------------------
  bench::banner("Fig. 5(a-c): typical utilization patterns (samples)");
  DiurnalUtilization::Params dp;
  dp.weekday_peak = 0.60;  // the paper's sample VM
  dp.weekend_peak = 0.20;
  show("(a) diurnal, one week (weekday peak ~60%, weekend ~20%)",
       evaluate(DiurnalUtilization(dp, 1), 0, kWeek));

  StableUtilization::Params sp;
  sp.level = 0.30;
  show("(b-top) stable, one week",
       evaluate(StableUtilization(sp, 2), 0, kWeek));

  IrregularUtilization::Params ip;
  show("(b-bottom) irregular, one week (low base, sudden spikes)",
       evaluate(IrregularUtilization(ip, 3), 0, kWeek));

  HourlyPeakUtilization::Params hp;
  show("(c) hourly-peak, one day (peaks at :00/:30)",
       evaluate(HourlyPeakUtilization(hp, 4), kDay, 2 * kDay));

  // ---- Fig. 5(d): population shares ---------------------------------------
  bench::banner("Fig. 5(d): pattern shares per cloud (classifier output)");
  const auto scenario = bench::make_bench_scenario(args);
  const auto priv =
      analysis::classify_population(AnalysisContext(*scenario.trace), CloudType::kPrivate, 1200);
  const auto pub =
      analysis::classify_population(AnalysisContext(*scenario.trace), CloudType::kPublic, 1200);

  TextTable t({"pattern", "private", "public", "paper's contrast"});
  t.row().add("diurnal").add(priv.diurnal, 3).add(pub.diurnal, 3).add(
      "most common in both; private ~2x public");
  t.row().add("stable").add(priv.stable, 3).add(pub.stable, 3).add(
      "higher share in public");
  t.row()
      .add("irregular")
      .add(priv.irregular, 3)
      .add(pub.irregular, 3)
      .add("relatively rare in both");
  t.row()
      .add("hourly-peak")
      .add(priv.hourly_peak, 3)
      .add(pub.hourly_peak, 3)
      .add("mostly private (work-related)");
  std::printf("%s", t.to_string().c_str());
  std::printf("\n(classified %zu private and %zu public window-covering "
              "VMs)\n",
              priv.classified, pub.classified);

  std::printf("%s",
              render_bars({{"priv diurnal", priv.diurnal},
                           {"pub  diurnal", pub.diurnal},
                           {"priv stable", priv.stable},
                           {"pub  stable", pub.stable},
                           {"priv irregular", priv.irregular},
                           {"pub  irregular", pub.irregular},
                           {"priv hourly-pk", priv.hourly_peak},
                           {"pub  hourly-pk", pub.hourly_peak}},
                          40, "\npattern shares")
                  .c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(priv.diurnal > priv.stable && priv.diurnal > priv.irregular &&
                    priv.diurnal > priv.hourly_peak,
                "diurnal most common in private");
  checks.expect(pub.diurnal >= pub.stable - 0.05,
                "diurnal (roughly) most common in public too");
  checks.expect(priv.diurnal > 1.2 * pub.diurnal,
                "private diurnal share roughly double public's");
  checks.expect(pub.stable > priv.stable + 0.1, "public more stable VMs");
  checks.expect(priv.hourly_peak > pub.hourly_peak,
                "hourly-peak concentrated in private");
  checks.expect(priv.irregular < 0.2 && pub.irregular < 0.25,
                "irregular relatively rare in both");
  return checks.exit_code();
}
