// Fig. 4 — (a) CDFs of deployed regions per subscription; (b) the same
// CDF weighted by allocated cores.
//
// Paper: >50% of subscriptions in both clouds are single-region, but the
// private cloud deploys over more regions in the rest; single-region
// subscriptions hold ~40% of private-cloud cores vs ~70% of public-cloud
// cores.
#include "analysis/context.h"
#include "analysis/deployment.h"
#include "bench_common.h"
#include "common/ascii_chart.h"
#include "common/table.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

using namespace cloudlens;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const auto scenario = bench::make_bench_scenario(args);
  const TraceStore& trace = *scenario.trace;

  const auto priv = analysis::region_spread(AnalysisContext(trace), CloudType::kPrivate,
                                            analysis::kDefaultSnapshot);
  const auto pub = analysis::region_spread(AnalysisContext(trace), CloudType::kPublic,
                                           analysis::kDefaultSnapshot);

  bench::banner("Fig. 4(a): CDF of deployed regions per subscription");
  const std::size_t max_regions = trace.topology().regions().size();
  const stats::Ecdf priv_cdf(priv.regions_per_subscription);
  const stats::Ecdf pub_cdf(pub.regions_per_subscription);
  TextTable t1({"regions <= k", "private CDF", "public CDF"});
  for (std::size_t k = 1; k <= max_regions; ++k) {
    t1.row()
        .add(std::to_string(k))
        .add(priv_cdf.at(double(k)), 3)
        .add(pub_cdf.at(double(k)), 3);
  }
  std::printf("%s", t1.to_string().c_str());

  bench::banner("Fig. 4(b): cumulative core share vs deployed regions");
  TextTable t2({"regions <= k", "private core share", "public core share"});
  for (std::size_t k = 0; k < max_regions; ++k) {
    t2.row()
        .add(std::to_string(k + 1))
        .add(priv.cumulative_core_share[k], 3)
        .add(pub.cumulative_core_share[k], 3);
  }
  std::printf("%s", t2.to_string().c_str());

  std::vector<double> priv_curve(priv.cumulative_core_share.begin(),
                                 priv.cumulative_core_share.end());
  std::vector<double> pub_curve(pub.cumulative_core_share.begin(),
                                pub.cumulative_core_share.end());
  ChartOptions chart;
  chart.fixed_y_range = true;
  chart.y_max = 1;
  chart.height = 12;
  chart.title = "core-weighted CDF vs number of deployed regions";
  std::printf("\n%s", render_lines({{"private", priv_curve},
                                    {"public", pub_curve}},
                                   chart)
                          .c_str());

  TextTable t3({"metric", "paper", "measured"});
  t3.row()
      .add("private single-region core share")
      .add("~0.40")
      .add(priv.single_region_core_share, 3);
  t3.row()
      .add("public single-region core share")
      .add("~0.70")
      .add(pub.single_region_core_share, 3);
  std::printf("\n%s", t3.to_string().c_str());

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(priv_cdf.at(1.0) > 0.5 && pub_cdf.at(1.0) > 0.5,
                ">50% of subscriptions single-region in both clouds");
  checks.expect(priv_cdf.at(1.0) < pub_cdf.at(1.0),
                "private deploys over more regions in the tail");
  checks.expect(std::abs(priv.single_region_core_share - 0.40) < 0.12,
                "private single-region core share near 40%");
  checks.expect(std::abs(pub.single_region_core_share - 0.70) < 0.12,
                "public single-region core share near 70%");
  return checks.exit_code();
}
