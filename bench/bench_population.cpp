// Out-of-core population bench: record-sharded generation + analyses
// under a hard RSS budget.
//
// The telemetry bench (bench_outofcore) took the VM x tick matrix out of
// core; this one takes the *population* out of core — VmRecord /
// SubscriptionInfo arrays and their indices live in K CLSN shard files
// (cloudsim/population.h) from the moment the generator emits them, and
// the full analysis suite (characterization report, every figure CSV,
// the knowledge base) runs against shards paged in LRU under a
// decoded-bytes budget. The resident record vector never materializes.
//
// Phases (each with its own VmHWM window — Linux lets us reset the
// kernel's RSS high-water mark via /proc/self/clear_refs between phases):
//
//   spill-gen   — generate the scenario with streaming population spill:
//                 records route straight to shard logs as the simulations
//                 produce them;
//   streamed@1  — report + figures + kb over the shards, serial;
//   streamed@8  — same, 8 worker threads (checksum must not move);
//   resident    — regenerate the identical scenario fully resident: the
//                 byte-identity oracle for the streamed checksums.
//
// Gates (ShapeChecks): streamed checksums at both thread counts equal the
// resident oracle exactly; generation and both streamed phases keep VmHWM
// under --rss-limit-mib; shards were really spilled, paged in, and
// evicted (the budget was load-bearing). Emits BENCH_population.json.
//
// Usage: bench_population [--scale=F] [--seed=N] [--shards=K]
//                         [--budget-mib=N] [--rss-limit-mib=N]
//                         [--rss-gate=0|1] [--out=PATH]
//
// --rss-gate=0 drops the RSS cap check while keeping the checksum and
// paging gates — for sanitizer flavours, where shadow memory makes RSS
// meaningless but the bit-identity contract still must hold.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "cloudsim/population.h"
#include "common/table.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "workloads/generator.h"

using namespace cloudlens;

namespace {

/// FNV-1a over the suite's rendered bytes: any single changed byte in the
/// report, any figure CSV, or the kb CSV changes the digest.
class Fnv64 {
 public:
  void bytes(const std::string& s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    u64(s.size());
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// The full user-visible output set, digested: characterization report
/// markdown, every figure CSV (name + bytes, in emission order), and the
/// knowledge-base CSV. Identical bytes => identical digest.
std::uint64_t suite_checksum(const TraceStore& trace,
                             const ParallelConfig& parallel) {
  const AnalysisContext ctx(trace, parallel);
  Fnv64 h;

  std::ostringstream report;
  analysis::write_characterization_report(ctx, report);
  h.bytes(report.str());

  std::ostringstream figure;
  std::string figure_name;
  const auto flush_figure = [&] {
    if (figure_name.empty()) return;
    h.bytes(figure_name);
    h.bytes(figure.str());
  };
  analysis::write_figure_csvs(ctx, [&](const std::string& name) -> std::ostream& {
    flush_figure();
    figure_name = name;
    figure.str("");
    figure.clear();
    return figure;
  });
  flush_figure();

  kb::ExtractorOptions kb_options;
  kb_options.max_classified_vms = 4;
  const kb::KnowledgeBase knowledge(kb::extract_all(ctx, kb_options));
  h.bytes(knowledge.to_csv());
  return h.digest();
}

/// Peak RSS (VmHWM) in MiB from /proc — unlike ru_maxrss this can be
/// reset per phase via /proc/self/clear_refs.
double vm_hwm_mib() {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::atof(line.c_str() + 6) / 1024.0;
  }
#endif
  return bench::peak_rss_mib();
}

/// Resets the kernel's RSS high-water mark so the next vm_hwm_mib() call
/// reports the peak of this phase only. Returns false when unsupported.
bool reset_peak_rss() {
#if defined(__linux__)
  std::ofstream out("/proc/self/clear_refs");
  if (!out.good()) return false;
  out << "5";
  out.flush();
  return out.good();
#else
  return false;
#endif
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_args(argc, argv);
  args.scale = 1.0;  // the point is a population that should NOT sit resident
  std::uint32_t shards = 32;
  std::size_t budget_mib = 16;
  double rss_limit_mib = 512.0;
  bool rss_gate = true;
  std::string out_path = "BENCH_population.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      args.scale = std::atof(argv[i] + 8);
    else if (std::strncmp(argv[i], "--shards=", 9) == 0)
      shards = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    else if (std::strncmp(argv[i], "--budget-mib=", 13) == 0)
      budget_mib = static_cast<std::size_t>(std::atoll(argv[i] + 13));
    else if (std::strncmp(argv[i], "--rss-limit-mib=", 16) == 0)
      rss_limit_mib = std::atof(argv[i] + 16);
    else if (std::strncmp(argv[i], "--rss-gate=", 11) == 0)
      rss_gate = std::atoi(argv[i] + 11) != 0;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
  }

  obs::MetricsRegistry::global().set_enabled(true);

  bench::BenchJson json("population");
  json.meta()
      .num("scale", args.scale)
      .num("seed", static_cast<double>(args.seed))
      .num("shards", shards)
      .num("budget_mib", static_cast<double>(budget_mib))
      .num("rss_limit_mib", rss_limit_mib);

  const bool rss_windows = reset_peak_rss();
  if (!rss_windows)
    std::printf("  note: VmHWM reset unavailable; RSS figures are "
                "whole-process peaks\n");

  bench::banner("Spill-gen: generate straight into population shards");
  const std::string spill_dir =
      (std::filesystem::temp_directory_path() /
       ("cloudlens-bench-population-" + std::to_string(args.seed)))
          .string();
  PopulationShardingOptions sharding;
  sharding.shards = shards;
  sharding.budget_bytes = budget_mib << 20;
  sharding.spill_dir = spill_dir;
  sharding.keep_files = false;
  workloads::ScenarioOptions scenario_options;
  scenario_options.scale = args.scale;
  scenario_options.seed = args.seed;
  scenario_options.population_sharding = &sharding;
  auto gen_start = std::chrono::steady_clock::now();
  auto streamed = workloads::make_scenario(scenario_options);
  const double gen_ms = ms_since(gen_start);
  const double gen_rss = vm_hwm_mib();
  TraceStore& trace = *streamed.trace;
  const std::size_t vms = trace.vm_count();
  const PopulationShardStore* store = trace.population_shards();
  const double spill_mib =
      store ? static_cast<double>(store->spill_bytes()) / (1024.0 * 1024.0)
            : 0.0;
  std::printf("  %zu VMs into %u shards (%.1f MiB spilled) in %.1f ms, "
              "peak RSS %.1f MiB\n",
              vms, shards, spill_mib, gen_ms, gen_rss);
  json.meta().num("vms", static_cast<double>(vms));
  json.record("spill_gen")
      .num("wall_ms", gen_ms)
      .num("peak_rss_mib", gen_rss)
      .num("spill_mib", spill_mib);

  reset_peak_rss();
  bench::banner("Streamed suite over population shards (1 thread)");
  auto t1_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_1t =
      suite_checksum(trace, ParallelConfig::with_threads(1));
  const double streamed_1t_ms = ms_since(t1_start);
  const double streamed_1t_rss = vm_hwm_mib();
  std::printf("  %.1f ms, peak RSS %.1f MiB, checksum %016llx\n",
              streamed_1t_ms, streamed_1t_rss,
              static_cast<unsigned long long>(sum_1t));
  json.record("streamed_1t")
      .num("wall_ms", streamed_1t_ms)
      .num("peak_rss_mib", streamed_1t_rss);

  reset_peak_rss();
  bench::banner("Streamed suite over population shards (8 threads)");
  auto t8_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_8t =
      suite_checksum(trace, ParallelConfig::with_threads(8));
  const double streamed_8t_ms = ms_since(t8_start);
  const double streamed_8t_rss = vm_hwm_mib();
  std::printf("  %.1f ms, peak RSS %.1f MiB, checksum %016llx\n",
              streamed_8t_ms, streamed_8t_rss,
              static_cast<unsigned long long>(sum_8t));
  json.record("streamed_8t")
      .num("wall_ms", streamed_8t_ms)
      .num("peak_rss_mib", streamed_8t_rss);

  const auto metrics = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t spills = metrics.counter("population.shard_spills");
  const std::uint64_t page_ins = metrics.counter("population.shard_page_ins");
  const std::uint64_t evictions =
      metrics.counter("population.shard_evictions");
  const std::uint64_t record_reads =
      metrics.counter("population.shard_record_reads");
  json.record("paging")
      .num("spills", static_cast<double>(spills))
      .num("page_ins", static_cast<double>(page_ins))
      .num("evictions", static_cast<double>(evictions))
      .num("record_reads", static_cast<double>(record_reads));

  bench::banner("Oracle: the identical scenario, fully resident");
  reset_peak_rss();
  auto oracle_start = std::chrono::steady_clock::now();
  auto resident = bench::make_bench_scenario(args);
  const double oracle_gen_ms = ms_since(oracle_start);
  auto oracle_suite_start = std::chrono::steady_clock::now();
  const std::uint64_t sum_resident =
      suite_checksum(*resident.trace, ParallelConfig::with_threads(8));
  const double oracle_ms = ms_since(oracle_suite_start);
  const double oracle_rss = vm_hwm_mib();
  std::printf("  gen %.1f ms, suite %.1f ms, peak RSS %.1f MiB, "
              "checksum %016llx%s\n",
              oracle_gen_ms, oracle_ms, oracle_rss,
              static_cast<unsigned long long>(sum_resident),
              sum_resident == sum_1t ? "" : "  (MISMATCH)");
  json.record("resident_oracle")
      .num("gen_ms", oracle_gen_ms)
      .num("wall_ms", oracle_ms)
      .num("peak_rss_mib", oracle_rss);

  bench::banner("Summary");
  TextTable table({"config", "wall ms", "peak RSS MiB"});
  table.row().add("spill-gen (stream to shards)").add(gen_ms, 1).add(gen_rss, 1);
  table.row().add("streamed @1t").add(streamed_1t_ms, 1).add(streamed_1t_rss, 1);
  table.row().add("streamed @8t").add(streamed_8t_ms, 1).add(streamed_8t_rss, 1);
  table.row()
      .add("resident oracle (gen + suite)")
      .add(oracle_gen_ms + oracle_ms, 1)
      .add(oracle_rss, 1);
  std::printf("%s", table.to_string().c_str());
  std::printf("  RSS cap: %.0f MiB; decoded-record budget: %zu MiB\n",
              rss_limit_mib, budget_mib);
  json.write(out_path);

  bench::banner("Shape checks");
  bench::ShapeChecks checks;
  checks.expect(sum_1t == sum_resident && sum_8t == sum_resident,
                "streamed report/figure/kb checksums at 1 and 8 threads "
                "equal the resident oracle exactly");
  if (rss_gate) {
    char gate[128];
    std::snprintf(gate, sizeof gate,
                  "generation and streamed suites keep peak RSS <= %.0f MiB",
                  rss_limit_mib);
    checks.expect(gen_rss <= rss_limit_mib &&
                      streamed_1t_rss <= rss_limit_mib &&
                      streamed_8t_rss <= rss_limit_mib,
                  gate);
  } else {
    std::printf("  (RSS gate skipped: --rss-gate=0)\n");
  }
  checks.expect(spills > 0, "records were spilled to shard files");
  checks.expect(page_ins > 0 && evictions > 0 && record_reads > 0,
                "shards were paged in and evicted under the budget");
  return checks.exit_code();
}
