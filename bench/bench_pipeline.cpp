// Cold-vs-warm pipeline bench: runs the full trace -> panel -> kb plan
// twice against the same artifact cache and reports the wall-clock win of
// the warm path, with a content checksum proving the cached artifacts
// reproduce fresh generation exactly. Emits BENCH_pipeline.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "bench_common.h"
#include "cloudsim/telemetry_panel.h"
#include "pipeline/content_hash.h"
#include "pipeline/run_plan.h"

namespace cloudlens {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Deterministic checksum over everything the plan produced: VM records,
/// the full panel matrix (bit patterns), and the kb CSV.
std::string run_checksum(const pipeline::ResolvedRun& run) {
  pipeline::ContentHash h;
  const TraceStore& trace = *run.trace->trace;
  h.u64(trace.vms().size());
  for (const auto& vm : trace.vms()) {
    h.u64(vm.subscription.value());
    h.u64(vm.node.value());
    h.i64(vm.created);
    h.i64(vm.deleted);
    h.f64(vm.cores);
  }
  const TelemetryPanel* panel = trace.telemetry_panel();
  if (panel != nullptr) {
    h.u64(panel->vm_count());
    for (std::size_t v = 0; v < panel->vm_count(); ++v)
      for (double sample : panel->row(VmId(static_cast<std::uint32_t>(v))))
        h.f64(sample);
  }
  if (run.knowledge != nullptr) h.str(run.knowledge->to_csv());
  return h.hex();
}

struct Measured {
  pipeline::ResolvedRun run;
  double wall_ms = 0.0;
};

Measured measure(const bench::BenchArgs& args, const std::string& cache_dir) {
  pipeline::RunPlanOptions options;
  options.scenario.scale = args.scale;
  options.scenario.seed = args.seed;
  options.want_kb = true;
  options.cache_dir = cache_dir;
  Measured m;
  const auto start = Clock::now();
  m.run = pipeline::run_trace_plan(options);
  m.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
  return m;
}

}  // namespace
}  // namespace cloudlens

int main(int argc, char** argv) {
  using namespace cloudlens;
  const auto args = bench::parse_args(argc, argv);

  const std::string cache_dir =
      "bench_pipeline_cache." + std::to_string(getpid());
  fs::remove_all(cache_dir);

  bench::banner("pipeline: cold run (compute + store)");
  auto cold = measure(args, cache_dir);
  std::printf("%s", pipeline::render_stage_table(cold.run.reports).c_str());
  std::printf("cold wall: %.0f ms\n", cold.wall_ms);

  bench::banner("pipeline: warm run (cache hits)");
  auto warm = measure(args, cache_dir);
  std::printf("%s", pipeline::render_stage_table(warm.run.reports).c_str());
  std::printf("warm wall: %.0f ms\n", warm.wall_ms);

  const std::string cold_sum = run_checksum(cold.run);
  const std::string warm_sum = run_checksum(warm.run);
  std::uintmax_t cache_bytes = 0;
  for (const auto& entry : fs::directory_iterator(cache_dir))
    cache_bytes += entry.file_size();

  bench::banner("pipeline: verdict");
  std::printf("  checksum cold: %s\n  checksum warm: %s\n", cold_sum.c_str(),
              warm_sum.c_str());
  std::printf("  cache size: %.1f MiB across %zu stages\n",
              double(cache_bytes) / (1024.0 * 1024.0),
              warm.run.reports.size());
  std::printf("  speedup: %.2fx\n", cold.wall_ms / warm.wall_ms);

  bench::ShapeChecks checks;
  checks.expect(cold_sum == warm_sum,
                "warm run reproduces the cold run byte-for-byte");
  for (const auto& report : warm.run.reports)
    checks.expect(report.source == pipeline::StageReport::Source::kCacheHit,
                  "warm stage '" + report.name + "' served from cache");
  checks.expect(warm.wall_ms < cold.wall_ms,
                "warm run is faster than cold");

  bench::BenchJson json("pipeline");
  json.meta()
      .num("scale", args.scale)
      .num("seed", double(args.seed))
      .str("checksum", cold_sum)
      .num("cache_bytes", double(cache_bytes));
  json.record("cold").num("wall_ms", cold.wall_ms).num(
      "stages", double(cold.run.reports.size()));
  json.record("warm")
      .num("wall_ms", warm.wall_ms)
      .num("speedup", cold.wall_ms / warm.wall_ms)
      .num("checksum_match", cold_sum == warm_sum ? 1.0 : 0.0);
  json.write("BENCH_pipeline.json");

  fs::remove_all(cache_dir);
  return checks.exit_code();
}
