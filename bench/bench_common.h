// Shared scaffolding for the figure-reproduction benches: scenario
// construction from command-line flags and small formatting helpers.
//
// Every bench prints (a) the series/rows the corresponding paper figure
// reports, (b) a paper-vs-measured table of the figure's headline numbers,
// and (c) a PASS/FAIL shape check mirroring EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workloads/generator.h"

namespace cloudlens::bench {

struct BenchArgs {
  double scale = 0.35;
  std::uint64_t seed = 42;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=F] [--seed=N]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline workloads::Scenario make_bench_scenario(const BenchArgs& args) {
  workloads::ScenarioOptions options;
  options.scale = args.scale;
  options.seed = args.seed;
  std::printf("generating dual-cloud scenario (scale=%.2f seed=%llu)...\n",
              args.scale, (unsigned long long)args.seed);
  return workloads::make_scenario(options);
}

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// One shape assertion; prints PASS/FAIL and tracks a global verdict.
class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
  }
  /// Returns the process exit code (0 iff all checks passed).
  int exit_code() const { return failures_ == 0 ? 0 : 1; }

 private:
  int failures_ = 0;
};

}  // namespace cloudlens::bench
