// Shared scaffolding for the figure-reproduction benches: scenario
// construction from command-line flags and small formatting helpers.
//
// Every bench prints (a) the series/rows the corresponding paper figure
// reports, (b) a paper-vs-measured table of the figure's headline numbers,
// and (c) a PASS/FAIL shape check mirroring EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "workloads/generator.h"

namespace cloudlens::bench {

struct BenchArgs {
  double scale = 0.35;
  std::uint64_t seed = 42;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=F] [--seed=N]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline workloads::Scenario make_bench_scenario(const BenchArgs& args) {
  workloads::ScenarioOptions options;
  options.scale = args.scale;
  options.seed = args.seed;
  std::printf("generating dual-cloud scenario (scale=%.2f seed=%llu)...\n",
              args.scale, (unsigned long long)args.seed);
  return workloads::make_scenario(options);
}

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Peak resident-set size of this process in MiB (0 when unavailable).
inline double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// Machine-readable benchmark sink: collects flat records (one object of
/// numeric and string fields per measured configuration) and writes them as
/// one JSON document, e.g. BENCH_telemetry.json, so CI and EXPERIMENTS.md
/// can diff runs without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Record {
   public:
    Record& num(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + value + "\"");
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Record& record(const std::string& name) {
    records_.emplace_back();
    records_.back().str("name", name);
    return records_.back();
  }
  Record& meta() { return meta_; }

  /// Writes the document; returns false (and prints) on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::printf("BenchJson: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", bench_name_.c_str());
    for (const auto& [k, v] : meta_.fields_)
      std::fprintf(f, ",\n  \"%s\": %s", k.c_str(), v.c_str());
    std::fprintf(f, ",\n  \"results\": [\n");
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "    {");
      const auto& fields = records_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i)
        std::fprintf(f, "%s\"%s\": %s", i ? ", " : "", fields[i].first.c_str(),
                     fields[i].second.c_str());
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  Record meta_;
  std::vector<Record> records_;
};

/// One shape assertion; prints PASS/FAIL and tracks a global verdict.
class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
  }
  /// Returns the process exit code (0 iff all checks passed).
  int exit_code() const { return failures_ == 0 ? 0 : 1; }

 private:
  int failures_ = 0;
};

}  // namespace cloudlens::bench
