#include "serve/engine.h"

#include <chrono>
#include <fstream>
#include <istream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "cloudsim/snapshot.h"
#include "cloudsim/trace.h"
#include "cloudsim/trace_io.h"
#include "ingest/ingest.h"
#include "common/check.h"
#include "kb/refresh.h"

namespace cloudlens::serve {

namespace {

constexpr SimTime kWatermarkUnset = std::numeric_limits<SimTime>::min();
/// first_sample sentinel meaning "never streamed a sample".
constexpr SimTime kNoSample = std::numeric_limits<SimTime>::max();

std::vector<std::string> split(std::string_view line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      out.emplace_back(line.substr(pos));
      return out;
    }
    out.emplace_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Zero-copy utilization model over one resident VM's full-grid sample
/// buffer, windowed to the snapshot grid. The buffer is shared with the
/// live engine — no per-epoch cell copies. This is safe because stream
/// timestamps are non-decreasing: a cell can only be written while its
/// tick is the watermark's own, never once the tick is complete, and a
/// snapshot's sample_valid_ticks clamp stops every row read exactly at
/// the completed-tick boundary (zero-filling beyond, byte-identical to
/// the copied SampledUtilization cells this view replaces — including
/// the checkpoint encoding, which degrades unknown models to sampled
/// cells under the same clamp). Reads past the clamp are defined only
/// through row evaluation, not direct at() calls.
class WindowedSamples final : public UtilizationModel {
 public:
  WindowedSamples(TimeGrid window, std::size_t offset,
                  std::shared_ptr<const std::vector<double>> cells)
      : window_(window), offset_(offset), cells_(std::move(cells)) {}

  double at(SimTime t) const override {
    if (t < window_.start) return (*cells_)[offset_];
    if (t >= window_.end()) return (*cells_)[offset_ + window_.count - 1];
    return (*cells_)[offset_ + window_.index_of(t)];
  }
  /// Reports "sampled": exports surface kind() in the vm table's pattern
  /// column, and this view must be indistinguishable from the copied
  /// SampledUtilization cells it replaces.
  std::string_view kind() const override { return "sampled"; }

 private:
  TimeGrid window_;
  std::size_t offset_;
  std::shared_ptr<const std::vector<double>> cells_;
};

}  // namespace

/// One resident VM: its record (id = original stream id) plus the
/// full-grid sample buffer, allocated (shared) on first sample so epoch
/// snapshots can view it without copying.
struct ServeEngine::VmState {
  VmRecord rec;
  std::shared_ptr<std::vector<double>> samples;
  SimTime first_sample = kNoSample;
};

/// The record array behind epoch snapshots, frozen once per population
/// generation. `reusable` means no VM straddled the cutoff at build time
/// (every record's created/deleted/first-sample lies strictly before it),
/// so later epochs of the same generation represent every VM identically
/// and may adopt the array as-is.
struct ServeEngine::FrozenPopulation {
  std::uint64_t gen = 0;
  bool reusable = false;
  std::shared_ptr<const std::vector<VmRecord>> records;
  /// Dense snapshot VM id -> original stream id, index-aligned.
  std::vector<std::uint32_t> original_ids;
};

/// An immutable published view: everything a query needs, detached from
/// engine state the moment it is built.
struct ServeEngine::Snapshot {
  std::size_t epoch = 0;
  std::uint64_t roll_gen = 0;
  TimeGrid window{};
  std::shared_ptr<const Topology> topology;
  std::shared_ptr<const TraceStore> trace;
  /// Dense snapshot VM id -> original stream id (checkpoint sidecar).
  std::vector<std::uint32_t> original_ids;
  /// Per-subscription dirty generation at build time (kb reuse tags).
  std::vector<std::uint64_t> sub_generations;
  /// Rendered query results for this snapshot (guarded by query_mu_).
  std::map<std::string, std::string> results;
};

ServeEngine::ServeEngine(ServeOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::global()),
      watermark_(kWatermarkUnset) {}

ServeEngine::~ServeEngine() = default;

// --- ingest ---------------------------------------------------------------

void ServeEngine::ingest_line(std::string_view line) {
  if (line.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto f = split(line);
  const std::string& tag = f.front();
  if (tag == "cloudlens-stream") {
    CL_CHECK_MSG(f.size() == 2 && f[1] == "v1",
                 "unsupported stream header: " << line);
    header_seen_ = true;
    return;
  }
  if (tag == "grid") {
    CL_CHECK_MSG(f.size() == 4, "malformed grid line: " << line);
    CL_CHECK_MSG(vms_.empty() && events_ == 0,
                 "grid must precede all events");
    grid_.start = std::stoll(f[1]);
    grid_.step = std::stoll(f[2]);
    grid_.count = std::stoul(f[3]);
    CL_CHECK(grid_.step > 0 && grid_.count > 0);
    window_start_tick_ = 0;
    return;
  }
  if (tag == "topo") {
    CL_CHECK_MSG(topology_ == nullptr, "topo rows after first event");
    topo_rows_.emplace_back(line.substr(5));
    return;
  }
  if (tag == "end") return;

  // Lifecycle / telemetry events.
  finalize_topology();
  if (tag == "vm") {
    CL_CHECK_MSG(f.size() == 13, "malformed vm line: " << line);
    const SimTime t = std::stoll(f[12]);
    advance_watermark(t);
    apply_vm_line(f, t);
    metrics_->add(obs::Counter::kServeVmsCreated);
  } else if (tag == "sample") {
    CL_CHECK_MSG(f.size() == 4, "malformed sample line: " << line);
    const auto id = static_cast<std::uint32_t>(std::stoul(f[1]));
    const SimTime t = std::stoll(f[2]);
    advance_watermark(t);
    const auto it = vms_.find(id);
    CL_CHECK_MSG(it != vms_.end(), "sample for unknown vm " << id);
    CL_CHECK_MSG(grid_.contains(t) && (t - grid_.start) % grid_.step == 0,
                 "sample off the grid: " << line);
    VmState& vm = it->second;
    if (vm.samples == nullptr) {
      // First sample: the VM gains a utilization model, so the frozen
      // record array (which bakes in model attachment) must rebuild.
      vm.samples = std::make_shared<std::vector<double>>(grid_.count, 0.0);
      ++population_gen_;
    }
    (*vm.samples)[grid_.index_of(t)] = std::stod(f[3]);
    if (t < vm.first_sample) vm.first_sample = t;
    touch_subscription(vm.rec.subscription.value());
    metrics_->add(obs::Counter::kServeSamplesIngested);
  } else if (tag == "del") {
    CL_CHECK_MSG(f.size() == 3, "malformed del line: " << line);
    const auto id = static_cast<std::uint32_t>(std::stoul(f[1]));
    const SimTime t = std::stoll(f[2]);
    advance_watermark(t);
    const auto it = vms_.find(id);
    CL_CHECK_MSG(it != vms_.end(), "del for unknown vm " << id);
    CL_CHECK_MSG(t > it->second.rec.created,
                 "vm " << id << " deleted before creation");
    it->second.rec.deleted = t;
    ++population_gen_;
    touch_subscription(it->second.rec.subscription.value());
    metrics_->add(obs::Counter::kServeVmsDeleted);
  } else {
    CL_CHECK_MSG(false, "unknown stream line: " << line);
  }
  ++events_;
  metrics_->add(obs::Counter::kServeEventsIngested);
  if (metrics_->enabled()) {
    const TimeGrid win = window_grid_locked();
    const std::size_t e = epoch_locked();
    metrics_->set(obs::Gauge::kServeEpoch, static_cast<double>(e));
    const SimTime complete = win.start + static_cast<SimTime>(e) * win.step;
    metrics_->set(obs::Gauge::kServeIngestLagSeconds,
                  watermark_ > complete
                      ? static_cast<double>(watermark_ - complete)
                      : 0.0);
    metrics_->set(obs::Gauge::kServeVmsResident,
                  static_cast<double>(vms_.size()));
  }
}

void ServeEngine::ingest(std::istream& in) {
  const auto start = std::chrono::steady_clock::now();
  std::string line;
  while (std::getline(in, line)) ingest_line(line);
  metrics_->observe_seconds(obs::Histogram::kServeIngestBatchSeconds,
                            elapsed_seconds(start));
}

void ServeEngine::apply_vm_line(const std::vector<std::string>& f, SimTime t) {
  const auto id = static_cast<std::uint32_t>(std::stoul(f[1]));
  CL_CHECK_MSG(vms_.find(id) == vms_.end(), "duplicate vm id " << id);
  VmState st;
  VmRecord& rec = st.rec;
  rec.id = VmId(id);
  rec.subscription = SubscriptionId(
      static_cast<SubscriptionId::underlying>(std::stoul(f[2])));
  if (!f[3].empty()) {
    rec.service =
        ServiceId(static_cast<ServiceId::underlying>(std::stoul(f[3])));
  }
  rec.cloud = f[4] == "private" ? CloudType::kPrivate : CloudType::kPublic;
  rec.party = f[5] == "first-party" ? PartyType::kFirstParty
                                    : PartyType::kThirdParty;
  rec.region = RegionId(static_cast<RegionId::underlying>(std::stoul(f[6])));
  rec.cluster =
      ClusterId(static_cast<ClusterId::underlying>(std::stoul(f[7])));
  rec.rack = RackId(static_cast<RackId::underlying>(std::stoul(f[8])));
  rec.node = NodeId(static_cast<NodeId::underlying>(std::stoul(f[9])));
  rec.cores = std::stod(f[10]);
  rec.memory_gb = std::stod(f[11]);
  rec.created = t;
  rec.deleted = kNoEnd;
  ++population_gen_;
  touch_subscription(rec.subscription.value());
  vms_.emplace(id, std::move(st));
}

void ServeEngine::advance_watermark(SimTime t) {
  CL_CHECK_MSG(t >= watermark_ || watermark_ == kWatermarkUnset,
               "stream timestamps must be non-decreasing");
  CL_CHECK_MSG(grid_.count > 0, "grid line must precede events");
  // Watermark first: an event at t >= window end proves every window tick
  // is complete, so the roll's fold sees the full window.
  watermark_ = t;
  maybe_roll_window();
}

void ServeEngine::maybe_roll_window() {
  if (options_.window_weeks == 0) return;
  const std::size_t week_ticks =
      static_cast<std::size_t>(kWeek / grid_.step);
  for (;;) {
    const TimeGrid win = window_grid_locked();
    // Roll only while the watermark lies beyond the current window and
    // there is grid left to roll into.
    if (watermark_ < win.end() || win.end() >= grid_.end()) return;
    // Fold the full current window into the long-term knowledge base
    // before any of it is evicted.
    {
      const auto snap = snapshot_locked();
      const AnalysisContext ctx(*snap->trace, options_.parallel, metrics_);
      kb::RefreshOptions refresh;
      refresh.extractor = options_.kb_options;
      kb::refresh(long_term_, ctx, refresh);
    }
    window_start_tick_ += week_ticks;
    const SimTime new_start = grid_.start + static_cast<SimTime>(
        window_start_tick_) * grid_.step;
    for (auto it = vms_.begin(); it != vms_.end();) {
      const VmRecord& rec = it->second.rec;
      if (rec.deleted != kNoEnd && rec.deleted <= new_start) {
        it = vms_.erase(it);
      } else {
        ++it;
      }
    }
    // Everything is dirty after a roll: the analysis grid changed (and
    // with it the frozen record array's window view).
    for (auto& gen : sub_generation_) ++gen;
    ++population_gen_;
    frozen_.reset();
    cached_snapshot_.reset();
    ++rolls_;
    metrics_->add(obs::Counter::kServeWindowRolls);
  }
}

void ServeEngine::finalize_topology() {
  if (topology_ != nullptr) return;
  CL_CHECK_MSG(grid_.count > 0, "grid line must precede events");
  topology_ = parse_topology_locked();
  topo_rows_.clear();
  topo_rows_.shrink_to_fit();
}

std::shared_ptr<const Topology> ServeEngine::parse_topology_locked() const {
  CL_CHECK_MSG(!topo_rows_.empty(), "no topology before first event");
  std::string topo_csv =
      "node,rack,cluster,datacenter,region,region_name,tz_offset_hours,"
      "cloud,node_cores,node_memory_gb\n";
  for (const auto& row : topo_rows_) {
    topo_csv += row;
    topo_csv += '\n';
  }
  // Reuse the CSV importer's validated topology parser by importing an
  // empty vmtable alongside the rows.
  std::istringstream topo_in(topo_csv);
  std::istringstream vm_in(
      "vm,subscription,service,cloud,party,region,cluster,rack,node,"
      "cores,memory_gb,created,deleted,pattern\n");
  auto imported = import_trace(topo_in, vm_in, nullptr, grid_);
  return std::shared_ptr<const Topology>(std::move(imported.topology));
}

void ServeEngine::touch_subscription(std::uint32_t sub) {
  if (sub >= sub_generation_.size()) sub_generation_.resize(sub + 1, 0);
  ++sub_generation_[sub];
}

// --- progress -------------------------------------------------------------

std::uint64_t ServeEngine::events_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t ServeEngine::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_locked();
}

SimTime ServeEngine::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

SimTime ServeEngine::cutoff() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cutoff_locked();
}

std::size_t ServeEngine::resident_vms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return vms_.size();
}

std::uint64_t ServeEngine::window_rolls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rolls_;
}

std::size_t ServeEngine::epoch_locked() const {
  if (grid_.count == 0 || watermark_ == kWatermarkUnset) return 0;
  const TimeGrid win = window_grid_locked();
  if (watermark_ <= win.start) return 0;
  const auto ticks =
      static_cast<std::size_t>((watermark_ - win.start) / win.step);
  return ticks < win.count ? ticks : win.count;
}

SimTime ServeEngine::cutoff_locked() const {
  const TimeGrid win = window_grid_locked();
  const std::size_t e = epoch_locked();
  if (e >= win.count) return kNoEnd;  // fully complete: include everything
  return win.start + static_cast<SimTime>(e) * win.step;
}

TimeGrid ServeEngine::window_grid_locked() const {
  TimeGrid win;
  win.step = grid_.step;
  win.start =
      grid_.start + static_cast<SimTime>(window_start_tick_) * grid_.step;
  const std::size_t remaining = grid_.count > window_start_tick_
                                    ? grid_.count - window_start_tick_
                                    : 0;
  if (options_.window_weeks == 0) {
    win.count = remaining;
  } else {
    const auto window_ticks = static_cast<std::size_t>(
        options_.window_weeks * static_cast<std::uint64_t>(kWeek / grid_.step));
    win.count = window_ticks < remaining ? window_ticks : remaining;
  }
  return win;
}

// --- snapshots ------------------------------------------------------------

std::shared_ptr<ServeEngine::Snapshot> ServeEngine::snapshot_locked() {
  const std::size_t e = epoch_locked();
  if (cached_snapshot_ != nullptr && cached_snapshot_->epoch == e &&
      cached_snapshot_->roll_gen == rolls_) {
    metrics_->add(obs::Counter::kServeSnapshotReuses);
    return cached_snapshot_;
  }
  const auto start = std::chrono::steady_clock::now();
  CL_CHECK_MSG(grid_.count > 0, "query before the stream's grid line");
  // A query may land while topology rows are still streaming in (before
  // the first event latches them); parse without latching so the
  // remaining topo rows stay legal to ingest.
  const std::shared_ptr<const Topology> topo =
      topology_ != nullptr ? topology_ : parse_topology_locked();
  const TimeGrid win = window_grid_locked();
  const SimTime cut = cutoff_locked();
  CL_CHECK_MSG(win.count > 0, "window has no ticks");

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = e;
  snap->roll_gen = rolls_;
  snap->window = win;
  snap->topology = topo;
  snap->sub_generations = sub_generation_;

  // The record array is shared across epochs, not rebuilt per snapshot:
  // freeze it once per population generation and reuse it while no VM
  // straddles the cutoff (once every created/deleted/first-sample time
  // is strictly before one cutoff, it is before every later one too, so
  // the representation is stable until the next lifecycle event).
  const std::size_t copy_ticks = e < win.count ? e : win.count;
  std::shared_ptr<const FrozenPopulation> frozen = frozen_;
  if (frozen == nullptr || frozen->gen != population_gen_ ||
      !frozen->reusable) {
    auto built = std::make_shared<FrozenPopulation>();
    built->gen = population_gen_;
    auto records = std::make_shared<std::vector<VmRecord>>();
    records->reserve(vms_.size());
    std::size_t straddles = 0;
    // Included VMs in ascending original-id order — exactly the
    // importer's row order, so the snapshot and a CSV import of the same
    // prefix agree byte-for-byte.
    for (const auto& [id, st] : vms_) {
      if (st.rec.created >= cut) {
        ++straddles;  // excluded now, included at a later epoch
        continue;
      }
      VmRecord rec = st.rec;
      rec.id = VmId(static_cast<VmId::underlying>(records->size()));
      if (st.rec.deleted != kNoEnd && st.rec.deleted >= cut) {
        rec.deleted = kNoEnd;  // deletion not visible yet
        ++straddles;
      }
      rec.utilization = nullptr;
      if (st.first_sample != kNoSample) {
        if (st.first_sample < cut) {
          rec.utilization = std::make_shared<WindowedSamples>(
              win, window_start_tick_, st.samples);
        } else {
          ++straddles;  // model attaches at a later epoch
        }
      }
      built->original_ids.push_back(id);
      records->push_back(std::move(rec));
    }
    built->records = std::move(records);
    built->reusable = straddles == 0;
    frozen_ = built;
    frozen = built;
    metrics_->add(obs::Counter::kServePopulationFreezes);
  } else {
    metrics_->add(obs::Counter::kServePopulationReuses);
  }

  // Placeholder ownership universe over the frozen records (same
  // first-touch semantics as the CSV importer).
  std::size_t max_sub = 0;
  std::size_t max_svc = 0;
  bool any_svc = false;
  for (const VmRecord& rec : *frozen->records) {
    max_sub = std::max<std::size_t>(max_sub, rec.subscription.value() + 1);
    if (rec.service.valid()) {
      any_svc = true;
      max_svc = std::max<std::size_t>(max_svc, rec.service.value() + 1);
    }
  }
  std::vector<ServiceInfo> services(any_svc ? max_svc : 0);
  std::vector<SubscriptionInfo> subscriptions(max_sub);
  for (const VmRecord& rec : *frozen->records) {
    subscriptions[rec.subscription.value()].cloud = rec.cloud;
    subscriptions[rec.subscription.value()].party = rec.party;
    if (rec.service.valid()) {
      subscriptions[rec.subscription.value()].service = rec.service;
      ServiceInfo& svc = services[rec.service.value()];
      svc.cloud = rec.cloud;
      if (svc.name.empty())
        svc.name = "svc-" + std::to_string(rec.service.value());
    }
  }

  // The per-epoch cost is this shell: services, subscriptions, and a
  // valid-ticks clamp around the adopted (shared) record array. No
  // resident panel: analyses fall back to on-demand row evaluation,
  // which is bit-identical by the panel contract and keeps per-epoch
  // snapshot cost proportional to resident state, not analyses run.
  auto trace = std::make_shared<TraceStore>(topo.get(), win);
  trace->set_telemetry_panel_enabled(false);
  for (auto& svc : services) {
    if (svc.name.empty()) svc.name = "svc-unreferenced";
    trace->add_service(svc);
  }
  for (const auto& sub : subscriptions) trace->add_subscription(sub);
  trace->adopt_vm_records(frozen->records);
  trace->set_sample_valid_ticks(copy_ticks);
  snap->original_ids = frozen->original_ids;
  snap->trace = std::move(trace);
  metrics_->add(obs::Counter::kServeSnapshotsBuilt);
  metrics_->observe_seconds(obs::Histogram::kServeSnapshotBuildSeconds,
                            elapsed_seconds(start));
  cached_snapshot_ = snap;
  return snap;
}

std::shared_ptr<ServeEngine::Snapshot> ServeEngine::current_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked();
}

std::shared_ptr<const TraceStore> ServeEngine::snapshot_trace() {
  auto snap = current_snapshot();
  // Aliasing share: keeps the whole snapshot (incl. topology) alive.
  return std::shared_ptr<const TraceStore>(snap, snap->trace.get());
}

// --- knowledge base -------------------------------------------------------

std::vector<kb::SubscriptionKnowledge> ServeEngine::knowledge_records(
    const Snapshot& snap) {
  const AnalysisContext ctx(*snap.trace, options_.parallel, metrics_);
  std::vector<kb::SubscriptionKnowledge> records;
  const auto subs = snap.trace->subscriptions();
  for (std::size_t s = 0; s < subs.size(); ++s) {
    const std::uint64_t gen =
        s < snap.sub_generations.size() ? snap.sub_generations[s] : 0;
    auto it = kb_cache_.find(static_cast<std::uint32_t>(s));
    if (it != kb_cache_.end() && it->second.generation == gen) {
      metrics_->add(obs::Counter::kServeKbReused);
      if (it->second.has_record) records.push_back(it->second.record);
      continue;
    }
    metrics_->add(obs::Counter::kServeKbRecomputed);
    auto rec = kb::extract_subscription(
        ctx, SubscriptionId(static_cast<SubscriptionId::underlying>(s)),
        options_.kb_options);
    KbCacheEntry entry;
    entry.generation = gen;
    entry.has_record = rec.has_value();
    if (rec) {
      entry.record = *rec;
      records.push_back(*rec);
    }
    kb_cache_[static_cast<std::uint32_t>(s)] = std::move(entry);
  }
  return records;
}

kb::KnowledgeBase ServeEngine::knowledge() {
  std::lock_guard<std::mutex> qlock(query_mu_);
  const auto snap = current_snapshot();
  return kb::KnowledgeBase(knowledge_records(*snap));
}

kb::KnowledgeBase ServeEngine::long_term_knowledge() const {
  std::lock_guard<std::mutex> lock(mu_);
  return long_term_;
}

// --- queries --------------------------------------------------------------

std::string ServeEngine::query(const std::string& what) {
  const auto start = std::chrono::steady_clock::now();
  metrics_->add(obs::Counter::kServeQueries);
  std::lock_guard<std::mutex> qlock(query_mu_);

  if (what == "stats") {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "events=" << events_ << " epoch=" << epoch_locked() << "/"
       << window_grid_locked().count << " watermark="
       << (watermark_ == kWatermarkUnset ? 0 : watermark_)
       << " vms=" << vms_.size() << " rolls=" << rolls_
       << " long_term_kb=" << long_term_.size() << "\n";
    metrics_->observe_seconds(obs::Histogram::kServeQuerySeconds,
                              elapsed_seconds(start));
    return os.str();
  }
  if (what == "checkpoint") {
    auto path = write_checkpoint();
    metrics_->observe_seconds(obs::Histogram::kServeQuerySeconds,
                              elapsed_seconds(start));
    return path + "\n";
  }

  const auto snap = current_snapshot();
  if (const auto it = snap->results.find(what); it != snap->results.end()) {
    metrics_->observe_seconds(obs::Histogram::kServeQuerySeconds,
                              elapsed_seconds(start));
    return it->second;
  }

  const AnalysisContext ctx(*snap->trace, options_.parallel, metrics_);
  std::string result;
  if (what == "report") {
    std::ostringstream os;
    analysis::ReportOptions report;
    report.insights = options_.insights;
    analysis::write_characterization_report(ctx, os, report);
    result = os.str();
  } else if (what == "insights") {
    result =
        analysis::render_insights(analysis::evaluate_insights(ctx, options_.insights));
  } else if (what == "shares,private" || what == "shares,public") {
    const CloudType cloud = what == "shares,private" ? CloudType::kPrivate
                                                     : CloudType::kPublic;
    const auto shares =
        analysis::classify_population(ctx, cloud, options_.classify_max_vms);
    result = render_shares(cloud, shares);
  } else if (what == "figures") {
    std::ostringstream current;
    std::string name_open;
    std::ostringstream all;
    const auto open = [&](const std::string& name) -> std::ostream& {
      if (!name_open.empty()) {
        all << "== " << name_open << " ==\n" << current.str();
      }
      current.str({});
      current.clear();
      name_open = name;
      return current;
    };
    analysis::write_figure_csvs(ctx, open);
    if (!name_open.empty()) {
      all << "== " << name_open << " ==\n" << current.str();
    }
    result = all.str();
  } else if (what == "kb") {
    result = kb::KnowledgeBase(knowledge_records(*snap)).to_csv();
  } else if (what == "kb-longterm") {
    kb::KnowledgeBase blended;
    {
      std::lock_guard<std::mutex> lock(mu_);
      blended = long_term_;
    }
    kb::RefreshOptions refresh;
    refresh.extractor = options_.kb_options;
    kb::refresh(blended, ctx, refresh);
    result = blended.to_csv();
  } else {
    CL_CHECK_MSG(false, "unknown query: " << what);
  }
  snap->results.emplace(what, result);
  metrics_->observe_seconds(obs::Histogram::kServeQuerySeconds,
                            elapsed_seconds(start));
  return result;
}

std::string ServeEngine::render_shares(CloudType cloud,
                                       const analysis::PatternShares& s) {
  std::string out =
      "cloud,diurnal,stable,irregular,hourly_peak,classified\n";
  out += std::string(to_string(cloud));
  out += ',';
  append_double(out, s.diurnal);
  out += ',';
  append_double(out, s.stable);
  out += ',';
  append_double(out, s.irregular);
  out += ',';
  append_double(out, s.hourly_peak);
  out += ',';
  out += std::to_string(s.classified);
  out += '\n';
  return out;
}

// --- checkpoint / restore -------------------------------------------------

std::string ServeEngine::checkpoint() {
  std::lock_guard<std::mutex> qlock(query_mu_);
  return write_checkpoint();
}

std::string ServeEngine::write_checkpoint() {
  CL_CHECK_MSG(!options_.checkpoint_dir.empty(),
               "serve: no --checkpoint-dir configured");
  const auto snap = current_snapshot();
  const std::string path = options_.checkpoint_dir + "/serve-epoch-" +
                           std::to_string(snap->epoch) + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    CL_CHECK_MSG(out.good(), "cannot write checkpoint " << path);
    save_trace_snapshot(*snap->topology, *snap->trace, out);
  }
  std::ofstream meta(path + ".meta");
  CL_CHECK_MSG(meta.good(), "cannot write checkpoint meta " << path);
  std::uint64_t rolls;
  TimeGrid grid;
  std::size_t window_start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rolls = rolls_;
    grid = grid_;
    window_start = window_start_tick_;
  }
  meta << "serve-checkpoint,v1\n";
  meta << "grid," << grid.start << ',' << grid.step << ',' << grid.count
       << '\n';
  meta << "window_start," << window_start << '\n';
  meta << "epoch," << snap->epoch << '\n';
  meta << "rolls," << rolls << '\n';
  meta << "ids";
  for (const auto id : snap->original_ids) meta << ',' << id;
  meta << '\n';
  metrics_->add(obs::Counter::kServeCheckpoints);
  ++checkpoints_;
  return path;
}

void ServeEngine::restore_checkpoint(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  CL_CHECK_MSG(events_ == 0 && vms_.empty(),
               "restore requires a fresh engine");

  std::ifstream meta_in(path + ".meta");
  CL_CHECK_MSG(meta_in.good(), "cannot read checkpoint meta " << path);
  std::string line;
  CL_CHECK(std::getline(meta_in, line) && line == "serve-checkpoint,v1");
  std::size_t epoch = 0;
  std::vector<std::uint32_t> ids;
  while (std::getline(meta_in, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    if (f[0] == "grid") {
      CL_CHECK(f.size() == 4);
      grid_.start = std::stoll(f[1]);
      grid_.step = std::stoll(f[2]);
      grid_.count = std::stoul(f[3]);
    } else if (f[0] == "window_start") {
      window_start_tick_ = std::stoul(f[1]);
    } else if (f[0] == "epoch") {
      epoch = std::stoul(f[1]);
    } else if (f[0] == "rolls") {
      rolls_ = std::stoull(f[1]);
    } else if (f[0] == "ids") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        ids.push_back(static_cast<std::uint32_t>(std::stoul(f[i])));
      }
    }
  }
  CL_CHECK_MSG(grid_.count > 0, "checkpoint meta missing grid");

  std::ifstream in(path, std::ios::binary);
  CL_CHECK_MSG(in.good(), "cannot read checkpoint " << path);
  auto loaded = load_trace_snapshot(in);
  topology_ = std::shared_ptr<const Topology>(std::move(loaded.topology));
  const TraceStore& trace = *loaded.trace;
  CL_CHECK_MSG(ids.size() == trace.vms().size(),
               "checkpoint meta/vm count mismatch");
  header_seen_ = true;

  const TimeGrid win = window_grid_locked();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const VmRecord& rec = trace.vm(VmId(static_cast<VmId::underlying>(i)));
    VmState st;
    st.rec = rec;
    st.rec.id = VmId(ids[i]);
    if (rec.utilization != nullptr) {
      const auto* sampled =
          dynamic_cast<const SampledUtilization*>(rec.utilization.get());
      CL_CHECK_MSG(sampled != nullptr,
                   "checkpoint vm carries a non-sampled model");
      st.samples = std::make_shared<std::vector<double>>(grid_.count, 0.0);
      const auto cells = sampled->samples();
      for (std::size_t j = 0; j < cells.size(); ++j) {
        (*st.samples)[window_start_tick_ + j] = cells[j];
      }
      // The exact first-sample time is not recorded; anything before the
      // restored cutoff keeps the model included, matching pre-checkpoint
      // state.
      st.first_sample = std::numeric_limits<SimTime>::min();
    }
    st.rec.utilization = nullptr;
    ++population_gen_;
    touch_subscription(st.rec.subscription.value());
    vms_.emplace(ids[i], std::move(st));
  }
  // Resume exactly at the checkpoint's cutoff: events with t >= cutoff
  // replay on top.
  watermark_ = epoch >= win.count
                   ? win.end()
                   : win.start + static_cast<SimTime>(epoch) * win.step;
}

}  // namespace cloudlens::serve
