// Event-stream serialization: a TraceStore rendered as the line-delimited
// feed `cloudlens serve` ingests.
//
// The stream is the batch dataset re-expressed as what a cluster manager
// would actually emit over time — VM lifecycle events interleaved with
// 5-minute telemetry ticks, sorted by timestamp:
//
//   cloudlens-stream,v1
//   grid,<start>,<step>,<count>            full-horizon telemetry grid
//   topo,<node>,<rack>,...                 topology.csv rows, one per node
//   vm,<id>,<sub>,<svc|empty>,<cloud>,<party>,<region>,<cluster>,<rack>,
//      <node>,<cores>,<memory_gb>,<created>          (timestamp = created)
//   sample,<vm>,<timestamp>,<avg_cpu>      one completed 5-minute reading
//   del,<vm>,<timestamp>                   VM terminated at <timestamp>
//   end
//
// Events are strictly non-decreasing in timestamp; ties order
// vm < sample < del, then by VM id — so by the time any tick's samples
// arrive, every VM they reference exists. Doubles are printed with 17
// significant digits, so a reader recovers the writer's exact bits: the
// determinism contract (a streamed window byte-matches the batch pipeline
// over the same data) starts here.
//
// Sample rows mirror the CSV exporter's semantics: only ticks where the
// VM is alive, and only VMs that carry a utilization model. Zero readings
// are elided (an absent cell reads as 0.0 on ingest, exactly like an
// absent utilization.csv row under import_trace), except each streamed
// VM's first alive tick, which is always written so the reader knows the
// VM has telemetry at all.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

#include "common/sim_time.h"

namespace cloudlens {
class Topology;
class TraceStore;
}  // namespace cloudlens

namespace cloudlens::serve {

/// Render `trace` as an event stream on `out`. Deterministic: the same
/// trace always yields the same bytes.
void write_event_stream(const Topology& topology, const TraceStore& trace,
                        std::ostream& out);

/// Timestamp of one stream line, for feeds that need to split or pace the
/// stream (tests, benchmarks). Header, topo, and end lines have none.
std::optional<SimTime> event_timestamp(std::string_view line);

}  // namespace cloudlens::serve
