#include "serve/stream.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cloudsim/trace.h"
#include "cloudsim/trace_io.h"
#include "common/check.h"

namespace cloudlens::serve {

namespace {

/// Shortest decimal form that round-trips the exact double bits.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

bool is_positive_zero(double v) {
  return v == 0.0 && !std::signbit(v);
}

}  // namespace

void write_event_stream(const Topology& topology, const TraceStore& trace,
                        std::ostream& out) {
  const TimeGrid& grid = trace.telemetry_grid();
  out << "cloudlens-stream,v1\n";
  out << "grid," << grid.start << ',' << grid.step << ',' << grid.count
      << '\n';

  // Topology rows reuse the CSV exporter byte-for-byte (minus its header).
  {
    std::ostringstream topo;
    export_topology(topology, topo);
    std::istringstream rows(topo.str());
    std::string line;
    std::getline(rows, line);  // drop the header
    while (std::getline(rows, line)) {
      if (!line.empty()) out << "topo," << line << '\n';
    }
  }

  // Lifecycle events, sorted by (timestamp, id). VM ids break ties, so
  // ingestion order is deterministic even when many VMs share a second.
  std::vector<VmId> creations;
  std::vector<VmId> deletions;
  creations.reserve(trace.vms().size());
  for (const auto& vm : trace.vms()) {
    creations.push_back(vm.id);
    if (vm.ended()) deletions.push_back(vm.id);
  }
  std::sort(creations.begin(), creations.end(), [&](VmId a, VmId b) {
    const auto& va = trace.vm(a);
    const auto& vb = trace.vm(b);
    if (va.created != vb.created) return va.created < vb.created;
    return a < b;
  });
  std::sort(deletions.begin(), deletions.end(), [&](VmId a, VmId b) {
    const auto& va = trace.vm(a);
    const auto& vb = trace.vm(b);
    if (va.deleted != vb.deleted) return va.deleted < vb.deleted;
    return a < b;
  });

  // Merge creations, per-tick samples, and deletions into one time-ordered
  // feed. The alive set tracks VMs with a utilization model between their
  // creation and deletion events; sample emission re-checks alive_at so a
  // VM deleted exactly on a tick gets no reading for it.
  std::string line;
  const auto emit_vm = [&](const VmRecord& vm) {
    line.clear();
    line += "vm,";
    line += std::to_string(vm.id.value());
    line += ',';
    line += std::to_string(vm.subscription.value());
    line += ',';
    if (vm.service.valid()) line += std::to_string(vm.service.value());
    line += ',';
    line += std::string(to_string(vm.cloud));
    line += ',';
    line += std::string(to_string(vm.party));
    line += ',';
    line += std::to_string(vm.region.value());
    line += ',';
    line += std::to_string(vm.cluster.value());
    line += ',';
    line += std::to_string(vm.rack.value());
    line += ',';
    line += std::to_string(vm.node.value());
    line += ',';
    append_double(line, vm.cores);
    line += ',';
    append_double(line, vm.memory_gb);
    line += ',';
    line += std::to_string(vm.created);
    line += '\n';
    out << line;
  };

  std::set<VmId> sampled;  // VMs with a model, created and not yet deleted
  std::vector<bool> any_emitted(trace.vms().size(), false);
  std::size_t ci = 0, di = 0, tick = 0;
  for (;;) {
    const SimTime tc = ci < creations.size()
                           ? trace.vm(creations[ci]).created
                           : kNoEnd;
    const SimTime td = di < deletions.size()
                           ? trace.vm(deletions[di]).deleted
                           : kNoEnd;
    const SimTime tt = tick < grid.count ? grid.at(tick) : kNoEnd;
    if (tc == kNoEnd && td == kNoEnd && tt == kNoEnd) break;

    if (tc <= tt && tc <= td) {  // creation wins ties
      const VmRecord& vm = trace.vm(creations[ci++]);
      emit_vm(vm);
      if (vm.utilization != nullptr) sampled.insert(vm.id);
      continue;
    }
    if (tt <= td) {  // sample beats deletion at the same instant
      for (const VmId id : sampled) {
        const VmRecord& vm = trace.vm(id);
        if (!vm.alive_at(tt)) continue;
        const double v = vm.utilization->at(tt);
        if (is_positive_zero(v) && any_emitted[id.value()]) continue;
        any_emitted[id.value()] = true;
        line.clear();
        line += "sample,";
        line += std::to_string(id.value());
        line += ',';
        line += std::to_string(tt);
        line += ',';
        append_double(line, v);
        line += '\n';
        out << line;
      }
      ++tick;
      continue;
    }
    const VmRecord& vm = trace.vm(deletions[di++]);
    sampled.erase(vm.id);
    out << "del," << vm.id.value() << ',' << vm.deleted << '\n';
  }
  out << "end\n";
}

std::optional<SimTime> event_timestamp(std::string_view line) {
  const auto field = [&](std::size_t index) -> std::optional<SimTime> {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < index; ++i) {
      pos = line.find(',', pos);
      if (pos == std::string_view::npos) return std::nullopt;
      ++pos;
    }
    const auto end = line.find(',', pos);
    const std::string token(
        line.substr(pos, end == std::string_view::npos ? end : end - pos));
    if (token.empty()) return std::nullopt;
    return std::stoll(token);
  };
  if (line.rfind("vm,", 0) == 0) return field(12);
  if (line.rfind("sample,", 0) == 0) return field(2);
  if (line.rfind("del,", 0) == 0) return field(2);
  return std::nullopt;
}

}  // namespace cloudlens::serve
