// ServeEngine: streaming ingest + incremental analysis over a rolling
// telemetry window — the library behind `cloudlens serve`.
//
// The engine consumes the event stream of serve/stream.h one line at a
// time and keeps enough state — VM records, per-VM sample buffers, the
// current watermark — to answer every batch query (characterization
// report, insight verdicts, classifier shares, figure CSVs, knowledge
// base) at any moment during ingestion.
//
// ## Determinism contract
//
// Queries are answered against an immutable *snapshot* that is a pure
// function of (stream content, epoch), where the epoch is the number of
// completed telemetry ticks: tick i is complete once the watermark
// reaches grid.at(i+1)... conservatively, once an event with a strictly
// later timestamp has arrived. A snapshot at epoch E contains exactly the
// events with timestamp < grid.at(E) (every event, once the window is
// fully complete), materialized as a TraceStore with the same placeholder
// subscription/service semantics as the CSV importer and full-window
// SampledUtilization models whose not-yet-streamed cells read 0.0 —
// byte-for-byte what import_trace would build from CSVs holding the same
// prefix of rows. Consequently, once the stream is fully ingested, every
// query byte-matches the batch pipeline over the same data, at any thread
// count (serve_equivalence_test pins this).
//
// ## Concurrency
//
// Ingestion mutates engine state under one mutex; queries build a fresh
// immutable TraceStore *shell* under that mutex — services, subscriptions
// and a valid-ticks clamp — around a shared frozen record array, publish
// it as a shared_ptr snapshot, and run the actual analyses outside any
// engine lock — the release-store view-publication idiom the telemetry
// shard store uses, applied at the engine level. The record array is
// never deep-copied per epoch: records are frozen once per population
// generation (create/del/first-sample/roll events) and adopted by every
// snapshot until a VM straddles the cutoff, and each record's utilization
// model is a zero-copy window over the live sample buffer (safe because
// stream timestamps are non-decreasing: a cell can only be written while
// its tick is incomplete, and incomplete ticks sit beyond the snapshot's
// sample_valid_ticks clamp, which zero-fills them in every row read).
// Snapshots and per-(epoch, query) results are cached, so repeated
// queries at an unchanged epoch are reuses, not recomputations. Queries
// serialize among themselves but never block ingestion for longer than
// the shell build.
//
// ## Incremental knowledge base
//
// KB records are cached per subscription with a dirty generation bumped
// by every event touching the subscription; a query re-extracts only
// dirty subscriptions (serve.kb_records_{reused,recomputed} count the
// split). Reuse is byte-safe because extraction is a pure function of the
// subscription's VM rows and sample cells, and the snapshot grid is the
// whole window at every epoch.
//
// ## Rolling window
//
// With window_weeks > 0, the analysis window holds that many weeks of
// ticks. When the watermark crosses the window's end, the engine folds a
// full-window KB extraction into the long-term knowledge base
// (kb::fold_record's EWMA blend), advances the window by whole weeks, and
// evicts VMs that ended before the new window start (freeing their sample
// buffers — resident state is bounded by the window, not the stream).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/insights.h"
#include "common/parallel.h"
#include "common/sim_time.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"

namespace cloudlens {
class Topology;
class TraceStore;
}  // namespace cloudlens

namespace cloudlens::serve {

struct ServeOptions {
  /// Rolling window width in whole weeks; 0 = never roll (the window is
  /// the stream's full grid).
  std::uint64_t window_weeks = 0;
  /// Parallelism for the analyses behind queries (results are
  /// bit-identical at any setting, as everywhere in cloudlens).
  ParallelConfig parallel;
  /// Metrics registry for serve.* instrumentation (null = process global).
  obs::MetricsRegistry* metrics = nullptr;
  /// Extractor knobs for the kb queries and window-roll folds.
  kb::ExtractorOptions kb_options;
  /// Classifier sample cap for the shares query (matches the insight
  /// default so serve shares line up with batch evaluate_insights).
  std::size_t classify_max_vms = 800;
  /// Analysis knobs for report/insights queries.
  analysis::InsightOptions insights;
  /// Where `checkpoint()` writes snapshot files (empty = checkpointing
  /// disabled).
  std::string checkpoint_dir;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // --- ingest ------------------------------------------------------------

  /// Apply one stream line (header, grid, topo, vm, sample, del, end;
  /// blank lines are ignored). Throws CheckError on malformed input or a
  /// timestamp regression. Safe to call while queries run.
  void ingest_line(std::string_view line);

  /// Drain a whole stream; one serve.ingest_batch_seconds observation.
  void ingest(std::istream& in);

  // --- progress ----------------------------------------------------------

  std::uint64_t events_ingested() const;
  /// Completed ticks in the current window.
  std::size_t epoch() const;
  /// Largest event timestamp seen (kNoEnd sentinel never appears).
  SimTime watermark() const;
  /// Exclusive upper bound on event timestamps a snapshot at the current
  /// epoch includes.
  SimTime cutoff() const;
  std::size_t resident_vms() const;
  std::uint64_t window_rolls() const;

  // --- queries -----------------------------------------------------------

  /// Render one query against the current epoch's snapshot. Kinds:
  ///   report            markdown characterization report
  ///   insights          rendered four-insight verdicts
  ///   shares,<cloud>    classifier shares CSV for private|public
  ///   figures           every figure CSV, framed by "== name ==" lines
  ///   kb                current-window knowledge base CSV (incremental)
  ///   kb-longterm       rolled long-term KB blended with current window
  ///   stats             ingest progress counters
  ///   checkpoint        write a snapshot file; returns its path
  /// Unknown kinds throw CheckError.
  std::string query(const std::string& what);

  /// The current epoch's immutable snapshot trace (shared with any
  /// concurrent queries). Never returns null; the trace's telemetry panel
  /// is disabled (analyses use on-demand rows — identical bits).
  std::shared_ptr<const TraceStore> snapshot_trace();

  /// Current-window KB records via the incremental per-subscription cache.
  kb::KnowledgeBase knowledge();

  /// Long-term KB: window-roll folds only (no current-window blend).
  kb::KnowledgeBase long_term_knowledge() const;

  // --- checkpoint / restore ----------------------------------------------

  /// Write the current snapshot as a binary trace snapshot plus a small
  /// .meta sidecar (epoch, window position, original VM ids) into
  /// checkpoint_dir. Returns the snapshot path.
  std::string checkpoint();

  /// Rebuild engine state from a checkpoint() artifact. Must be called
  /// before any ingest; continue feeding events with timestamp >= the
  /// checkpoint's cutoff.
  void restore_checkpoint(const std::string& path);

 private:
  struct VmState;
  struct Snapshot;
  struct FrozenPopulation;

  // All pre-locked helpers expect mu_ held.
  void apply_vm_line(const std::vector<std::string>& f, SimTime t);
  void advance_watermark(SimTime t);
  void maybe_roll_window();
  void finalize_topology();
  /// Parses the topo rows streamed so far into a Topology without
  /// latching them — queries may arrive mid-topology-section.
  std::shared_ptr<const Topology> parse_topology_locked() const;
  /// Expects query_mu_ held; takes mu_ internally for the state copy.
  std::string write_checkpoint();
  static std::string render_shares(CloudType cloud,
                                   const analysis::PatternShares& shares);
  std::size_t epoch_locked() const;
  SimTime cutoff_locked() const;
  TimeGrid window_grid_locked() const;
  void touch_subscription(std::uint32_t sub);
  std::shared_ptr<Snapshot> snapshot_locked();
  std::shared_ptr<Snapshot> current_snapshot();
  std::vector<kb::SubscriptionKnowledge> knowledge_records(
      const Snapshot& snap);

  ServeOptions options_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mu_;           // engine state below
  std::vector<std::string> topo_rows_;
  std::shared_ptr<const Topology> topology_;
  TimeGrid grid_{};                 // full stream grid (count 0 = unset)
  bool header_seen_ = false;
  SimTime watermark_;
  std::uint64_t events_ = 0;
  std::uint64_t rolls_ = 0;
  std::size_t window_start_tick_ = 0;
  /// Resident VMs keyed by original stream id (ascending iteration order
  /// gives the importer's row order).
  std::map<std::uint32_t, VmState> vms_;
  /// Per-subscription dirty generation (grows with the id universe).
  std::vector<std::uint64_t> sub_generation_;
  kb::KnowledgeBase long_term_;
  std::shared_ptr<Snapshot> cached_snapshot_;
  /// Immutable record array shared by epoch snapshots (built once per
  /// population generation, reused while no VM straddles the cutoff).
  std::shared_ptr<const FrozenPopulation> frozen_;
  /// Bumped by every event that can change a snapshot's record array:
  /// vm create, del, a VM's first sample (model attachment), window
  /// rolls, restore.
  std::uint64_t population_gen_ = 0;

  std::mutex query_mu_;             // serializes query-side caches
  struct KbCacheEntry {
    kb::SubscriptionKnowledge record;
    std::uint64_t generation = 0;
    bool has_record = false;        // extraction returned a record
  };
  std::unordered_map<std::uint32_t, KbCacheEntry> kb_cache_;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace cloudlens::serve
