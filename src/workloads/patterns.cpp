#include "workloads/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "stats/kernels/kernels.h"

namespace cloudlens::workloads {
namespace {

/// Per-tick noise keys for a grid, ready for the batched kernel fill.
std::vector<std::int64_t> tick_noise_keys(const TimeGrid& grid) {
  std::vector<std::int64_t> keys(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i)
    keys[i] = grid.at(i) / kTelemetryInterval;
  return keys;
}

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Local fractional hour-of-day after applying a time-zone offset.
double local_hour(SimTime t, double tz_offset_hours) {
  double h = frac_hour_of_day(t) + tz_offset_hours;
  h = std::fmod(h, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

/// Weekday/weekend decision in *local* time.
bool local_weekend(SimTime t, double tz_offset_hours) {
  const auto shifted =
      t + static_cast<SimTime>(tz_offset_hours * double(kHour));
  return is_weekend(shifted);
}

// --- Batch-sampling caches ----------------------------------------------
//
// The batched sample() overrides hoist everything whose value repeats
// across the grid out of the per-tick loop: the diurnal envelope (exactly
// periodic in t mod day), the smooth-noise anchors (one hash per hour, not
// two per tick) and interpolation weights (periodic in t mod hour), the
// spike decision (one hash per episode), and the hourly-peak shape
// (periodic in t mod half-hour). All cached values are produced by the
// *same* expressions the per-tick path uses, so sample() == at() bit for
// bit — which the telemetry panel and the seed-stability of every analysis
// depend on.

/// Anchor key used by smooth_noise: floor division of t by the step.
std::int64_t anchor_key(SimTime t, SimDuration anchor_step) {
  return t >= 0 ? t / anchor_step : (t - anchor_step + 1) / anchor_step;
}

/// Cosine interpolation weight at t between anchors k and k+1.
double smooth_weight(SimTime t, std::int64_t k, SimDuration anchor_step) {
  const double frac = static_cast<double>(t - k * anchor_step) /
                      static_cast<double>(anchor_step);
  return 0.5 - 0.5 * std::cos(std::numbers::pi * frac);
}

double cos_lerp(double a, double b, double w) {
  return a * (1.0 - w) + b * w;
}

/// Grids eligible for the hoisted loops: a positive step that divides an
/// hour evenly, so day- and hour-periodic quantities cycle in whole ticks.
bool batch_grid_ok(const TimeGrid& grid) {
  return grid.count > 0 && grid.step > 0 && kHour % grid.step == 0;
}

/// Values of a day-periodic function of t, tabulated per day offset.
class DayPeriodicTable {
 public:
  template <typename Fn>
  DayPeriodicTable(const TimeGrid& grid, Fn&& fn)
      : period_(static_cast<std::size_t>(kDay / grid.step)) {
    const std::size_t m = std::min(period_, grid.count);
    values_.resize(m);
    for (std::size_t j = 0; j < m; ++j) values_[j] = fn(grid.at(j));
  }
  double at(std::size_t i) const { return values_[i % period_]; }

 private:
  std::size_t period_;
  std::vector<double> values_;
};

/// smooth_noise over a regular grid: anchors hashed once per anchor step,
/// interpolation weights tabulated once per phase.
class SmoothNoiseCache {
 public:
  SmoothNoiseCache(const TimeGrid& grid, std::uint64_t seed,
                   SimDuration anchor_step)
      : anchor_step_(anchor_step),
        period_(static_cast<std::size_t>(anchor_step / grid.step)) {
    CL_CHECK(anchor_step > 0 && anchor_step % grid.step == 0);
    const std::size_t m = std::min(period_, grid.count);
    w_.resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      const SimTime t = grid.at(j);
      w_[j] = smooth_weight(t, anchor_key(t, anchor_step), anchor_step);
    }
    k0_ = anchor_key(grid.at(0), anchor_step);
    const std::int64_t k_last =
        anchor_key(grid.at(grid.count - 1), anchor_step);
    std::vector<std::int64_t> keys(static_cast<std::size_t>(k_last - k0_) + 2);
    for (std::size_t j = 0; j < keys.size(); ++j)
      keys[j] = k0_ + static_cast<std::int64_t>(j);
    anchors_.resize(keys.size());
    stats::kernels::hash_normal_fill(seed, keys, anchors_);
  }

  double at(SimTime t, std::size_t i) const {
    const auto k =
        static_cast<std::size_t>(anchor_key(t, anchor_step_) - k0_);
    return cos_lerp(anchors_[k], anchors_[k + 1], w_[i % period_]);
  }

 private:
  SimDuration anchor_step_;
  std::size_t period_;
  std::int64_t k0_ = 0;
  std::vector<double> w_;
  std::vector<double> anchors_;
};

}  // namespace

std::string_view to_string(PatternType t) {
  switch (t) {
    case PatternType::kDiurnal: return "diurnal";
    case PatternType::kStable: return "stable";
    case PatternType::kIrregular: return "irregular";
    default: return "hourly-peak";
  }
}

double hash_uniform(std::uint64_t seed, std::int64_t key) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(key) * 0xd1342543de82ef95ULL));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

double hash_normal(std::uint64_t seed, std::int64_t key) {
  // Single source of truth lives in the kernel tier (the scalar oracle of
  // the batched hash_normal_fill family).
  return stats::kernels::hash_normal_one(seed, key);
}

double smooth_noise(std::uint64_t seed, SimTime t, SimDuration anchor_step) {
  const std::int64_t k = anchor_key(t, anchor_step);
  const double a = hash_normal(seed, k);
  const double b = hash_normal(seed, k + 1);
  // Cosine interpolation for C1-smooth wander.
  return cos_lerp(a, b, smooth_weight(t, k, anchor_step));
}

double diurnal_envelope(double local_hour, double peak_hour,
                        double width_hours) {
  // Circular distance from the peak hour.
  double d = std::fabs(local_hour - peak_hour);
  d = std::min(d, 24.0 - d);
  if (d >= width_hours / 2) return 0.0;
  return 0.5 + 0.5 * std::cos(2.0 * std::numbers::pi * d / width_hours);
}

// --- Diurnal -------------------------------------------------------------

double DiurnalUtilization::eval(SimTime t, double envelope, double smooth,
                                double tick_noise) const {
  const double peak =
      local_weekend(t, p_.tz_offset_hours) ? p_.weekend_peak : p_.weekday_peak;
  const double noise =
      p_.noise_sigma * tick_noise + 0.5 * p_.noise_sigma * smooth;
  return clamp01(p_.base + (peak - p_.base) * envelope + noise);
}

double DiurnalUtilization::at(SimTime t) const {
  const double h = local_hour(t, p_.tz_offset_hours);
  return eval(t, diurnal_envelope(h, p_.peak_hour, p_.width_hours),
              smooth_noise(seed_ ^ 0xABCDULL, t, kHour),
              hash_normal(seed_, t / kTelemetryInterval));
}

void DiurnalUtilization::sample(const TimeGrid& grid,
                                std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  if (!batch_grid_ok(grid)) {
    UtilizationModel::sample(grid, out);
    return;
  }
  const DayPeriodicTable envelope(grid, [this](SimTime t) {
    return diurnal_envelope(local_hour(t, p_.tz_offset_hours), p_.peak_hour,
                            p_.width_hours);
  });
  const SmoothNoiseCache smooth(grid, seed_ ^ 0xABCDULL, kHour);
  std::vector<double> tick_noise(grid.count);
  stats::kernels::hash_normal_fill(seed_, tick_noise_keys(grid), tick_noise);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    out[i] = eval(t, envelope.at(i), smooth.at(t, i), tick_noise[i]);
  }
}

// --- Stable --------------------------------------------------------------

double StableUtilization::eval(SimTime t, double smooth,
                               double tick_noise) const {
  (void)t;
  const double wander = p_.wander_sigma * smooth;
  const double noise = p_.noise_sigma * tick_noise;
  return clamp01(p_.level + wander + noise);
}

double StableUtilization::at(SimTime t) const {
  return eval(t, smooth_noise(seed_, t, kHour),
              hash_normal(seed_, t / kTelemetryInterval));
}

void StableUtilization::sample(const TimeGrid& grid,
                               std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  if (!batch_grid_ok(grid)) {
    UtilizationModel::sample(grid, out);
    return;
  }
  const SmoothNoiseCache smooth(grid, seed_, kHour);
  std::vector<double> tick_noise(grid.count);
  stats::kernels::hash_normal_fill(seed_, tick_noise_keys(grid), tick_noise);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    out[i] = eval(t, smooth.at(t, i), tick_noise[i]);
  }
}

// --- Irregular -----------------------------------------------------------

double IrregularUtilization::eval(SimTime t, double level,
                                  double tick_noise) const {
  (void)t;
  const double noise = p_.noise_sigma * tick_noise;
  return clamp01(level + noise);
}

double IrregularUtilization::at(SimTime t) const {
  const std::int64_t episode = t / p_.episode;
  const bool spiking = hash_uniform(seed_ ^ 0x5157ULL, episode) < p_.spike_prob;
  return eval(t, spiking ? p_.spike_level : p_.base,
              hash_normal(seed_, t / kTelemetryInterval));
}

void IrregularUtilization::sample(const TimeGrid& grid,
                                  std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  if (grid.count == 0 || grid.step <= 0 || p_.episode <= 0) {
    UtilizationModel::sample(grid, out);
    return;
  }
  // One spike decision per episode instead of one hash per tick.
  // Truncating division of a nondecreasing t is nondecreasing, so the
  // episode range is [first, last].
  const std::int64_t first = grid.at(0) / p_.episode;
  const std::int64_t last = grid.at(grid.count - 1) / p_.episode;
  std::vector<double> level(static_cast<std::size_t>(last - first) + 1);
  for (std::size_t e = 0; e < level.size(); ++e) {
    const std::int64_t episode = first + static_cast<std::int64_t>(e);
    const bool spiking =
        hash_uniform(seed_ ^ 0x5157ULL, episode) < p_.spike_prob;
    level[e] = spiking ? p_.spike_level : p_.base;
  }
  std::vector<double> tick_noise(grid.count);
  stats::kernels::hash_normal_fill(seed_, tick_noise_keys(grid), tick_noise);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    const auto e = static_cast<std::size_t>(t / p_.episode - first);
    out[i] = eval(t, level[e], tick_noise[i]);
  }
}

// --- Hourly-peak ---------------------------------------------------------

double HourlyPeakUtilization::eval(SimTime t, double envelope, bool has_peak,
                                   double shape, double tick_noise) const {
  double env = envelope;
  if (local_weekend(t, p_.tz_offset_hours)) env *= p_.weekend_scale;
  const bool at_half = (((t + kHour / 4) / (kHour / 2)) % 2) != 0;
  double peak_contrib = 0.0;
  if (has_peak) {
    const double height = (p_.peak - p_.base) *
                          (at_half ? p_.half_hour_peak_scale : 1.0) * env;
    peak_contrib = height * shape;
  }
  const double noise = p_.noise_sigma * tick_noise;
  return clamp01(p_.base + peak_contrib + noise);
}

namespace {

/// Distance (seconds) from t to the nearest :00 or :30 mark.
SimTime half_hour_distance(SimTime t) {
  const SimTime in_half_hour = ((t % (kHour / 2)) + kHour / 2) % (kHour / 2);
  return std::min<SimTime>(in_half_hour, kHour / 2 - in_half_hour);
}

}  // namespace

double HourlyPeakUtilization::at(SimTime t) const {
  const double h = local_hour(t, p_.tz_offset_hours);
  const double env = diurnal_envelope(h, p_.peak_hour, p_.width_hours);
  const SimTime dist = half_hour_distance(t);
  const bool has_peak = dist < p_.peak_width;
  const double shape =
      has_peak ? 0.5 + 0.5 * std::cos(std::numbers::pi * double(dist) /
                                      double(p_.peak_width))
               : 0.0;
  return eval(t, env, has_peak, shape,
              hash_normal(seed_, t / kTelemetryInterval));
}

void HourlyPeakUtilization::sample(const TimeGrid& grid,
                                   std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  if (!batch_grid_ok(grid) || (kHour / 2) % grid.step != 0) {
    UtilizationModel::sample(grid, out);
    return;
  }
  const DayPeriodicTable envelope(grid, [this](SimTime t) {
    return diurnal_envelope(local_hour(t, p_.tz_offset_hours), p_.peak_hour,
                            p_.width_hours);
  });
  // Peak shape repeats every half hour of grid phase.
  const std::size_t half_ticks =
      static_cast<std::size_t>((kHour / 2) / grid.step);
  const std::size_t m = std::min(half_ticks, grid.count);
  std::vector<double> shape(m, 0.0);
  std::vector<char> has_peak(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    const SimTime dist = half_hour_distance(grid.at(j));
    if (dist < p_.peak_width) {
      has_peak[j] = 1;
      shape[j] = 0.5 + 0.5 * std::cos(std::numbers::pi * double(dist) /
                                      double(p_.peak_width));
    }
  }
  std::vector<double> tick_noise(grid.count);
  stats::kernels::hash_normal_fill(seed_, tick_noise_keys(grid), tick_noise);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    const std::size_t j = i % half_ticks;
    out[i] = eval(t, envelope.at(i), has_peak[j] != 0, shape[j],
                  tick_noise[i]);
  }
}

std::optional<PatternType> ground_truth_pattern(const UtilizationModel* m) {
  if (const auto* p = dynamic_cast<const PatternModel*>(m))
    return p->pattern();
  return std::nullopt;
}

}  // namespace cloudlens::workloads
