#include "workloads/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace cloudlens::workloads {
namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Local fractional hour-of-day after applying a time-zone offset.
double local_hour(SimTime t, double tz_offset_hours) {
  double h = frac_hour_of_day(t) + tz_offset_hours;
  h = std::fmod(h, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

/// Weekday/weekend decision in *local* time.
bool local_weekend(SimTime t, double tz_offset_hours) {
  const auto shifted =
      t + static_cast<SimTime>(tz_offset_hours * double(kHour));
  return is_weekend(shifted);
}

}  // namespace

std::string_view to_string(PatternType t) {
  switch (t) {
    case PatternType::kDiurnal: return "diurnal";
    case PatternType::kStable: return "stable";
    case PatternType::kIrregular: return "irregular";
    default: return "hourly-peak";
  }
}

double hash_uniform(std::uint64_t seed, std::int64_t key) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(key) * 0xd1342543de82ef95ULL));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

double hash_normal(std::uint64_t seed, std::int64_t key) {
  // Irwin–Hall with n = 4: mean 2, variance 4/12; rescale to N(0,1) approx.
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(key) * 0x2545f4914f6cdd1dULL));
  double sum = 0;
  for (int i = 0; i < 4; ++i)
    sum += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return (sum - 2.0) * std::sqrt(3.0);
}

double smooth_noise(std::uint64_t seed, SimTime t, SimDuration anchor_step) {
  const std::int64_t k = t >= 0 ? t / anchor_step : (t - anchor_step + 1) / anchor_step;
  const double frac =
      static_cast<double>(t - k * anchor_step) / static_cast<double>(anchor_step);
  const double a = hash_normal(seed, k);
  const double b = hash_normal(seed, k + 1);
  // Cosine interpolation for C1-smooth wander.
  const double w = 0.5 - 0.5 * std::cos(std::numbers::pi * frac);
  return a * (1.0 - w) + b * w;
}

double diurnal_envelope(double local_hour, double peak_hour,
                        double width_hours) {
  // Circular distance from the peak hour.
  double d = std::fabs(local_hour - peak_hour);
  d = std::min(d, 24.0 - d);
  if (d >= width_hours / 2) return 0.0;
  return 0.5 + 0.5 * std::cos(2.0 * std::numbers::pi * d / width_hours);
}

double DiurnalUtilization::at(SimTime t) const {
  const double h = local_hour(t, p_.tz_offset_hours);
  const double peak =
      local_weekend(t, p_.tz_offset_hours) ? p_.weekend_peak : p_.weekday_peak;
  const double env = diurnal_envelope(h, p_.peak_hour, p_.width_hours);
  const double noise =
      p_.noise_sigma * hash_normal(seed_, t / kTelemetryInterval) +
      0.5 * p_.noise_sigma * smooth_noise(seed_ ^ 0xABCDULL, t, kHour);
  return clamp01(p_.base + (peak - p_.base) * env + noise);
}

double StableUtilization::at(SimTime t) const {
  const double wander = p_.wander_sigma * smooth_noise(seed_, t, kHour);
  const double noise = p_.noise_sigma * hash_normal(seed_, t / kTelemetryInterval);
  return clamp01(p_.level + wander + noise);
}

double IrregularUtilization::at(SimTime t) const {
  const std::int64_t episode = t / p_.episode;
  const bool spiking = hash_uniform(seed_ ^ 0x5157ULL, episode) < p_.spike_prob;
  const double level = spiking ? p_.spike_level : p_.base;
  const double noise = p_.noise_sigma * hash_normal(seed_, t / kTelemetryInterval);
  return clamp01(level + noise);
}

double HourlyPeakUtilization::at(SimTime t) const {
  const double h = local_hour(t, p_.tz_offset_hours);
  double env = diurnal_envelope(h, p_.peak_hour, p_.width_hours);
  if (local_weekend(t, p_.tz_offset_hours)) env *= p_.weekend_scale;

  // Distance to the nearest :00 or :30 mark.
  const SimTime in_half_hour = ((t % (kHour / 2)) + kHour / 2) % (kHour / 2);
  const SimTime dist = std::min<SimTime>(in_half_hour, kHour / 2 - in_half_hour);
  const bool at_half = (((t + kHour / 4) / (kHour / 2)) % 2) != 0;

  double peak_contrib = 0.0;
  if (dist < p_.peak_width) {
    const double shape =
        0.5 + 0.5 * std::cos(std::numbers::pi * double(dist) / double(p_.peak_width));
    const double height = (p_.peak - p_.base) *
                          (at_half ? p_.half_hour_peak_scale : 1.0) * env;
    peak_contrib = height * shape;
  }
  const double noise = p_.noise_sigma * hash_normal(seed_, t / kTelemetryInterval);
  return clamp01(p_.base + peak_contrib + noise);
}

std::optional<PatternType> ground_truth_pattern(const UtilizationModel* m) {
  if (const auto* p = dynamic_cast<const PatternModel*>(m))
    return p->pattern();
  return std::nullopt;
}

}  // namespace cloudlens::workloads
