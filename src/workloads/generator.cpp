#include "workloads/generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "cloudsim/population.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "workloads/pattern_snapshot.h"

namespace cloudlens::workloads {
namespace {

/// Normalized weights of a PatternMix in enum order.
std::array<double, 4> mix_weights(const PatternMix& mix) {
  return {mix.diurnal, mix.stable, mix.irregular, mix.hourly_peak};
}

/// Stream-family salts for shard_seed: one per parallel emission site, so
/// an owner shard and a region shard with equal indexes never collide.
constexpr std::uint64_t kStandingStream = 0x5354414e44494e47ULL;  // "STANDING"
constexpr std::uint64_t kChurnStream = 0x726368757274696dULL;

}  // namespace

WorkloadGenerator::WorkloadGenerator(const Topology& topology,
                                     std::uint64_t seed,
                                     const ParallelConfig& parallel)
    : topo_(topology), rng_(seed), parallel_(parallel) {}

void WorkloadGenerator::assign_patterns(const PatternMix& mix,
                                        std::vector<Owner>& owners) {
  // Fig. 5(d) reports VM-level pattern shares, but a pattern is a property
  // of a whole service/subscription (all its VMs behave alike). Because
  // deployment sizes are heavy-tailed, independently sampling one pattern
  // per owner makes the VM-weighted shares extremely noisy at small scale.
  // A largest-remainder balancer over VM counts keeps the realized
  // VM-level shares tight around the configured mix at any scale.
  const auto weights = mix_weights(mix);
  double total_weight = 0;
  for (const double w : weights) total_weight += w;
  CL_CHECK(total_weight > 0);

  std::array<double, 4> assigned{};  // VMs assigned per pattern so far
  double assigned_total = 0;
  for (auto& owner : owners) {
    double vms = 0;
    for (const int n : owner.standing_per_region) vms += n;
    vms = std::max(vms, 1.0);
    // Pick the pattern whose share lags its target the most after adding
    // this owner's VMs.
    int best = 0;
    double best_deficit = -1e18;
    for (int t = 0; t < 4; ++t) {
      const double target = weights[static_cast<std::size_t>(t)] / total_weight;
      const double share = (assigned[static_cast<std::size_t>(t)] + vms) /
                           (assigned_total + vms);
      const double deficit = target - share;
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = t;
      }
    }
    owner.pattern = static_cast<PatternType>(best);
    assigned[static_cast<std::size_t>(best)] += vms;
    assigned_total += vms;
  }
}

void WorkloadGenerator::sample_pattern_params(const CloudProfile& profile,
                                              Owner& owner) {
  owner.phase_jitter_hours =
      rng_.uniform(-profile.phase_jitter_hours, profile.phase_jitter_hours);

  // Diurnal: population amplitudes are modest (the paper's Fig. 6 shows the
  // 75th utilization percentile staying below ~30%); Fig. 5(a)'s sample
  // with a 60% peak is from the upper tail.
  owner.diurnal.base = rng_.uniform(0.02, 0.10);
  owner.diurnal.weekday_peak = rng_.uniform(0.15, 0.60);
  owner.diurnal.weekend_peak =
      owner.diurnal.weekday_peak * rng_.uniform(0.25, 0.50);
  owner.diurnal.peak_hour = rng_.uniform(12.0, 16.0);
  owner.diurnal.width_hours = rng_.uniform(10.0, 16.0);
  owner.diurnal.noise_sigma = rng_.uniform(0.01, 0.03);

  owner.stable.level = rng_.uniform(0.08, 0.45);
  owner.stable.noise_sigma = rng_.uniform(0.008, 0.02);
  owner.stable.wander_sigma = rng_.uniform(0.005, 0.015);

  owner.irregular.base = rng_.uniform(0.03, 0.09);
  owner.irregular.spike_level = rng_.uniform(0.50, 0.85);
  owner.irregular.spike_prob = rng_.uniform(0.01, 0.06);

  owner.hourly.base = rng_.uniform(0.05, 0.12);
  owner.hourly.peak = rng_.uniform(0.40, 0.80);
  owner.hourly.peak_hour = rng_.uniform(11.0, 15.0);
  owner.hourly.width_hours = rng_.uniform(10.0, 13.0);

  owner.sku_index = AliasTable(profile.catalog.weights()).sample(rng_);
}

std::vector<RegionId> WorkloadGenerator::sample_regions(std::size_t k) {
  const auto regions = topo_.regions();
  CL_CHECK(!regions.empty());
  k = std::min(k, regions.size());
  // Partial Fisher–Yates over region indices.
  std::vector<RegionId::underlying> idx(regions.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<RegionId::underlying>(i);
  std::vector<RegionId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.uniform_int(idx.size() - i));
    std::swap(idx[i], idx[j]);
    out.emplace_back(idx[i]);
  }
  return out;
}

double WorkloadGenerator::anchor_tz(const CloudProfile& profile,
                                    const Owner& owner,
                                    RegionId region) const {
  if (owner.region_agnostic) {
    // Geo-load-balanced: one global demand curve regardless of region.
    return profile.agnostic_anchor_tz + owner.phase_jitter_hours * 0.1;
  }
  return topo_.region(region).tz_offset_hours + owner.phase_jitter_hours;
}

std::shared_ptr<const UtilizationModel> WorkloadGenerator::instantiate(
    const CloudProfile& profile, const Owner& owner, RegionId region,
    Rng& rng) const {
  const std::uint64_t seed = rng();
  const double tz = anchor_tz(profile, owner, region);
  // Per-VM jitter: VMs of one owner share a pattern family but are not
  // clones — amplitudes, phases, and noise floors vary between instances,
  // which keeps VM-to-node utilization correlations below 1 even on
  // single-service nodes (the paper's private-cloud median is 0.55).
  switch (owner.pattern) {
    case PatternType::kDiurnal: {
      auto p = owner.diurnal;
      p.tz_offset_hours = tz;
      const double amp = rng.uniform(0.65, 1.35);
      p.weekday_peak = p.base + (p.weekday_peak - p.base) * amp;
      p.weekend_peak = p.base + (p.weekend_peak - p.base) * amp;
      p.peak_hour += rng.normal(0.0, 0.4);
      p.noise_sigma = rng.uniform(0.04, 0.09);
      return std::make_shared<DiurnalUtilization>(p, seed);
    }
    case PatternType::kStable: {
      auto p = owner.stable;
      p.level *= rng.uniform(0.85, 1.15);
      return std::make_shared<StableUtilization>(p, seed);
    }
    case PatternType::kIrregular:
      return std::make_shared<IrregularUtilization>(owner.irregular, seed);
    case PatternType::kHourlyPeak: {
      auto p = owner.hourly;
      p.tz_offset_hours = tz;
      p.peak = p.base + (p.peak - p.base) * rng.uniform(0.7, 1.3);
      p.noise_sigma = rng.uniform(0.03, 0.06);
      return std::make_shared<HourlyPeakUtilization>(p, seed);
    }
  }
  CL_CHECK(false);
  return nullptr;
}

DeploymentRequest WorkloadGenerator::make_request(const CloudProfile& profile,
                                                  const Owner& owner,
                                                  RegionId region,
                                                  SimTime create,
                                                  SimTime remove,
                                                  Rng& rng) const {
  DeploymentRequest req;
  req.request.subscription = owner.sub;
  req.request.service = owner.service;
  req.request.cloud = profile.cloud;
  req.request.region = region;
  std::size_t sku = owner.sku_index;
  if (rng.bernoulli(profile.sku_mix_prob))
    sku = AliasTable(profile.catalog.weights()).sample(rng);
  req.request.cores = profile.catalog.at(sku).cores;
  req.request.memory_gb = profile.catalog.at(sku).memory_gb;
  req.party = owner.party;
  req.create = create;
  req.remove = remove;
  req.utilization = instantiate(profile, owner, region, rng);
  return req;
}

void WorkloadGenerator::sample_standing_sizes(const CloudProfile& profile,
                                              Owner& owner) {
  const std::size_t k = owner.regions.size();
  owner.standing_per_region.assign(k, 0);
  const double mu = profile.deploy_size_mu -
                    profile.deploy_size_mu_decay_per_region *
                        static_cast<double>(k - 1);
  for (std::size_t r = 0; r < k; ++r) {
    const double draw = rng_.lognormal(mu, profile.deploy_size_sigma);
    owner.standing_per_region[r] = std::clamp(
        static_cast<int>(std::lround(draw)), 1, profile.deploy_size_max);
  }
}

std::vector<DeploymentRequest> WorkloadGenerator::emit_standing(
    const CloudProfile& profile, const Owner& owner, SimTime horizon,
    Rng& rng) const {
  std::vector<DeploymentRequest> out;
  for (std::size_t r = 0; r < owner.regions.size(); ++r) {
    const int n = owner.standing_per_region[r];
    for (int i = 0; i < n; ++i) {
      const SimTime create =
          -static_cast<SimTime>(rng.uniform() *
                                double(profile.standing_age_max)) -
          1;
      SimTime remove = kNoEnd;
      if (rng.bernoulli(profile.standing_end_prob))
        remove = static_cast<SimTime>(rng.uniform() * double(horizon));
      out.push_back(make_request(profile, owner, owner.regions[r], create,
                                 remove, rng));
    }
  }
  return out;
}

std::vector<DeploymentRequest> WorkloadGenerator::emit_region_churn(
    const CloudProfile& profile, const std::vector<Owner>& owners,
    const std::vector<std::size_t>& pool, const AliasTable& pick,
    RegionId region_id, SimTime horizon, Rng& rng) const {
  std::vector<DeploymentRequest> out;

  // Diurnal churn, anchored to the region's local time.
  if (profile.diurnal_churn.base_per_hour > 0) {
    auto params = profile.diurnal_churn;
    params.tz_offset_hours = topo_.region(region_id).tz_offset_hours;
    DiurnalArrivalProcess process(params);
    for (const SimTime t : process.sample(rng, 0, horizon)) {
      const Owner& owner = owners[pool[pick.sample(rng)]];
      const SimDuration life = profile.lifetime.sample(rng);
      out.push_back(make_request(profile, owner, region_id, t, t + life, rng));
    }
  }

  // Bursty churn: each burst is one service rolling out a large
  // deployment (the paper: spikes are "mainly caused by the deployment
  // behavior of some large services").
  if (profile.burst_churn.bursts_per_week > 0) {
    BurstyArrivalProcess process(profile.burst_churn);
    for (const SimTime epoch : process.sample_burst_epochs(rng, 0, horizon)) {
      const Owner& owner = owners[pool[pick.sample(rng)]];
      const std::uint64_t size = process.sample_burst_size(rng);
      for (std::uint64_t i = 0; i < size; ++i) {
        const SimTime t = epoch + process.sample_burst_offset(rng);
        if (t >= horizon) continue;
        const SimDuration life = profile.lifetime.sample(rng);
        out.push_back(
            make_request(profile, owner, region_id, t, t + life, rng));
      }
    }
  }
  return out;
}

std::vector<DeploymentRequest> WorkloadGenerator::generate(
    const CloudProfile& profile, TraceStore& trace, SimTime horizon) {
  // One "gen.generate" span + latency sample per call; owner/request
  // counters are published at the end from local totals. Metrics are
  // write-only: the RNG stream and the emitted requests are identical
  // with metrics on or off.
  obs::PhaseTimer phase("gen.generate", obs::Histogram::kGenSeconds,
                        obs::Counter::kGenRuns);
  CL_CHECK(horizon > 0);
  profile.validate();
  std::vector<Owner> owners;

  AliasTable region_count_picker(profile.region_count_weights);

  // First-party services (and their subscriptions).
  for (int s = 0; s < profile.first_party_services; ++s) {
    ServiceInfo svc;
    svc.name = "svc-" + std::string(to_string(profile.cloud)) + "-" +
               std::to_string(s);
    svc.cloud = profile.cloud;
    svc.model = rng_.bernoulli(0.5) ? ServiceModel::kPaaS
                                    : (rng_.bernoulli(0.5)
                                           ? ServiceModel::kSaaS
                                           : ServiceModel::kIaaS);
    svc.region_agnostic = rng_.bernoulli(profile.region_agnostic_prob);
    const ServiceId service = trace.add_service(svc);

    // Shared deployment shape for all of the service's subscriptions.
    const std::size_t k = region_count_picker.sample(rng_) + 1;
    const auto regions = sample_regions(k);

    const int nsubs =
        1 + static_cast<int>(rng_.poisson(
                std::max(0.0, profile.subs_per_service_mean - 1.0)));
    for (int i = 0; i < nsubs; ++i) {
      SubscriptionInfo sub;
      sub.cloud = profile.cloud;
      sub.party = PartyType::kFirstParty;
      sub.service = service;
      const SubscriptionId sub_id = trace.add_subscription(sub);

      Owner owner;
      owner.sub = sub_id;
      owner.service = service;
      owner.party = PartyType::kFirstParty;
      owner.regions = regions;
      owner.region_agnostic = svc.region_agnostic;
      sample_pattern_params(profile, owner);
      owners.push_back(std::move(owner));
    }
  }

  // Third-party customer subscriptions.
  for (int s = 0; s < profile.third_party_subscriptions; ++s) {
    SubscriptionInfo sub;
    sub.cloud = profile.cloud;
    sub.party = PartyType::kThirdParty;
    const SubscriptionId sub_id = trace.add_subscription(sub);

    Owner owner;
    owner.sub = sub_id;
    owner.party = PartyType::kThirdParty;
    owner.regions = sample_regions(region_count_picker.sample(rng_) + 1);
    owner.region_agnostic = false;
    sample_pattern_params(profile, owner);
    owners.push_back(std::move(owner));
  }

  for (auto& owner : owners) sample_standing_sizes(profile, owner);
  assign_patterns(profile.pattern_mix, owners);

  // --- Parallel emission phases -----------------------------------------
  // One draw of the (serial) master stream roots all shard streams of this
  // generate() call; each shard seed is then pure SplitMix64 hashing of
  // (root, stream family, shard index). Shards may therefore run on any
  // thread in any order — concatenation below is in shard-index order, so
  // the request list is bit-identical at every thread count.
  const std::uint64_t stream_root = rng_();

  // Standing fleets: one shard per owner.
  auto standing = parallel_map<std::vector<DeploymentRequest>>(
      owners.size(),
      [&](std::size_t o) {
        Rng rng(shard_seed(stream_root, kStandingStream, o));
        return emit_standing(profile, owners[o], horizon, rng);
      },
      parallel_);

  // In-window churn: one shard per region. Owner pools per region are
  // built serially (cheap), weighted by standing deployment size (large
  // deployments churn proportionally more).
  const std::size_t region_count = topo_.regions().size();
  std::vector<std::vector<std::size_t>> pool(region_count);
  std::vector<std::vector<double>> pool_weight(region_count);
  for (std::size_t o = 0; o < owners.size(); ++o) {
    const Owner& owner = owners[o];
    for (std::size_t r = 0; r < owner.regions.size(); ++r) {
      const auto region = owner.regions[r].value();
      pool[region].push_back(o);
      pool_weight[region].push_back(
          static_cast<double>(owner.standing_per_region[r]));
    }
  }
  auto churn = parallel_map<std::vector<DeploymentRequest>>(
      region_count,
      [&](std::size_t region) {
        if (pool[region].empty()) return std::vector<DeploymentRequest>{};
        Rng rng(shard_seed(stream_root, kChurnStream, region));
        const AliasTable pick(pool_weight[region]);
        return emit_region_churn(
            profile, owners, pool[region], pick,
            RegionId(static_cast<RegionId::underlying>(region)), horizon,
            rng);
      },
      parallel_);

  std::vector<DeploymentRequest> requests;
  std::size_t standing_total = 0;
  std::size_t churn_total = 0;
  for (const auto& part : standing) standing_total += part.size();
  for (const auto& part : churn) churn_total += part.size();
  const std::size_t total = standing_total + churn_total;
  requests.reserve(total);

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kGenOwners, owners.size());
  metrics.add(obs::Counter::kGenRequests, total);
  metrics.add(obs::Counter::kGenStandingRequests, standing_total);
  metrics.add(obs::Counter::kGenChurnRequests, churn_total);

  for (auto& part : standing)
    for (auto& req : part) requests.push_back(std::move(req));
  for (auto& part : churn)
    for (auto& req : part) requests.push_back(std::move(req));
  return requests;
}

Scenario make_scenario(const ScenarioOptions& options) {
  CL_CHECK(options.horizon > 0 && options.horizon % kTelemetryInterval == 0);
  Scenario scenario;
  scenario.topology =
      std::make_unique<Topology>(build_topology(default_topology_spec()));
  // The telemetry grid spans the full observation horizon (one week by
  // default, but multi-week runs are supported).
  const TimeGrid grid{0, kTelemetryInterval,
                      static_cast<std::size_t>(options.horizon /
                                               kTelemetryInterval)};
  scenario.trace =
      std::make_unique<TraceStore>(scenario.topology.get(), grid);

  const auto priv = options.scale == 1.0
                        ? options.private_profile
                        : options.private_profile.scaled(options.scale);
  const auto pub = options.scale == 1.0
                       ? options.public_profile
                       : options.public_profile.scaled(options.scale);

  WorkloadGenerator generator(*scenario.topology, options.seed,
                              options.parallel);
  auto private_requests =
      generator.generate(priv, *scenario.trace, options.horizon);
  auto public_requests =
      generator.generate(pub, *scenario.trace, options.horizon);

  // Spill mode: generate() above only registered services/subscriptions;
  // the VM records are born inside run_simulation, so starting the spill
  // here streams every record straight to its shard log. The pattern
  // codec keeps the generator's parametric models a few dozen bytes each
  // (it is a process-wide singleton, so it outlives the shard store).
  if (options.population_sharding != nullptr) {
    PopulationShardingOptions spill = *options.population_sharding;
    if (spill.model_codec == nullptr)
      spill.model_codec = &pattern_snapshot_codec();
    scenario.trace->begin_population_spill(spill);
  }
  scenario.private_stats = run_simulation(
      *scenario.topology, *scenario.trace, std::move(private_requests));
  scenario.public_stats = run_simulation(
      *scenario.topology, *scenario.trace, std::move(public_requests));
  if (options.population_sharding != nullptr)
    scenario.trace->finish_population_spill();
  return scenario;
}

}  // namespace cloudlens::workloads
