// VM arrival (creation) processes.
//
// Fig. 3(c): public-cloud creations per hour follow a clear, stable diurnal
// pattern (autoscaling); private-cloud creations stay at a low amplitude
// with occasional large bursts (big-service rollouts). Fig. 3(d) quantifies
// this with the CV of hourly creation counts across regions.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace cloudlens::workloads {

/// Non-homogeneous Poisson process with a diurnal + weekend rate profile.
/// rate(t) = base_per_hour * (floor + (1-floor) * envelope(local_hour)) *
///           (weekend ? weekend_scale : 1)
class DiurnalArrivalProcess {
 public:
  struct Params {
    double base_per_hour = 40.0;  ///< peak-hour arrival rate
    double floor = 0.25;          ///< night rate as a fraction of peak
    double peak_hour = 14.0;
    double width_hours = 16.0;
    double weekend_scale = 0.5;
    double tz_offset_hours = 0;
  };

  explicit DiurnalArrivalProcess(Params p) : p_(p) {}

  double rate_per_hour(SimTime t) const;

  /// Arrival instants in [begin, end), sampled hour by hour (Poisson count
  /// per hour, uniform placement within the hour).
  std::vector<SimTime> sample(Rng& rng, SimTime begin, SimTime end) const;

  const Params& params() const { return p_; }

 private:
  Params p_;
};

/// Low-amplitude homogeneous background plus compound bursts: burst epochs
/// arrive as a Poisson process over the window; each burst creates a large
/// number of VMs within a short ramp window.
class BurstyArrivalProcess {
 public:
  struct Params {
    double base_per_hour = 4.0;    ///< quiet background rate
    double bursts_per_week = 3.0;  ///< expected burst epochs per week
    double burst_size_mean = 600;  ///< VMs per burst (lognormal)
    double burst_size_sigma = 0.5; ///< lognormal sigma of burst size
    SimDuration burst_window = 2 * kHour;  ///< burst ramp duration
  };

  explicit BurstyArrivalProcess(Params p) : p_(p) {}

  std::vector<SimTime> sample(Rng& rng, SimTime begin, SimTime end) const;

  /// The burst epochs chosen for a window (exposed for tests/ablation and
  /// for generators that attribute each burst to one owner).
  std::vector<SimTime> sample_burst_epochs(Rng& rng, SimTime begin,
                                           SimTime end) const;
  /// Number of VMs created by one burst (lognormal, >= 1).
  std::uint64_t sample_burst_size(Rng& rng) const;
  /// Creation offset of one VM within a burst's ramp window.
  SimDuration sample_burst_offset(Rng& rng) const;

  const Params& params() const { return p_; }

 private:
  Params p_;
};

}  // namespace cloudlens::workloads
