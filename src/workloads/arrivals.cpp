#include "workloads/arrivals.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workloads/patterns.h"

namespace cloudlens::workloads {

double DiurnalArrivalProcess::rate_per_hour(SimTime t) const {
  double h = frac_hour_of_day(t) + p_.tz_offset_hours;
  h = std::fmod(h, 24.0);
  if (h < 0) h += 24.0;
  const double env = diurnal_envelope(h, p_.peak_hour, p_.width_hours);
  const auto shifted =
      t + static_cast<SimTime>(p_.tz_offset_hours * double(kHour));
  const double wk = is_weekend(shifted) ? p_.weekend_scale : 1.0;
  return p_.base_per_hour * (p_.floor + (1.0 - p_.floor) * env) * wk;
}

std::vector<SimTime> DiurnalArrivalProcess::sample(Rng& rng, SimTime begin,
                                                   SimTime end) const {
  CL_CHECK(begin < end);
  std::vector<SimTime> out;
  for (SimTime h = begin; h < end; h += kHour) {
    const SimTime hi = std::min(end, h + kHour);
    const double frac_of_hour = double(hi - h) / double(kHour);
    // Rate evaluated at the middle of the hour.
    const double lambda = rate_per_hour(h + (hi - h) / 2) * frac_of_hour;
    const std::uint64_t n = rng.poisson(lambda);
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(h + static_cast<SimTime>(rng.uniform() * double(hi - h)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SimTime> BurstyArrivalProcess::sample_burst_epochs(
    Rng& rng, SimTime begin, SimTime end) const {
  CL_CHECK(begin < end);
  const double weeks = double(end - begin) / double(kWeek);
  const std::uint64_t n = rng.poisson(p_.bursts_per_week * weeks);
  std::vector<SimTime> epochs;
  epochs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    epochs.push_back(begin +
                     static_cast<SimTime>(rng.uniform() * double(end - begin)));
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::uint64_t BurstyArrivalProcess::sample_burst_size(Rng& rng) const {
  const double size =
      rng.lognormal(std::log(p_.burst_size_mean), p_.burst_size_sigma);
  return static_cast<std::uint64_t>(std::max(1.0, size));
}

SimDuration BurstyArrivalProcess::sample_burst_offset(Rng& rng) const {
  // Beta(2,4)-shaped: the ramp rises quickly, then tapers.
  return static_cast<SimDuration>(rng.beta(2.0, 4.0) *
                                  double(p_.burst_window));
}

std::vector<SimTime> BurstyArrivalProcess::sample(Rng& rng, SimTime begin,
                                                  SimTime end) const {
  std::vector<SimTime> out;

  // Quiet background: homogeneous Poisson, hour by hour.
  for (SimTime h = begin; h < end; h += kHour) {
    const SimTime hi = std::min(end, h + kHour);
    const double lambda = p_.base_per_hour * double(hi - h) / double(kHour);
    const std::uint64_t n = rng.poisson(lambda);
    for (std::uint64_t i = 0; i < n; ++i)
      out.push_back(h + static_cast<SimTime>(rng.uniform() * double(hi - h)));
  }

  // Bursts: a large batch of creations inside a short ramp window.
  for (const SimTime epoch : sample_burst_epochs(rng, begin, end)) {
    const std::uint64_t count = sample_burst_size(rng);
    for (std::uint64_t i = 0; i < count; ++i) {
      const SimTime t = epoch + sample_burst_offset(rng);
      if (t < end) out.push_back(t);
    }
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cloudlens::workloads
