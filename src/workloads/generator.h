// Workload generator: expands a CloudProfile into a concrete population of
// services, subscriptions, and deployment requests over one observed week.
//
// The generator is the paper's missing dataset: it plants the distributional
// structure the paper reports (deployment sizes, lifetimes, pattern mix,
// burstiness, region-agnosticism) as *ground truth*, which the analysis
// layer must then recover.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloudsim/simulator.h"
#include "cloudsim/topology.h"
#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "workloads/patterns.h"
#include "workloads/profiles.h"

namespace cloudlens::workloads {

// Determinism contract: the generator's output is a pure function of
// (topology, seed, profile, horizon) — never of the thread count. The
// owner/subscription population is sampled serially from the master
// stream; the per-VM emission phases (standing fleets per owner, churn
// per region) then each draw from an independent shard stream derived via
// SplitMix64 from the master seed (common/rng.h shard_seed), so shards can
// run on any thread in any order and still produce identical requests.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Topology& topology, std::uint64_t seed,
                    const ParallelConfig& parallel = {});

  /// Registers the profile's services and subscriptions in `trace` and
  /// returns the deployment requests (standing population + in-window
  /// churn) covering [0, horizon). Call once per profile; a single trace
  /// can hold both clouds.
  std::vector<DeploymentRequest> generate(const CloudProfile& profile,
                                          TraceStore& trace,
                                          SimTime horizon = kWeek);

 private:
  /// A workload owner: one subscription plus everything needed to stamp
  /// out its VMs (its pattern family, SKU, regions, anchor rule).
  struct Owner {
    SubscriptionId sub;
    ServiceId service;  ///< invalid for third-party owners
    PartyType party = PartyType::kThirdParty;
    std::vector<RegionId> regions;
    bool region_agnostic = false;
    double phase_jitter_hours = 0;  ///< owner-specific anchor offset
    PatternType pattern = PatternType::kStable;
    // Prototype parameters; tz offset is set per region at instantiation.
    DiurnalUtilization::Params diurnal;
    StableUtilization::Params stable;
    IrregularUtilization::Params irregular;
    HourlyPeakUtilization::Params hourly;
    std::size_t sku_index = 0;
    /// Standing VM count per region (index-aligned with `regions`);
    /// used to weight churn attribution.
    std::vector<int> standing_per_region;
  };

  /// Draw prototype pattern parameters (all four families) for an owner.
  void sample_pattern_params(const CloudProfile& profile, Owner& owner);
  /// Draw the owner's standing VM count per deployed region.
  void sample_standing_sizes(const CloudProfile& profile, Owner& owner);
  /// Assign each owner's pattern type, balancing the VM-weighted shares
  /// toward `mix` (largest-remainder over standing VM counts).
  void assign_patterns(const PatternMix& mix, std::vector<Owner>& owners);
  std::vector<RegionId> sample_regions(std::size_t k);
  /// The time-zone anchor for an owner's VMs in `region`.
  double anchor_tz(const CloudProfile& profile, const Owner& owner,
                   RegionId region) const;

  // Emission-phase helpers draw from an explicit shard stream (never the
  // master rng_) so they may run concurrently.
  std::shared_ptr<const UtilizationModel> instantiate(
      const CloudProfile& profile, const Owner& owner, RegionId region,
      Rng& rng) const;

  DeploymentRequest make_request(const CloudProfile& profile,
                                 const Owner& owner, RegionId region,
                                 SimTime create, SimTime remove,
                                 Rng& rng) const;

  /// Standing fleet of one owner (one shard).
  std::vector<DeploymentRequest> emit_standing(const CloudProfile& profile,
                                               const Owner& owner,
                                               SimTime horizon,
                                               Rng& rng) const;
  /// In-window churn of one region (one shard). `pool`/`pick` index the
  /// owners deployed in the region, weighted by standing size.
  std::vector<DeploymentRequest> emit_region_churn(
      const CloudProfile& profile, const std::vector<Owner>& owners,
      const std::vector<std::size_t>& pool, const AliasTable& pick,
      RegionId region, SimTime horizon, Rng& rng) const;

  const Topology& topo_;
  Rng rng_;
  ParallelConfig parallel_;
};

/// Convenience bundle: a full dual-cloud scenario (topology + trace with
/// both profiles simulated). The shared entry point for examples, benches,
/// and integration tests.
struct Scenario {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  SimulationStats private_stats;
  SimulationStats public_stats;
};

struct ScenarioOptions {
  std::uint64_t seed = 42;
  /// Population scale: 1.0 is the calibrated default (~80k VMs total);
  /// tests use ~0.05.
  double scale = 1.0;
  SimTime horizon = kWeek;
  /// Thread knob for the generation phase. Results are bit-identical at
  /// any setting; 1 = serial.
  ParallelConfig parallel;
  CloudProfile private_profile = CloudProfile::azure_private();
  CloudProfile public_profile = CloudProfile::azure_public();
  /// When set, the trace spills VM records to population shards as the
  /// simulations emit them (cloudsim/population.h): the resident record
  /// vector never materializes, so peak RSS is bounded by the shard
  /// budget instead of the population size. make_scenario fills in the
  /// options' model_codec with the pattern codec when left null, so the
  /// generator's parametric utilization models spill as a few dozen
  /// bytes each instead of degrading to sampled curves.
  const PopulationShardingOptions* population_sharding = nullptr;
};

Scenario make_scenario(const ScenarioOptions& options = {});

}  // namespace cloudlens::workloads
