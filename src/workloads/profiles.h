// Calibrated cloud workload profiles.
//
// Each CloudProfile encodes one of the paper's two workload populations.
// Every parameter is tied to a quantitative statement in the paper; see the
// factory functions' comments and DESIGN.md §1 for the mapping. The absolute
// scale (thousands of subscriptions rather than tens of thousands, tens of
// thousands of VMs rather than millions) is ~1:40 of the paper's dataset so
// the full pipeline runs in seconds; all reported statistics are ratios,
// shares, and correlations, which are scale-free.
#pragma once

#include <string>
#include <vector>

#include "cloudsim/sku.h"
#include "cloudsim/types.h"
#include "workloads/arrivals.h"
#include "workloads/lifetime.h"

namespace cloudlens::workloads {

/// Shares of the four utilization patterns among an owner population
/// (Fig. 5(d)). Need not sum to exactly 1; they are normalized on use.
struct PatternMix {
  double diurnal = 0.40;
  double stable = 0.38;
  double irregular = 0.14;
  double hourly_peak = 0.08;
};

struct CloudProfile {
  std::string name;
  CloudType cloud = CloudType::kPublic;
  SkuCatalog catalog;

  // --- Ownership population -------------------------------------------
  /// First-party services (each gets its own subscription(s)).
  int first_party_services = 0;
  /// Expected subscriptions per first-party service (>= 1).
  double subs_per_service_mean = 1.1;
  /// Independent third-party customer subscriptions.
  int third_party_subscriptions = 0;

  // --- Deployment shape -------------------------------------------------
  /// VMs per subscription per deployed region ~ clamp(LogNormal(mu, sigma)).
  double deploy_size_mu = 1.4;
  double deploy_size_sigma = 1.0;
  int deploy_size_max = 4000;
  /// Subscriptions deploying into k regions have per-region deployment
  /// log-size reduced by decay*(k-1) — controls how total cores split
  /// between single- and multi-region subscriptions (Fig. 4(b)).
  double deploy_size_mu_decay_per_region = 0.0;
  /// P(subscription deploys in exactly k regions), k = 1..weights.size().
  std::vector<double> region_count_weights = {1.0};
  /// Probability a first-party service is geo-load-balanced
  /// (region-agnostic demand; Fig. 7).
  double region_agnostic_prob = 0.0;
  /// Probability a VM deviates from its owner's chosen SKU.
  double sku_mix_prob = 0.1;

  // --- Utilization -------------------------------------------------------
  PatternMix pattern_mix;
  /// Diurnal/hourly-peak anchor jitter around the owner's local time zone
  /// (hours). Public customers serve their own geographies, dispersing
  /// phases; first-party work activity is tightly aligned.
  double phase_jitter_hours = 1.0;
  /// Anchor time zone used by region-agnostic services (constant across
  /// regions so their peaks align; Fig. 7(c)).
  double agnostic_anchor_tz = -5.0;

  // --- Temporal churn ----------------------------------------------------
  LifetimeModel lifetime = LifetimeModel::azure_public();
  /// Diurnal churn (per region). Set base_per_hour = 0 to disable.
  DiurnalArrivalProcess::Params diurnal_churn;
  /// Bursty churn (per region). Set bursts_per_week = 0 to disable.
  BurstyArrivalProcess::Params burst_churn;
  /// Probability a standing (pre-window) VM terminates during the window.
  double standing_end_prob = 0.10;
  /// Standing VMs were created up to this long before the window.
  SimDuration standing_age_max = 30 * kDay;

  /// Scale the population and churn by `factor` (for fast tests).
  CloudProfile scaled(double factor) const;

  /// Append a canonical byte serialization of every generative parameter
  /// (including the SKU catalog, lifetime bins, and churn processes) to
  /// `out`. This is the profile's stable identity for the pipeline's
  /// content-addressed artifact cache: two profiles serialize to the same
  /// bytes iff every parameter matches, doubles compared as bit patterns.
  /// Changing any parameter — or the layout of this encoding — must change
  /// the bytes (the encoding starts with its own version byte).
  void append_config_bytes(std::string& out) const;

  /// Throws CheckError when any parameter is out of its valid range
  /// (called by WorkloadGenerator before generation).
  void validate() const;

  /// The private-cloud profile: few, large, homogeneous, bursty,
  /// region-agnostic-leaning first-party deployments.
  static CloudProfile azure_private();
  /// The public-cloud profile: many small diverse customer subscriptions,
  /// strong diurnal autoscaling churn, extreme VM-size tails.
  static CloudProfile azure_public();
};

}  // namespace cloudlens::workloads
