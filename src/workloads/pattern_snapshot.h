// Snapshot codec for the generator's parametric utilization models.
//
// cloudsim/snapshot.h serializes the model types cloudsim owns; the four
// pattern models (patterns.h) live here in workloads, one layer up, so
// this codec plugs them into the snapshot format via the
// SnapshotModelCodec extension point. Each model is stored as its exact
// parameter struct plus its noise seed — a few dozen bytes — and
// reconstructs to a model whose at(t) is bit-identical to the original for
// *every* t, which is what makes snapshot-loaded traces produce
// byte-identical reports and figures to fresh generation.
#pragma once

#include "cloudsim/snapshot.h"

namespace cloudlens::workloads {

/// The process-wide codec instance covering all four pattern families.
/// Stateless and immutable; safe to share across threads.
const SnapshotModelCodec& pattern_snapshot_codec();

}  // namespace cloudlens::workloads
