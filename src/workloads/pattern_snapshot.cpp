#include "workloads/pattern_snapshot.h"

#include "common/check.h"
#include "workloads/patterns.h"

namespace cloudlens::workloads {
namespace {

using snapshot_codec::append_f64;
using snapshot_codec::append_i64;
using snapshot_codec::append_u64;
using snapshot_codec::Reader;

// Tags are part of the on-disk format; never renumber (bump the snapshot
// format version instead if an encoding must change).
constexpr std::uint8_t kTagDiurnal = kFirstCustomModelTag + 0;
constexpr std::uint8_t kTagStable = kFirstCustomModelTag + 1;
constexpr std::uint8_t kTagIrregular = kFirstCustomModelTag + 2;
constexpr std::uint8_t kTagHourlyPeak = kFirstCustomModelTag + 3;

class PatternSnapshotCodec final : public SnapshotModelCodec {
 public:
  std::uint8_t encode(const UtilizationModel& m,
                      std::string& out) const override {
    if (const auto* d = dynamic_cast<const DiurnalUtilization*>(&m)) {
      const auto& p = d->params();
      append_f64(out, p.base);
      append_f64(out, p.weekday_peak);
      append_f64(out, p.weekend_peak);
      append_f64(out, p.peak_hour);
      append_f64(out, p.width_hours);
      append_f64(out, p.tz_offset_hours);
      append_f64(out, p.noise_sigma);
      append_u64(out, d->seed());
      return kTagDiurnal;
    }
    if (const auto* s = dynamic_cast<const StableUtilization*>(&m)) {
      const auto& p = s->params();
      append_f64(out, p.level);
      append_f64(out, p.noise_sigma);
      append_f64(out, p.wander_sigma);
      append_u64(out, s->seed());
      return kTagStable;
    }
    if (const auto* i = dynamic_cast<const IrregularUtilization*>(&m)) {
      const auto& p = i->params();
      append_f64(out, p.base);
      append_f64(out, p.spike_level);
      append_f64(out, p.spike_prob);
      append_i64(out, p.episode);
      append_f64(out, p.noise_sigma);
      append_u64(out, i->seed());
      return kTagIrregular;
    }
    if (const auto* h = dynamic_cast<const HourlyPeakUtilization*>(&m)) {
      const auto& p = h->params();
      append_f64(out, p.base);
      append_f64(out, p.peak);
      append_f64(out, p.half_hour_peak_scale);
      append_i64(out, p.peak_width);
      append_f64(out, p.peak_hour);
      append_f64(out, p.width_hours);
      append_f64(out, p.tz_offset_hours);
      append_f64(out, p.weekend_scale);
      append_f64(out, p.noise_sigma);
      append_u64(out, h->seed());
      return kTagHourlyPeak;
    }
    return 0;
  }

  std::shared_ptr<const UtilizationModel> decode(
      std::uint8_t tag, std::string_view payload) const override {
    Reader r(payload);
    switch (tag) {
      case kTagDiurnal: {
        DiurnalUtilization::Params p;
        p.base = r.f64();
        p.weekday_peak = r.f64();
        p.weekend_peak = r.f64();
        p.peak_hour = r.f64();
        p.width_hours = r.f64();
        p.tz_offset_hours = r.f64();
        p.noise_sigma = r.f64();
        const std::uint64_t seed = r.u64();
        return std::make_shared<DiurnalUtilization>(p, seed);
      }
      case kTagStable: {
        StableUtilization::Params p;
        p.level = r.f64();
        p.noise_sigma = r.f64();
        p.wander_sigma = r.f64();
        const std::uint64_t seed = r.u64();
        return std::make_shared<StableUtilization>(p, seed);
      }
      case kTagIrregular: {
        IrregularUtilization::Params p;
        p.base = r.f64();
        p.spike_level = r.f64();
        p.spike_prob = r.f64();
        p.episode = r.i64();
        p.noise_sigma = r.f64();
        const std::uint64_t seed = r.u64();
        return std::make_shared<IrregularUtilization>(p, seed);
      }
      case kTagHourlyPeak: {
        HourlyPeakUtilization::Params p;
        p.base = r.f64();
        p.peak = r.f64();
        p.half_hour_peak_scale = r.f64();
        p.peak_width = r.i64();
        p.peak_hour = r.f64();
        p.width_hours = r.f64();
        p.tz_offset_hours = r.f64();
        p.weekend_scale = r.f64();
        p.noise_sigma = r.f64();
        const std::uint64_t seed = r.u64();
        return std::make_shared<HourlyPeakUtilization>(p, seed);
      }
      default:
        return nullptr;
    }
  }
};

}  // namespace

const SnapshotModelCodec& pattern_snapshot_codec() {
  static const PatternSnapshotCodec codec;
  return codec;
}

}  // namespace cloudlens::workloads
