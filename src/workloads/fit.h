// Profile fitting: the inverse of generation.
//
// Given an observed trace (generated or imported from CSVs), estimate the
// CloudProfile parameters that would regenerate a statistically similar
// population — a "synthetic twin". This operationalizes the paper's
// knowledge-base vision one level up: instead of per-subscription records,
// it distills a whole platform's workload into a handful of generative
// parameters, which can then drive capacity what-ifs at any scale without
// the original data.
//
// Each estimator mirrors one analysis:
//   deployment sizes  -> log-moments of VMs per subscription-region,
//   region spread     -> histogram of deployed regions per subscription,
//   lifetimes         -> shares over the calibrated duration bins,
//   pattern mix       -> classifier shares over covering VMs,
//   churn             -> creation-rate level, weekend ratio, and burst count,
//   region agnosticism-> detected share among multi-region services.
#pragma once

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "workloads/profiles.h"

namespace cloudlens::workloads {

struct FitOptions {
  SimTime snapshot = 2 * kDay + 14 * kHour;
  /// VMs sampled for pattern classification.
  std::size_t classify_max_vms = 600;
  /// Hours whose creation count exceeds mean + threshold * stddev count as
  /// burst hours when estimating `bursts_per_week`.
  double burst_sigma_threshold = 4.0;
  /// Scale factor applied to fitted population counts (1.0 reproduces the
  /// observed population size).
  double population_scale = 1.0;
  /// Thread knob for the fitting passes (pattern classification, the
  /// per-region churn scan, region-agnosticism detection). Estimates are
  /// bit-identical at any setting; 1 = serial.
  ParallelConfig parallel;
};

/// Diagnostic bundle: the fitted profile plus the raw estimates behind it.
struct ProfileFit {
  CloudProfile profile;
  std::size_t subscriptions_observed = 0;
  std::size_t services_observed = 0;
  std::size_t deployments_observed = 0;  ///< (subscription, region) pairs
  std::size_t ended_vms_observed = 0;
  std::size_t classified_vms = 0;
  double mean_creations_per_hour_per_region = 0;
  std::size_t burst_hours_detected = 0;
};

/// Fit a profile for one cloud of the trace. `base` supplies everything the
/// estimators cannot observe (catalog, anchor time zone, recovery knobs);
/// typically CloudProfile::azure_private()/azure_public().
ProfileFit fit_profile(const TraceStore& trace, CloudType cloud,
                       const CloudProfile& base, const FitOptions& options = {});

}  // namespace cloudlens::workloads
