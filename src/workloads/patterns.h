// Utilization pattern generators.
//
// Section IV-A of the paper classifies VM CPU utilization into four types:
// diurnal, stable, irregular, and hourly-peak. These classes implement each
// type as a deterministic UtilizationModel (a pure function of time given a
// seed), so a trace of any size can be evaluated lazily and reproducibly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "cloudsim/trace.h"
#include "common/sim_time.h"

namespace cloudlens::workloads {

/// Ground-truth pattern label carried by generated models so the classifier
/// (analysis/classifier.h) can be validated against what was planted.
enum class PatternType { kDiurnal, kStable, kIrregular, kHourlyPeak };

std::string_view to_string(PatternType t);

/// Base class adding the ground-truth label to UtilizationModel.
class PatternModel : public UtilizationModel {
 public:
  virtual PatternType pattern() const = 0;
  std::string_view kind() const override { return to_string(pattern()); }
};

// --- Deterministic noise helpers (pure functions of (seed, key)) --------

/// Uniform [0,1) from a 64-bit key.
double hash_uniform(std::uint64_t seed, std::int64_t key);
/// Approximately standard normal (Irwin–Hall of 4 uniforms, rescaled).
double hash_normal(std::uint64_t seed, std::int64_t key);
/// Smooth "value noise": hash_normal at hourly anchors, cosine-interpolated;
/// gives slowly wandering telemetry rather than white noise.
double smooth_noise(std::uint64_t seed, SimTime t, SimDuration anchor_step);

/// Raised-cosine daytime envelope in [0, 1]: 0 at night, 1 at `peak_hour`
/// local time, with the given full width (hours) of the active window.
double diurnal_envelope(double local_hour, double peak_hour,
                        double width_hours);

// --- Pattern implementations --------------------------------------------

/// Fig. 5(a): high during (local) daytime, low at night, weekday peak about
/// three times the weekend peak (paper: ~60% weekday vs ~20% weekend).
class DiurnalUtilization final : public PatternModel {
 public:
  struct Params {
    double base = 0.05;          ///< night floor
    double weekday_peak = 0.60;  ///< weekday daytime peak
    double weekend_peak = 0.20;  ///< weekend daytime peak
    double peak_hour = 14.0;     ///< local hour of the daily maximum
    double width_hours = 14.0;   ///< active window width
    double tz_offset_hours = 0;  ///< local-time anchor (region or global)
    double noise_sigma = 0.02;
  };

  DiurnalUtilization(Params p, std::uint64_t seed) : p_(p), seed_(seed) {}
  double at(SimTime t) const override;
  /// Hoisted batch loop: per-day-offset envelope table + cached hourly
  /// smooth-noise anchors; bit-identical to the at() loop.
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  PatternType pattern() const override { return PatternType::kDiurnal; }
  const Params& params() const { return p_; }
  /// Noise seed (exposed so snapshots can round-trip the model).
  std::uint64_t seed() const { return seed_; }

 private:
  /// Shared per-tick combine used by both at() and sample(), so cached and
  /// directly-computed inputs produce the same bits. `tick_noise` is the
  /// raw hash_normal draw for the tick (sample() batch-fills it through
  /// the dispatched kernel; at() hashes it inline).
  double eval(SimTime t, double envelope, double smooth,
              double tick_noise) const;

  Params p_;
  std::uint64_t seed_;
};

/// Fig. 5(b) top: flat utilization with small wander (the paper extracts
/// this class by thresholding the standard deviation).
class StableUtilization final : public PatternModel {
 public:
  struct Params {
    double level = 0.25;
    double noise_sigma = 0.015;
    double wander_sigma = 0.01;  ///< slow hourly drift
  };

  StableUtilization(Params p, std::uint64_t seed) : p_(p), seed_(seed) {}
  double at(SimTime t) const override;
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  PatternType pattern() const override { return PatternType::kStable; }
  const Params& params() const { return p_; }
  /// Noise seed (exposed so snapshots can round-trip the model).
  std::uint64_t seed() const { return seed_; }

 private:
  double eval(SimTime t, double smooth, double tick_noise) const;

  Params p_;
  std::uint64_t seed_;
};

/// Fig. 5(b) bottom: below ~10% most of the time, occasional unannounced
/// spikes above 60%. Spikes are decided per fixed-size episode window from
/// the hash so the model stays a pure function of time.
class IrregularUtilization final : public PatternModel {
 public:
  struct Params {
    double base = 0.06;
    double spike_level = 0.70;
    double spike_prob = 0.03;           ///< per episode window
    SimDuration episode = 30 * kMinute; ///< spike episode granularity
    double noise_sigma = 0.02;
  };

  IrregularUtilization(Params p, std::uint64_t seed) : p_(p), seed_(seed) {}
  double at(SimTime t) const override;
  /// Batch loop deciding each spike episode once instead of per tick.
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  PatternType pattern() const override { return PatternType::kIrregular; }
  const Params& params() const { return p_; }
  /// Noise seed (exposed so snapshots can round-trip the model).
  std::uint64_t seed() const { return seed_; }

 private:
  double eval(SimTime t, double level, double tick_noise) const;

  Params p_;
  std::uint64_t seed_;
};

/// Fig. 5(c): sharp peaks at the top of each hour and half-hour (meeting
/// joins), amplitude modulated by a daytime envelope, on a low base.
class HourlyPeakUtilization final : public PatternModel {
 public:
  struct Params {
    double base = 0.08;
    double peak = 0.65;
    double half_hour_peak_scale = 0.7;  ///< :30 peaks are slightly lower
    SimDuration peak_width = 10 * kMinute;
    double peak_hour = 13.0;    ///< envelope center (local)
    double width_hours = 12.0;  ///< envelope width
    double tz_offset_hours = 0;
    double weekend_scale = 0.25;
    double noise_sigma = 0.015;
  };

  HourlyPeakUtilization(Params p, std::uint64_t seed) : p_(p), seed_(seed) {}
  double at(SimTime t) const override;
  /// Batch loop with per-day-offset envelope and per-half-hour-offset peak
  /// shape tables; bit-identical to the at() loop.
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  PatternType pattern() const override { return PatternType::kHourlyPeak; }
  const Params& params() const { return p_; }
  /// Noise seed (exposed so snapshots can round-trip the model).
  std::uint64_t seed() const { return seed_; }

 private:
  double eval(SimTime t, double envelope, bool has_peak, double shape,
              double tick_noise) const;

  Params p_;
  std::uint64_t seed_;
};

/// Returns the ground-truth pattern of a VM's model, or nullopt when the
/// model was not produced by this generator (e.g. ConstantUtilization).
std::optional<PatternType> ground_truth_pattern(const UtilizationModel* m);

}  // namespace cloudlens::workloads
