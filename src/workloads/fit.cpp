#include "workloads/fit.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::workloads {
namespace {

/// Mean of the diurnal churn multiplier (floor + (1-floor)*envelope) * wk
/// over one week, used to convert an observed mean rate into the process's
/// peak rate parameter.
double mean_rate_multiplier(const DiurnalArrivalProcess::Params& p) {
  DiurnalArrivalProcess::Params unit = p;
  unit.base_per_hour = 1.0;
  const DiurnalArrivalProcess process(unit);
  double sum = 0;
  for (SimTime t = 0; t < kWeek; t += kHour)
    sum += process.rate_per_hour(t + kHour / 2);
  return sum / 168.0;
}

}  // namespace

ProfileFit fit_profile(const TraceStore& trace, CloudType cloud,
                       const CloudProfile& base, const FitOptions& options) {
  const AnalysisContext ctx(trace, options.parallel);
  ProfileFit fit;
  CloudProfile& p = fit.profile;
  p = base;  // unobservable knobs (catalog, anchors, caps) carry over
  const std::size_t region_count = trace.topology().regions().size();

  // --- Ownership population ---------------------------------------------
  std::size_t first_party_subs = 0, third_party_subs = 0;
  for (const auto& sub : trace.subscriptions()) {
    if (sub.cloud != cloud) continue;
    if (sub.party == PartyType::kFirstParty) ++first_party_subs;
    else ++third_party_subs;
  }
  std::size_t services = 0;
  for (const auto& svc : trace.services()) {
    if (svc.cloud == cloud) ++services;
  }
  fit.services_observed = services;
  fit.subscriptions_observed = first_party_subs + third_party_subs;
  CL_CHECK_MSG(fit.subscriptions_observed > 0,
               "trace has no subscriptions for this cloud — nothing to fit");
  p.first_party_services = std::max(
      services > 0 ? 1 : 0,
      static_cast<int>(std::lround(double(services) * options.population_scale)));
  p.third_party_subscriptions = static_cast<int>(
      std::lround(double(third_party_subs) * options.population_scale));
  p.subs_per_service_mean =
      services > 0 ? std::max(1.0, double(first_party_subs) / double(services))
                   : base.subs_per_service_mean;

  // --- Deployment shape ----------------------------------------------------
  struct SubAgg {
    std::unordered_map<RegionId, int> per_region;
  };
  std::unordered_map<SubscriptionId, SubAgg> agg;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.alive_at(options.snapshot)) continue;
    ++agg[vm.subscription].per_region[vm.region];
  }
  std::vector<double> log_sizes;
  std::vector<double> region_counts;
  // Points (k-1, mean log size) for the per-region decay regression.
  std::vector<std::pair<double, double>> decay_points;
  for (const auto& [_, a] : agg) {
    const double k = double(a.per_region.size());
    region_counts.push_back(k);
    for (const auto& [__, n] : a.per_region) {
      log_sizes.push_back(std::log(double(n)));
      decay_points.emplace_back(k - 1.0, std::log(double(n)));
      ++fit.deployments_observed;
    }
  }
  if (!log_sizes.empty()) {
    p.deploy_size_sigma = std::max(0.05, stats::stddev(log_sizes));
    // Least-squares slope of log-size on (k-1): the per-region decay.
    double mx = 0, my = 0;
    for (const auto& [x, y] : decay_points) {
      mx += x;
      my += y;
    }
    mx /= double(decay_points.size());
    my /= double(decay_points.size());
    double sxy = 0, sxx = 0;
    for (const auto& [x, y] : decay_points) {
      sxy += (x - mx) * (y - my);
      sxx += (x - mx) * (x - mx);
    }
    const double slope = sxx > 0 ? sxy / sxx : 0.0;
    p.deploy_size_mu_decay_per_region = std::clamp(-slope, 0.0, 1.0);
    // mu is the intercept at k = 1 (single-region deployments).
    p.deploy_size_mu = my + p.deploy_size_mu_decay_per_region * mx;
  }
  if (!region_counts.empty()) {
    std::vector<double> weights(region_count, 0.0);
    for (const double k : region_counts) {
      const auto idx =
          std::min<std::size_t>(region_count - 1, std::size_t(k) - 1);
      weights[idx] += 1.0;
    }
    for (auto& w : weights) w /= double(region_counts.size());
    p.region_count_weights = std::move(weights);
  }

  // --- Lifetimes -------------------------------------------------------------
  {
    const auto lifetimes = analysis::vm_lifetimes(ctx, cloud, 0,
                                                  trace.telemetry_grid().end());
    fit.ended_vms_observed = lifetimes.size();
    if (!lifetimes.empty()) {
      std::vector<LifetimeModel::Bin> bins;
      for (const auto& bin : base.lifetime.bins()) bins.push_back(bin);
      for (auto& bin : bins) bin.weight = 0.0;
      for (const double l : lifetimes) {
        // Clamp into the base bin edges.
        std::size_t chosen = bins.size() - 1;
        for (std::size_t b = 0; b < bins.size(); ++b) {
          if (l < double(bins[b].hi)) {
            chosen = b;
            break;
          }
        }
        bins[chosen].weight += 1.0;
      }
      for (auto& bin : bins) {
        bin.weight = bin.weight / double(lifetimes.size()) + 1e-4;
      }
      p.lifetime = LifetimeModel(std::move(bins));
    }
  }

  // --- Pattern mix -------------------------------------------------------------
  {
    const auto mix =
        analysis::classify_population(ctx, cloud, options.classify_max_vms);
    fit.classified_vms = mix.classified;
    if (mix.classified > 0) {
      p.pattern_mix = {mix.diurnal, mix.stable, mix.irregular,
                       mix.hourly_peak};
    }
  }

  // --- Region agnosticism ---------------------------------------------------
  {
    const auto verdicts =
        analysis::detect_region_agnostic_services(ctx, cloud, 0.7, 25);
    if (!verdicts.empty()) {
      std::size_t agnostic = 0;
      for (const auto& v : verdicts) {
        if (v.region_agnostic) ++agnostic;
      }
      p.region_agnostic_prob = double(agnostic) / double(verdicts.size());
    }
  }

  // --- Churn --------------------------------------------------------------------
  {
    // Per-region creation-rate scans are independent; fan them out and
    // merge the partial estimates in region order so the fitted numbers do
    // not depend on the thread count.
    struct RegionChurn {
      bool has_churn = false;
      double weekday_sum = 0, weekend_sum = 0;
      std::size_t weekday_n = 0, weekend_n = 0;
      std::vector<double> hourly;
      double burst_excess = 0;
      std::size_t burst_hours = 0;
    };
    const auto regions = trace.topology().regions();
    const auto per_region = parallel_map<RegionChurn>(
        regions.size(),
        [&](std::size_t r) {
          RegionChurn rc;
          const auto created =
              analysis::creations_per_hour(ctx, cloud, regions[r].id);
          if (created.mean() <= 0) return rc;
          rc.has_churn = true;
          const double mean = created.mean();
          const double sd = stats::stddev(created.values());
          rc.hourly.reserve(created.size());
          for (std::size_t i = 0; i < created.size(); ++i) {
            const double v = created[i];
            rc.hourly.push_back(v);
            if (is_weekend(created.grid().at(i))) {
              rc.weekend_sum += v;
              ++rc.weekend_n;
            } else {
              rc.weekday_sum += v;
              ++rc.weekday_n;
            }
            if (v > mean + options.burst_sigma_threshold * sd) {
              ++rc.burst_hours;
              rc.burst_excess += v - mean;
            }
          }
          return rc;
        },
        options.parallel);

    double weekday_sum = 0, weekend_sum = 0;
    std::size_t weekday_n = 0, weekend_n = 0;
    std::vector<double> all_hourly;
    double burst_excess = 0;
    std::size_t regions_with_churn = 0;
    for (const auto& rc : per_region) {
      if (!rc.has_churn) continue;
      ++regions_with_churn;
      weekday_sum += rc.weekday_sum;
      weekend_sum += rc.weekend_sum;
      weekday_n += rc.weekday_n;
      weekend_n += rc.weekend_n;
      all_hourly.insert(all_hourly.end(), rc.hourly.begin(), rc.hourly.end());
      burst_excess += rc.burst_excess;
      fit.burst_hours_detected += rc.burst_hours;
    }
    if (regions_with_churn > 0 && !all_hourly.empty()) {
      fit.mean_creations_per_hour_per_region =
          stats::mean(all_hourly);
      const double weekday_mean =
          weekday_n ? weekday_sum / double(weekday_n) : 0.0;
      const double weekend_mean =
          weekend_n ? weekend_sum / double(weekend_n) : 0.0;
      if (weekday_mean > 0) {
        p.diurnal_churn.weekend_scale =
            std::clamp(weekend_mean / weekday_mean, 0.05, 1.0);
      }
      // Bursts: contiguous burst hours of the base window size per region
      // per week.
      const double burst_window_hours =
          std::max(1.0, double(base.burst_churn.burst_window) / double(kHour));
      const double weeks =
          double(trace.telemetry_grid().end()) / double(kWeek);
      const double bursts = double(fit.burst_hours_detected) /
                            burst_window_hours;
      p.burst_churn.bursts_per_week =
          bursts / std::max(1.0, weeks) / double(regions_with_churn);
      if (bursts >= 1.0) {
        p.burst_churn.burst_size_mean =
            std::max(1.0, burst_excess / bursts);
      } else {
        p.burst_churn.bursts_per_week = 0.0;
      }
      // Peak rate of the diurnal component from the non-burst mean.
      const double non_burst_mean =
          std::max(0.0, stats::mean(all_hourly) -
                            burst_excess / double(all_hourly.size()));
      const double multiplier = mean_rate_multiplier(p.diurnal_churn);
      if (multiplier > 0)
        p.diurnal_churn.base_per_hour =
            options.population_scale * non_burst_mean / multiplier;
    } else {
      p.diurnal_churn.base_per_hour = 0;
      p.burst_churn.bursts_per_week = 0;
    }
  }

  // --- Standing termination probability -----------------------------------
  {
    std::size_t standing = 0, standing_ended = 0;
    for (const auto& vm : trace.vms()) {
      if (vm.cloud != cloud || vm.created >= 0) continue;
      ++standing;
      if (vm.ended() && vm.deleted <= trace.telemetry_grid().end())
        ++standing_ended;
    }
    if (standing > 0)
      p.standing_end_prob =
          std::clamp(double(standing_ended) / double(standing), 0.0, 1.0);
  }

  p.name = base.name + "-fitted";
  p.validate();
  return fit;
}

}  // namespace cloudlens::workloads
