#include "workloads/lifetime.h"

#include <cmath>

#include "common/check.h"

namespace cloudlens::workloads {

LifetimeModel::LifetimeModel(std::vector<Bin> bins) : bins_(std::move(bins)) {
  CL_CHECK(!bins_.empty());
  std::vector<double> w;
  w.reserve(bins_.size());
  for (const auto& b : bins_) {
    CL_CHECK(b.lo > 0 && b.hi > b.lo && b.weight >= 0);
    w.push_back(b.weight);
    total_weight_ += b.weight;
  }
  CL_CHECK(total_weight_ > 0);
  picker_ = AliasTable(w);
}

SimDuration LifetimeModel::sample(Rng& rng) const {
  const Bin& b = bins_[picker_.sample(rng)];
  // Log-uniform inside the bin: short lifetimes are denser near the low
  // edge, matching the heavy concentration the paper observes.
  const double lo = std::log(static_cast<double>(b.lo));
  const double hi = std::log(static_cast<double>(b.hi));
  return static_cast<SimDuration>(std::exp(rng.uniform(lo, hi)));
}

double LifetimeModel::shortest_bin_share() const {
  return bins_.front().weight / total_weight_;
}

LifetimeModel LifetimeModel::azure_private() {
  // Shortest bin (< 30 min) holds 49% of ended VMs; the rest spreads over
  // hours-to-days lifetimes (service redeployments, batch analytics).
  return LifetimeModel({
      {5 * kMinute, 30 * kMinute, 0.49},
      {30 * kMinute, 2 * kHour, 0.14},
      {2 * kHour, 8 * kHour, 0.12},
      {8 * kHour, kDay, 0.10},
      {kDay, 3 * kDay, 0.09},
      {3 * kDay, 6 * kDay, 0.06},
  });
}

LifetimeModel LifetimeModel::azure_public() {
  // Shortest bin holds 81%; the tail decays fast (short-lived autoscaled
  // and interactive VMs dominate public-cloud churn).
  return LifetimeModel({
      {5 * kMinute, 30 * kMinute, 0.81},
      {30 * kMinute, 2 * kHour, 0.08},
      {2 * kHour, 8 * kHour, 0.05},
      {8 * kHour, kDay, 0.03},
      {kDay, 3 * kDay, 0.02},
      {3 * kDay, 6 * kDay, 0.01},
  });
}

}  // namespace cloudlens::workloads
