// VM lifetime models.
//
// Fig. 3(a) of the paper reports the lifetime CDF over VMs that start and
// end within the observed week: 49% of private-cloud VMs fall in the
// shortest lifetime bin versus 81% of public-cloud VMs, with the gap
// persisting across the whole axis. We model lifetimes as a categorical
// mixture over duration bins with log-uniform sampling inside each bin.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace cloudlens::workloads {

class LifetimeModel {
 public:
  struct Bin {
    SimDuration lo = kMinute;
    SimDuration hi = kHour;
    double weight = 1.0;
  };

  LifetimeModel(std::vector<Bin> bins);

  /// Draw a lifetime (log-uniform within the chosen bin).
  SimDuration sample(Rng& rng) const;

  std::span<const Bin> bins() const { return bins_; }

  /// Probability mass of the shortest bin (the paper's headline statistic).
  double shortest_bin_share() const;

  /// Private cloud: 49% in the shortest bin (< 30 min), substantial mass at
  /// multi-hour and multi-day lifetimes (long-lived service roles churn
  /// less often).
  static LifetimeModel azure_private();
  /// Public cloud: 81% in the shortest bin — autoscaling and batch-style
  /// short-lived VMs dominate.
  static LifetimeModel azure_public();

 private:
  std::vector<Bin> bins_;
  AliasTable picker_;
  double total_weight_ = 0;
};

}  // namespace cloudlens::workloads
