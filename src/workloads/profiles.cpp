#include "workloads/profiles.h"

#include <cmath>

#include "cloudsim/snapshot.h"
#include "common/check.h"

namespace cloudlens::workloads {

CloudProfile CloudProfile::scaled(double factor) const {
  CL_CHECK(factor > 0);
  CloudProfile p = *this;
  p.first_party_services =
      std::max(first_party_services > 0 ? 1 : 0,
               static_cast<int>(std::lround(first_party_services * factor)));
  p.third_party_subscriptions = std::max(
      third_party_subscriptions > 0 ? 1 : 0,
      static_cast<int>(std::lround(third_party_subscriptions * factor)));
  p.diurnal_churn.base_per_hour *= factor;
  p.burst_churn.base_per_hour *= factor;
  p.burst_churn.burst_size_mean *= factor;
  return p;
}

void CloudProfile::validate() const {
  CL_CHECK_MSG(first_party_services >= 0 && third_party_subscriptions >= 0,
               "negative population counts");
  CL_CHECK_MSG(first_party_services + third_party_subscriptions > 0,
               "profile has no owners");
  CL_CHECK(subs_per_service_mean >= 1.0);
  CL_CHECK(deploy_size_sigma >= 0 && deploy_size_max >= 1);
  CL_CHECK(deploy_size_mu_decay_per_region >= 0);
  CL_CHECK_MSG(!region_count_weights.empty(),
               "region_count_weights must not be empty");
  double region_weight_sum = 0;
  for (const double w : region_count_weights) {
    CL_CHECK(w >= 0);
    region_weight_sum += w;
  }
  CL_CHECK_MSG(region_weight_sum > 0, "region weights all zero");
  CL_CHECK(region_agnostic_prob >= 0 && region_agnostic_prob <= 1);
  CL_CHECK(sku_mix_prob >= 0 && sku_mix_prob <= 1);
  CL_CHECK_MSG(pattern_mix.diurnal >= 0 && pattern_mix.stable >= 0 &&
                   pattern_mix.irregular >= 0 && pattern_mix.hourly_peak >= 0,
               "negative pattern mix weight");
  CL_CHECK_MSG(pattern_mix.diurnal + pattern_mix.stable +
                       pattern_mix.irregular + pattern_mix.hourly_peak >
                   0,
               "pattern mix all zero");
  CL_CHECK(phase_jitter_hours >= 0);
  CL_CHECK(diurnal_churn.base_per_hour >= 0);
  CL_CHECK(burst_churn.bursts_per_week >= 0);
  CL_CHECK(standing_end_prob >= 0 && standing_end_prob <= 1);
  CL_CHECK(standing_age_max > 0);
}

CloudProfile CloudProfile::azure_private() {
  CloudProfile p;
  p.name = "azure-private";
  p.cloud = CloudType::kPrivate;
  // Private clusters host a narrow band of VM shapes (Fig. 2(a)).
  p.catalog = SkuCatalog::mainstream();

  // ~100 large first-party services; subscription count is ~1/40 the
  // public profile's, giving the ~20x subscriptions-per-cluster gap of
  // Fig. 1(b).
  p.first_party_services = 120;
  p.subs_per_service_mean = 1.4;
  p.third_party_subscriptions = 0;

  // Large deployments: LogNormal median 90 VMs per region (Fig. 1(a)).
  p.deploy_size_mu = std::log(90.0);
  p.deploy_size_sigma = 0.9;
  p.deploy_size_max = 3000;
  // Multi-region services keep per-region deployments slightly smaller so
  // single-region subscriptions end up holding ~40% of cores (Fig. 4(b)).
  p.deploy_size_mu_decay_per_region = 0.04;
  // 58% single-region; a fatter multi-region tail than public (Fig. 4(a)).
  p.region_count_weights = {0.58, 0.16, 0.09, 0.06, 0.04,
                            0.03, 0.02, 0.01, 0.005, 0.005};
  // Most first-party services sit behind geo-level load balancers
  // (the ServiceX case study, Fig. 7(c)).
  p.region_agnostic_prob = 0.75;
  p.sku_mix_prob = 0.05;  // homogeneous shapes within a service

  // Fig. 5(d): diurnal dominant (~1.8x the public share), strong
  // hourly-peak presence (work-related activity), little stable mass.
  p.pattern_mix = {0.66, 0.10, 0.04, 0.20};
  p.phase_jitter_hours = 0.75;  // work hours align tightly

  p.lifetime = LifetimeModel::azure_private();

  // Fig. 3(b,c): low-amplitude deployments with occasional large bursts.
  p.diurnal_churn.base_per_hour = 22.0;
  p.diurnal_churn.floor = 0.35;
  p.diurnal_churn.weekend_scale = 0.55;
  p.burst_churn.base_per_hour = 0.0;  // background handled by diurnal_churn
  p.burst_churn.bursts_per_week = 2.5;
  p.burst_churn.burst_size_mean = 500.0;
  p.burst_churn.burst_size_sigma = 0.6;
  p.burst_churn.burst_window = 2 * kHour;

  p.standing_end_prob = 0.10;
  return p;
}

CloudProfile CloudProfile::azure_public() {
  CloudProfile p;
  p.name = "azure-public";
  p.cloud = CloudType::kPublic;
  // Public demand extends to tiny burstable and very large VMs (Fig. 2(b)).
  {
    std::vector<VmSku> skus = {
        {"B1ls", 1, 0.5}, {"B1s", 1, 1},   {"B2s", 2, 4},
        {"D1", 1, 4},     {"D2", 2, 8},    {"D4", 4, 16},
        {"D8", 8, 32},    {"D16", 16, 64}, {"E32", 32, 256},
        {"E48", 48, 384}, {"M32", 32, 512},
    };
    std::vector<double> w = {0.10, 0.10, 0.08, 0.17, 0.24, 0.16,
                             0.08, 0.04, 0.015, 0.005, 0.01};
    p.catalog = SkuCatalog(std::move(skus), std::move(w));
  }

  // A small first-party presence plus a large third-party customer base.
  p.first_party_services = 20;
  p.subs_per_service_mean = 1.3;
  p.third_party_subscriptions = 6500;

  // Small deployments: LogNormal median ~2 VMs per region.
  p.deploy_size_mu = std::log(2.2);
  p.deploy_size_sigma = 1.15;
  p.deploy_size_max = 500;
  p.deploy_size_mu_decay_per_region = 0.25;
  // 80% single-region; single-region subs hold ~70% of cores (Fig. 4).
  p.region_count_weights = {0.80, 0.12, 0.04, 0.02, 0.01,
                            0.005, 0.003, 0.001, 0.0005, 0.0005};
  p.region_agnostic_prob = 0.50;  // first-party services only
  p.sku_mix_prob = 0.25;          // customers mix shapes more freely

  // Fig. 5(d): diurnal still the most common, but stable nearly ties;
  // hourly-peak is rare.
  p.pattern_mix = {0.48, 0.32, 0.12, 0.08};
  // Customers serve their own geographies: phases disperse widely, which
  // flattens the aggregate daily profile (Fig. 6(d)).
  p.phase_jitter_hours = 12.0;

  p.lifetime = LifetimeModel::azure_public();

  // Fig. 3(c): clear, stable diurnal creation pattern from autoscaling.
  p.diurnal_churn.base_per_hour = 150.0;
  p.diurnal_churn.floor = 0.15;
  p.diurnal_churn.weekend_scale = 0.45;
  p.burst_churn.bursts_per_week = 0.0;  // no bursty component

  p.standing_end_prob = 0.12;
  return p;
}

void CloudProfile::append_config_bytes(std::string& out) const {
  using snapshot_codec::append_f64;
  using snapshot_codec::append_i64;
  using snapshot_codec::append_string;
  using snapshot_codec::append_u32;
  using snapshot_codec::append_u64;
  using snapshot_codec::append_u8;

  // Encoding version: bump whenever a field is added, removed, or
  // reordered so old and new encodings can never collide.
  append_u8(out, 1);

  append_string(out, name);
  append_u8(out, cloud == CloudType::kPrivate ? 0 : 1);

  append_u64(out, catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const VmSku& sku = catalog.at(i);
    append_string(out, sku.name);
    append_f64(out, sku.cores);
    append_f64(out, sku.memory_gb);
  }
  for (const double w : catalog.weights()) append_f64(out, w);

  append_u32(out, static_cast<std::uint32_t>(first_party_services));
  append_f64(out, subs_per_service_mean);
  append_u32(out, static_cast<std::uint32_t>(third_party_subscriptions));

  append_f64(out, deploy_size_mu);
  append_f64(out, deploy_size_sigma);
  append_u32(out, static_cast<std::uint32_t>(deploy_size_max));
  append_f64(out, deploy_size_mu_decay_per_region);
  append_u64(out, region_count_weights.size());
  for (const double w : region_count_weights) append_f64(out, w);
  append_f64(out, region_agnostic_prob);
  append_f64(out, sku_mix_prob);

  append_f64(out, pattern_mix.diurnal);
  append_f64(out, pattern_mix.stable);
  append_f64(out, pattern_mix.irregular);
  append_f64(out, pattern_mix.hourly_peak);
  append_f64(out, phase_jitter_hours);
  append_f64(out, agnostic_anchor_tz);

  append_u64(out, lifetime.bins().size());
  for (const LifetimeModel::Bin& bin : lifetime.bins()) {
    append_i64(out, bin.lo);
    append_i64(out, bin.hi);
    append_f64(out, bin.weight);
  }

  append_f64(out, diurnal_churn.base_per_hour);
  append_f64(out, diurnal_churn.floor);
  append_f64(out, diurnal_churn.peak_hour);
  append_f64(out, diurnal_churn.width_hours);
  append_f64(out, diurnal_churn.weekend_scale);
  append_f64(out, diurnal_churn.tz_offset_hours);

  append_f64(out, burst_churn.base_per_hour);
  append_f64(out, burst_churn.bursts_per_week);
  append_f64(out, burst_churn.burst_size_mean);
  append_f64(out, burst_churn.burst_size_sigma);
  append_i64(out, burst_churn.burst_window);

  append_f64(out, standing_end_prob);
  append_i64(out, standing_age_max);
}

}  // namespace cloudlens::workloads
