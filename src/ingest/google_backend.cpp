// Google cluster-trace backend (clusterdata-2011 format): maps tasks to
// VMs with AGOCS-style fidelity accounting — every deviation from the
// published trace invariants is counted, hard breaks are flagged as
// violations, and nothing is silently patched without a counter.
//
//   task_events.csv  required; 13 columns:
//     timestamp(us),missing_info,job_id,task_index,machine_id,event_type,
//     user,scheduling_class,priority,cpu_request,memory_request,
//     disk_request,different_machines_restriction
//     event types: 0 SUBMIT, 1 SCHEDULE, 2 EVICT, 3 FAIL, 4 FINISH,
//     5 KILL, 6 LOST, 7 UPDATE_PENDING, 8 UPDATE_RUNNING.
//   task_usage.csv   optional; >= 6 columns, of which
//     start_time(us),end_time(us),job_id,task_index,machine_id,
//     mean_cpu_usage_rate are used.
//
// Mapping: a task (job_id, task_index) becomes a VM at its first
// SCHEDULE; a job becomes a subscription; a user becomes a first-party
// service (the cluster is a private cloud: every owner is the operator's
// own workload); a machine becomes a node (first-seen order, racks of 8,
// single region/cluster). Requests are normalized [0,1] fractions of the
// largest machine, so cores = cpu_request * 64 and memory =
// memory_request * 512 GB. The trace's clock starts 600 s before the
// first recorded event; timestamps shift by -600 s into sim time.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/trace_io.h"
#include "common/check.h"
#include "ingest/backend.h"
#include "ingest/csv.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"

namespace cloudlens::ingest {
namespace {

constexpr double kMachineCores = 64;
constexpr double kMachineMemoryGb = 512;
constexpr std::size_t kNodesPerRack = 8;
constexpr SimTime kTraceStartSeconds = 600;  // published clock offset
constexpr std::uint64_t kMicrosPerSecond = 1000000;

enum GEvent : int {
  kSubmit = 0,
  kSchedule = 1,
  kEvict = 2,
  kFail = 3,
  kFinish = 4,
  kKill = 5,
  kLost = 6,
  kUpdatePending = 7,
  kUpdateRunning = 8,
};

struct GEventRow {
  SimTime t = 0;
  bool missing_info = false;
  std::string job;
  std::uint64_t task_index = 0;
  std::string machine;
  int event_type = 0;
  std::string user;
  double cpu_request = -1, memory_request = -1;  // -1 = field was empty
};

struct GUsageRow {
  SimTime t = 0;
  std::string job;
  std::uint64_t task_index = 0;
  double mean_cpu = 0;
};

struct TaskState {
  bool submitted = false;
  bool scheduled = false;
  SimTime created = 0;
  SimTime ended = kNoEnd;  // latest terminal event; kNoEnd while running
  std::uint32_t machine = 0;
  std::uint32_t job = 0;
  std::uint32_t user = 0;
  double cpu_request = -1, memory_request = -1;
  std::uint32_t vm = 0;  // dense VM index, valid once scheduled
};

CsvDecodeOptions google_decode_options(const IngestOptions& options,
                                       std::string file) {
  CsvDecodeOptions decode;
  decode.file = std::move(file);
  decode.parallel = options.parallel;
  decode.block_bytes = options.block_bytes;
  decode.chunk_lines = options.chunk_lines;
  decode.metrics = options.metrics;
  return decode;
}

SimTime micros_to_sim(std::uint64_t us) {
  return static_cast<SimTime>(us / kMicrosPerSecond) - kTraceStartSeconds;
}

class GoogleBackend final : public IngestBackend {
 public:
  std::string_view name() const override { return "google"; }
  std::string_view description() const override {
    return "Google cluster trace (task_events + task_usage, tasks mapped "
           "to VMs with fidelity counters)";
  }
  std::vector<std::string> input_files() const override {
    return {"task_events.csv", "task_usage.csv"};
  }
  IngestResult import_dir(const std::string& dir,
                          const IngestOptions& options) const override;
};

}  // namespace

const IngestBackend& google_backend() {
  static const GoogleBackend backend;
  return backend;
}

IngestResult GoogleBackend::import_dir(const std::string& dir,
                                       const IngestOptions& options) const {
  obs::PhaseTimer timer("ingest.google", obs::Histogram::kIngestDecodeSeconds,
                        obs::Counter::kIngestImports, options.metrics,
                        options.sink);
  obs::MetricsRegistry& metrics = options.metrics != nullptr
                                      ? *options.metrics
                                      : obs::MetricsRegistry::global();
  IngestResult result;
  IngestReport& report = result.report;
  report.backend = "google";
  const TimeGrid grid = options.grid;

  // --- task_events --------------------------------------------------------
  const std::string events_path = dir + "/task_events.csv";
  std::ifstream events_in(events_path, std::ios::binary);
  CL_CHECK_MSG(events_in.good(), "missing " << events_path);

  // First-seen dense id spaces (assigned in serial consume order).
  std::unordered_map<std::string, std::uint32_t> machine_index;
  std::vector<std::string> machine_names;
  std::unordered_map<std::string, std::uint32_t> job_index;
  std::unordered_map<std::string, std::uint32_t> user_index;
  std::vector<std::string> user_names;
  // Task key: "job/index".
  std::unordered_map<std::string, TaskState> tasks;
  std::vector<std::string> vm_order;  // task keys in first-SCHEDULE order
  SimTime last_event_time = std::numeric_limits<SimTime>::min();

  auto intern = [](std::unordered_map<std::string, std::uint32_t>& index,
                   std::vector<std::string>* names,
                   const std::string& key) -> std::uint32_t {
    const auto [it, inserted] =
        index.emplace(key, static_cast<std::uint32_t>(index.size()));
    if (inserted && names != nullptr) names->push_back(key);
    return it->second;
  };

  decode_csv<GEventRow>(
      events_in, google_decode_options(options, events_path),
      [](const CsvRow& row) {
        row.expect_fields(13);
        GEventRow r;
        r.t = micros_to_sim(row.u64(0));
        r.missing_info = !row.field(1).empty() && row.field(1) != "0";
        r.job = std::string(row.field(2));
        if (r.job.empty()) row.fail(2, "a job id");
        r.task_index = row.u64(3);
        r.machine = std::string(row.field(4));
        const std::int64_t type = row.i64(5);
        if (type < kSubmit || type > kUpdateRunning)
          row.fail(5, "an event type 0-8");
        r.event_type = static_cast<int>(type);
        r.user = std::string(row.field(6));
        if (!row.field(9).empty()) r.cpu_request = row.f64(9);
        if (!row.field(10).empty()) r.memory_request = row.f64(10);
        return r;
      },
      [&](GEventRow&& r) {
        ++report.rows;
        // Published invariant: the events file is time-sorted.
        if (r.t < last_event_time) {
          ++report.fidelity_counter("out_of_order_event");
          ++report.violations;
        }
        last_event_time = std::max(last_event_time, r.t);
        // Published invariant: requests are normalized to [0,1].
        for (double* req : {&r.cpu_request, &r.memory_request}) {
          if (*req >= 0 && *req > 1.0) {
            ++report.fidelity_counter("request_out_of_range");
            ++report.violations;
            *req = 1.0;
          }
        }
        const std::string key = r.job + "/" + std::to_string(r.task_index);
        TaskState& task = tasks[key];
        if (r.cpu_request >= 0) task.cpu_request = r.cpu_request;
        if (r.memory_request >= 0) task.memory_request = r.memory_request;
        switch (r.event_type) {
          case kSubmit:
            task.submitted = true;
            break;
          case kSchedule: {
            if (!task.submitted) {
              // The trace docs call this out: records from before the
              // window can be missing; missing_info marks it benign.
              ++report.fidelity_counter(r.missing_info
                                            ? "schedule_without_submit_marked"
                                            : "schedule_without_submit");
              if (!r.missing_info) ++report.violations;
              task.submitted = true;
            }
            if (task.scheduled && task.ended == kNoEnd) {
              ++report.fidelity_counter("duplicate_schedule");
              ++report.violations;
              break;
            }
            if (r.machine.empty()) {
              ++report.fidelity_counter("schedule_missing_machine");
              ++report.violations;
            }
            const std::uint32_t machine = intern(
                machine_index, &machine_names,
                r.machine.empty() ? std::string("<missing>") : r.machine);
            if (task.scheduled) {
              // SCHEDULE after a terminal event: the task came back
              // (evicted/failed tasks resubmit). Its VM's life extends.
              ++report.fidelity_counter("reschedule");
              task.ended = kNoEnd;
            } else {
              task.scheduled = true;
              task.created = r.t;
              task.machine = machine;
              task.job = intern(job_index, nullptr, r.job);
              task.user = intern(user_index, &user_names,
                                 r.user.empty() ? std::string("<unknown-user>")
                                                : r.user);
              task.vm = static_cast<std::uint32_t>(vm_order.size());
              vm_order.push_back(key);
            }
            break;
          }
          case kEvict:
          case kFail:
          case kFinish:
          case kKill:
          case kLost:
            if (!task.scheduled) {
              ++report.fidelity_counter("terminal_without_schedule");
              ++report.violations;
              break;
            }
            if (task.ended != kNoEnd)
              ++report.fidelity_counter("duplicate_terminal");
            task.ended = r.t;
            break;
          case kUpdatePending:
          case kUpdateRunning:
            ++report.fidelity_counter("request_update");
            break;
        }
      });

  // --- task_usage (optional) ----------------------------------------------
  const std::string usage_path = dir + "/task_usage.csv";
  std::ifstream usage_in(usage_path, std::ios::binary);
  std::unordered_map<std::uint32_t, std::vector<double>> buffers;
  std::uint64_t files = 1;
  if (usage_in.good()) {
    ++files;
    decode_csv<GUsageRow>(
        usage_in, google_decode_options(options, usage_path),
        [](const CsvRow& row) {
          if (row.size() < 6) row.fail(5, "a mean cpu usage rate");
          GUsageRow r;
          r.t = micros_to_sim(row.u64(0));
          r.job = std::string(row.field(2));
          r.task_index = row.u64(3);
          r.mean_cpu = row.f64(5);
          return r;
        },
        [&](GUsageRow&& r) {
          ++report.rows;
          const std::string key = r.job + "/" + std::to_string(r.task_index);
          const auto it = tasks.find(key);
          if (it == tasks.end() || !it->second.scheduled) {
            ++report.fidelity_counter("usage_unknown_task");
            ++report.skipped_rows;
            return;
          }
          if (!grid.contains(r.t)) {
            ++report.fidelity_counter("usage_out_of_window");
            ++report.skipped_rows;
            return;
          }
          // Usage rates are normalized machine fractions; divide by the
          // task's request to get a utilization-of-allocation fraction
          // (the quantity every cloudlens analysis expects).
          const TaskState& task = it->second;
          double frac;
          if (task.cpu_request > 0) {
            frac = r.mean_cpu / task.cpu_request;
          } else {
            ++report.fidelity_counter("usage_without_request");
            frac = r.mean_cpu;
          }
          if (frac < 0.0) frac = 0.0;
          if (frac > 1.0) {
            ++report.fidelity_counter("usage_above_allocation");
            frac = 1.0;
          }
          auto& buf = buffers[task.vm];
          // -1 marks "no usage yet"; gaps are forward-filled (and
          // counted) when the VM materializes.
          if (buf.empty()) buf.assign(grid.count, -1.0);
          buf[grid.index_of(r.t)] = frac;
          ++report.samples;
        });
  }

  // --- synthesize topology: machines become nodes, racks of 8 -------------
  result.topology = std::make_unique<Topology>();
  Topology& topo = *result.topology;
  const RegionId region = topo.add_region("google", /*tz_offset_hours=*/0);
  const DatacenterId dc = topo.add_datacenter(region);
  NodeSku sku;
  sku.cores = kMachineCores;
  sku.memory_gb = kMachineMemoryGb;
  const ClusterId cluster = topo.add_cluster(dc, CloudType::kPrivate, sku);
  std::vector<NodeId> node_ids;
  std::vector<RackId> node_racks;
  RackId current_rack;
  for (std::size_t i = 0; i < machine_names.size(); ++i) {
    if (i % kNodesPerRack == 0) current_rack = topo.add_rack(cluster);
    node_ids.push_back(topo.add_node(current_rack));
    node_racks.push_back(current_rack);
  }

  // --- services (users), subscriptions (jobs), VM records ------------------
  result.trace = std::make_unique<TraceStore>(result.topology.get(), grid);
  TraceStore& trace = *result.trace;
  for (const std::string& user : user_names) {
    ServiceInfo svc;
    svc.name = "user-" + user;
    svc.cloud = CloudType::kPrivate;
    trace.add_service(svc);
  }
  // Subscriptions in dense job order; each carries its first task's user
  // as the owning service.
  std::vector<SubscriptionInfo> subs(job_index.size());
  std::vector<bool> sub_service_set(job_index.size(), false);
  for (const std::string& key : vm_order) {
    const TaskState& task = tasks.at(key);
    if (!sub_service_set[task.job]) {
      sub_service_set[task.job] = true;
      subs[task.job].service =
          ServiceId(static_cast<ServiceId::underlying>(task.user));
    }
  }
  for (auto& sub : subs) {
    sub.cloud = CloudType::kPrivate;
    sub.party = PartyType::kFirstParty;
    trace.add_subscription(sub);
  }
  report.subscriptions = subs.size();

  // Every subscription is registered; stream the records out-of-core
  // from here when the caller asked for population sharding.
  begin_population_spill_if_configured(trace, options);
  for (const std::string& key : vm_order) {
    const TaskState& task = tasks.at(key);
    VmRecord rec;
    rec.subscription =
        SubscriptionId(static_cast<SubscriptionId::underlying>(task.job));
    rec.service = ServiceId(static_cast<ServiceId::underlying>(task.user));
    rec.cloud = CloudType::kPrivate;
    rec.party = PartyType::kFirstParty;
    rec.region = region;
    rec.cluster = cluster;
    rec.rack = node_racks[task.machine];
    rec.node = node_ids[task.machine];
    rec.cores = task.cpu_request > 0 ? task.cpu_request * kMachineCores : 1;
    rec.memory_gb =
        task.memory_request > 0 ? task.memory_request * kMachineMemoryGb : 4;
    rec.created = task.created;
    rec.deleted = task.ended >= grid.end() ? kNoEnd : task.ended;
    if (rec.deleted != kNoEnd && rec.deleted <= rec.created) {
      // Tasks scheduled and terminated within the same second collapse
      // under the us->s truncation; give them the shortest lifetime.
      ++report.fidelity_counter("task_shorter_than_second");
      rec.deleted = rec.created + 1;
    }
    const auto it = buffers.find(task.vm);
    if (it != buffers.end()) {
      // task_usage normally covers every 5-minute window a task runs;
      // hold the last rate across any hole (zero before the first one)
      // and count filled in-lifetime slots, mirroring the Azure backend.
      std::vector<double>& buf = it->second;
      std::uint64_t gaps = 0;
      double last = 0.0;
      for (std::size_t s = 0; s < buf.size(); ++s) {
        if (buf[s] >= 0.0) {
          last = buf[s];
          continue;
        }
        buf[s] = last;
        const SimTime t = grid.at(s);
        if (t >= rec.created && (rec.deleted == kNoEnd || t < rec.deleted))
          ++gaps;
      }
      if (gaps > 0) report.fidelity_counter("usage_gaps_filled") += gaps;
      rec.utilization =
          std::make_shared<SampledUtilization>(grid, std::move(buf));
    }
    trace.add_vm(std::move(rec));
  }
  finish_population_spill_if_configured(trace, options);
  report.vms = vm_order.size();

  metrics.add(obs::Counter::kIngestFiles, files);
  metrics.add(obs::Counter::kIngestVms, report.vms);
  metrics.add(obs::Counter::kIngestSamples, report.samples);
  metrics.add(obs::Counter::kIngestRowsSkipped, report.skipped_rows);
  metrics.add(obs::Counter::kIngestFidelityViolations, report.violations);
  std::uint64_t fidelity_events = 0;
  for (const auto& [name, value] : report.fidelity) fidelity_events += value;
  metrics.add(obs::Counter::kIngestFidelityEvents, fidelity_events);
  return result;
}

}  // namespace cloudlens::ingest
