#include "ingest/backend.h"

#include <sstream>

#include "cloudsim/population.h"
#include "common/table.h"

namespace cloudlens::ingest {

void begin_population_spill_if_configured(TraceStore& trace,
                                          const IngestOptions& options) {
  if (options.population_sharding == nullptr) return;
  trace.begin_population_spill(*options.population_sharding);
}

void finish_population_spill_if_configured(TraceStore& trace,
                                           const IngestOptions& options) {
  if (options.population_sharding == nullptr) return;
  trace.finish_population_spill();
}

std::uint64_t& IngestReport::fidelity_counter(std::string_view name) {
  for (auto& [key, value] : fidelity) {
    if (key == name) return value;
  }
  fidelity.emplace_back(std::string(name), 0);
  return fidelity.back().second;
}

std::uint64_t IngestReport::fidelity_count(std::string_view name) const {
  for (const auto& [key, value] : fidelity) {
    if (key == name) return value;
  }
  return 0;
}

const IngestBackend* find_backend(std::string_view name) {
  if (name.empty() || name == "cloudlens") return &cloudlens_backend();
  if (name == "azure") return &azure_backend();
  if (name == "google") return &google_backend();
  return nullptr;
}

std::vector<std::string_view> backend_names() {
  return {cloudlens_backend().name(), azure_backend().name(),
          google_backend().name()};
}

std::string render_ingest_report(const IngestReport& report) {
  std::ostringstream os;
  TextTable totals({"ingest", "count"});
  totals.row().add("rows decoded").add(report.rows);
  totals.row().add("VMs").add(report.vms);
  totals.row().add("subscriptions").add(report.subscriptions);
  totals.row().add("utilization samples").add(report.samples);
  totals.row().add("rows skipped").add(report.skipped_rows);
  totals.row().add("invariant violations").add(report.violations);
  os << "backend: " << report.backend << "\n" << totals;
  if (!report.fidelity.empty()) {
    TextTable fid({"fidelity counter", "count"});
    for (const auto& [name, value] : report.fidelity) {
      fid.row().add(name).add(value);
    }
    os << "\n" << fid;
  }
  return os.str();
}

}  // namespace cloudlens::ingest
