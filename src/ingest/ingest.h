// Convenience entry points over the backend layer.
//
// `import_trace` is the historical stream-based cloudlens-schema import
// that used to live in cloudsim/trace_io.h; it now rides on the hardened
// parallel decode path in ingest/csv.h (serial by default — callers that
// want parallel decode go through import_cloudlens_streams or a backend).
#pragma once

#include <iosfwd>

#include "ingest/backend.h"

namespace cloudlens::ingest {

/// Stream-level cloudlens-schema import: the cloudlens backend's core,
/// exposed for callers that hold streams rather than a directory (the
/// serve engine, tests). Pass nullptr for `utilization_csv` to import
/// metadata only (those VMs carry no utilization model).
IngestResult import_cloudlens_streams(std::istream& topology_csv,
                                      std::istream& vm_csv,
                                      std::istream* utilization_csv,
                                      const IngestOptions& options = {});

}  // namespace cloudlens::ingest

namespace cloudlens {

struct ImportedTrace {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
};

/// Rebuild a topology + trace from the three cloudlens-schema CSV
/// streams. Throws CheckError on malformed input (errors name file,
/// line, and column). Decode is serial here — deterministically
/// identical to the parallel path the backends use.
ImportedTrace import_trace(std::istream& topology_csv, std::istream& vm_csv,
                           std::istream* utilization_csv,
                           TimeGrid grid = week_telemetry_grid());

}  // namespace cloudlens
