// The cloudlens CSV schema backend (topology/vmtable/utilization — the
// format `cloudlens generate` writes; docs/TRACE_FORMAT.md). This is the
// import half that historically lived in cloudsim/trace_io.cpp, rebuilt
// on the chunked parallel decode path with strict field parsing.
#include <cstdint>
#include <fstream>
#include <istream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/trace_io.h"
#include "common/check.h"
#include "ingest/backend.h"
#include "ingest/csv.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"

namespace cloudlens::ingest {
namespace {

CloudType parse_cloud(const CsvRow& row, std::size_t col) {
  const std::string_view text = row.field(col);
  if (text == "private") return CloudType::kPrivate;
  if (text == "public") return CloudType::kPublic;
  row.fail(col, "private|public");
}

PartyType parse_party(const CsvRow& row, std::size_t col) {
  const std::string_view text = row.field(col);
  if (text == "first-party") return PartyType::kFirstParty;
  if (text == "third-party") return PartyType::kThirdParty;
  row.fail(col, "first-party|third-party");
}

CsvDecodeOptions decode_options(const IngestOptions& options,
                                std::string file) {
  CsvDecodeOptions decode;
  decode.file = std::move(file);
  decode.parallel = options.parallel;
  decode.block_bytes = options.block_bytes;
  decode.chunk_lines = options.chunk_lines;
  decode.metrics = options.metrics;
  decode.first_line = 2;  // line 1 is the header, consumed by the caller
  return decode;
}

void check_header(std::istream& in, const std::string& file,
                  std::string_view prefix, std::string_view what) {
  std::string header;
  CL_CHECK_MSG(read_csv_line(in, header), "empty " << what << " CSV: " << file);
  CL_CHECK_MSG(header.rfind(prefix, 0) == 0,
               "unexpected " << what << " header in " << file << ": '"
                             << header << "'");
}

// --- typed rows (parsed in parallel; consumed serially in file order) ---

struct TopoRow {
  std::uint64_t node, rack, cluster, dc, region;
  std::string region_name;
  double tz, cores, memory_gb;
  CloudType cloud;
};

struct VmRow {
  std::uint64_t vm, sub;
  std::uint64_t svc = 0;
  bool has_svc = false;
  CloudType cloud;
  PartyType party;
  std::uint64_t region, cluster, rack, node;
  double cores, memory_gb;
  SimTime created, deleted;
};

struct UtilRow {
  std::uint32_t vm;
  SimTime t;
  double cpu;
};

struct CloudlensImport {
  IngestResult result;
  const IngestOptions* options;

  void import(std::istream& topology_csv, const std::string& topology_name,
              std::istream& vm_csv, const std::string& vm_name,
              std::istream* utilization_csv,
              const std::string& utilization_name);
};

void CloudlensImport::import(std::istream& topology_csv,
                             const std::string& topology_name,
                             std::istream& vm_csv, const std::string& vm_name,
                             std::istream* utilization_csv,
                             const std::string& utilization_name) {
  const IngestOptions& opt = *options;
  result.report.backend = "cloudlens";
  result.topology = std::make_unique<Topology>();
  Topology& topo = *result.topology;

  // --- topology ----------------------------------------------------------
  check_header(topology_csv, topology_name, "node,", "topology");
  decode_csv<TopoRow>(
      topology_csv, decode_options(opt, topology_name),
      [](const CsvRow& row) {
        row.expect_fields(10);
        TopoRow r;
        r.node = row.u64(0);
        r.rack = row.u64(1);
        r.cluster = row.u64(2);
        r.dc = row.u64(3);
        r.region = row.u64(4);
        r.region_name = std::string(row.field(5));
        r.tz = row.f64(6);
        r.cloud = parse_cloud(row, 7);
        r.cores = row.f64(8);
        r.memory_gb = row.f64(9);
        return r;
      },
      [&](TopoRow&& r) {
        // Entities must appear in creation (id) order; create on first
        // sight.
        if (r.region == topo.regions().size()) {
          topo.add_region(r.region_name, r.tz);
        }
        CL_CHECK_MSG(r.region < topo.regions().size(),
                     "region ids out of order in topology CSV");
        if (r.dc == topo.datacenters().size()) {
          topo.add_datacenter(
              RegionId(static_cast<RegionId::underlying>(r.region)));
        }
        CL_CHECK(r.dc < topo.datacenters().size());
        if (r.cluster == topo.clusters().size()) {
          NodeSku sku;
          sku.cores = r.cores;
          sku.memory_gb = r.memory_gb;
          topo.add_cluster(
              DatacenterId(static_cast<DatacenterId::underlying>(r.dc)),
              r.cloud, sku);
        }
        CL_CHECK(r.cluster < topo.clusters().size());
        if (r.rack == topo.racks().size()) {
          topo.add_rack(
              ClusterId(static_cast<ClusterId::underlying>(r.cluster)));
        }
        CL_CHECK(r.rack < topo.racks().size());
        const NodeId created =
            topo.add_node(RackId(static_cast<RackId::underlying>(r.rack)));
        CL_CHECK_MSG(created.value() == r.node,
                     "node ids must be dense and in order");
        ++result.report.rows;
      });

  result.trace = std::make_unique<TraceStore>(result.topology.get(), opt.grid);
  TraceStore& trace = *result.trace;

  // --- vm table -----------------------------------------------------------
  check_header(vm_csv, vm_name, "vm,", "vmtable");
  std::vector<VmRow> rows;
  decode_csv<VmRow>(
      vm_csv, decode_options(opt, vm_name),
      [](const CsvRow& row) {
        row.expect_fields(14);
        VmRow r;
        r.vm = row.u64(0);
        r.sub = row.u64(1);
        if (!row.field(2).empty()) {
          r.has_svc = true;
          r.svc = row.u64(2);
        }
        r.cloud = parse_cloud(row, 3);
        r.party = parse_party(row, 4);
        r.region = row.u64(5);
        r.cluster = row.u64(6);
        r.rack = row.u64(7);
        r.node = row.u64(8);
        r.cores = row.f64(9);
        r.memory_gb = row.f64(10);
        r.created = row.i64(11);
        r.deleted = row.field(12).empty() ? kNoEnd : row.i64(12);
        // Column 14 is the informational pattern label; not validated.
        return r;
      },
      [&](VmRow&& r) {
        ++result.report.rows;
        rows.push_back(std::move(r));
      });

  // Dense id spaces: create placeholder services/subscriptions, then
  // refine from the VM rows that reference them.
  std::size_t max_sub = 0;
  std::size_t max_svc = 0;
  bool any_svc = false;
  for (const VmRow& r : rows) {
    max_sub = std::max(max_sub, static_cast<std::size_t>(r.sub) + 1);
    if (r.has_svc) {
      any_svc = true;
      max_svc = std::max(max_svc, static_cast<std::size_t>(r.svc) + 1);
    }
  }
  std::vector<ServiceInfo> services(any_svc ? max_svc : 0);
  std::vector<SubscriptionInfo> subscriptions(max_sub);
  for (const VmRow& r : rows) {
    subscriptions[r.sub].cloud = r.cloud;
    subscriptions[r.sub].party = r.party;
    if (r.has_svc) {
      subscriptions[r.sub].service =
          ServiceId(static_cast<ServiceId::underlying>(r.svc));
      services[r.svc].cloud = r.cloud;
      if (services[r.svc].name.empty())
        services[r.svc].name = "svc-" + std::to_string(r.svc);
    }
  }
  for (auto& svc : services) {
    if (svc.name.empty()) svc.name = "svc-unreferenced";
    trace.add_service(svc);
  }
  for (const auto& sub : subscriptions) trace.add_subscription(sub);
  result.report.subscriptions = subscriptions.size();

  // --- utilization (optional) --------------------------------------------
  std::unordered_map<std::uint32_t, std::shared_ptr<SampledUtilization>>
      samples;
  if (utilization_csv != nullptr) {
    check_header(*utilization_csv, utilization_name, "vm,", "utilization");
    std::unordered_map<std::uint32_t, std::vector<double>> buffers;
    const TimeGrid grid = opt.grid;
    decode_csv<UtilRow>(
        *utilization_csv, decode_options(opt, utilization_name),
        [](const CsvRow& row) {
          row.expect_fields(3);
          UtilRow r;
          r.vm = static_cast<std::uint32_t>(row.u64(0));
          r.t = row.i64(1);
          r.cpu = row.f64(2);
          return r;
        },
        [&](UtilRow&& r) {
          ++result.report.rows;
          if (!grid.contains(r.t)) {
            ++result.report.skipped_rows;
            return;
          }
          auto& buf = buffers[r.vm];
          if (buf.empty()) buf.assign(grid.count, 0.0);
          buf[grid.index_of(r.t)] = r.cpu;
          ++result.report.samples;
        });
    for (auto& [vm, buf] : buffers) {
      samples.emplace(
          vm, std::make_shared<SampledUtilization>(grid, std::move(buf)));
    }
  }

  // --- materialize VM records (must be in id order) ------------------------
  // Every subscription is registered; stream the records out-of-core
  // from here when the caller asked for population sharding.
  begin_population_spill_if_configured(trace, opt);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const VmRow& r = rows[i];
    CL_CHECK_MSG(r.vm == i, "vm ids must be dense and in order");
    VmRecord rec;
    rec.subscription =
        SubscriptionId(static_cast<SubscriptionId::underlying>(r.sub));
    if (r.has_svc)
      rec.service = ServiceId(static_cast<ServiceId::underlying>(r.svc));
    rec.cloud = r.cloud;
    rec.party = r.party;
    rec.region = RegionId(static_cast<RegionId::underlying>(r.region));
    rec.cluster = ClusterId(static_cast<ClusterId::underlying>(r.cluster));
    rec.rack = RackId(static_cast<RackId::underlying>(r.rack));
    rec.node = NodeId(static_cast<NodeId::underlying>(r.node));
    rec.cores = r.cores;
    rec.memory_gb = r.memory_gb;
    rec.created = r.created;
    rec.deleted = r.deleted;
    const auto it = samples.find(static_cast<std::uint32_t>(r.vm));
    if (it != samples.end()) rec.utilization = it->second;
    trace.add_vm(std::move(rec));
  }
  finish_population_spill_if_configured(trace, opt);
  result.report.vms = rows.size();

  obs::MetricsRegistry& metrics = opt.metrics != nullptr
                                      ? *opt.metrics
                                      : obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kIngestVms, result.report.vms);
  metrics.add(obs::Counter::kIngestSamples, result.report.samples);
  metrics.add(obs::Counter::kIngestRowsSkipped, result.report.skipped_rows);
}

class CloudlensBackend final : public IngestBackend {
 public:
  std::string_view name() const override { return "cloudlens"; }
  std::string_view description() const override {
    return "cloudlens CSV schema (topology/vmtable/utilization, the format "
           "`cloudlens generate` writes)";
  }
  std::vector<std::string> input_files() const override {
    return {"topology.csv", "vmtable.csv", "utilization.csv"};
  }
  IngestResult import_dir(const std::string& dir,
                          const IngestOptions& options) const override {
    obs::PhaseTimer timer("ingest.cloudlens",
                          obs::Histogram::kIngestDecodeSeconds,
                          obs::Counter::kIngestImports, options.metrics,
                          options.sink);
    const std::string topo_path = dir + "/topology.csv";
    const std::string vm_path = dir + "/vmtable.csv";
    const std::string util_path = dir + "/utilization.csv";
    std::ifstream topo(topo_path, std::ios::binary);
    std::ifstream vms(vm_path, std::ios::binary);
    CL_CHECK_MSG(topo.good(), "missing " << topo_path);
    CL_CHECK_MSG(vms.good(), "missing " << vm_path);
    std::ifstream util(util_path, std::ios::binary);
    obs::MetricsRegistry& metrics = options.metrics != nullptr
                                        ? *options.metrics
                                        : obs::MetricsRegistry::global();
    metrics.add(obs::Counter::kIngestFiles, util.good() ? 3 : 2);
    CloudlensImport import;
    import.options = &options;
    import.import(topo, topo_path, vms, vm_path,
                  util.good() ? &util : nullptr, util_path);
    return std::move(import.result);
  }
};

}  // namespace

const IngestBackend& cloudlens_backend() {
  static const CloudlensBackend backend;
  return backend;
}

IngestResult import_cloudlens_streams(std::istream& topology_csv,
                                      std::istream& vm_csv,
                                      std::istream* utilization_csv,
                                      const IngestOptions& options) {
  CloudlensImport import;
  import.options = &options;
  import.import(topology_csv, "topology.csv", vm_csv, "vmtable.csv",
                utilization_csv, "utilization.csv");
  return std::move(import.result);
}

}  // namespace cloudlens::ingest

namespace cloudlens {

ImportedTrace import_trace(std::istream& topology_csv, std::istream& vm_csv,
                           std::istream* utilization_csv, TimeGrid grid) {
  ingest::IngestOptions options;
  options.grid = grid;
  options.parallel = ParallelConfig::serial();
  ingest::IngestResult result = ingest::import_cloudlens_streams(
      topology_csv, vm_csv, utilization_csv, options);
  ImportedTrace imported;
  imported.topology = std::move(result.topology);
  imported.trace = std::move(result.trace);
  return imported;
}

}  // namespace cloudlens
