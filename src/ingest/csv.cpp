#include "ingest/csv.h"

#include <charconv>
#include <exception>
#include <sstream>
#include <system_error>

#include "obs/metrics.h"

namespace cloudlens::ingest {

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

void split_fields(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      return;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool read_csv_line(std::istream& in, std::string& out) {
  if (!std::getline(in, out)) return false;
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return true;
}

void CsvRow::expect_fields(std::size_t n) const {
  if (fields_.size() == n) return;
  std::ostringstream os;
  os << *file_ << ":" << line_ << ": expected " << n << " fields, got "
     << fields_.size();
  throw CheckError(os.str());
}

std::string_view CsvRow::field(std::size_t col) const {
  if (col >= fields_.size()) fail(col, "a field");
  return fields_[col];
}

void CsvRow::fail(std::size_t col, std::string_view want) const {
  std::ostringstream os;
  os << *file_ << ":" << line_ << ": column " << (col + 1) << ": expected "
     << want << ", got '"
     << (col < fields_.size() ? fields_[col] : std::string_view()) << "'";
  throw CheckError(os.str());
}

namespace {

/// from_chars wrapper that demands the whole field be consumed: rejects
/// empty fields, leading whitespace/'+', trailing garbage, and range
/// overflow — everything std::stoul/std::stod silently tolerated or
/// turned into an uncaught std:: exception.
template <typename T>
bool parse_full(std::string_view text, T& value) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const std::from_chars_result r = std::from_chars(first, last, value);
  return r.ec == std::errc() && r.ptr == last;
}

}  // namespace

std::uint64_t CsvRow::u64(std::size_t col) const {
  std::uint64_t value = 0;
  if (!parse_full(field(col), value)) fail(col, "an unsigned integer");
  return value;
}

std::int64_t CsvRow::i64(std::size_t col) const {
  std::int64_t value = 0;
  if (!parse_full(field(col), value)) fail(col, "an integer");
  return value;
}

double CsvRow::f64(std::size_t col) const {
  double value = 0;
  if (!parse_full(field(col), value)) fail(col, "a number");
  return value;
}

namespace detail {
namespace {

struct ChunkError {
  std::exception_ptr error;
  std::uint64_t first_line = 0;
};

}  // namespace

void decode_stream(
    std::istream& in, const CsvDecodeOptions& options,
    const std::function<void(std::size_t chunks)>& begin_block,
    const std::function<void(std::size_t chunk,
                             std::span<const NumberedLine> lines)>& parse_chunk,
    const std::function<void(std::size_t chunk)>& consume_chunk) {
  CL_CHECK(options.block_bytes > 0);
  CL_CHECK(options.chunk_lines > 0);
  obs::MetricsRegistry& metrics = options.metrics != nullptr
                                      ? *options.metrics
                                      : obs::MetricsRegistry::global();

  std::vector<char> block(options.block_bytes);
  std::string pending;  // carries the partial tail line across blocks
  std::vector<NumberedLine> lines;
  std::uint64_t next_line = options.first_line;
  std::uint64_t total_rows = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_chunks = 0;

  for (;;) {
    in.read(block.data(), static_cast<std::streamsize>(block.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    const bool last = got < block.size();
    pending.append(block.data(), got);

    // Everything up to the last newline is complete; the tail carries
    // over (or, at EOF, counts as a final unterminated line).
    std::string_view region;
    const std::size_t cut = pending.rfind('\n');
    if (last) {
      region = pending;
    } else if (cut != std::string::npos) {
      region = std::string_view(pending).substr(0, cut + 1);
    } else {
      continue;  // no complete line yet — keep reading
    }

    lines.clear();
    std::string_view rest = region;
    while (!rest.empty()) {
      const std::size_t nl = rest.find('\n');
      std::string_view raw = nl == std::string_view::npos
                                 ? rest
                                 : rest.substr(0, nl);
      rest = nl == std::string_view::npos ? std::string_view()
                                          : rest.substr(nl + 1);
      const std::string_view text = strip_cr(raw);
      const std::uint64_t number = next_line++;
      if (!text.empty()) lines.push_back({text, number});
    }

    if (!lines.empty()) {
      const std::size_t chunks =
          (lines.size() + options.chunk_lines - 1) / options.chunk_lines;
      begin_block(chunks);

      std::vector<ChunkError> errors(chunks);
      parallel_for(
          chunks,
          [&](std::size_t chunk) {
            const std::size_t begin = chunk * options.chunk_lines;
            const std::size_t end =
                std::min(lines.size(), begin + options.chunk_lines);
            try {
              parse_chunk(chunk, std::span<const NumberedLine>(
                                     lines.data() + begin, end - begin));
            } catch (...) {
              errors[chunk] = {std::current_exception(),
                               lines[begin].number};
            }
          },
          options.parallel);
      // Deterministic error selection: the lowest chunk (lowest line
      // number) wins, whatever order the workers actually failed in.
      for (const ChunkError& e : errors) {
        if (e.error) std::rethrow_exception(e.error);
      }

      for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        consume_chunk(chunk);
      }
      total_rows += lines.size();
      total_chunks += chunks;
    }
    total_bytes += region.size();
    pending.erase(0, region.size());
    if (last) break;
  }

  metrics.add(obs::Counter::kIngestRows, total_rows);
  metrics.add(obs::Counter::kIngestChunks, total_chunks);
  metrics.add(obs::Counter::kIngestBytes, total_bytes);
}

}  // namespace detail
}  // namespace cloudlens::ingest
