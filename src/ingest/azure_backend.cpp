// Azure Public Dataset backend (https://github.com/Azure/AzurePublicDataset).
//
// Reads the published schema directly:
//
//   vmtable.csv          one row per VM (headerless in the published
//                        release; a "vmid,..." header line is tolerated):
//                        vmid,subscriptionid,deploymentid,vmcreated,
//                        vmdeleted,maxcpu,avgcpu,p95maxcpu,vmcategory,
//                        vmcorecount,vmmemory
//                        v2 ships the last two as buckets (">24",
//                        "Unknown"); both spellings are accepted, with a
//                        fidelity counter for each bucketed/unknown value.
//   vm_cpu_readings.csv  optional 5-minute readings:
//                        timestamp,vmid,mincpu,maxcpu,avgcpu
//                        (cpu in percent 0-100; avgcpu/100 becomes the
//                        utilization sample).
//
// The dataset carries no topology, so one is synthesized: a single
// public region/datacenter/cluster, uniform nodes, and a deterministic
// first-fit packing that keeps each deployment's VMs co-located (the
// dataset's deploymentid is its co-location signal) — racks of 16 nodes.
// String ids (vmid/subscriptionid/deploymentid are hashes) map to dense
// ids in first-seen file order, which the serial consume pass makes
// deterministic at any decode thread count.
#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <string>
#include <system_error>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/trace_io.h"
#include "common/check.h"
#include "ingest/backend.h"
#include "ingest/csv.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"

namespace cloudlens::ingest {
namespace {

// Synthesized node shape: large enough for every published VM size
// (v1 tops out at 32 cores / 70 GB) with room to co-locate a deployment.
constexpr double kNodeCores = 48;
constexpr double kNodeMemoryGb = 384;
constexpr std::size_t kNodesPerRack = 16;

struct AzVmRow {
  std::string vmid, sub, deployment;
  SimTime created = 0;
  SimTime deleted = kNoEnd;
  double cores = 0, memory_gb = 0;
  bool core_bucketed = false, core_unknown = false;
  bool mem_bucketed = false, mem_unknown = false;
  bool missing_cpu_summary = false;
};

struct AzReadingRow {
  SimTime t = 0;
  std::string vmid;
  double avg_cpu = 0;  // percent
};

class AzureBackend final : public IngestBackend {
 public:
  std::string_view name() const override { return "azure"; }
  std::string_view description() const override {
    return "Azure Public Dataset v1/v2 (vmtable + vm_cpu_readings)";
  }
  std::vector<std::string> input_files() const override {
    return {"vmtable.csv", "vm_cpu_readings.csv"};
  }
  IngestResult import_dir(const std::string& dir,
                          const IngestOptions& options) const override;
};

}  // namespace

const IngestBackend& azure_backend() {
  static const AzureBackend backend;
  return backend;
}

namespace {

CsvDecodeOptions azure_decode_options(const IngestOptions& options,
                                      std::string file,
                                      std::uint64_t first_line) {
  CsvDecodeOptions decode;
  decode.file = std::move(file);
  decode.parallel = options.parallel;
  decode.block_bytes = options.block_bytes;
  decode.chunk_lines = options.chunk_lines;
  decode.metrics = options.metrics;
  decode.first_line = first_line;
  return decode;
}

/// The published files are headerless; skip a "vmid,..."-style header if
/// one was added by preprocessing. Returns the first data line number.
std::uint64_t skip_optional_header(std::istream& in, std::string_view lead) {
  if (in.peek() == std::char_traits<char>::eof()) return 1;
  const auto pos = in.tellg();
  std::string first;
  if (!ingest::read_csv_line(in, first)) return 1;
  if (first.rfind(lead, 0) == 0) return 2;
  in.clear();
  in.seekg(pos);
  return 1;
}

double parse_capacity_field(const CsvRow& row, std::size_t col,
                            double fallback, bool& bucketed, bool& unknown) {
  std::string_view text = row.field(col);
  if (text.empty() || text == "Unknown") {
    unknown = true;
    return fallback;
  }
  bool gt = false;
  if (text.front() == '>') {
    gt = true;
    text.remove_prefix(1);
  }
  double value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto r = std::from_chars(first, last, value);
  if (r.ec != std::errc() || r.ptr != last) row.fail(col, "a capacity");
  bucketed = gt;
  return value;
}

}  // namespace

IngestResult AzureBackend::import_dir(const std::string& dir,
                                      const IngestOptions& options) const {
  obs::PhaseTimer timer("ingest.azure", obs::Histogram::kIngestDecodeSeconds,
                        obs::Counter::kIngestImports, options.metrics,
                        options.sink);
  obs::MetricsRegistry& metrics = options.metrics != nullptr
                                      ? *options.metrics
                                      : obs::MetricsRegistry::global();
  IngestResult result;
  IngestReport& report = result.report;
  report.backend = "azure";
  const TimeGrid grid = options.grid;

  // --- vmtable ------------------------------------------------------------
  const std::string vm_path = dir + "/vmtable.csv";
  std::ifstream vm_in(vm_path, std::ios::binary);
  CL_CHECK_MSG(vm_in.good(), "missing " << vm_path);

  std::vector<AzVmRow> rows;
  std::unordered_map<std::string, std::uint32_t> vm_index;
  {
    const std::uint64_t first_line = skip_optional_header(vm_in, "vmid,");
    decode_csv<AzVmRow>(
        vm_in, azure_decode_options(options, vm_path, first_line),
        [grid](const CsvRow& row) {
          row.expect_fields(11);
          AzVmRow r;
          r.vmid = std::string(row.field(0));
          r.sub = std::string(row.field(1));
          r.deployment = std::string(row.field(2));
          if (r.vmid.empty()) row.fail(0, "a vm id");
          r.created = row.i64(3);
          // Empty vmdeleted (or one at/after the window end) means the VM
          // outlives the observed window.
          r.deleted = row.field(4).empty() ? kNoEnd : row.i64(4);
          if (r.deleted >= grid.end()) r.deleted = kNoEnd;
          // maxcpu/avgcpu/p95maxcpu are lifetime summaries; only their
          // presence is validated (readings carry the time series).
          for (const std::size_t col : {std::size_t{5}, std::size_t{6},
                                        std::size_t{7}}) {
            if (row.field(col).empty()) {
              r.missing_cpu_summary = true;
            } else {
              (void)row.f64(col);
            }
          }
          r.cores = parse_capacity_field(row, 9, /*fallback=*/2,
                                         r.core_bucketed, r.core_unknown);
          r.memory_gb = parse_capacity_field(row, 10, /*fallback=*/8,
                                             r.mem_bucketed, r.mem_unknown);
          return r;
        },
        [&](AzVmRow&& r) {
          ++report.rows;
          if (r.core_bucketed || r.mem_bucketed)
            ++report.fidelity_counter("capacity_bucketed");
          if (r.core_unknown || r.mem_unknown)
            ++report.fidelity_counter("capacity_unknown");
          if (r.missing_cpu_summary)
            ++report.fidelity_counter("missing_cpu_summary");
          if (r.deleted != kNoEnd && r.deleted <= r.created) {
            // Nonpositive lifetime breaks the published invariant; keep
            // the VM with the shortest representable one.
            ++report.fidelity_counter("deleted_before_created");
            ++report.violations;
            r.deleted = r.created + 1;
          }
          const auto [it, inserted] = vm_index.emplace(
              r.vmid, static_cast<std::uint32_t>(rows.size()));
          if (!inserted) {
            ++report.fidelity_counter("duplicate_vmid");
            ++report.violations;
            ++report.skipped_rows;
            return;
          }
          rows.push_back(std::move(r));
        });
  }

  // --- readings (optional) ------------------------------------------------
  const std::string readings_path = dir + "/vm_cpu_readings.csv";
  std::ifstream readings_in(readings_path, std::ios::binary);
  std::unordered_map<std::uint32_t, std::vector<double>> buffers;
  std::uint64_t files = 1;
  if (readings_in.good()) {
    ++files;
    const std::uint64_t first_line =
        skip_optional_header(readings_in, "timestamp,");
    decode_csv<AzReadingRow>(
        readings_in, azure_decode_options(options, readings_path, first_line),
        [](const CsvRow& row) {
          row.expect_fields(5);
          AzReadingRow r;
          r.t = row.i64(0);
          r.vmid = std::string(row.field(1));
          r.avg_cpu = row.f64(4);
          return r;
        },
        [&](AzReadingRow&& r) {
          ++report.rows;
          const auto it = vm_index.find(r.vmid);
          if (it == vm_index.end()) {
            ++report.fidelity_counter("reading_unknown_vm");
            ++report.skipped_rows;
            return;
          }
          if (!grid.contains(r.t)) {
            ++report.fidelity_counter("reading_out_of_window");
            ++report.skipped_rows;
            return;
          }
          double frac = r.avg_cpu / 100.0;
          if (frac < 0.0 || frac > 1.0) {
            ++report.fidelity_counter("cpu_out_of_range");
            ++report.violations;
            frac = frac < 0.0 ? 0.0 : 1.0;
          }
          auto& buf = buffers[it->second];
          // -1 marks "no reading yet"; gaps are forward-filled (and
          // counted) when the VM materializes.
          if (buf.empty()) buf.assign(grid.count, -1.0);
          buf[grid.index_of(r.t)] = frac;
          ++report.samples;
        });
  }

  // --- synthesize the topology: deployment-co-located first-fit -----------
  result.topology = std::make_unique<Topology>();
  Topology& topo = *result.topology;
  const RegionId region = topo.add_region("azure", /*tz_offset_hours=*/0);
  const DatacenterId dc = topo.add_datacenter(region);
  NodeSku sku;
  sku.cores = kNodeCores;
  sku.memory_gb = kNodeMemoryGb;
  const ClusterId cluster = topo.add_cluster(dc, CloudType::kPublic, sku);

  struct OpenNode {
    NodeId id;
    RackId rack;
    double cores_left = 0, memory_left = 0;
  };
  std::vector<OpenNode> nodes;           // allocation order
  RackId current_rack;
  std::unordered_map<std::string, std::uint32_t> deployment_node;
  auto allocate_node = [&]() -> std::uint32_t {
    if (nodes.size() % kNodesPerRack == 0) current_rack = topo.add_rack(cluster);
    OpenNode node;
    node.id = topo.add_node(current_rack);
    node.rack = current_rack;
    node.cores_left = kNodeCores;
    node.memory_left = kNodeMemoryGb;
    nodes.push_back(node);
    return static_cast<std::uint32_t>(nodes.size() - 1);
  };

  struct Placement {
    std::uint32_t node = 0;
  };
  std::vector<Placement> placements(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AzVmRow& r = rows[i];
    const double need_cores = std::min(r.cores, kNodeCores);
    const double need_mem = std::min(r.memory_gb, kNodeMemoryGb);
    if (r.cores > kNodeCores || r.memory_gb > kNodeMemoryGb)
      ++report.fidelity_counter("vm_larger_than_node");
    const auto it = deployment_node.find(r.deployment);
    std::uint32_t node_idx;
    if (it != deployment_node.end() &&
        nodes[it->second].cores_left >= need_cores &&
        nodes[it->second].memory_left >= need_mem) {
      node_idx = it->second;
    } else {
      node_idx = allocate_node();
      deployment_node[r.deployment] = node_idx;
    }
    nodes[node_idx].cores_left -= need_cores;
    nodes[node_idx].memory_left -= need_mem;
    placements[i].node = node_idx;
  }

  // --- subscriptions (first-seen order) + VM records -----------------------
  result.trace = std::make_unique<TraceStore>(result.topology.get(), grid);
  TraceStore& trace = *result.trace;
  std::unordered_map<std::string, std::uint32_t> sub_index;
  for (const AzVmRow& r : rows) {
    if (sub_index.emplace(r.sub, static_cast<std::uint32_t>(sub_index.size()))
            .second) {
      SubscriptionInfo sub;
      sub.cloud = CloudType::kPublic;
      sub.party = PartyType::kThirdParty;
      trace.add_subscription(sub);
    }
  }
  report.subscriptions = sub_index.size();

  // Every subscription is registered; stream the records out-of-core
  // from here when the caller asked for population sharding.
  begin_population_spill_if_configured(trace, options);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AzVmRow& r = rows[i];
    const OpenNode& node = nodes[placements[i].node];
    VmRecord rec;
    rec.subscription = SubscriptionId(
        static_cast<SubscriptionId::underlying>(sub_index.at(r.sub)));
    rec.cloud = CloudType::kPublic;
    rec.party = PartyType::kThirdParty;
    rec.region = region;
    rec.cluster = cluster;
    rec.rack = node.rack;
    rec.node = node.id;
    rec.cores = r.cores;
    rec.memory_gb = r.memory_gb;
    rec.created = r.created;
    rec.deleted = r.deleted;
    const auto it = buffers.find(static_cast<std::uint32_t>(i));
    if (it != buffers.end()) {
      // The real dataset emits one reading per 5-minute slot but has
      // holes; hold the last reading across a gap (zero before the first
      // one) and count the filled slots that fall inside the VM's alive
      // window so sparse telemetry is visible in the fidelity report.
      std::vector<double>& buf = it->second;
      std::uint64_t gaps = 0;
      double last = 0.0;
      for (std::size_t s = 0; s < buf.size(); ++s) {
        if (buf[s] >= 0.0) {
          last = buf[s];
          continue;
        }
        buf[s] = last;
        const SimTime t = grid.at(s);
        if (t >= rec.created && (rec.deleted == kNoEnd || t < rec.deleted))
          ++gaps;
      }
      if (gaps > 0) report.fidelity_counter("reading_gaps_filled") += gaps;
      rec.utilization =
          std::make_shared<SampledUtilization>(grid, std::move(buf));
    }
    trace.add_vm(std::move(rec));
  }
  finish_population_spill_if_configured(trace, options);
  report.vms = rows.size();

  metrics.add(obs::Counter::kIngestFiles, files);
  metrics.add(obs::Counter::kIngestVms, report.vms);
  metrics.add(obs::Counter::kIngestSamples, report.samples);
  metrics.add(obs::Counter::kIngestRowsSkipped, report.skipped_rows);
  metrics.add(obs::Counter::kIngestFidelityViolations, report.violations);
  std::uint64_t fidelity_events = 0;
  for (const auto& [name, value] : report.fidelity) fidelity_events += value;
  metrics.add(obs::Counter::kIngestFidelityEvents, fidelity_events);
  return result;
}

}  // namespace cloudlens::ingest
