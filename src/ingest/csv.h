// Hardened, chunked, parallel CSV decoding — the hot path every ingest
// backend shares.
//
// Contract (same discipline as common/parallel and the panel/shard work):
//
//   * Deterministic at any thread count. The file is read in fixed-size
//     superblocks, each superblock is split on line boundaries into a
//     fixed chunk grid (a pure function of the line count), chunks are
//     parsed in parallel, and the parsed rows are consumed serially in
//     file order. Bit-identical output whether --threads is 1 or 64.
//   * Bounded memory. Only one superblock of text (plus its parsed rows)
//     is resident at a time; a million-VM trace never holds the full
//     file in memory.
//   * Strict field parsing. Numeric fields go through std::from_chars
//     and must consume the whole field: "3x", "", and out-of-range
//     values are errors, not silent truncations. Errors are CheckError
//     (the repo-wide contract) and name file, line, and 1-based column.
//   * CRLF-safe. A trailing '\r' is stripped in exactly one place
//     (strip_cr), so LF and CRLF files decode identically.
//   * Deterministic errors. When several chunks of a superblock fail in
//     parallel, the error with the smallest line number is the one
//     rethrown — independent of scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace cloudlens::obs {
class MetricsRegistry;
}

namespace cloudlens::ingest {

struct CsvDecodeOptions {
  /// Display name used in error messages ("vmtable.csv:17: column 3: ...").
  std::string file = "<csv>";
  ParallelConfig parallel;
  /// Superblock size: how much raw text is resident at once.
  std::size_t block_bytes = std::size_t{8} << 20;
  /// Lines per parallel parse chunk (the chunk grid is a pure function of
  /// the superblock's line count, never of the thread count).
  std::size_t chunk_lines = 2048;
  /// Line number of the first line handed to decode (headers consumed by
  /// the caller shift this).
  std::uint64_t first_line = 1;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = process-global
};

/// Strips one trailing '\r' — the single place CRLF endings are handled.
std::string_view strip_cr(std::string_view line);

/// Splits `line` at every comma into `out` (cleared first). N commas
/// yield N+1 fields; a trailing comma yields an empty last field.
void split_fields(std::string_view line, std::vector<std::string_view>& out);

/// One split CSV row plus its provenance. Field accessors either return
/// the exact text or throw a CheckError naming file, line, and column —
/// nothing in this class ever lets std::invalid_argument/out_of_range
/// escape from a malformed field.
class CsvRow {
 public:
  CsvRow(std::span<const std::string_view> fields, const std::string* file,
         std::uint64_t line)
      : fields_(fields), file_(file), line_(line) {}

  std::size_t size() const { return fields_.size(); }
  const std::string& file() const { return *file_; }
  std::uint64_t line() const { return line_; }

  /// CheckError unless the row has exactly `n` fields (shifted-column
  /// detection: a row with the wrong shape never half-parses).
  void expect_fields(std::size_t n) const;

  std::string_view field(std::size_t col) const;

  /// Strict full-field numeric parsers: std::from_chars must consume the
  /// entire field. Empty fields, trailing garbage ("3x"), signs where
  /// they make no sense, and out-of-range values all throw.
  std::uint64_t u64(std::size_t col) const;
  std::int64_t i64(std::size_t col) const;
  double f64(std::size_t col) const;

  /// Throws the standard-format field error for `col`.
  [[noreturn]] void fail(std::size_t col, std::string_view want) const;

 private:
  std::span<const std::string_view> fields_;
  const std::string* file_;
  std::uint64_t line_;
};

namespace detail {

struct NumberedLine {
  std::string_view text;  ///< '\r'/'\n'-free
  std::uint64_t number;   ///< 1-based physical line number
};

/// The type-erased decode engine behind decode_csv<Row>. Reads
/// superblocks, builds the chunk grid, runs `parse_chunk` over the
/// chunks via parallel_for (capturing per-chunk exceptions and
/// rethrowing the lowest-line one), then `consume_chunk` serially in
/// chunk order. `begin_block(chunks)` runs before each superblock so the
/// wrapper can size its row storage.
void decode_stream(
    std::istream& in, const CsvDecodeOptions& options,
    const std::function<void(std::size_t chunks)>& begin_block,
    const std::function<void(std::size_t chunk,
                             std::span<const NumberedLine> lines)>& parse_chunk,
    const std::function<void(std::size_t chunk)>& consume_chunk);

}  // namespace detail

/// Decode a CSV stream: `parse(row) -> Row` runs per line, in parallel
/// across chunks; `consume(Row&&)` runs serially in exact file order.
/// Blank lines are skipped (they still advance line numbers). `parse`
/// must be a pure function of its row — that is what makes the decode
/// bit-identical at any thread count.
template <typename Row, typename ParseFn, typename ConsumeFn>
void decode_csv(std::istream& in, const CsvDecodeOptions& options,
                ParseFn&& parse, ConsumeFn&& consume) {
  std::vector<std::vector<Row>> rows;
  std::vector<std::vector<std::string_view>> scratch;
  detail::decode_stream(
      in, options,
      [&](std::size_t chunks) {
        if (rows.size() < chunks) {
          rows.resize(chunks);
          scratch.resize(chunks);
        }
      },
      [&](std::size_t chunk, std::span<const detail::NumberedLine> lines) {
        rows[chunk].clear();
        rows[chunk].reserve(lines.size());
        for (const auto& line : lines) {
          split_fields(line.text, scratch[chunk]);
          rows[chunk].push_back(
              parse(CsvRow(scratch[chunk], &options.file, line.number)));
        }
      },
      [&](std::size_t chunk) {
        for (Row& row : rows[chunk]) consume(std::move(row));
        rows[chunk].clear();
      });
}

/// Reads one physical line (header consumption), stripping the
/// newline and any trailing '\r'. Returns false at EOF.
bool read_csv_line(std::istream& in, std::string& out);

}  // namespace cloudlens::ingest
