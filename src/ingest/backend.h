// Pluggable trace-ingest backends.
//
// A backend turns a directory of raw trace files into the canonical
// in-memory form (Topology + TraceStore) every cloudlens analysis
// consumes, plus an IngestReport of what it saw on the way in. Three
// backends ship:
//
//   cloudlens  the repo's own CSV schema (topology/vmtable/utilization,
//              the format `cloudlens generate` writes — see
//              docs/TRACE_FORMAT.md),
//   azure      Azure Public Dataset v1/v2 (vmtable + per-VM CPU
//              readings; v2 core/memory bucket strings handled),
//   google     Google cluster traces (task_events + task_usage, tasks
//              mapped to VMs with AGOCS-style per-field fidelity
//              counters validated against the published trace
//              invariants).
//
// All backends decode through ingest/csv.h, so the deterministic
// parallel-chunk contract (bit-identical at any thread count), strict
// field parsing, and CRLF handling are shared. Consumption — the part
// that assigns dense ids — is always serial in file order, which is
// what makes first-seen id assignment deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloudsim/topology.h"
#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "common/sim_time.h"

namespace cloudlens::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace cloudlens::obs

namespace cloudlens::ingest {

struct IngestOptions {
  /// Telemetry grid utilization samples land on (also the window that
  /// decides which readings are in range).
  TimeGrid grid = week_telemetry_grid();
  ParallelConfig parallel;
  /// Decode superblock size / chunk grid — execution knobs (exposed for
  /// tests that want many blocks from a small fixture). Never part of a
  /// cache key; results are identical at any setting.
  std::size_t block_bytes = std::size_t{8} << 20;
  std::size_t chunk_lines = 2048;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = process-global
  obs::TraceSink* sink = nullptr;           ///< null = process-global
  /// When set, imported VM records stream straight into population
  /// shards (cloudsim/population.h) as each backend assembles them: the
  /// resident record vector never materializes and imported sampled
  /// utilization spills natively, so trace RSS is bounded by the shard
  /// budget instead of the import size.
  const PopulationShardingOptions* population_sharding = nullptr;
};

/// What an import saw: volume counts plus per-field fidelity counters
/// (the AGOCS discipline from the Google-trace literature — every place
/// the raw data deviates from its published invariants is counted, not
/// silently patched). `violations` is the subset of fidelity events that
/// break a hard invariant of the source format; benign quirks (bucketed
/// values, out-of-window readings) count but do not violate.
struct IngestReport {
  std::string backend;
  std::uint64_t rows = 0;           ///< data rows decoded across all files
  std::uint64_t vms = 0;
  std::uint64_t subscriptions = 0;
  std::uint64_t samples = 0;        ///< utilization cells filled
  std::uint64_t skipped_rows = 0;   ///< benign skips (e.g. out-of-window)
  std::uint64_t violations = 0;
  /// Named fidelity counters in deterministic (first-touch) order.
  std::vector<std::pair<std::string, std::uint64_t>> fidelity;

  std::uint64_t& fidelity_counter(std::string_view name);
  std::uint64_t fidelity_count(std::string_view name) const;
};

struct IngestResult {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  IngestReport report;
};

class IngestBackend {
 public:
  virtual ~IngestBackend() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  /// The files this backend reads from the import directory, in a fixed
  /// order. The pipeline hashes exactly these (by raw bytes) into the
  /// trace stage's cache key. Optional files simply hash as absent.
  virtual std::vector<std::string> input_files() const = 0;
  /// Import `<dir>/<file>` for each input file. Throws CheckError on
  /// malformed input (errors name file and line).
  virtual IngestResult import_dir(const std::string& dir,
                                  const IngestOptions& options) const = 0;
};

/// Registry: nullptr when `name` is unknown. An empty name resolves to
/// the cloudlens backend (the historical default).
const IngestBackend* find_backend(std::string_view name);
std::vector<std::string_view> backend_names();

/// Human-readable import summary (volume + fidelity table).
std::string render_ingest_report(const IngestReport& report);

/// Shared spill bracket for the backends' record-assembly loops: when
/// `options.population_sharding` is set, begin/finish the trace's
/// population spill around the loop (no-ops otherwise). Call begin after
/// every subscription is registered and before the first add_vm.
void begin_population_spill_if_configured(TraceStore& trace,
                                          const IngestOptions& options);
void finish_population_spill_if_configured(TraceStore& trace,
                                           const IngestOptions& options);

/// The three built-in backends (each defined in its own TU).
const IngestBackend& cloudlens_backend();
const IngestBackend& azure_backend();
const IngestBackend& google_backend();

}  // namespace cloudlens::ingest
