// Out-of-core telemetry: sharded panel spill files + on-demand mapping.
//
// The resident TelemetryPanel costs one double per VM per tick (~16 KB per
// VM for the default week grid) — ~3 GB at generator scale 1.0 and ~50 GB
// at the paper's population, which cannot live in one in-memory matrix.
// The shard store splits the panel by a *stable hash of the subscription
// id* into K shards; each shard holds the dense row-major sub-matrix of
// its member VMs (full-resolution rows plus the hourly companion), built
// one shard at a time and spilled to its own snapshot container
// (snapshot.h: SHARD_META/SHARD_ROWS/SHARD_HOURLY sections). Reads mmap
// shard files on demand (SnapshotMapping), so only the rows an analysis
// actually touches ever enter RSS, and an LRU policy unmaps shards when
// the mapped-bytes budget is exceeded. Peak RSS of a full analysis pass is
// O(one shard + scratch) instead of O(panel).
//
// Shard hash contract: shard_of(sub) = SplitMix64(sub.value()).next() %
// shard_count. The hash keys on the *subscription* so that a
// subscription's VMs always land in one shard — the kb extractor and the
// per-subscription spatial profiles then stream whole subscriptions
// without crossing shard boundaries. The assignment is a pure function of
// (subscription id, K): independent of thread count, build order, and
// platform, so spill files are reusable across runs (the router digest
// binds a file to its trace + K).
//
// Concurrency / lifetime rules (TSan-policed):
//   - row()/hourly_row() may be called from any number of pool workers
//     concurrently; a shard's first toucher maps it under a mutex and
//     publishes the view with a release-store (the TraceStore lazy-index
//     idiom).
//   - Returned spans alias the shard's mapping and stay valid until the
//     next evict_over_budget()/evict_all() call. Eviction must therefore
//     happen only at *serial points* — between parallel regions —
//     never while a parallel_for over the store is in flight
//     (ThreadPool::run blocks until the batch drains, which provides the
//     happens-before edge).
//   - Results are bit-identical to the resident panel: rows are produced
//     by the same TelemetryPanel::fill_row/hourly_from_row kernels, and
//     consumers merge per-shard partials in shard-index order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/sim_time.h"

namespace cloudlens {

class TraceStore;
class SnapshotMapping;
struct PanelShardView;

/// Stable shard assignment; pure function of (subscription id, K).
std::uint32_t shard_of_subscription(SubscriptionId sub,
                                    std::uint32_t shard_count);

struct TelemetryShardingOptions {
  /// Number of shards (K). Clamped to >= 1.
  std::uint32_t shards = 16;
  /// Mapped-bytes budget: evict_over_budget() unmaps least-recently-used
  /// shards until the total mapped file bytes fit. 0 = exactly one
  /// resident shard at a time.
  std::size_t budget_bytes = 256ull << 20;
  /// Directory for the spill files (created if missing). Files are named
  /// panel-shard-<index>.clsn; existing files whose router digest matches
  /// are reused instead of rebuilt (warm start).
  std::string spill_dir;
  /// Leave the spill files on disk at destruction (cache-dir reuse).
  /// When false the store removes its files.
  bool keep_files = false;
  /// Parallelism for the per-shard row fill during build.
  ParallelConfig parallel{};
};

/// K mmap-backed panel shards plus the router that assigns VMs to them.
/// Immutable after construction apart from the residency state; see the
/// file comment for the concurrency contract.
class TelemetryShardStore {
 public:
  /// Builds the router, then fills and spills every shard that is not
  /// already on disk with a matching digest. Build allocates one shard's
  /// matrices at a time.
  TelemetryShardStore(const TraceStore& trace,
                      TelemetryShardingOptions options);
  ~TelemetryShardStore();
  TelemetryShardStore(const TelemetryShardStore&) = delete;
  TelemetryShardStore& operator=(const TelemetryShardStore&) = delete;

  std::uint32_t shard_count() const { return shard_count_; }
  const TimeGrid& grid() const { return grid_; }
  /// Hourly companion grid (count == 0 when unavailable).
  const TimeGrid& hourly_grid() const { return hourly_grid_; }
  /// Binds spill files to (trace metadata, K, hash fn); see shard.cpp.
  std::uint64_t router_digest() const { return router_digest_; }

  std::uint32_t shard_of(SubscriptionId sub) const;
  std::uint32_t shard_of_vm(VmId id) const;
  /// Member VMs of `shard` in ascending id order.
  std::span<const VmId> shard_vms(std::uint32_t shard) const;

  /// Full-resolution utilization row (grid().count samples). Maps the
  /// VM's shard on demand; see the lifetime rules above.
  std::span<const double> row(VmId id) const;
  /// Hourly-mean row (hourly_grid().count samples; empty when the hourly
  /// view is unavailable).
  std::span<const double> hourly_row(VmId id) const;

  /// Unmap least-recently-used shards until mapped bytes <= budget.
  /// Serial points only — invalidates every span handed out so far.
  void evict_over_budget() const;
  /// Unmap everything. Serial points only.
  void evict_all() const;

  /// Total file bytes currently mapped.
  std::size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  /// Total bytes of all spill files on disk.
  std::size_t spill_bytes() const { return spill_bytes_; }
  std::size_t budget_bytes() const { return options_.budget_bytes; }

 private:
  struct Shard {
    std::vector<VmId> vms;          // ascending id order
    std::string path;               // spill file
    std::size_t file_bytes = 0;
    // Residency: `view` is published by a release-store after the mapping
    // is opened under `residency_mutex_`; readers acquire-load it.
    std::atomic<const PanelShardView*> view{nullptr};
    std::unique_ptr<SnapshotMapping> mapping;
    std::unique_ptr<PanelShardView> view_storage;
    std::atomic<std::uint64_t> last_use{0};
  };

  const PanelShardView& acquire(std::uint32_t shard) const;
  void unmap_locked(Shard& s) const;

  TimeGrid grid_;
  TimeGrid hourly_grid_{0, kHour, 0};
  std::uint32_t shard_count_ = 1;
  TelemetryShardingOptions options_;
  std::uint64_t router_digest_ = 0;
  /// Per-VM (shard, dense row index within the shard).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> vm_slots_;
  /// unique_ptr: Shard holds atomics and is neither copyable nor movable.
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex residency_mutex_;
  mutable std::atomic<std::uint64_t> lru_clock_{0};
  mutable std::atomic<std::size_t> resident_bytes_{0};
  std::size_t spill_bytes_ = 0;
};

}  // namespace cloudlens
