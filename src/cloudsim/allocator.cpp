#include "cloudsim/allocator.h"

#include <limits>

#include "common/check.h"
#include "obs/metrics.h"

namespace cloudlens {

Allocator::Allocator(const Topology& topology, AllocatorOptions opts)
    : topo_(topology),
      opts_(opts),
      use_(topology.nodes().size()),
      node_available_(topology.nodes().size(), true) {}

void Allocator::set_node_available(NodeId id, bool available) {
  CL_CHECK(id.valid() && id.value() < node_available_.size());
  node_available_[id.value()] = available;
}

bool Allocator::node_available(NodeId id) const {
  return node_available_.at(id.value());
}

std::uint64_t Allocator::owner_key(const VmRequest& request) {
  if (request.service.valid())
    return (1ULL << 32) | request.service.value();
  return request.subscription.value();
}

std::optional<Placement> Allocator::allocate(const VmRequest& request,
                                             VmId vm) {
  ++stats_.requests;
  CL_CHECK(request.cores > 0 && request.memory_gb > 0);
  CL_CHECK_MSG(!leases_.contains(vm), "VM already allocated");
  obs::MetricsRegistry::global().add(obs::Counter::kAllocAttempts);
  std::uint64_t nodes_scanned = 0;

  const std::uint64_t owner = owner_key(request);

  // Rule chain: feasibility filter, then (fewest same-owner VMs in the
  // rack, best-fit on cores) as the preference order.
  const Node* best = nullptr;
  int best_owner_in_rack = std::numeric_limits<int>::max();
  double best_leftover = std::numeric_limits<double>::infinity();

  for (const ClusterId cid : topo_.clusters_in(request.region, request.cloud)) {
    const Cluster& cluster = topo_.cluster(cid);
    for (const NodeId nid : cluster.nodes) {
      if (!node_available_[nid.value()]) continue;
      ++nodes_scanned;
      const Node& node = topo_.node(nid);
      const NodeUse& u = use_[nid.value()];
      if (u.cores + request.cores > node.total_cores ||
          u.memory_gb + request.memory_gb > node.total_memory_gb)
        continue;

      int owner_in_rack = 0;
      if (opts_.spread_fault_domains) {
        const auto it =
            rack_owner_count_.find(rack_owner_slot(node.rack, owner));
        owner_in_rack = it == rack_owner_count_.end() ? 0 : it->second;
      }
      const double leftover = node.total_cores - u.cores - request.cores;
      if (owner_in_rack < best_owner_in_rack ||
          (owner_in_rack == best_owner_in_rack && leftover < best_leftover)) {
        best = &node;
        best_owner_in_rack = owner_in_rack;
        best_leftover = leftover;
      }
    }
  }

  obs::MetricsRegistry::global().add(obs::Counter::kAllocNodesScanned,
                                     nodes_scanned);
  if (best == nullptr) {
    ++stats_.failures;
    obs::MetricsRegistry::global().add(obs::Counter::kAllocFailures);
    return std::nullopt;
  }

  NodeUse& u = use_[best->id.value()];
  u.cores += request.cores;
  u.memory_gb += request.memory_gb;
  ++rack_owner_count_[rack_owner_slot(best->rack, owner)];
  leases_.emplace(vm, Lease{best->id, best->rack, request.cores,
                            request.memory_gb, owner});
  return Placement{best->cluster, best->rack, best->id};
}

void Allocator::release(VmId vm) {
  const auto it = leases_.find(vm);
  if (it == leases_.end()) return;
  obs::MetricsRegistry::global().add(obs::Counter::kAllocReleases);
  const Lease& lease = it->second;
  NodeUse& u = use_[lease.node.value()];
  u.cores -= lease.cores;
  u.memory_gb -= lease.memory_gb;
  auto slot = rack_owner_count_.find(rack_owner_slot(lease.rack, lease.owner));
  CL_CHECK(slot != rack_owner_count_.end() && slot->second > 0);
  if (--slot->second == 0) rack_owner_count_.erase(slot);
  leases_.erase(it);
}

double Allocator::node_used_cores(NodeId id) const {
  return use_.at(id.value()).cores;
}

double Allocator::node_used_memory_gb(NodeId id) const {
  return use_.at(id.value()).memory_gb;
}

double Allocator::node_free_cores(NodeId id) const {
  return topo_.node(id).total_cores - use_.at(id.value()).cores;
}

}  // namespace cloudlens
