#include "cloudsim/telemetry_panel.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "stats/kernels/dispatch.h"

namespace cloudlens {
namespace {

/// ceil(a / b) for a >= 0, b > 0.
inline std::size_t ceil_div(SimDuration a, SimDuration b) {
  return static_cast<std::size_t>((a + b - 1) / b);
}

}  // namespace

void TelemetryPanel::fill_row(const VmRecord& vm, const TimeGrid& grid,
                              std::span<double> out,
                              std::size_t valid_ticks) {
  CL_CHECK(out.size() == grid.count);
  if (!vm.utilization) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Alive index window [i0, i1): at(i) >= created and at(i) < deleted.
  std::size_t i0 = 0;
  std::size_t i1 = std::min(grid.count, valid_ticks);
  if (vm.created > grid.start)
    i0 = std::min(i1, ceil_div(vm.created - grid.start, grid.step));
  if (vm.deleted < grid.end())
    i1 = std::min(i1, ceil_div(vm.deleted - grid.start, grid.step));
  if (i1 <= i0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(i0), 0.0);
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(i1), out.end(), 0.0);
  // Batched evaluation over the alive sub-grid. Sub-grid tick instants are
  // exactly the parent grid's, so the samples are bit-identical to the
  // per-tick at(grid.at(i)) loop.
  const TimeGrid alive{grid.at(i0), grid.step, i1 - i0};
  vm.utilization->sample(alive, out.subspan(i0, i1 - i0));
}

void TelemetryPanel::hourly_from_row(std::span<const double> row,
                                     const TimeGrid& grid,
                                     std::span<double> out) {
  CL_CHECK(grid.step > 0 && kHour % grid.step == 0);
  const std::size_t factor = static_cast<std::size_t>(kHour / grid.step);
  const std::size_t out_count = row.size() / factor;
  CL_CHECK(out.size() == out_count);
  // Same accumulation order as TimeSeries::downsample_mean: serial sum of
  // `factor` consecutive samples, then one division.
  for (std::size_t i = 0; i < out_count; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < factor; ++j) acc += row[i * factor + j];
    out[i] = acc / static_cast<double>(factor);
  }
}

TelemetryPanel::TelemetryPanel(const TraceStore& trace, TimeGrid grid,
                               const ParallelConfig& parallel)
    : grid_(grid), rows_(trace.vms().size()) {
  // Build metrics: one "panel.build" span + latency sample, rows filled,
  // and resident-size gauges. Write-only — the fill itself is untouched.
  obs::PhaseTimer phase("panel.build", obs::Histogram::kPanelBuildSeconds,
                        obs::Counter::kPanelBuilds);
  CL_CHECK(grid_.count > 0);
  const bool hourly_ok =
      grid_.step > 0 && kHour % grid_.step == 0 &&
      grid_.count >= static_cast<std::size_t>(kHour / grid_.step);
  if (hourly_ok) {
    const std::size_t factor = static_cast<std::size_t>(kHour / grid_.step);
    hourly_grid_ = TimeGrid{grid_.start, kHour, grid_.count / factor};
  }
  data_.resize(rows_ * grid_.count);
  hourly_.resize(rows_ * hourly_grid_.count);

  const std::span<const VmRecord> vms = trace.vms();
  const std::size_t valid_ticks = trace.sample_valid_ticks();
  // Deterministic parallel fill: VM v writes only its own row(s), so the
  // matrix is bit-identical at any thread count.
  parallel_for(
      rows_,
      [&](std::size_t v) {
        const std::span<double> row{data_.data() + v * grid_.count,
                                    grid_.count};
        fill_row(vms[v], grid_, row, valid_ticks);
        if (hourly_grid_.count > 0) {
          hourly_from_row(row, grid_,
                          {hourly_.data() + v * hourly_grid_.count,
                           hourly_grid_.count});
        }
      },
      parallel);

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kPanelRowsFilled, rows_);
  metrics.set(obs::Gauge::kPanelVms, static_cast<double>(rows_));
  metrics.set(obs::Gauge::kPanelBytes,
              static_cast<double>((data_.capacity() + hourly_.capacity()) *
                                  sizeof(double)));
  // Stamp the kernel dispatch that produced this panel into the gauges
  // (the fill above ran through the dispatched hash_normal kernel, and
  // dispatch may have resolved before metrics were enabled).
  const auto kernel_config = stats::kernels::active();
  metrics.set(obs::Gauge::kKernelTier,
              static_cast<double>(kernel_config.tier));
  metrics.set(obs::Gauge::kKernelMode,
              static_cast<double>(kernel_config.mode));
}

TelemetryPanel::TelemetryPanel(TimeGrid grid, std::size_t rows,
                               std::vector<double> data,
                               std::vector<double> hourly)
    : grid_(grid),
      rows_(rows),
      data_(std::move(data)),
      hourly_(std::move(hourly)) {
  CL_CHECK(grid_.count > 0);
  const bool hourly_ok =
      grid_.step > 0 && kHour % grid_.step == 0 &&
      grid_.count >= static_cast<std::size_t>(kHour / grid_.step);
  if (hourly_ok) {
    const std::size_t factor = static_cast<std::size_t>(kHour / grid_.step);
    hourly_grid_ = TimeGrid{grid_.start, kHour, grid_.count / factor};
  }
  CL_CHECK_MSG(data_.size() == rows_ * grid_.count,
               "panel matrix size does not match rows x ticks");
  CL_CHECK_MSG(hourly_.size() == rows_ * hourly_grid_.count,
               "panel hourly matrix size does not match rows x hours");
}

std::span<const double> vm_telemetry_row(const TraceStore& trace,
                                         const TelemetryPanel* panel, VmId id,
                                         const TimeGrid& grid,
                                         std::vector<double>& scratch) {
  if (panel != nullptr && panel->grid() == grid &&
      id.value() < panel->vm_count()) {
    obs::MetricsRegistry::global().add(obs::Counter::kPanelRowHits);
    return panel->row(id);
  }
  obs::MetricsRegistry::global().add(obs::Counter::kPanelRowMisses);
  scratch.resize(grid.count);
  // The valid-ticks clamp is defined over the trace's own grid; rows over
  // other grids are unclamped (serve never requests them).
  TelemetryPanel::fill_row(trace.vm(id), grid, scratch,
                           grid == trace.telemetry_grid()
                               ? trace.sample_valid_ticks()
                               : SIZE_MAX);
  return scratch;
}

std::span<const double> vm_hourly_row(const TraceStore& trace,
                                      const TelemetryPanel* panel, VmId id,
                                      const TimeGrid& grid,
                                      std::vector<double>& row_scratch,
                                      std::vector<double>& hourly_scratch) {
  if (panel != nullptr && panel->grid() == grid &&
      id.value() < panel->vm_count() && panel->hourly_grid().count > 0) {
    obs::MetricsRegistry::global().add(obs::Counter::kPanelRowHits);
    return panel->hourly_row(id);
  }
  const std::span<const double> row =
      vm_telemetry_row(trace, panel, id, grid, row_scratch);
  CL_CHECK(grid.step > 0 && kHour % grid.step == 0);
  const std::size_t factor = static_cast<std::size_t>(kHour / grid.step);
  hourly_scratch.resize(row.size() / factor);
  TelemetryPanel::hourly_from_row(row, grid, hourly_scratch);
  return hourly_scratch;
}

}  // namespace cloudlens
