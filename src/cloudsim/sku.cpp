#include "cloudsim/sku.h"

#include <algorithm>

#include "common/check.h"

namespace cloudlens {

SkuCatalog::SkuCatalog(std::vector<VmSku> skus, std::vector<double> weights)
    : skus_(std::move(skus)), weights_(std::move(weights)) {
  CL_CHECK(!skus_.empty());
  CL_CHECK_MSG(skus_.size() == weights_.size(),
               "one weight per SKU required");
  for (const auto& s : skus_) CL_CHECK(s.cores > 0 && s.memory_gb > 0);
  for (double w : weights_) CL_CHECK(w >= 0);
}

double SkuCatalog::max_cores() const {
  double hi = 0;
  for (const auto& s : skus_) hi = std::max(hi, s.cores);
  return hi;
}

double SkuCatalog::max_memory_gb() const {
  double hi = 0;
  for (const auto& s : skus_) hi = std::max(hi, s.memory_gb);
  return hi;
}

SkuCatalog SkuCatalog::mainstream() {
  // General-purpose ladder, 4 GB per core, mid sizes most popular. The
  // weights produce the central mass both clouds share in Fig. 2.
  std::vector<VmSku> skus = {
      {"D1", 1, 4},  {"D2", 2, 8},   {"D4", 4, 16},
      {"D8", 8, 32}, {"D16", 16, 64},
  };
  std::vector<double> w = {0.18, 0.30, 0.28, 0.16, 0.08};
  return SkuCatalog(std::move(skus), std::move(w));
}

SkuCatalog SkuCatalog::with_extreme_tails() {
  // mainstream() plus the bottom-left (tiny burstable) and top-right
  // (large compute/memory) corners that only the public cloud exhibits.
  std::vector<VmSku> skus = {
      {"B1ls", 1, 0.5}, {"B1s", 1, 1},   {"B2s", 2, 4},
      {"D1", 1, 4},     {"D2", 2, 8},    {"D4", 4, 16},
      {"D8", 8, 32},    {"D16", 16, 64}, {"E32", 32, 256},
      {"E48", 48, 384}, {"M32", 32, 512},
  };
  std::vector<double> w = {0.06, 0.06, 0.05, 0.14, 0.22, 0.20,
                           0.12, 0.07, 0.04, 0.02, 0.02};
  return SkuCatalog(std::move(skus), std::move(w));
}

}  // namespace cloudlens
