// Binary trace snapshots: the artifact cache's storage format.
//
// The CSV bridge (trace_io.h) is the interoperability path — readable,
// diffable, loadable by external tools — but it is lossy (imported VMs
// carry step-function SampledUtilization models, and the exporter caps the
// utilization section) and slow to parse. Snapshots are the opposite
// trade: a versioned binary columnar container that round-trips the whole
// in-memory dataset *exactly* — topology, ownership, VM records, the
// generator's parametric utilization models (by type tag + parameters +
// seed, so at(t) is bit-identical for every t, not just stored ticks), and
// optionally the materialized TelemetryPanel matrices — with doubles
// stored as raw bit patterns, no text round-trip anywhere.
//
// Container layout (all integers little-endian, fixed width):
//
//   [u32 magic 'CLSN'] [u32 format version] [u32 section count] [u32 0]
//   section table: per section [u32 id] [u32 0] [u64 offset] [u64 size]
//   section payloads (order matches the table; offsets from byte 0)
//
// Sections (ids in SnapshotSection): GRID (the trace's telemetry grid),
// TOPOLOGY, SERVICES, SUBSCRIPTIONS, MODELS (deduplicated utilization
// model table), VMS (records referencing the model table by index), and
// PANEL (row-major VM x tick matrix plus the hourly companion). A trace
// snapshot carries all but PANEL by default; a panel snapshot carries only
// GRID + PANEL. Readers reject bad magic, unknown versions, unknown
// required sections, and any out-of-bounds section or truncated payload
// with CheckError.
//
// Versioning: bump kSnapshotFormatVersion on *any* layout change. The
// pipeline's artifact cache mixes the version into every content key, so a
// format bump invalidates stale cache entries instead of misreading them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "cloudsim/telemetry_panel.h"
#include "cloudsim/trace.h"

namespace cloudlens {

/// Bump on any change to the container layout or section encodings.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// First four bytes of every snapshot file: "CLSN".
inline constexpr std::uint32_t kSnapshotMagic = 0x4E534C43u;

// --- model codec extension point ----------------------------------------
//
// cloudsim serializes the model types it owns (ConstantUtilization,
// SampledUtilization) natively. The generator's parametric pattern models
// live a layer up in workloads, which cloudsim must not depend on, so
// callers that want those round-tripped exactly pass a codec
// (workloads/pattern_snapshot.h provides one). Models neither native nor
// handled by the codec degrade to a SampledUtilization over the trace's
// telemetry grid — exact at every grid tick, step-interpolated elsewhere.

/// Tags below this value are reserved for cloudsim's native models.
inline constexpr std::uint8_t kFirstCustomModelTag = 16;

class SnapshotModelCodec {
 public:
  virtual ~SnapshotModelCodec() = default;
  /// Serialize `m` if this codec knows its exact type: append the payload
  /// bytes to `out` (snapshot_codec helpers below) and return the model's
  /// tag (>= kFirstCustomModelTag). Return 0 for unrecognized models.
  virtual std::uint8_t encode(const UtilizationModel& m,
                              std::string& out) const = 0;
  /// Reconstruct a model from the payload encode() produced for `tag`;
  /// nullptr for unknown tags (the load then fails with CheckError).
  virtual std::shared_ptr<const UtilizationModel> decode(
      std::uint8_t tag, std::string_view payload) const = 0;
};

/// Little-endian primitive append/read helpers shared by the snapshot
/// writer and custom model codecs. Doubles travel as raw bit patterns
/// (std::bit_cast), never through text.
namespace snapshot_codec {
void append_u8(std::string& out, std::uint8_t v);
void append_u32(std::string& out, std::uint32_t v);
void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);
void append_f64(std::string& out, double v);
void append_string(std::string& out, std::string_view s);

/// Cursor over an immutable payload; every read bounds-checks and throws
/// CheckError on truncation.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  /// Raw view of the next `n` bytes (advances the cursor).
  std::string_view raw(std::size_t n);
  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};
}  // namespace snapshot_codec

struct SnapshotWriteOptions {
  /// Also write the PANEL section. Requires the panel to be enabled on the
  /// trace; the write materializes it if it has not been built yet.
  bool include_panel = false;
  /// Codec for non-native utilization models (nullptr = sampled fallback).
  const SnapshotModelCodec* model_codec = nullptr;
};

/// Serialize topology + trace (+ optionally the telemetry panel).
void save_trace_snapshot(const Topology& topology, const TraceStore& trace,
                         std::ostream& out,
                         const SnapshotWriteOptions& options = {});

struct LoadedSnapshot {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  /// True when the snapshot carried a PANEL section and the trace adopted
  /// it (no lazy rebuild needed).
  bool panel_loaded = false;
};

/// Rebuild a topology + trace from a snapshot stream. Pass the codec that
/// was used to save custom models. Throws CheckError on malformed input or
/// a format-version mismatch.
LoadedSnapshot load_trace_snapshot(std::istream& in,
                                   const SnapshotModelCodec* codec = nullptr);

/// Panel-only snapshot (same container; GRID + PANEL sections). Used by
/// the pipeline to cache the materialized matrices separately from the
/// trace artifact.
void save_panel_snapshot(const TelemetryPanel& panel, std::ostream& out);
std::unique_ptr<TelemetryPanel> load_panel_snapshot(std::istream& in);

}  // namespace cloudlens
