// Binary trace snapshots: the artifact cache's storage format.
//
// The CSV bridge (trace_io.h) is the interoperability path — readable,
// diffable, loadable by external tools — but it is lossy (imported VMs
// carry step-function SampledUtilization models, and the exporter caps the
// utilization section) and slow to parse. Snapshots are the opposite
// trade: a versioned binary columnar container that round-trips the whole
// in-memory dataset *exactly* — topology, ownership, VM records, the
// generator's parametric utilization models (by type tag + parameters +
// seed, so at(t) is bit-identical for every t, not just stored ticks), and
// optionally the materialized TelemetryPanel matrices — with doubles
// stored as raw bit patterns, no text round-trip anywhere.
//
// Container layout (all integers little-endian, fixed width):
//
//   [u32 magic 'CLSN'] [u32 format version] [u32 section count] [u32 0]
//   section table: per section [u32 id] [u32 0] [u64 offset] [u64 size]
//   section payloads (order matches the table; offsets from byte 0)
//
// Sections (ids in SnapshotSection): GRID (the trace's telemetry grid),
// TOPOLOGY, SERVICES, SUBSCRIPTIONS, MODELS (deduplicated utilization
// model table), VMS (records referencing the model table by index), and
// PANEL (row-major VM x tick matrix plus the hourly companion). A trace
// snapshot carries all but PANEL by default; a panel snapshot carries only
// GRID + PANEL. Readers reject bad magic, unknown versions, unknown
// required sections, and any out-of-bounds section or truncated payload
// with CheckError.
//
// Versioning: bump kSnapshotFormatVersion on *any* layout change. The
// pipeline's artifact cache mixes the version into every content key, so a
// format bump invalidates stale cache entries instead of misreading them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloudsim/telemetry_panel.h"
#include "cloudsim/trace.h"

namespace cloudlens {

/// Bump on any change to the container layout or section encodings.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// First four bytes of every snapshot file: "CLSN".
inline constexpr std::uint32_t kSnapshotMagic = 0x4E534C43u;

// --- model codec extension point ----------------------------------------
//
// cloudsim serializes the model types it owns (ConstantUtilization,
// SampledUtilization) natively. The generator's parametric pattern models
// live a layer up in workloads, which cloudsim must not depend on, so
// callers that want those round-tripped exactly pass a codec
// (workloads/pattern_snapshot.h provides one). Models neither native nor
// handled by the codec degrade to a SampledUtilization over the trace's
// telemetry grid — exact at every grid tick, step-interpolated elsewhere.

/// Tags below this value are reserved for cloudsim's native models.
inline constexpr std::uint8_t kFirstCustomModelTag = 16;

class SnapshotModelCodec {
 public:
  virtual ~SnapshotModelCodec() = default;
  /// Serialize `m` if this codec knows its exact type: append the payload
  /// bytes to `out` (snapshot_codec helpers below) and return the model's
  /// tag (>= kFirstCustomModelTag). Return 0 for unrecognized models.
  virtual std::uint8_t encode(const UtilizationModel& m,
                              std::string& out) const = 0;
  /// Reconstruct a model from the payload encode() produced for `tag`;
  /// nullptr for unknown tags (the load then fails with CheckError).
  virtual std::shared_ptr<const UtilizationModel> decode(
      std::uint8_t tag, std::string_view payload) const = 0;
};

/// Little-endian primitive append/read helpers shared by the snapshot
/// writer and custom model codecs. Doubles travel as raw bit patterns
/// (std::bit_cast), never through text.
namespace snapshot_codec {
void append_u8(std::string& out, std::uint8_t v);
void append_u32(std::string& out, std::uint32_t v);
void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);
void append_f64(std::string& out, double v);
void append_string(std::string& out, std::string_view s);

/// Cursor over an immutable payload; every read bounds-checks and throws
/// CheckError on truncation.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  /// Raw view of the next `n` bytes (advances the cursor).
  std::string_view raw(std::size_t n);
  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};
}  // namespace snapshot_codec

/// Section ids used by the population shard files (cloudsim/population.h),
/// which build their containers by hand the way the panel shards do. The
/// values live in snapshot.cpp's Section enum; they are part of the
/// on-disk format and must never be renumbered.
namespace snapshot_sections {
inline constexpr std::uint32_t kPopulationMeta = 11;
inline constexpr std::uint32_t kPopulationSubscriptions = 12;
inline constexpr std::uint32_t kPopulationVms = 13;
inline constexpr std::uint32_t kPopulationModels = 14;
inline constexpr std::uint32_t kPopulationNodeIndex = 15;
}  // namespace snapshot_sections

/// One utilization-model record: [u8 tag][u32 payload size][payload].
/// This is the same encoding the MODELS section uses; it is exposed so the
/// population shard store can stream per-VM model records into its own
/// sections. Models that are neither native nor codec-handled degrade to
/// explicit samples over `fallback_grid`, sampled only over the first
/// min(grid.count, valid_ticks) ticks with zeros beyond — mirroring
/// TelemetryPanel::fill_row's valid-ticks clamp, so a degraded model
/// round-trips the same bits the live trace serves.
void encode_model_record(const UtilizationModel& model,
                         const TimeGrid& fallback_grid,
                         const SnapshotModelCodec* codec, std::string& out,
                         std::size_t valid_ticks = SIZE_MAX);

/// Reads one record encode_model_record() produced (advances the reader).
/// Throws CheckError on unknown tags with no codec.
std::shared_ptr<const UtilizationModel> decode_model_record(
    snapshot_codec::Reader& r, const SnapshotModelCodec* codec);

struct SnapshotWriteOptions {
  /// Also write the PANEL section. Requires the panel to be enabled on the
  /// trace; the write materializes it if it has not been built yet.
  bool include_panel = false;
  /// Codec for non-native utilization models (nullptr = sampled fallback).
  const SnapshotModelCodec* model_codec = nullptr;
};

/// Serialize topology + trace (+ optionally the telemetry panel).
void save_trace_snapshot(const Topology& topology, const TraceStore& trace,
                         std::ostream& out,
                         const SnapshotWriteOptions& options = {});

struct LoadedSnapshot {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  /// True when the snapshot carried a PANEL section and the trace adopted
  /// it (no lazy rebuild needed).
  bool panel_loaded = false;
};

/// Rebuild a topology + trace from a snapshot stream. Pass the codec that
/// was used to save custom models. Throws CheckError on malformed input or
/// a format-version mismatch.
LoadedSnapshot load_trace_snapshot(std::istream& in,
                                   const SnapshotModelCodec* codec = nullptr);

/// Panel-only snapshot (same container; GRID + PANEL sections). Used by
/// the pipeline to cache the materialized matrices separately from the
/// trace artifact.
void save_panel_snapshot(const TelemetryPanel& panel, std::ostream& out);
std::unique_ptr<TelemetryPanel> load_panel_snapshot(std::istream& in);

// --- mmap-backed read path ----------------------------------------------
//
// SnapshotMapping opens a snapshot file read-only and serves the container
// bytes as a view. On POSIX hosts the file is mmap'd, so section payloads
// page in on demand instead of being slurped — the enabler for out-of-core
// panel shards, where only the rows an analysis touches ever enter RSS.
// When mmap is unavailable or fails (or CLOUDLENS_NO_MMAP=1 is set) the
// mapping degrades to the buffered reader: the whole file is read into an
// owned buffer and the same view API works unchanged. Either way the
// section table is validated up front (magic, version, bounds), so a
// malformed file fails with CheckError at open, never at first touch of a
// payload.
//
// Lifetime: every view returned by section()/open_panel_shard() points
// into the mapping; the mapping must outlive all such views.
class SnapshotMapping {
 public:
  /// Opens and validates `path`. Throws CheckError when the file cannot be
  /// read or is not a well-formed container.
  explicit SnapshotMapping(const std::string& path);
  ~SnapshotMapping();
  SnapshotMapping(const SnapshotMapping&) = delete;
  SnapshotMapping& operator=(const SnapshotMapping&) = delete;
  SnapshotMapping(SnapshotMapping&& other) noexcept;
  SnapshotMapping& operator=(SnapshotMapping&& other) noexcept;

  /// True when the bytes are served by mmap (false = buffered fallback).
  bool mapped() const { return map_base_ != nullptr; }
  /// Whole-container view (header + table + payloads).
  std::string_view bytes() const { return bytes_; }
  /// Payload view for `id`; throws CheckError when the section is absent.
  std::string_view section(std::uint32_t id) const;
  bool has_section(std::uint32_t id) const;

 private:
  void reset() noexcept;

  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::string buffer_;  // fallback storage when not mmap'd
  std::string_view bytes_;
  std::vector<std::pair<std::uint32_t, std::string_view>> sections_;
};

/// Mapping-based loads: identical results to the stream overloads, byte
/// for byte, but panel payloads are referenced in place before the copy
/// into the panel's own storage (and shard payloads are never copied at
/// all — see open_panel_shard).
LoadedSnapshot load_trace_snapshot(const SnapshotMapping& mapping,
                                   const SnapshotModelCodec* codec = nullptr);
std::unique_ptr<TelemetryPanel> load_panel_snapshot(
    const SnapshotMapping& mapping);

// --- panel shard files ---------------------------------------------------
//
// One shard = the dense row-major sub-matrix of its member VMs (full-res
// rows + the hourly companion), stored as its own container with three
// sections: SHARD_META, SHARD_ROWS, SHARD_HOURLY. The double payloads are
// 8-byte aligned in the file (the writer checks this), so a mapped shard
// serves rows directly out of the page cache with zero copies.

struct PanelShardHeader {
  TimeGrid grid;                   ///< full-resolution telemetry grid
  std::uint64_t shard_index = 0;   ///< this shard's index in [0, shard_count)
  std::uint64_t shard_count = 0;   ///< total shards in the store
  std::uint64_t row_count = 0;     ///< member VMs (rows in this shard)
  std::uint64_t hourly_count = 0;  ///< ticks per hourly row
  std::uint64_t router_digest = 0; ///< binds the file to (trace, K, hash fn)
};

/// Writes one shard container. `rows` is row_count x grid.count row-major;
/// `hourly` is row_count x hourly_count. Payload spans are streamed to the
/// ostream directly (no staging copy).
void save_panel_shard_snapshot(const PanelShardHeader& header,
                               std::span<const double> rows,
                               std::span<const double> hourly,
                               std::ostream& out);

/// Zero-copy view of a mapped shard file. Spans alias the mapping.
struct PanelShardView {
  PanelShardHeader header;
  std::span<const double> rows;
  std::span<const double> hourly;
};

/// Validates and opens the shard sections of `mapping`. Throws CheckError
/// on missing sections, size mismatches, or misaligned payloads.
PanelShardView open_panel_shard(const SnapshotMapping& mapping);

}  // namespace cloudlens
