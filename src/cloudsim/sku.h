// Stock Keeping Units: node hardware shapes and the VM size catalog.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cloudlens {

/// A VM size (shape): cores and memory. Mirrors an Azure VM series entry.
struct VmSku {
  std::string name;
  double cores = 1;
  double memory_gb = 4;
};

/// A physical server shape. Clusters are homogeneous in node SKU (the paper:
/// clusters "contain thousands of nodes with identical SKU configurations";
/// we use smaller clusters so experiments run on a laptop — the ratio of VM
/// size to node size is what matters for packing behaviour).
struct NodeSku {
  std::string name = "std-64";
  double cores = 64;
  // Large enough to host memory-optimized VM shapes (up to 512 GB), which
  // the public-cloud catalog includes (Fig. 2(b)'s top-right corner).
  double memory_gb = 512;
};

/// A catalog of VM sizes with relative popularity weights. Both cloud
/// profiles draw from catalogs like this; the public-cloud catalog includes
/// extreme sizes (very small burstable and very large memory-optimized VMs),
/// producing the extended corners seen in Fig. 2(b).
class SkuCatalog {
 public:
  SkuCatalog() = default;
  SkuCatalog(std::vector<VmSku> skus, std::vector<double> weights);

  std::size_t size() const { return skus_.size(); }
  const VmSku& at(std::size_t i) const { return skus_[i]; }
  std::span<const VmSku> skus() const { return skus_; }
  std::span<const double> weights() const { return weights_; }

  double max_cores() const;
  double max_memory_gb() const;

  /// The mainstream general-purpose ladder (1..16 cores, 4 GB/core) shared
  /// by both clouds.
  static SkuCatalog mainstream();
  /// mainstream() plus small burstable and large/memory-optimized tails.
  static SkuCatalog with_extreme_tails();

 private:
  std::vector<VmSku> skus_;
  std::vector<double> weights_;
};

}  // namespace cloudlens
