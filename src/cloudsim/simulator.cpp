#include "cloudsim/simulator.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"

namespace cloudlens {
namespace {

/// Event ordering at equal timestamps: removals free capacity first, then
/// outages kill, then creates (including recovery resubmissions) place.
enum class EventKind { kRemove = 0, kOutage = 1, kCreate = 2 };

struct Event {
  SimTime time;
  EventKind kind;
  std::uint64_t seq;          ///< insertion order for determinism
  std::size_t payload;        ///< request index (create) / outage index
  VmId vm;                    ///< remove target

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

}  // namespace

SimulationStats run_simulation(const Topology& topology, TraceStore& trace,
                               std::vector<DeploymentRequest> requests,
                               AllocatorOptions options,
                               std::vector<NodeOutage> outages,
                               FailurePolicy failure_policy) {
  // Per-run accounting: events replayed, placement outcomes, outage
  // kills/resubmits — counted locally and published to the (write-only)
  // metrics registry at the end, plus one "sim.run" span for the trace.
  obs::PhaseTimer phase("sim.run", obs::Histogram::kSimRunSeconds,
                        obs::Counter::kSimRuns);
  // During a population spill the trace is append-only: records stream
  // into shard logs and cannot be read back or shortened, so outage
  // processing (which reads and rewrites records) is unavailable.
  CL_CHECK_MSG(!trace.population_spilling() || outages.empty(),
               "node outages require resident records (no population spill)");
  std::uint64_t events_replayed = 0;

  Allocator allocator(topology, options);
  SimulationStats stats;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    CL_CHECK_MSG(requests[i].create < requests[i].remove,
                 "non-positive VM lifetime");
    events.push({requests[i].create, EventKind::kCreate, seq++, i, VmId()});
  }
  for (std::size_t i = 0; i < outages.size(); ++i) {
    CL_CHECK(outages[i].node.valid() &&
             outages[i].node.value() < topology.nodes().size());
    events.push({outages[i].at, EventKind::kOutage, seq++, i, VmId()});
  }

  // Live VMs per node (for outage processing), each live VM's node (so
  // removal never reads the trace — records may already be spilled), and
  // the set of VMs terminated early (their scheduled removal is a no-op).
  std::unordered_map<NodeId, std::unordered_set<VmId>> live_on_node;
  std::unordered_map<VmId, NodeId> node_of_vm;
  std::unordered_set<VmId> killed;

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    ++events_replayed;
    switch (event.kind) {
      case EventKind::kRemove: {
        if (killed.contains(event.vm)) break;
        allocator.release(event.vm);
        const auto node_it = node_of_vm.find(event.vm);
        CL_CHECK(node_it != node_of_vm.end());
        live_on_node[node_it->second].erase(event.vm);
        node_of_vm.erase(node_it);
        break;
      }
      case EventKind::kOutage: {
        const NodeId node = outages[event.payload].node;
        const SimTime when = outages[event.payload].at;
        allocator.set_node_available(node, false);
        auto it = live_on_node.find(node);
        if (it == live_on_node.end()) break;
        // Terminate every VM alive on the node.
        for (const VmId vm_id : it->second) {
          const VmRecord& rec = trace.vm(vm_id);
          const SimTime original_end = rec.deleted;
          allocator.release(vm_id);
          trace.set_vm_deleted(vm_id, when);
          killed.insert(vm_id);
          node_of_vm.erase(vm_id);
          ++stats.vms_failed;
          if (failure_policy.resubmit &&
              original_end > when + failure_policy.recovery_delay) {
            DeploymentRequest resubmit;
            resubmit.request.subscription = rec.subscription;
            resubmit.request.service = rec.service;
            resubmit.request.cloud = rec.cloud;
            resubmit.request.region = rec.region;
            resubmit.request.cores = rec.cores;
            resubmit.request.memory_gb = rec.memory_gb;
            resubmit.party = rec.party;
            resubmit.create = when + failure_policy.recovery_delay;
            resubmit.remove = original_end;
            resubmit.utilization = rec.utilization;
            const std::size_t index = requests.size();
            requests.push_back(std::move(resubmit));
            events.push({requests[index].create, EventKind::kCreate, seq++,
                         index, VmId()});
            ++stats.vms_resubmitted;
          }
        }
        it->second.clear();
        break;
      }
      case EventKind::kCreate: {
        const DeploymentRequest& req = requests[event.payload];
        ++stats.requested;
        const VmId prospective_id(
            static_cast<VmId::underlying>(trace.vm_count()));
        const auto placement = allocator.allocate(req.request, prospective_id);
        if (!placement) {
          ++stats.allocation_failures;
          break;
        }
        VmRecord rec;
        rec.subscription = req.request.subscription;
        rec.service = req.request.service;
        rec.cloud = req.request.cloud;
        rec.party = req.party;
        rec.region = req.request.region;
        rec.cluster = placement->cluster;
        rec.rack = placement->rack;
        rec.node = placement->node;
        rec.cores = req.request.cores;
        rec.memory_gb = req.request.memory_gb;
        rec.created = req.create;
        rec.deleted = req.remove;
        rec.utilization = req.utilization;
        const VmId id = trace.add_vm(std::move(rec));
        CL_CHECK(id == prospective_id);
        ++stats.placed;
        live_on_node[placement->node].insert(id);
        node_of_vm.emplace(id, placement->node);
        if (req.remove != kNoEnd)
          events.push({req.remove, EventKind::kRemove, seq++, 0, id});
        break;
      }
    }
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kSimEvents, events_replayed);
  metrics.add(obs::Counter::kSimRequested, stats.requested);
  metrics.add(obs::Counter::kSimPlaced, stats.placed);
  metrics.add(obs::Counter::kSimAllocationFailures,
              stats.allocation_failures);
  metrics.add(obs::Counter::kSimOutageKills, stats.vms_failed);
  metrics.add(obs::Counter::kSimResubmits, stats.vms_resubmitted);
  return stats;
}

}  // namespace cloudlens
