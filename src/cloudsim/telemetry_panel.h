// Columnar telemetry cache.
//
// Every analysis pass used to re-derive the same 5-minute telemetry from
// scratch: one virtual UtilizationModel::at(t) call per tick per request,
// plus a fresh 2016-sample TimeSeries allocation per call — and the node
// correlation pass alone evaluated each VM's week at least twice. The
// TelemetryPanel materializes the whole VM × tick utilization matrix
// *once* per TraceStore in a cache-friendly row-major (structure-of-arrays)
// layout, filled in parallel (each VM fills its own row, so the build is
// bit-identical at any thread count), fed by the batched
// UtilizationModel::sample() API that hoists the per-tick virtual dispatch
// and noise/envelope recomputation out of the loop.
//
// Memory: one double per VM per tick — 16 KB per VM for the default
// one-week 5-minute grid (2016 ticks), plus 1.3 KB for the hourly
// companion view (168 samples). A 100k-VM trace costs ~1.7 GB; disable the
// panel (TraceStore::set_telemetry_panel_enabled(false)) to trade the
// memory back for recomputation — every consumer falls back to on-demand
// row evaluation through the *same* fill kernel, so results are identical
// either way, bit for bit.
//
// Consumers opt in by asking the trace for the panel once, up front
// (serially, before any parallel fan-out), then pulling contiguous
// std::span<const double> rows:
//
//   const TelemetryPanel* panel = trace.telemetry_panel();  // may be null
//   std::vector<double> scratch;
//   std::span<const double> row =
//       vm_telemetry_row(trace, panel, id, grid, scratch);
//
// Invalidation: TraceStore drops the panel on add_vm and set_vm_deleted
// (a VM's row depends on its [created, deleted) window) and rebuilds it
// lazily on next use.
#pragma once

#include <span>
#include <vector>

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "common/sim_time.h"

namespace cloudlens {

/// Row-major VM × tick utilization matrix over one grid, with an
/// hourly-mean companion view. Immutable after construction; safe to read
/// from any number of threads.
class TelemetryPanel {
 public:
  /// Materializes rows for every VM currently in `trace` (row index ==
  /// VmId value). Rows of model-less VMs are all-zero; rows of
  /// partial-lifetime VMs are zero outside [created, deleted).
  TelemetryPanel(const TraceStore& trace, TimeGrid grid,
                 const ParallelConfig& parallel = {});

  /// Deserialization constructor (snapshot load): adopt prebuilt matrices
  /// instead of filling them. The hourly grid is derived from `grid`
  /// exactly as the building constructor does; `data.size()` must equal
  /// rows × grid.count and `hourly.size()` rows × hourly_grid().count.
  TelemetryPanel(TimeGrid grid, std::size_t rows, std::vector<double> data,
                 std::vector<double> hourly);

  const TimeGrid& grid() const { return grid_; }
  /// Grid of the hourly companion view; count == 0 when the base grid
  /// cannot be rolled into hours (step does not divide an hour).
  const TimeGrid& hourly_grid() const { return hourly_grid_; }

  std::size_t vm_count() const { return rows_; }
  std::size_t tick_count() const { return grid_.count; }

  /// The VM's contiguous utilization row (grid().count samples).
  std::span<const double> row(VmId id) const {
    return {data_.data() + id.value() * grid_.count, grid_.count};
  }
  /// The VM's hourly-mean row (hourly_grid().count samples); empty when
  /// the hourly view is unavailable.
  std::span<const double> hourly_row(VmId id) const {
    if (hourly_grid_.count == 0) return {};
    return {hourly_.data() + id.value() * hourly_grid_.count,
            hourly_grid_.count};
  }

  /// Bytes held by the materialized matrices (for bench/rss accounting).
  std::size_t memory_bytes() const {
    return (data_.size() + hourly_.size()) * sizeof(double);
  }

  /// The shared row-fill kernel: out[i] = utilization->sample value when
  /// the VM is alive at grid.at(i), else 0 (also all-zero for model-less
  /// VMs). `out.size()` must equal `grid.count`. Used both by the panel
  /// build and by the scratch fallback path, so panel-on and panel-off
  /// analyses see identical bits by construction.
  ///
  /// `valid_ticks` clamps the row: out[i] = 0 for i >= valid_ticks, and
  /// the model is never sampled there (serve snapshots use this to keep
  /// readers off sample buffers still being appended to — see
  /// TraceStore::set_sample_valid_ticks). SIZE_MAX = no clamp.
  static void fill_row(const VmRecord& vm, const TimeGrid& grid,
                       std::span<double> out,
                       std::size_t valid_ticks = SIZE_MAX);

  /// Roll a row into hourly means — bit-identical to
  /// stats::TimeSeries::hourly_mean on the same values. `out.size()` must
  /// be grid.count / (kHour / grid.step).
  static void hourly_from_row(std::span<const double> row,
                              const TimeGrid& grid, std::span<double> out);

 private:
  TimeGrid grid_;
  TimeGrid hourly_grid_{0, kHour, 0};
  std::size_t rows_ = 0;
  std::vector<double> data_;    // rows_ × grid_.count, row-major
  std::vector<double> hourly_;  // rows_ × hourly_grid_.count, row-major
};

/// Copy-free row access for the analysis hot paths: returns the cached
/// panel row when `panel` is non-null, covers `id`, and was built over
/// `grid`; otherwise fills `scratch` through the same kernel and returns a
/// span over it. Either way the bits are identical.
std::span<const double> vm_telemetry_row(const TraceStore& trace,
                                         const TelemetryPanel* panel, VmId id,
                                         const TimeGrid& grid,
                                         std::vector<double>& scratch);

/// Hourly-mean counterpart of vm_telemetry_row. `row_scratch` holds the
/// intermediate full-resolution row on the fallback path.
std::span<const double> vm_hourly_row(const TraceStore& trace,
                                      const TelemetryPanel* panel, VmId id,
                                      const TimeGrid& grid,
                                      std::vector<double>& row_scratch,
                                      std::vector<double>& hourly_scratch);

}  // namespace cloudlens
