// Out-of-core population: sharded VM/subscription record spill files.
//
// The telemetry shard store (shard.h) took the VM × tick matrix out of
// core, but the records themselves — VmRecord, SubscriptionInfo, and the
// per-node/per-subscription indices — stayed resident, which caps the
// population at what one vector holds (Azure's public slice alone is 2.6M
// VMs). The PopulationShardStore extends the same subscription-hash
// discipline to the records: K shards, each spilled as its own CLSN
// snapshot container (snapshot.h sections POPULATION_META /
// POPULATION_SUBSCRIPTIONS / POPULATION_VMS / POPULATION_MODELS /
// POPULATION_NODE_INDEX), paged in on demand and evicted LRU under a
// mapped+decoded-bytes budget.
//
// Shard hash contract: identical to the telemetry store —
// shard_of_subscription(sub, K), a pure function of (subscription id, K) —
// so a subscription's VMs and its SubscriptionInfo always live in one
// shard, whole subscriptions stream without crossing shard boundaries, and
// the population shards of a trace line up one-to-one with its telemetry
// shards for the same K.
//
// Two build paths:
//  * Streaming (the generator and the ingest backends): construct with
//    (grid, options), call append_vm() for each record as it is produced —
//    records are encoded straight into per-shard spill logs through a
//    small staging buffer, so the full population never materializes —
//    then finalize_spill() once with the subscription table. Utilization
//    models are serialized per VM via the snapshot model-record codec
//    (parametric generator models stay parametric when the codec is
//    passed; imported SampledUtilization is native).
//  * Conversion (an already-resident trace): build() streams the resident
//    records through the same path, unless every shard file on disk
//    already matches the router digest (warm start), in which case the
//    files are adopted without a write.
//
// Reads decode a shard's sections into ordinary VmRecord /
// SubscriptionInfo vectors at acquire time (the mapping itself is dropped
// immediately after decode — only the decoded vectors count against the
// budget), so record references behave exactly like resident ones while
// the shard stays paged in.
//
// Concurrency / lifetime rules (TSan-policed, same as shard.h):
//   - view()/record()/subscription()/vms_of_subscription() may be called
//     from any number of pool workers; a shard's first toucher decodes it
//     under a mutex and publishes the view with a release-store.
//   - Returned references and spans stay valid until the next
//     evict_over_budget()/evict_all() call, which must happen only at
//     serial points — between parallel regions.
//   - vms_on_node() serves a store-level merged index, built lazily by
//     reading only the node-index section of each shard file; its spans
//     are independent of shard residency and never invalidated.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/trace.h"
#include "common/ids.h"
#include "common/sim_time.h"

namespace cloudlens {

class SnapshotModelCodec;

struct PopulationShardingOptions {
  /// Number of shards (K). Clamped to >= 1.
  std::uint32_t shards = 16;
  /// Decoded-bytes budget: evict_over_budget() drops least-recently-used
  /// shards until the decoded record vectors fit. 0 = exactly one
  /// resident shard at a time.
  std::size_t budget_bytes = 256ull << 20;
  /// Directory for the spill files (created if missing). Files are named
  /// pop-shard-<index>.clsn; on the conversion path, existing files whose
  /// router digest matches are adopted instead of rewritten.
  std::string spill_dir;
  /// Leave the spill files on disk at destruction (cache-dir reuse).
  bool keep_files = false;
  /// Codec for non-native utilization models (workloads pattern models).
  /// Without it such models degrade to explicit samples over the grid —
  /// correct, but 16 KB per VM instead of a few dozen bytes. Must outlive
  /// the store.
  const SnapshotModelCodec* model_codec = nullptr;
};

/// One decoded shard: its member records in ascending id order plus the
/// per-subscription index. References alias the shard's decoded storage
/// and follow the store's eviction lifetime rules.
class PopulationShardView {
 public:
  std::span<const VmRecord> vms() const { return vms_; }
  std::span<const SubscriptionInfo> subscriptions() const { return subs_; }
  /// Binary search by id; nullptr when the id is not in this shard.
  const VmRecord* find(VmId id) const;
  const SubscriptionInfo* find_subscription(SubscriptionId id) const;
  /// Member VM ids of `sub` in ascending order (empty for foreign or
  /// VM-less subscriptions).
  std::span<const VmId> vms_of(SubscriptionId sub) const;
  /// Approximate resident cost of the decoded shard (budget accounting).
  std::size_t decoded_bytes() const { return decoded_bytes_; }

 private:
  friend class PopulationShardStore;
  std::vector<VmRecord> vms_;             // ascending id
  std::vector<SubscriptionInfo> subs_;    // ascending id
  /// Sorted by subscription id; values ascending.
  std::vector<std::pair<SubscriptionId, std::vector<VmId>>> sub_index_;
  std::size_t decoded_bytes_ = 0;
};

/// K spilled population shards plus the router that assigns records to
/// them. See the file comment for the build paths and concurrency rules.
class PopulationShardStore {
 public:
  /// Streaming builder: opens the per-shard spill logs. The store is
  /// write-only (append_vm) until finalize_spill() seals it.
  PopulationShardStore(TimeGrid grid,
                       const PopulationShardingOptions& options);
  ~PopulationShardStore();
  PopulationShardStore(const PopulationShardStore&) = delete;
  PopulationShardStore& operator=(const PopulationShardStore&) = delete;

  /// Conversion from a resident trace. Adopts matching on-disk shard
  /// files (router-digest warm start) or streams the resident records
  /// through the builder path — either way the files are identical.
  static std::unique_ptr<PopulationShardStore> build(
      const TraceStore& trace, const PopulationShardingOptions& options);

  // --- builder API (before finalize_spill) -------------------------------

  /// Appends one record to its shard's spill log and returns its id (ids
  /// are dense and ascending: the append order is the id order). The
  /// utilization model is serialized and released here.
  VmId append_vm(VmRecord record);
  /// Seals every shard file. `subscriptions` is the full dense table
  /// (ids 0..N-1); each lands in its hash shard.
  void finalize_spill(std::span<const SubscriptionInfo> subscriptions);

  // --- read API (after finalize_spill / build) ---------------------------

  std::uint32_t shard_count() const { return shard_count_; }
  std::size_t vm_count() const { return vm_shards_.size(); }
  std::size_t subscription_count() const { return sub_count_; }
  const TimeGrid& grid() const { return grid_; }
  /// Binds spill files to (record metadata, subscription table, grid, K).
  std::uint64_t router_digest() const { return router_digest_; }

  std::uint32_t shard_of(SubscriptionId sub) const;
  std::uint32_t shard_of_vm(VmId id) const;

  /// The decoded shard, paging it in on demand (see lifetime rules).
  const PopulationShardView& view(std::uint32_t shard) const;
  /// Record lookup by dense id; pages the owning shard in.
  const VmRecord& record(VmId id) const;
  const SubscriptionInfo& subscription(SubscriptionId id) const;
  std::span<const VmId> vms_of_subscription(SubscriptionId sub) const;
  /// Store-level merged node index (ascending ids, identical to the
  /// resident index). Built lazily from the node-index sections only —
  /// no shard decode, O(placed VMs) resident once built.
  std::span<const VmId> vms_on_node(NodeId node) const;

  /// Drop least-recently-used shards until decoded bytes <= budget.
  /// Serial points only — invalidates views handed out so far.
  void evict_over_budget() const;
  /// Drop everything. Serial points only.
  void evict_all() const;

  std::size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  /// Total bytes of the sealed spill files on disk.
  std::size_t spill_bytes() const { return spill_bytes_; }
  std::size_t budget_bytes() const { return options_.budget_bytes; }

 private:
  /// Streaming-build state for one shard: the record/model spill logs
  /// with small staging buffers so append_vm is O(record), not O(shard).
  struct BuilderShard {
    std::ofstream records_out;
    std::ofstream models_out;
    std::string records_buf;
    std::string models_buf;
    std::string records_path;
    std::string models_path;
    std::uint64_t vm_count = 0;
    std::uint64_t model_count = 0;
  };

  struct Shard {
    std::string path;
    std::uint64_t vm_count = 0;
    std::uint64_t sub_count = 0;
    std::size_t file_bytes = 0;
    // Residency: `view` is published by a release-store after the decode
    // under `residency_mutex_`; readers acquire-load it.
    std::atomic<const PopulationShardView*> view{nullptr};
    std::unique_ptr<PopulationShardView> view_storage;
    std::atomic<std::uint64_t> last_use{0};
  };

  /// Shared ctor body: `open_logs` is false on the warm-adoption path,
  /// where the files already exist and no builder state is needed.
  PopulationShardStore(TimeGrid grid, const PopulationShardingOptions& options,
                       bool open_logs);

  const PopulationShardView& acquire(std::uint32_t shard) const;
  void drop_locked(Shard& s) const;
  void seal_shard(std::uint32_t s, std::span<const SubscriptionInfo> subs,
                  std::span<const std::uint32_t> shard_sub_indices);
  void build_node_index() const;

  TimeGrid grid_;
  std::uint32_t shard_count_ = 1;
  PopulationShardingOptions options_;
  std::uint64_t router_digest_ = 0;
  std::size_t sub_count_ = 0;
  bool sealed_ = false;
  /// Owning shard per VM, indexed by dense id (4 bytes/VM resident).
  std::vector<std::uint32_t> vm_shards_;

  std::vector<std::unique_ptr<BuilderShard>> builders_;
  /// Streaming router digest state (finished by finalize_spill).
  std::uint64_t digest_state_ = 0;

  mutable std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex residency_mutex_;
  mutable std::atomic<std::uint64_t> lru_clock_{0};
  mutable std::atomic<std::size_t> resident_bytes_{0};
  std::size_t spill_bytes_ = 0;

  mutable std::mutex node_index_mutex_;
  mutable std::atomic<bool> node_index_valid_{false};
  mutable std::unordered_map<NodeId, std::vector<VmId>> node_index_;
};

}  // namespace cloudlens
