#include "cloudsim/trace.h"

#include <algorithm>
#include <utility>

#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "common/check.h"

namespace cloudlens {

void UtilizationModel::sample(const TimeGrid& grid,
                              std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) out[i] = at(grid.at(i));
}

void ConstantUtilization::sample(const TimeGrid& grid,
                                 std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  std::fill(out.begin(), out.end(), level_);
}

TraceStore::TraceStore(const Topology* topology, TimeGrid grid)
    : topology_(topology), grid_(grid) {
  CL_CHECK(topology_ != nullptr);
  CL_CHECK(grid_.count > 0);
}

TraceStore::~TraceStore() = default;

ServiceId TraceStore::add_service(ServiceInfo info) {
  const ServiceId id(static_cast<ServiceId::underlying>(services_.size()));
  info.id = id;
  services_.push_back(std::move(info));
  return id;
}

SubscriptionId TraceStore::add_subscription(SubscriptionInfo info) {
  CL_CHECK_MSG(!population_sharded(),
               "population-sharded trace is immutable");
  const SubscriptionId id(
      static_cast<SubscriptionId::underlying>(subscriptions_.size()));
  info.id = id;
  subscriptions_.push_back(std::move(info));
  return id;
}

VmId TraceStore::add_vm(VmRecord record) {
  CL_CHECK_MSG(record.created < record.deleted,
               "VM must be created before it is deleted");
  CL_CHECK_MSG(record.subscription.valid() &&
                   record.subscription.value() < subscriptions_.size(),
               "VM references unknown subscription");
  CL_CHECK_MSG(!population_sharded() && adopted_vms_ == nullptr,
               "trace records are frozen (population-sharded or adopted)");
  if (pop_spilling_) {
    // Streaming spill: the record goes straight to its shard's spill log;
    // it never joins the resident vector.
    return pop_shards_->append_vm(std::move(record));
  }
  const VmId id(static_cast<VmId::underlying>(vms_.size()));
  record.id = id;
  vms_.push_back(std::move(record));
  node_index_valid_ = false;
  sub_index_valid_ = false;
  panel_valid_ = false;
  shards_valid_ = false;
  return id;
}

void TraceStore::set_vm_deleted(VmId id, SimTime when) {
  CL_CHECK_MSG(pop_shards_ == nullptr && adopted_vms_ == nullptr,
               "trace records are frozen (population-sharded or adopted)");
  CL_CHECK(id.valid() && id.value() < vms_.size());
  VmRecord& rec = vms_[id.value()];
  CL_CHECK_MSG(when < rec.deleted && when > rec.created,
               "early termination must shorten the VM's life");
  rec.deleted = when;
  // Shortening a VM's life changes derived telemetry (its panel row is
  // zero outside [created, deleted)) and any liveness-derived index, so
  // invalidate the lazy caches exactly the way add_vm does. Rebuilds are
  // lazy, so bursts of terminations (failure injection) pay once.
  node_index_valid_ = false;
  sub_index_valid_ = false;
  panel_valid_ = false;
  shards_valid_ = false;
}

void TraceStore::build_node_index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (node_index_valid_.load(std::memory_order_relaxed)) return;
  node_index_.clear();
  for (const auto& vm : vm_span()) {
    if (vm.placed()) node_index_[vm.node].push_back(vm.id);
  }
  node_index_valid_.store(true, std::memory_order_release);
}

void TraceStore::build_subscription_index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (sub_index_valid_.load(std::memory_order_relaxed)) return;
  sub_index_.clear();
  for (const auto& vm : vm_span()) sub_index_[vm.subscription].push_back(vm.id);
  sub_index_valid_.store(true, std::memory_order_release);
}

void TraceStore::build_telemetry_panel() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (panel_valid_.load(std::memory_order_relaxed)) return;
  panel_ = std::make_unique<TelemetryPanel>(*this, grid_, panel_parallel_);
  panel_valid_.store(true, std::memory_order_release);
}

const TelemetryPanel* TraceStore::telemetry_panel() const {
  // Out-of-core mode: the resident matrix must never materialize; the
  // streaming consumers read shards and everyone else takes the scratch
  // fallback (identical bits either way). Population sharding implies the
  // same: no resident per-VM matrix of any kind.
  if (sharding_ != nullptr || pop_shards_ != nullptr) return nullptr;
  if (!panel_enabled_) return nullptr;
  if (!panel_valid_.load(std::memory_order_acquire)) build_telemetry_panel();
  return panel_.get();
}

bool TraceStore::adopt_telemetry_panel(std::unique_ptr<TelemetryPanel> panel) {
  if (sharding_ != nullptr || pop_shards_ != nullptr) return false;
  if (!panel_enabled_ || panel == nullptr) return false;
  if (panel->grid() != grid_ || panel->vm_count() != vm_span().size()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(index_mutex_);
  panel_ = std::move(panel);
  panel_valid_.store(true, std::memory_order_release);
  return true;
}

void TraceStore::set_telemetry_panel_enabled(bool enabled) {
  panel_enabled_ = enabled;
  if (!enabled) {
    panel_valid_ = false;
    panel_.reset();
  }
}

void TraceStore::set_telemetry_sharding(
    const TelemetryShardingOptions& options) {
  CL_CHECK_MSG(pop_shards_ == nullptr,
               "telemetry sharding and population sharding are mutually "
               "exclusive (population mode already streams rows on demand)");
  sharding_ = std::make_unique<TelemetryShardingOptions>(options);
  // Sharding and the resident panel are mutually exclusive; drop any
  // materialized matrix now so RSS never holds both.
  panel_valid_ = false;
  panel_.reset();
  shards_valid_ = false;
  shards_.reset();
}

void TraceStore::clear_telemetry_sharding() {
  sharding_.reset();
  shards_valid_ = false;
  shards_.reset();
}

void TraceStore::build_telemetry_shards() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (shards_valid_.load(std::memory_order_relaxed)) return;
  shards_ = std::make_unique<TelemetryShardStore>(*this, *sharding_);
  shards_valid_.store(true, std::memory_order_release);
}

const TelemetryShardStore* TraceStore::telemetry_shards() const {
  if (sharding_ == nullptr) return nullptr;
  if (!shards_valid_.load(std::memory_order_acquire))
    build_telemetry_shards();
  return shards_.get();
}

std::span<const SubscriptionInfo> TraceStore::subscriptions() const {
  // Subscriptions stay resident *during* a streaming spill (finish moves
  // them out-of-core), so only the sealed population mode rejects this.
  CL_CHECK_MSG(!population_sharded(),
               "subscriptions() is unavailable in population-sharded mode; "
               "use subscription_count()/subscription() or stream shards");
  return subscriptions_;
}

std::span<const VmRecord> TraceStore::vms() const {
  CL_CHECK_MSG(!population_sharded() && !pop_spilling_,
               "vms() is unavailable in population-sharded mode; use "
               "vm_count()/vm() or stream shards (record_stream.h)");
  return vm_span();
}

std::size_t TraceStore::vm_count() const {
  if (pop_shards_ != nullptr) return pop_shards_->vm_count();
  return vm_span().size();
}

std::size_t TraceStore::subscription_count() const {
  if (population_sharded()) return pop_shards_->subscription_count();
  return subscriptions_.size();
}

const SubscriptionInfo& TraceStore::subscription(SubscriptionId id) const {
  if (population_sharded()) return pop_shards_->subscription(id);
  return subscriptions_.at(id.value());
}

const VmRecord& TraceStore::vm(VmId id) const {
  if (population_sharded()) return pop_shards_->record(id);
  return vm_span()[id.value()];
}

std::span<const VmId> TraceStore::vms_on_node(NodeId node) const {
  if (population_sharded()) return pop_shards_->vms_on_node(node);
  if (!node_index_valid_.load(std::memory_order_acquire)) build_node_index();
  const auto it = node_index_.find(node);
  if (it == node_index_.end()) return {};
  return it->second;
}

std::span<const VmId> TraceStore::vms_of_subscription(
    SubscriptionId sub) const {
  if (population_sharded()) return pop_shards_->vms_of_subscription(sub);
  if (!sub_index_valid_.load(std::memory_order_acquire))
    build_subscription_index();
  const auto it = sub_index_.find(sub);
  if (it == sub_index_.end()) return {};
  return it->second;
}

void TraceStore::begin_population_spill(
    const PopulationShardingOptions& options) {
  CL_CHECK_MSG(pop_shards_ == nullptr, "population spill already active");
  CL_CHECK_MSG(vms_.empty() && adopted_vms_ == nullptr,
               "population spill must start before any VM is added");
  CL_CHECK_MSG(sharding_ == nullptr,
               "telemetry sharding and population sharding are mutually "
               "exclusive");
  pop_shards_ = std::make_unique<PopulationShardStore>(grid_, options);
  pop_spilling_ = true;
}

void TraceStore::finish_population_spill() {
  CL_CHECK_MSG(pop_spilling_, "no population spill in progress");
  // Subscriptions stayed resident through the spill (add_vm validates
  // against them); seal them into the shard files and drop them.
  pop_shards_->finalize_spill(subscriptions_);
  subscriptions_.clear();
  subscriptions_.shrink_to_fit();
  pop_spilling_ = false;
  node_index_valid_ = false;
  sub_index_valid_ = false;
  panel_valid_ = false;
  panel_.reset();
}

void TraceStore::set_population_sharding(
    const PopulationShardingOptions& options) {
  CL_CHECK_MSG(pop_shards_ == nullptr, "population sharding already enabled");
  CL_CHECK_MSG(sharding_ == nullptr,
               "telemetry sharding and population sharding are mutually "
               "exclusive");
  CL_CHECK_MSG(adopted_vms_ == nullptr,
               "cannot population-shard adopted records");
  pop_shards_ = PopulationShardStore::build(*this, options);
  // The records and every resident derivative now live out-of-core; drop
  // the in-memory copies so RSS never holds both.
  vms_.clear();
  vms_.shrink_to_fit();
  subscriptions_.clear();
  subscriptions_.shrink_to_fit();
  node_index_valid_ = false;
  node_index_.clear();
  sub_index_valid_ = false;
  sub_index_.clear();
  panel_valid_ = false;
  panel_.reset();
}

void TraceStore::adopt_vm_records(
    std::shared_ptr<const std::vector<VmRecord>> records) {
  CL_CHECK_MSG(records != nullptr, "adopt_vm_records: null records");
  CL_CHECK_MSG(vms_.empty() && pop_shards_ == nullptr,
               "adopt_vm_records requires an empty, unsharded store");
  adopted_vms_ = std::move(records);
  node_index_valid_ = false;
  sub_index_valid_ = false;
  panel_valid_ = false;
  shards_valid_ = false;
}

void TraceStore::set_sample_valid_ticks(std::size_t ticks) {
  sample_valid_ticks_ = ticks;
  // The clamp changes row contents; drop any materialized matrix.
  panel_valid_ = false;
  panel_.reset();
}

stats::TimeSeries TraceStore::vm_utilization(VmId id,
                                             const TimeGrid& grid) const {
  const VmRecord& rec = vm(id);
  stats::TimeSeries out(grid);
  const TelemetryPanel* panel = grid == grid_ ? telemetry_panel() : nullptr;
  if (panel != nullptr && id.value() < panel->vm_count()) {
    const auto row = panel->row(id);
    std::copy(row.begin(), row.end(), out.mutable_values().begin());
  } else {
    TelemetryPanel::fill_row(rec, grid, out.mutable_values(),
                             grid == grid_ ? sample_valid_ticks_ : SIZE_MAX);
  }
  return out;
}

stats::TimeSeries TraceStore::node_utilization(NodeId id,
                                               const TimeGrid& grid) const {
  const Node& node = topology_->node(id);
  stats::TimeSeries out(grid);
  CL_CHECK(node.total_cores > 0);
  const TelemetryPanel* panel = grid == grid_ ? telemetry_panel() : nullptr;
  std::vector<double> scratch;
  auto& values = out.mutable_values();
  for (const VmId vm_id : vms_on_node(id)) {
    const VmRecord& rec = vm(vm_id);
    if (!rec.utilization) continue;
    const double weight = rec.cores / node.total_cores;
    // Weighted row sum over the panel (or an identically-filled scratch
    // row): rows are zero outside the VM's life, so adding every tick is
    // bit-identical to the old alive-gated accumulation.
    const std::span<const double> row =
        vm_telemetry_row(*this, panel, vm_id, grid, scratch);
    for (std::size_t i = 0; i < grid.count; ++i) values[i] += weight * row[i];
  }
  out.clamp(0.0, 1.0);
  return out;
}

double TraceStore::node_used_cores(NodeId id, SimTime t) const {
  double used = 0;
  for (const VmId vm_id : vms_on_node(id)) {
    const VmRecord& rec = vm(vm_id);
    if (rec.alive_at(t)) used += rec.cores;
  }
  return used;
}

}  // namespace cloudlens
