// Trace records: the simulated equivalent of the paper's dataset —
// per-VM metadata plus 5-minute average CPU utilization.
//
// Utilization is not materialized: each VM carries a deterministic
// UtilizationModel evaluated on demand, so traces with hundreds of
// thousands of VMs fit easily in memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/parallel.h"
#include "common/sim_time.h"
#include "cloudsim/topology.h"
#include "cloudsim/types.h"
#include "stats/series.h"

namespace cloudlens {

class TelemetryPanel;
class TelemetryShardStore;
struct TelemetryShardingOptions;
class PopulationShardStore;
struct PopulationShardingOptions;

/// Deterministic utilization source: average CPU utilization (fraction of
/// the VM's allocated cores, in [0, 1]) over the 5-minute interval starting
/// at t. Implementations must be pure functions of t.
class UtilizationModel {
 public:
  virtual ~UtilizationModel() = default;
  virtual double at(SimTime t) const = 0;

  /// Batched evaluation over a regular grid: out[i] = at(grid.at(i)), with
  /// out.size() == grid.count. The base implementation loops over the
  /// per-tick virtual `at`; concrete models override it with hoisted,
  /// branch-light batch loops (cached noise anchors, per-day-offset
  /// envelope tables, no per-tick virtual dispatch).
  ///
  /// Contract: overrides must be *bit-identical* to the base loop — the
  /// telemetry panel and every analysis consuming it rely on
  /// sample() == at() per tick, double for double.
  virtual void sample(const TimeGrid& grid, std::span<double> out) const;

  /// Free-form tag describing where the model came from ("diurnal",
  /// "sampled", ...); used by trace export as an informational column.
  virtual std::string_view kind() const { return "unknown"; }
};

/// Constant-utilization model; handy for tests and synthetic baselines.
class ConstantUtilization final : public UtilizationModel {
 public:
  explicit ConstantUtilization(double level) : level_(level) {}
  double at(SimTime) const override { return level_; }
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  /// The constant level (exposed so snapshots can round-trip the model).
  double level() const { return level_; }

 private:
  double level_;
};

struct ServiceInfo {
  ServiceId id;
  std::string name;
  CloudType cloud = CloudType::kPrivate;
  ServiceModel model = ServiceModel::kPaaS;
  /// Geo-load-balanced services have one global demand curve; their
  /// utilization peaks align across regions regardless of time zone.
  bool region_agnostic = false;
};

struct SubscriptionInfo {
  SubscriptionId id;
  CloudType cloud = CloudType::kPublic;
  PartyType party = PartyType::kThirdParty;
  /// Owning service for first-party subscriptions; invalid otherwise.
  ServiceId service;
};

/// Sentinel for "VM still alive at the end of the observed window".
inline constexpr SimTime kNoEnd = std::numeric_limits<SimTime>::max();

struct VmRecord {
  VmId id;
  SubscriptionId subscription;
  ServiceId service;  ///< invalid for third-party VMs
  CloudType cloud = CloudType::kPublic;
  PartyType party = PartyType::kThirdParty;
  RegionId region;
  ClusterId cluster;  ///< invalid if the allocation failed
  RackId rack;
  NodeId node;
  double cores = 1;
  double memory_gb = 4;
  SimTime created = 0;
  SimTime deleted = kNoEnd;
  std::shared_ptr<const UtilizationModel> utilization;

  bool placed() const { return node.valid(); }
  bool alive_at(SimTime t) const { return t >= created && t < deleted; }
  /// Lifetime; only meaningful when the VM ended within the window.
  SimDuration lifetime() const { return deleted - created; }
  bool ended() const { return deleted != kNoEnd; }
  /// Alive for every instant of [grid.start, grid.end())?
  bool covers(const TimeGrid& grid) const {
    return created <= grid.start && deleted >= grid.end();
  }
};

/// The in-memory dataset produced by a simulation run.
class TraceStore {
 public:
  explicit TraceStore(const Topology* topology,
                      TimeGrid grid = week_telemetry_grid());
  ~TraceStore();  // out of line: TelemetryPanel is incomplete here

  const Topology& topology() const { return *topology_; }
  const TimeGrid& telemetry_grid() const { return grid_; }

  ServiceId add_service(ServiceInfo info);
  SubscriptionId add_subscription(SubscriptionInfo info);
  VmId add_vm(VmRecord record);

  /// Terminate a VM earlier than recorded (used by failure injection).
  /// The new time must precede the current deletion time.
  void set_vm_deleted(VmId id, SimTime when);

  std::span<const ServiceInfo> services() const { return services_; }
  /// Resident subscription records. Unavailable in population-sharded
  /// mode (CheckError) — use subscription_count() + subscription(), or
  /// stream shards via population_shards().
  std::span<const SubscriptionInfo> subscriptions() const;
  /// Resident VM records. Unavailable in population-sharded mode
  /// (CheckError) — use vm_count() + vm(), or stream shards
  /// (analysis/record_stream.h).
  std::span<const VmRecord> vms() const;

  /// Mode-aware counts: the size of the resident spans, or the shard
  /// store's global counts in population-sharded mode. Ids are dense in
  /// [0, count) in every mode.
  std::size_t vm_count() const;
  std::size_t subscription_count() const;

  const ServiceInfo& service(ServiceId id) const {
    return services_.at(id.value());
  }
  /// Record lookups. In population-sharded mode these page the owning
  /// shard in on demand (thread-safe); the returned reference stays valid
  /// until the next population_shards() eviction, which may only happen
  /// at serial points (see cloudsim/population.h).
  const SubscriptionInfo& subscription(SubscriptionId id) const;
  const VmRecord& vm(VmId id) const;

  /// VM ids of all placed VMs hosted by `node` at any point (index built on
  /// first use and invalidated by add_vm).
  std::span<const VmId> vms_on_node(NodeId node) const;

  /// VM ids per subscription (index built on first use).
  std::span<const VmId> vms_of_subscription(SubscriptionId sub) const;

  /// Utilization of one VM over `grid`: 0 when the VM is not alive.
  stats::TimeSeries vm_utilization(VmId id, const TimeGrid& grid) const;

  /// Core-seconds-weighted node utilization: sum over hosted VMs of
  /// util × vm.cores / node.total_cores at each grid point.
  stats::TimeSeries node_utilization(NodeId id, const TimeGrid& grid) const;

  /// Cores in use on a node at time t.
  double node_used_cores(NodeId id, SimTime t) const;

  /// The columnar telemetry cache (row-major VM × tick utilization matrix
  /// plus an hourly-mean companion view), materialized lazily on first call
  /// over `telemetry_grid()` and invalidated by add_vm/set_vm_deleted.
  /// Returns nullptr when the panel is disabled — consumers fall back to
  /// on-demand row evaluation with identical bits (see telemetry_panel.h).
  /// Safe for concurrent readers: the first reader builds the panel under
  /// the index mutex and publishes it with a release-store, exactly like
  /// the node/subscription indexes.
  const TelemetryPanel* telemetry_panel() const;

  /// Enable/disable the panel (default: enabled). Disabling drops the
  /// materialized matrix immediately. Mutation must be externally
  /// serialized against readers, like every other mutator.
  void set_telemetry_panel_enabled(bool enabled);
  bool telemetry_panel_enabled() const { return panel_enabled_; }

  /// Parallelism used for the lazy panel build (results are per-row
  /// independent, so any thread count yields identical bits).
  void set_telemetry_parallel(const ParallelConfig& parallel) {
    panel_parallel_ = parallel;
  }

  /// Install a prebuilt panel (snapshot load) instead of rebuilding it
  /// lazily. The panel must cover every VM over `telemetry_grid()`; a
  /// mismatched or disabled panel is rejected (returns false, store
  /// unchanged). Mutation must be externally serialized against readers,
  /// like every other mutator.
  bool adopt_telemetry_panel(std::unique_ptr<TelemetryPanel> panel);

  /// Out-of-core mode: shard the telemetry matrix by subscription hash
  /// into mmap-backed spill files (cloudsim/shard.h) instead of one
  /// resident panel. While sharding is enabled telemetry_panel() returns
  /// nullptr — non-streaming consumers fall back to on-demand row
  /// evaluation through the same fill kernel (identical bits), and the
  /// restructured streaming passes read rows via telemetry_shards().
  /// Mutation must be externally serialized against readers.
  void set_telemetry_sharding(const TelemetryShardingOptions& options);
  void clear_telemetry_sharding();
  bool telemetry_sharding_enabled() const { return sharding_ != nullptr; }

  /// The shard store, built lazily on first use (filling + spilling the
  /// shard files), or nullptr when sharding is disabled. Publication
  /// follows the telemetry_panel() pattern, so concurrent readers are
  /// safe; add_vm/set_vm_deleted invalidate it.
  const TelemetryShardStore* telemetry_shards() const;

  // --- population sharding (out-of-core VM/subscription records) --------
  //
  // Two ways in:
  //  * Streaming (generator/ingest): begin_population_spill() before any
  //    add_vm, then add_subscription/add_vm as usual — records are routed
  //    straight to per-shard spill logs instead of the resident vector —
  //    then finish_population_spill() once, which seals the shard files
  //    and moves the subscriptions out-of-core too.
  //  * Conversion (an already-resident trace): set_population_sharding()
  //    spills the resident records and drops them.
  // Either way the store ends up population-sharded: vms()/subscriptions()
  // become unavailable, record lookups page shards in on demand, and
  // mutation (add_vm/set_vm_deleted) is rejected. Population sharding is
  // mutually exclusive with the telemetry panel and telemetry sharding —
  // consumers take the scratch fill_row fallback (identical bits).
  void begin_population_spill(const PopulationShardingOptions& options);
  void finish_population_spill();
  void set_population_sharding(const PopulationShardingOptions& options);
  const PopulationShardStore* population_shards() const {
    return pop_shards_ != nullptr && !pop_spilling_ ? pop_shards_.get()
                                                    : nullptr;
  }
  bool population_sharded() const { return population_shards() != nullptr; }
  bool population_spilling() const { return pop_spilling_; }

  // --- shared records (serve epoch snapshots) ---------------------------

  /// Adopt a prebuilt, externally shared VM record vector instead of
  /// copying records in one add_vm at a time. The store must hold no VMs
  /// yet; subscriptions/services must already cover every referenced id.
  /// After adoption the store is immutable (add_vm/set_vm_deleted are
  /// rejected) — the serve engine shares one frozen record vector across
  /// every epoch snapshot instead of deep-copying it per epoch.
  void adopt_vm_records(std::shared_ptr<const std::vector<VmRecord>> records);

  /// Valid-ticks clamp for on-demand sample evaluation: every telemetry
  /// row served for this trace's own grid is forced to zero at tick
  /// indices >= `ticks`. Used by serve snapshots whose sample buffers are
  /// still being appended to beyond the snapshot epoch: the clamp keeps
  /// readers off the in-flight tail (bit-identical to the old baked-copy
  /// path, which zeroed the same cells). Default: no clamp.
  void set_sample_valid_ticks(std::size_t ticks);
  std::size_t sample_valid_ticks() const { return sample_valid_ticks_; }

 private:
  std::span<const VmRecord> vm_span() const {
    return adopted_vms_ != nullptr ? std::span<const VmRecord>(*adopted_vms_)
                                   : std::span<const VmRecord>(vms_);
  }
  void build_node_index() const;
  void build_subscription_index() const;
  void build_telemetry_panel() const;
  void build_telemetry_shards() const;

  const Topology* topology_;
  TimeGrid grid_;
  std::vector<ServiceInfo> services_;
  std::vector<SubscriptionInfo> subscriptions_;
  std::vector<VmRecord> vms_;

  // Lazy indexes (mutable caches; rebuilt when stale). Concurrent *reads*
  // are safe — the first reader builds the index under `index_mutex_` and
  // publishes it via the release-store on the valid flag, so parallel
  // analysis passes may call vms_on_node()/vms_of_subscription() from any
  // thread. Mutation (add_vm) must still be externally serialized against
  // readers, as for every other accessor.
  mutable std::mutex index_mutex_;
  mutable std::atomic<bool> node_index_valid_{false};
  mutable std::unordered_map<NodeId, std::vector<VmId>> node_index_;
  mutable std::atomic<bool> sub_index_valid_{false};
  mutable std::unordered_map<SubscriptionId, std::vector<VmId>> sub_index_;

  // Lazy columnar telemetry cache (same publication pattern as the
  // indexes above). `panel_enabled_`/`panel_parallel_` are plain state:
  // they are only written by mutators, which are serialized against
  // readers by contract.
  bool panel_enabled_ = true;
  ParallelConfig panel_parallel_{};
  mutable std::atomic<bool> panel_valid_{false};
  mutable std::unique_ptr<TelemetryPanel> panel_;

  // Out-of-core sharding (same publication pattern as the panel).
  // `sharding_` is plain mutator-written state; the store itself is a
  // lazy cache.
  std::unique_ptr<TelemetryShardingOptions> sharding_;
  mutable std::atomic<bool> shards_valid_{false};
  mutable std::unique_ptr<TelemetryShardStore> shards_;

  // Population sharding: non-null once begin_population_spill() or
  // set_population_sharding() ran; `pop_spilling_` is true between
  // begin and finish (the store is still a write-only builder then).
  // Mutator-written state, serialized against readers by contract.
  std::unique_ptr<PopulationShardStore> pop_shards_;
  bool pop_spilling_ = false;

  // Externally shared record vector (serve); mutually exclusive with
  // `vms_` and with population sharding.
  std::shared_ptr<const std::vector<VmRecord>> adopted_vms_;

  // Valid-ticks clamp over `grid_` (SIZE_MAX = no clamp).
  std::size_t sample_valid_ticks_ = SIZE_MAX;
};

}  // namespace cloudlens
