#include "cloudsim/population.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string_view>

#include "cloudsim/shard.h"
#include "cloudsim/snapshot.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace cloudlens {

namespace fs = std::filesystem;

namespace {

using snapshot_codec::append_f64;
using snapshot_codec::append_i64;
using snapshot_codec::append_u32;
using snapshot_codec::append_u64;
using snapshot_codec::append_u8;
using snapshot_codec::Reader;

/// One packed VM record in the POPULATION_VMS section. Fixed width so the
/// sealer can scan a spill log without decoding models.
constexpr std::size_t kRecordBytes = 64;

/// Spill-log staging buffer flush threshold.
constexpr std::size_t kStageBytes = 256u << 10;

/// FNV-1a over the router inputs — the population twin of the telemetry
/// router digest (shard.cpp), with its own salt and with the subscription
/// table folded in. Binds spill files to (record metadata, subscription
/// metadata, grid, K). Model *internals* are not hashed; directories that
/// may be shared across traces must be keyed by trace content, which the
/// pipeline does.
class Fnv64 {
 public:
  Fnv64() = default;
  explicit Fnv64(std::uint64_t state) : h_(state) {}
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void digest_header(Fnv64& h, const TimeGrid& grid, std::uint32_t shards) {
  h.u64(0x636c2e706f70756cULL);  // "cl.popul" — format salt
  h.u64(shards);
  h.i64(grid.start);
  h.i64(grid.step);
  h.u64(grid.count);
}

void digest_vm(Fnv64& h, const VmRecord& vm) {
  h.u64(vm.subscription.value());
  h.i64(vm.created);
  h.i64(vm.deleted);
  h.f64(vm.cores);
  h.u64(vm.utilization == nullptr ? 0 : 1);
}

void digest_subscriptions(Fnv64& h,
                          std::span<const SubscriptionInfo> subs) {
  for (const SubscriptionInfo& s : subs) {
    h.u64(s.cloud == CloudType::kPrivate ? 0 : 1);
    h.u64(s.party == PartyType::kFirstParty ? 0 : 1);
    h.u64(s.service.value());
  }
  h.u64(subs.size());
}

/// The streaming digest in one pass, for the conversion path's warm check.
std::uint64_t compute_trace_digest(const TraceStore& trace,
                                   std::uint32_t shards) {
  Fnv64 h;
  digest_header(h, trace.telemetry_grid(), shards);
  for (const VmRecord& vm : trace.vms()) digest_vm(h, vm);
  h.u64(trace.vms().size());
  digest_subscriptions(h, trace.subscriptions());
  return h.digest();
}

std::string shard_file(const std::string& dir, std::uint32_t index) {
  return (fs::path(dir) / ("pop-shard-" + std::to_string(index) + ".clsn"))
      .string();
}

void append_record(std::string& out, const VmRecord& vm) {
  const std::size_t base = out.size();
  append_u32(out, vm.id.value());
  append_u32(out, vm.subscription.value());
  append_u32(out, vm.service.value());
  append_u8(out, vm.cloud == CloudType::kPrivate ? 0 : 1);
  append_u8(out, vm.party == PartyType::kFirstParty ? 0 : 1);
  append_u8(out, vm.utilization == nullptr ? 0 : 1);
  append_u8(out, 0);  // pad
  append_u32(out, vm.region.value());
  append_u32(out, vm.cluster.value());
  append_u32(out, vm.rack.value());
  append_u32(out, vm.node.value());
  append_f64(out, vm.cores);
  append_f64(out, vm.memory_gb);
  append_i64(out, vm.created);
  append_i64(out, vm.deleted);
  CL_CHECK_MSG(out.size() - base == kRecordBytes,
               "population: packed record layout drifted");
}

/// Decodes one packed record (sans utilization model, restored later from
/// the models section in record order).
VmRecord read_record(Reader& r, bool* has_model) {
  VmRecord vm;
  vm.id = VmId(r.u32());
  vm.subscription = SubscriptionId(r.u32());
  vm.service = ServiceId(r.u32());
  vm.cloud = r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
  vm.party = r.u8() == 0 ? PartyType::kFirstParty : PartyType::kThirdParty;
  *has_model = r.u8() != 0;
  r.u8();  // pad
  vm.region = RegionId(r.u32());
  vm.cluster = ClusterId(r.u32());
  vm.rack = RackId(r.u32());
  vm.node = NodeId(r.u32());
  vm.cores = r.f64();
  vm.memory_gb = r.f64();
  vm.created = r.i64();
  vm.deleted = r.i64();
  return vm;
}

void flush_stage(std::ofstream& out, std::string& buf, bool force) {
  if (buf.empty() || (!force && buf.size() < kStageBytes)) return;
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.clear();
}

struct PopulationMeta {
  TimeGrid grid;
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t global_vms = 0;
  std::uint64_t global_subs = 0;
  std::uint64_t shard_vms = 0;
  std::uint64_t shard_subs = 0;
  std::uint64_t model_count = 0;
  std::uint64_t router_digest = 0;
};

std::string encode_meta(const PopulationMeta& m) {
  std::string out;
  append_i64(out, m.grid.start);
  append_i64(out, m.grid.step);
  append_u64(out, m.grid.count);
  append_u64(out, m.shard_index);
  append_u64(out, m.shard_count);
  append_u64(out, m.global_vms);
  append_u64(out, m.global_subs);
  append_u64(out, m.shard_vms);
  append_u64(out, m.shard_subs);
  append_u64(out, m.model_count);
  append_u64(out, m.router_digest);
  return out;
}

PopulationMeta read_meta(const SnapshotMapping& mapping) {
  Reader r(mapping.section(snapshot_sections::kPopulationMeta));
  PopulationMeta m;
  m.grid.start = r.i64();
  m.grid.step = r.i64();
  m.grid.count = static_cast<std::size_t>(r.u64());
  m.shard_index = r.u64();
  m.shard_count = r.u64();
  m.global_vms = r.u64();
  m.global_subs = r.u64();
  m.shard_vms = r.u64();
  m.shard_subs = r.u64();
  m.model_count = r.u64();
  m.router_digest = r.u64();
  CL_CHECK_MSG(r.done(), "population shard: trailing meta bytes");
  CL_CHECK_MSG(m.shard_count > 0 && m.shard_index < m.shard_count,
               "population shard: bad shard index");
  return m;
}

}  // namespace

// --- PopulationShardView -------------------------------------------------

const VmRecord* PopulationShardView::find(VmId id) const {
  const auto it = std::lower_bound(
      vms_.begin(), vms_.end(), id,
      [](const VmRecord& vm, VmId key) { return vm.id.value() < key.value(); });
  if (it == vms_.end() || it->id != id) return nullptr;
  return &*it;
}

const SubscriptionInfo* PopulationShardView::find_subscription(
    SubscriptionId id) const {
  const auto it = std::lower_bound(
      subs_.begin(), subs_.end(), id,
      [](const SubscriptionInfo& s, SubscriptionId key) {
        return s.id.value() < key.value();
      });
  if (it == subs_.end() || it->id != id) return nullptr;
  return &*it;
}

std::span<const VmId> PopulationShardView::vms_of(SubscriptionId sub) const {
  const auto it = std::lower_bound(
      sub_index_.begin(), sub_index_.end(), sub,
      [](const auto& entry, SubscriptionId key) {
        return entry.first.value() < key.value();
      });
  if (it == sub_index_.end() || it->first != sub) return {};
  return it->second;
}

// --- PopulationShardStore ------------------------------------------------

PopulationShardStore::PopulationShardStore(
    TimeGrid grid, const PopulationShardingOptions& options)
    : PopulationShardStore(grid, options, /*open_logs=*/true) {}

PopulationShardStore::PopulationShardStore(
    TimeGrid grid, const PopulationShardingOptions& options, bool open_logs)
    : grid_(grid), options_(options) {
  CL_CHECK_MSG(!options_.spill_dir.empty(),
               "population store: spill_dir is required");
  shard_count_ = std::max<std::uint32_t>(1, options_.shards);
  CL_CHECK(grid_.count > 0);
  std::error_code dir_ec;
  fs::create_directories(options_.spill_dir, dir_ec);
  CL_CHECK_MSG(!dir_ec, "population store: cannot create spill dir "
                            << options_.spill_dir << ": " << dir_ec.message());
  shards_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[s]->path = shard_file(options_.spill_dir, s);
  }
  {
    Fnv64 h;
    digest_header(h, grid_, shard_count_);
    digest_state_ = h.digest();
  }
  if (!open_logs) return;
  builders_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    auto b = std::make_unique<BuilderShard>();
    b->records_path = shards_[s]->path + ".records.log";
    b->models_path = shards_[s]->path + ".models.log";
    b->records_out.open(b->records_path, std::ios::binary | std::ios::trunc);
    b->models_out.open(b->models_path, std::ios::binary | std::ios::trunc);
    CL_CHECK_MSG(b->records_out.good() && b->models_out.good(),
                 "population store: cannot open spill logs in "
                     << options_.spill_dir);
    builders_.push_back(std::move(b));
  }
}

PopulationShardStore::~PopulationShardStore() {
  evict_all();
  // Abandoned spill (finalize never ran): close and drop the logs.
  for (const auto& b : builders_) {
    if (b == nullptr) continue;
    std::error_code ec;
    fs::remove(b->records_path, ec);
    fs::remove(b->models_path, ec);
  }
  if (!options_.keep_files) {
    for (const auto& s : shards_) {
      if (!s->path.empty()) {
        std::error_code ec;
        fs::remove(s->path, ec);  // best effort
      }
    }
  }
}

VmId PopulationShardStore::append_vm(VmRecord record) {
  CL_CHECK_MSG(!sealed_ && !builders_.empty(),
               "population store: append_vm outside a spill");
  const VmId id(static_cast<VmId::underlying>(vm_shards_.size()));
  record.id = id;
  const std::uint32_t s =
      shard_of_subscription(record.subscription, shard_count_);
  vm_shards_.push_back(s);
  {
    Fnv64 h(digest_state_);
    digest_vm(h, record);
    digest_state_ = h.digest();
  }
  BuilderShard& b = *builders_[s];
  append_record(b.records_buf, record);
  flush_stage(b.records_out, b.records_buf, /*force=*/false);
  if (record.utilization != nullptr) {
    encode_model_record(*record.utilization, grid_, options_.model_codec,
                        b.models_buf);
    flush_stage(b.models_out, b.models_buf, /*force=*/false);
    ++b.model_count;
  }
  ++b.vm_count;
  return id;
}

void PopulationShardStore::seal_shard(
    std::uint32_t s, std::span<const SubscriptionInfo> subs,
    std::span<const std::uint32_t> shard_sub_indices) {
  BuilderShard& b = *builders_[s];
  Shard& shard = *shards_[s];
  flush_stage(b.records_out, b.records_buf, /*force=*/true);
  flush_stage(b.models_out, b.models_buf, /*force=*/true);
  CL_CHECK_MSG(b.records_out.good() && b.models_out.good(),
               "population store: spill log write failed (disk full?)");
  b.records_out.close();
  b.models_out.close();
  CL_CHECK_MSG(b.records_out.good() && b.models_out.good(),
               "population store: spill log close failed");

  // The records log *is* the POPULATION_VMS payload; slurp it (64 bytes a
  // record — the models, which dominate for sampled traces, are streamed
  // below without staging).
  std::string records;
  {
    std::ifstream in(b.records_path, std::ios::binary);
    CL_CHECK_MSG(in.good(),
                 "population store: cannot reopen " << b.records_path);
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    in.seekg(0);
    records.resize(end == std::streampos(-1) ? 0
                                             : static_cast<std::size_t>(end));
    in.read(records.data(), static_cast<std::streamsize>(records.size()));
    CL_CHECK_MSG(static_cast<std::size_t>(in.gcount()) == records.size(),
                 "population store: short read of " << b.records_path);
  }
  CL_CHECK_MSG(records.size() == b.vm_count * kRecordBytes,
               "population store: spill log truncated: " << b.records_path);

  // Per-node membership from the packed records (node id at fixed offset;
  // appearance order == ascending vm id). Entries sorted by node so the
  // sealed bytes are deterministic.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_node;
  for (std::size_t i = 0; i < b.vm_count; ++i) {
    const char* rec = records.data() + i * kRecordBytes;
    std::uint32_t vm_id;
    std::uint32_t node;
    std::memcpy(&vm_id, rec, sizeof(vm_id));
    std::memcpy(&node, rec + 28, sizeof(node));
    if (node != NodeId::kInvalid) by_node[node].push_back(vm_id);
  }
  std::vector<std::uint32_t> nodes;
  nodes.reserve(by_node.size());
  for (const auto& [node, ids] : by_node) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  std::string node_index;
  append_u64(node_index, nodes.size());
  for (const std::uint32_t node : nodes) {
    const auto& ids = by_node[node];
    append_u32(node_index, node);
    append_u32(node_index, static_cast<std::uint32_t>(ids.size()));
    for (const std::uint32_t id : ids) append_u32(node_index, id);
  }

  std::string sub_payload;
  for (const std::uint32_t i : shard_sub_indices) {
    const SubscriptionInfo& sub = subs[i];
    append_u32(sub_payload, sub.id.value());
    append_u8(sub_payload, sub.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(sub_payload, sub.party == PartyType::kFirstParty ? 0 : 1);
    append_u32(sub_payload, sub.service.value());
  }

  PopulationMeta meta;
  meta.grid = grid_;
  meta.shard_index = s;
  meta.shard_count = shard_count_;
  meta.global_vms = vm_shards_.size();
  meta.global_subs = sub_count_;
  meta.shard_vms = b.vm_count;
  meta.shard_subs = shard_sub_indices.size();
  meta.model_count = b.model_count;
  meta.router_digest = router_digest_;
  const std::string meta_payload = encode_meta(meta);

  const std::uint64_t model_bytes =
      static_cast<std::uint64_t>(fs::file_size(b.models_path));

  // Hand-built container (write_container stages whole payloads; the
  // models section is streamed from its log instead).
  std::string head;
  append_u32(head, kSnapshotMagic);
  append_u32(head, kSnapshotFormatVersion);
  append_u32(head, 5);
  append_u32(head, 0);
  const std::uint64_t table_bytes = 5 * 24;
  std::uint64_t offset = head.size() + table_bytes;
  std::string table;
  const auto add_section = [&](std::uint32_t id, std::uint64_t size) {
    append_u32(table, id);
    append_u32(table, 0);
    append_u64(table, offset);
    append_u64(table, size);
    offset += size;
  };
  add_section(snapshot_sections::kPopulationMeta, meta_payload.size());
  add_section(snapshot_sections::kPopulationSubscriptions,
              sub_payload.size());
  add_section(snapshot_sections::kPopulationVms, records.size());
  add_section(snapshot_sections::kPopulationModels, model_bytes);
  add_section(snapshot_sections::kPopulationNodeIndex, node_index.size());

  const std::string tmp = shard.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CL_CHECK_MSG(out.good(), "population store: cannot write " << tmp);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    out.write(table.data(), static_cast<std::streamsize>(table.size()));
    out.write(meta_payload.data(),
              static_cast<std::streamsize>(meta_payload.size()));
    out.write(sub_payload.data(),
              static_cast<std::streamsize>(sub_payload.size()));
    out.write(records.data(), static_cast<std::streamsize>(records.size()));
    {
      std::ifstream models(b.models_path, std::ios::binary);
      CL_CHECK_MSG(models.good(),
                   "population store: cannot reopen " << b.models_path);
      std::vector<char> chunk(1u << 20);
      std::uint64_t copied = 0;
      while (models) {
        models.read(chunk.data(),
                    static_cast<std::streamsize>(chunk.size()));
        const std::streamsize got = models.gcount();
        if (got <= 0) break;
        out.write(chunk.data(), got);
        copied += static_cast<std::uint64_t>(got);
      }
      CL_CHECK_MSG(copied == model_bytes,
                   "population store: model log changed size mid-seal");
    }
    out.write(node_index.data(),
              static_cast<std::streamsize>(node_index.size()));
    CL_CHECK_MSG(out.good(),
                 "population store: write failed (disk full?): " << tmp);
  }
  fs::rename(tmp, shard.path);
  std::error_code ec;
  fs::remove(b.records_path, ec);
  fs::remove(b.models_path, ec);

  shard.vm_count = b.vm_count;
  shard.sub_count = shard_sub_indices.size();
  shard.file_bytes = static_cast<std::size_t>(fs::file_size(shard.path));
  spill_bytes_ += shard.file_bytes;
  obs::MetricsRegistry::global().add(obs::Counter::kPopulationShardSpills);
}

void PopulationShardStore::finalize_spill(
    std::span<const SubscriptionInfo> subscriptions) {
  CL_CHECK_MSG(!sealed_ && !builders_.empty(),
               "population store: finalize without an active spill");
  sub_count_ = subscriptions.size();
  {
    Fnv64 h(digest_state_);
    h.u64(vm_shards_.size());
    digest_subscriptions(h, subscriptions);
    router_digest_ = h.digest();
  }
  std::vector<std::vector<std::uint32_t>> shard_subs(shard_count_);
  for (std::size_t i = 0; i < subscriptions.size(); ++i) {
    CL_CHECK_MSG(subscriptions[i].id.value() == i,
                 "population store: subscription table must be dense");
    shard_subs[shard_of_subscription(subscriptions[i].id, shard_count_)]
        .push_back(static_cast<std::uint32_t>(i));
  }
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    seal_shard(s, subscriptions, shard_subs[s]);
  }
  builders_.clear();
  sealed_ = true;
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set(obs::Gauge::kPopulationShardCount,
              static_cast<double>(shard_count_));
  metrics.set(obs::Gauge::kPopulationShardResidentBytes, 0.0);
}

std::unique_ptr<PopulationShardStore> PopulationShardStore::build(
    const TraceStore& trace, const PopulationShardingOptions& options) {
  const std::uint32_t shard_count = std::max<std::uint32_t>(1, options.shards);
  const std::uint64_t digest = compute_trace_digest(trace, shard_count);

  // Warm start: adopt the on-disk files when every shard matches this
  // trace's digest — the sealed bytes are a pure function of the inputs
  // the digest covers, so matching files are the files this build would
  // write.
  bool warm = !options.spill_dir.empty();
  std::vector<PopulationMeta> metas;
  for (std::uint32_t s = 0; warm && s < shard_count; ++s) {
    const std::string path = shard_file(options.spill_dir, s);
    try {
      SnapshotMapping mapping(path);
      const PopulationMeta m = read_meta(mapping);
      warm = m.router_digest == digest && m.shard_index == s &&
             m.shard_count == shard_count &&
             m.global_vms == trace.vms().size() &&
             m.global_subs == trace.subscriptions().size() &&
             m.grid.start == trace.telemetry_grid().start &&
             m.grid.step == trace.telemetry_grid().step &&
             m.grid.count == trace.telemetry_grid().count;
      if (warm) metas.push_back(m);
    } catch (const CheckError&) {
      warm = false;
    }
  }

  if (warm) {
    auto store = std::unique_ptr<PopulationShardStore>(
        new PopulationShardStore(trace.telemetry_grid(), options,
                                 /*open_logs=*/false));
    store->router_digest_ = digest;
    store->sub_count_ = trace.subscriptions().size();
    store->vm_shards_.reserve(trace.vms().size());
    for (const VmRecord& vm : trace.vms()) {
      store->vm_shards_.push_back(
          shard_of_subscription(vm.subscription, shard_count));
    }
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      Shard& shard = *store->shards_[s];
      shard.vm_count = metas[s].shard_vms;
      shard.sub_count = metas[s].shard_subs;
      shard.file_bytes =
          static_cast<std::size_t>(fs::file_size(shard.path));
      store->spill_bytes_ += shard.file_bytes;
    }
    store->sealed_ = true;
    auto& metrics = obs::MetricsRegistry::global();
    metrics.set(obs::Gauge::kPopulationShardCount,
                static_cast<double>(shard_count));
    return store;
  }

  auto store = std::make_unique<PopulationShardStore>(trace.telemetry_grid(),
                                                      options);
  for (const VmRecord& vm : trace.vms()) store->append_vm(vm);
  store->finalize_spill(trace.subscriptions());
  CL_CHECK_MSG(store->router_digest_ == digest,
               "population store: streaming/conversion digest divergence");
  return store;
}

std::uint32_t PopulationShardStore::shard_of(SubscriptionId sub) const {
  return shard_of_subscription(sub, shard_count_);
}

std::uint32_t PopulationShardStore::shard_of_vm(VmId id) const {
  return vm_shards_.at(id.value());
}

const PopulationShardView& PopulationShardStore::acquire(
    std::uint32_t shard) const {
  CL_CHECK_MSG(sealed_, "population store: read before finalize_spill");
  Shard& s = *shards_.at(shard);
  const PopulationShardView* view = s.view.load(std::memory_order_acquire);
  if (view == nullptr) {
    std::lock_guard<std::mutex> lock(residency_mutex_);
    view = s.view.load(std::memory_order_relaxed);
    if (view == nullptr) {
      // Decode the whole shard out of the mapping, then drop the mapping:
      // only the decoded vectors stay resident.
      SnapshotMapping mapping(s.path);
      const PopulationMeta meta = read_meta(mapping);
      CL_CHECK_MSG(meta.shard_index == shard &&
                       meta.shard_count == shard_count_ &&
                       meta.router_digest == router_digest_ &&
                       meta.shard_vms == s.vm_count &&
                       meta.shard_subs == s.sub_count,
                   "population store: spill file "
                       << s.path << " does not match router");
      auto storage = std::make_unique<PopulationShardView>();

      Reader sub_r(
          mapping.section(snapshot_sections::kPopulationSubscriptions));
      storage->subs_.reserve(meta.shard_subs);
      for (std::uint64_t i = 0; i < meta.shard_subs; ++i) {
        SubscriptionInfo sub;
        sub.id = SubscriptionId(sub_r.u32());
        sub.cloud = sub_r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
        sub.party =
            sub_r.u8() == 0 ? PartyType::kFirstParty : PartyType::kThirdParty;
        sub.service = ServiceId(sub_r.u32());
        CL_CHECK_MSG(storage->subs_.empty() ||
                         storage->subs_.back().id.value() < sub.id.value(),
                     "population shard: subscriptions out of order");
        storage->subs_.push_back(sub);
      }
      CL_CHECK_MSG(sub_r.done(),
                   "population shard: trailing subscription bytes");

      Reader vm_r(mapping.section(snapshot_sections::kPopulationVms));
      std::vector<char> has_model(meta.shard_vms, 0);
      storage->vms_.reserve(meta.shard_vms);
      for (std::uint64_t i = 0; i < meta.shard_vms; ++i) {
        bool model = false;
        VmRecord vm = read_record(vm_r, &model);
        has_model[i] = model ? 1 : 0;
        CL_CHECK_MSG(storage->vms_.empty() ||
                         storage->vms_.back().id.value() < vm.id.value(),
                     "population shard: records out of order");
        storage->vms_.push_back(std::move(vm));
      }
      CL_CHECK_MSG(vm_r.done(), "population shard: trailing record bytes");

      const std::string_view model_bytes =
          mapping.section(snapshot_sections::kPopulationModels);
      Reader model_r(model_bytes);
      std::uint64_t models_decoded = 0;
      for (std::uint64_t i = 0; i < meta.shard_vms; ++i) {
        if (has_model[i] == 0) continue;
        storage->vms_[i].utilization =
            decode_model_record(model_r, options_.model_codec);
        ++models_decoded;
      }
      CL_CHECK_MSG(model_r.done() && models_decoded == meta.model_count,
                   "population shard: model section does not match records");

      std::unordered_map<std::uint32_t, std::vector<VmId>> by_sub;
      for (const VmRecord& vm : storage->vms_) {
        by_sub[vm.subscription.value()].push_back(vm.id);
      }
      storage->sub_index_.reserve(by_sub.size());
      for (auto& [sub, ids] : by_sub) {
        storage->sub_index_.emplace_back(SubscriptionId(sub),
                                         std::move(ids));
      }
      std::sort(storage->sub_index_.begin(), storage->sub_index_.end(),
                [](const auto& a, const auto& b) {
                  return a.first.value() < b.first.value();
                });

      storage->decoded_bytes_ =
          storage->vms_.size() * (sizeof(VmRecord) + sizeof(VmId)) +
          storage->subs_.size() * sizeof(SubscriptionInfo) +
          storage->sub_index_.size() *
              sizeof(std::pair<SubscriptionId, std::vector<VmId>>) +
          model_bytes.size();

      resident_bytes_.fetch_add(storage->decoded_bytes_,
                                std::memory_order_relaxed);
      auto& metrics = obs::MetricsRegistry::global();
      metrics.add(obs::Counter::kPopulationShardPageIns);
      metrics.set(obs::Gauge::kPopulationShardResidentBytes,
                  static_cast<double>(
                      resident_bytes_.load(std::memory_order_relaxed)));
      s.view_storage = std::move(storage);
      view = s.view_storage.get();
      s.view.store(view, std::memory_order_release);
    }
  }
  s.last_use.store(lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  return *view;
}

const PopulationShardView& PopulationShardStore::view(
    std::uint32_t shard) const {
  return acquire(shard);
}

const VmRecord& PopulationShardStore::record(VmId id) const {
  const std::uint32_t shard = vm_shards_.at(id.value());
  const PopulationShardView& v = acquire(shard);
  const VmRecord* rec = v.find(id);
  CL_CHECK_MSG(rec != nullptr,
               "population store: record " << id.value() << " missing from "
                                           << "its shard");
  obs::MetricsRegistry::global().add(
      obs::Counter::kPopulationShardRecordReads);
  return *rec;
}

const SubscriptionInfo& PopulationShardStore::subscription(
    SubscriptionId id) const {
  CL_CHECK_MSG(id.valid() && id.value() < sub_count_,
               "population store: unknown subscription " << id.value());
  const PopulationShardView& v = acquire(shard_of(id));
  const SubscriptionInfo* sub = v.find_subscription(id);
  CL_CHECK_MSG(sub != nullptr,
               "population store: subscription " << id.value()
                                                 << " missing from its shard");
  return *sub;
}

std::span<const VmId> PopulationShardStore::vms_of_subscription(
    SubscriptionId sub) const {
  return acquire(shard_of(sub)).vms_of(sub);
}

void PopulationShardStore::build_node_index() const {
  std::lock_guard<std::mutex> lock(node_index_mutex_);
  if (node_index_valid_.load(std::memory_order_relaxed)) return;
  node_index_.clear();
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    // Map the file just to read its node-index section; record/model
    // payloads are never touched, so only the index pages enter RSS.
    SnapshotMapping mapping(shards_[s]->path);
    Reader r(mapping.section(snapshot_sections::kPopulationNodeIndex));
    const std::uint64_t entries = r.u64();
    for (std::uint64_t e = 0; e < entries; ++e) {
      const NodeId node(r.u32());
      const std::uint32_t count = r.u32();
      auto& ids = node_index_[node];
      ids.reserve(ids.size() + count);
      for (std::uint32_t i = 0; i < count; ++i) ids.push_back(VmId(r.u32()));
    }
    CL_CHECK_MSG(r.done(), "population shard: trailing node-index bytes");
  }
  // Shards interleave ids arbitrarily; ascending order matches the
  // resident index (which walks VMs in id order) exactly.
  for (auto& [node, ids] : node_index_) {
    std::sort(ids.begin(), ids.end(),
              [](VmId a, VmId b) { return a.value() < b.value(); });
  }
  node_index_valid_.store(true, std::memory_order_release);
}

std::span<const VmId> PopulationShardStore::vms_on_node(NodeId node) const {
  CL_CHECK_MSG(sealed_, "population store: read before finalize_spill");
  if (!node_index_valid_.load(std::memory_order_acquire)) build_node_index();
  const auto it = node_index_.find(node);
  if (it == node_index_.end()) return {};
  return it->second;
}

void PopulationShardStore::drop_locked(Shard& s) const {
  if (s.view.load(std::memory_order_relaxed) == nullptr) return;
  const std::size_t bytes = s.view_storage->decoded_bytes();
  s.view.store(nullptr, std::memory_order_release);
  s.view_storage.reset();
  s.last_use.store(0, std::memory_order_relaxed);
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kPopulationShardEvictions);
  metrics.set(obs::Gauge::kPopulationShardResidentBytes,
              static_cast<double>(
                  resident_bytes_.load(std::memory_order_relaxed)));
}

void PopulationShardStore::evict_over_budget() const {
  std::lock_guard<std::mutex> lock(residency_mutex_);
  while (resident_bytes_.load(std::memory_order_relaxed) >
         options_.budget_bytes) {
    Shard* oldest = nullptr;
    std::uint64_t oldest_use = std::numeric_limits<std::uint64_t>::max();
    for (const auto& sp : shards_) {
      Shard& s = *sp;
      if (s.view.load(std::memory_order_relaxed) == nullptr) continue;
      const std::uint64_t use = s.last_use.load(std::memory_order_relaxed);
      if (use < oldest_use) {
        oldest_use = use;
        oldest = &s;
      }
    }
    if (oldest == nullptr) break;
    drop_locked(*oldest);
  }
}

void PopulationShardStore::evict_all() const {
  std::lock_guard<std::mutex> lock(residency_mutex_);
  for (const auto& s : shards_) drop_locked(*s);
}

}  // namespace cloudlens
