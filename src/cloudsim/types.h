// Shared enums for the cloud platform model.
#pragma once

#include <string_view>

namespace cloudlens {

/// Which platform a cluster (and the workloads on it) belongs to. The paper
/// studies two disjoint Azure platforms: the private cloud hosts first-party
/// (Microsoft) workloads only; the public cloud hosts first- and third-party
/// workloads.
enum class CloudType { kPrivate, kPublic };

inline std::string_view to_string(CloudType t) {
  return t == CloudType::kPrivate ? "private" : "public";
}

/// Who owns a workload. All private-cloud workloads are first-party; the
/// public cloud mixes first-party and third-party (customer) workloads.
enum class PartyType { kFirstParty, kThirdParty };

inline std::string_view to_string(PartyType t) {
  return t == PartyType::kFirstParty ? "first-party" : "third-party";
}

/// Service model tier (both clouds host all three per the paper).
enum class ServiceModel { kIaaS, kPaaS, kSaaS };

inline std::string_view to_string(ServiceModel m) {
  switch (m) {
    case ServiceModel::kIaaS: return "IaaS";
    case ServiceModel::kPaaS: return "PaaS";
    default: return "SaaS";
  }
}

}  // namespace cloudlens
