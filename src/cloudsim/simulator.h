// Event-driven deployment simulator.
//
// Replays a set of deployment requests (create time, lifetime, shape,
// owner) against the allocation service in time order, producing a
// TraceStore — the synthetic stand-in for the paper's one-week dataset.
//
// Node outages can be injected (the paper's introduction motivates workload
// knowledge with exactly this scenario: a node shows unhealthy signals and
// its VMs must be moved). A failed node terminates its VMs and accepts no
// further placements; terminated VMs can optionally be resubmitted after a
// recovery delay, modeling platform-driven redeployment.
#pragma once

#include <memory>
#include <vector>

#include "cloudsim/allocator.h"
#include "cloudsim/trace.h"

namespace cloudlens {

struct DeploymentRequest {
  VmRequest request;
  PartyType party = PartyType::kThirdParty;
  SimTime create = 0;
  SimTime remove = kNoEnd;  ///< kNoEnd = survives past the observed window
  std::shared_ptr<const UtilizationModel> utilization;
};

/// A node failure at a point in time.
struct NodeOutage {
  NodeId node;
  SimTime at = 0;
};

struct FailurePolicy {
  /// Resubmit VMs killed by an outage after `recovery_delay` (they keep
  /// their owner, shape, utilization model, and original end time). With
  /// recovery disabled, killed VMs are simply gone.
  bool resubmit = true;
  SimDuration recovery_delay = 10 * kMinute;
};

struct SimulationStats {
  std::uint64_t requested = 0;
  std::uint64_t placed = 0;
  std::uint64_t allocation_failures = 0;
  std::uint64_t vms_failed = 0;     ///< killed by node outages
  std::uint64_t vms_resubmitted = 0;  ///< recovery requests issued
};

/// Run the requests through the allocator in event order (releases are
/// processed before creates at equal timestamps; outages before creates).
/// Placed VMs are appended to `trace`; failed requests are only counted.
///
/// `trace` must already contain every subscription/service the requests
/// reference.
SimulationStats run_simulation(const Topology& topology, TraceStore& trace,
                               std::vector<DeploymentRequest> requests,
                               AllocatorOptions options = {},
                               std::vector<NodeOutage> outages = {},
                               FailurePolicy failure_policy = {});

}  // namespace cloudlens
