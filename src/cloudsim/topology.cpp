#include "cloudsim/topology.h"

namespace cloudlens {

RegionId Topology::add_region(std::string name, double tz_offset_hours) {
  const RegionId id(static_cast<RegionId::underlying>(regions_.size()));
  regions_.push_back(Region{id, std::move(name), tz_offset_hours, {}});
  return id;
}

DatacenterId Topology::add_datacenter(RegionId region) {
  CL_CHECK(region.valid() && region.value() < regions_.size());
  const DatacenterId id(
      static_cast<DatacenterId::underlying>(datacenters_.size()));
  datacenters_.push_back(Datacenter{id, region, {}});
  regions_[region.value()].datacenters.push_back(id);
  return id;
}

ClusterId Topology::add_cluster(DatacenterId dc, CloudType cloud, NodeSku sku) {
  CL_CHECK(dc.valid() && dc.value() < datacenters_.size());
  const ClusterId id(static_cast<ClusterId::underlying>(clusters_.size()));
  const RegionId region = datacenters_[dc.value()].region;
  clusters_.push_back(Cluster{id, dc, region, cloud, std::move(sku), {}, {}});
  datacenters_[dc.value()].clusters.push_back(id);
  return id;
}

RackId Topology::add_rack(ClusterId cluster) {
  CL_CHECK(cluster.valid() && cluster.value() < clusters_.size());
  const RackId id(static_cast<RackId::underlying>(racks_.size()));
  racks_.push_back(Rack{id, cluster, {}});
  clusters_[cluster.value()].racks.push_back(id);
  return id;
}

NodeId Topology::add_node(RackId rack) {
  CL_CHECK(rack.valid() && rack.value() < racks_.size());
  const NodeId id(static_cast<NodeId::underlying>(nodes_.size()));
  const Rack& r = racks_[rack.value()];
  Cluster& c = clusters_[r.cluster.value()];
  nodes_.push_back(Node{id, rack, c.id, c.region, c.cloud, c.node_sku.cores,
                        c.node_sku.memory_gb});
  racks_[rack.value()].nodes.push_back(id);
  c.nodes.push_back(id);
  return id;
}

std::vector<ClusterId> Topology::clusters_in(RegionId region,
                                             CloudType cloud) const {
  std::vector<ClusterId> out;
  for (const auto& c : clusters_) {
    if (c.region == region && c.cloud == cloud) out.push_back(c.id);
  }
  return out;
}

std::vector<ClusterId> Topology::clusters_of(CloudType cloud) const {
  std::vector<ClusterId> out;
  for (const auto& c : clusters_) {
    if (c.cloud == cloud) out.push_back(c.id);
  }
  return out;
}

double Topology::cluster_total_cores(ClusterId id) const {
  const Cluster& c = cluster(id);
  return static_cast<double>(c.nodes.size()) * c.node_sku.cores;
}

double Topology::region_total_cores(RegionId region, CloudType cloud) const {
  double total = 0;
  for (const auto& c : clusters_) {
    if (c.region == region && c.cloud == cloud)
      total += cluster_total_cores(c.id);
  }
  return total;
}

Topology build_topology(const TopologySpec& spec) {
  CL_CHECK(!spec.regions.empty());
  CL_CHECK(spec.datacenters_per_region > 0 && spec.clusters_per_cloud > 0);
  CL_CHECK(spec.racks_per_cluster > 0 && spec.nodes_per_rack > 0);

  Topology topo;
  for (const auto& [name, tz] : spec.regions) {
    const RegionId region = topo.add_region(name, tz);
    for (int d = 0; d < spec.datacenters_per_region; ++d) {
      const DatacenterId dc = topo.add_datacenter(region);
      for (CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
        for (int c = 0; c < spec.clusters_per_cloud; ++c) {
          const ClusterId cluster = topo.add_cluster(dc, cloud, spec.node_sku);
          for (int r = 0; r < spec.racks_per_cluster; ++r) {
            const RackId rack = topo.add_rack(cluster);
            for (int n = 0; n < spec.nodes_per_rack; ++n) topo.add_node(rack);
          }
        }
      }
    }
  }
  return topo;
}

TopologySpec default_topology_spec() {
  TopologySpec spec;
  // 10 US-flavoured regions over 9 distinct time-zone offsets, matching the
  // Sec. IV-B setting ("about 10 regions spreading over 9 time zones");
  // only us-central and us-south share a zone.
  spec.regions = {
      {"us-atlantic", -3}, {"us-east-2", -4},   {"us-east", -5},
      {"us-central", -6},  {"us-south", -6},    {"us-mountain", -7},
      {"us-west", -8},     {"us-northwest", -9}, {"us-pacific", -10},
      {"us-aleutian", -11},
  };
  return spec;
}

}  // namespace cloudlens
