// Trace serialization — the export half.
//
// Exports a simulated trace in an Azure-Public-Dataset-flavoured CSV schema
// (a vmtable plus long-format 5-minute utilization readings, and a node
// table for the topology). The import half lives in src/ingest: the
// `cloudlens` backend there reads this schema back (ingest/ingest.h
// declares the stream-level `import_trace`), and sibling backends read the
// actual Azure Public Dataset and Google cluster-trace formats.
#pragma once

#include <iosfwd>

#include "cloudsim/trace.h"

namespace cloudlens {

/// Step-function utilization backed by explicit samples (what an imported
/// trace carries instead of a generator model).
class SampledUtilization final : public UtilizationModel {
 public:
  SampledUtilization(TimeGrid grid, std::vector<double> samples);

  /// Sample of the interval containing t; clamped at the ends.
  double at(SimTime t) const override;
  /// Batched lookup: a single branch-light index walk instead of one
  /// virtual call + two range tests per tick. Bit-identical to at().
  void sample(const TimeGrid& grid, std::span<double> out) const override;
  std::string_view kind() const override { return "sampled"; }

  const TimeGrid& grid() const { return grid_; }
  std::span<const double> samples() const { return samples_; }

 private:
  TimeGrid grid_;
  std::vector<double> samples_;
};

struct TraceExportOptions {
  /// Sampling step for utilization rows.
  SimDuration utilization_step = kTelemetryInterval;
  /// Cap on VMs that get utilization rows (0 = all). The vmtable always
  /// contains every VM. When the cap bites, the export is *lossy*: VMs
  /// beyond it are dropped from utilization.csv entirely (whole node
  /// groups at a time, alternating clouds, in a deterministic shuffled
  /// order), so an import of the result carries no utilization model for
  /// them. Each capped export counts the dropped VMs on the
  /// `trace_io.utilization_vms_dropped` counter and prints a stderr note.
  std::size_t max_vms_with_utilization = 2000;
};

/// topology.csv — one row per node, ancestors denormalized:
/// node,rack,cluster,datacenter,region,region_name,tz_offset_hours,cloud,
/// node_cores,node_memory_gb
void export_topology(const Topology& topology, std::ostream& out);

/// vmtable.csv — one row per VM:
/// vm,subscription,service,cloud,party,region,cluster,rack,node,cores,
/// memory_gb,created,deleted,pattern
/// `deleted` is empty for VMs alive past the window; `pattern` is the
/// generator's ground-truth label when known (informational only).
void export_vm_table(const TraceStore& trace, std::ostream& out);

/// utilization.csv — long format: vm,timestamp,avg_cpu. Rows cover each
/// exported VM's alive ∩ telemetry window at `utilization_step`.
void export_utilization(const TraceStore& trace, std::ostream& out,
                        const TraceExportOptions& options = {});

}  // namespace cloudlens
