#include "cloudsim/shard.h"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "cloudsim/snapshot.h"
#include "cloudsim/telemetry_panel.h"
#include "cloudsim/trace.h"
#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace cloudlens {

namespace fs = std::filesystem;

std::uint32_t shard_of_subscription(SubscriptionId sub,
                                    std::uint32_t shard_count) {
  CL_CHECK(shard_count > 0);
  // SplitMix64 finalizer over the raw id: stable across platforms, runs,
  // and thread counts, and strong enough that sequentially assigned ids
  // spread evenly over any K.
  return static_cast<std::uint32_t>(
      SplitMix64(static_cast<std::uint64_t>(sub.value())).next() %
      shard_count);
}

namespace {

/// FNV-1a over the router inputs. Binds a spill file to the trace's VM
/// metadata (subscription, lifetime, cores), the grid, and K. Model
/// *internals* are not hashed — callers that may reuse a spill dir across
/// traces with identical metadata but different models must key the
/// directory by trace content (the pipeline names shard dirs by the trace
/// stage's content key, which does exactly that).
class Fnv64 {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001b3ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

std::uint64_t compute_router_digest(const TraceStore& trace,
                                    std::uint32_t shard_count) {
  Fnv64 h;
  h.u64(0x636c2e7368617264ULL);  // "cl.shard" — format salt
  h.u64(shard_count);
  const TimeGrid& grid = trace.telemetry_grid();
  h.i64(grid.start);
  h.i64(grid.step);
  h.u64(grid.count);
  h.u64(trace.vms().size());
  for (const VmRecord& vm : trace.vms()) {
    h.u64(vm.subscription.value());
    h.i64(vm.created);
    h.i64(vm.deleted);
    h.f64(vm.cores);
    h.u64(vm.utilization == nullptr ? 0 : 1);
  }
  return h.digest();
}

std::string shard_path(const std::string& dir, std::uint32_t index) {
  return (fs::path(dir) / ("panel-shard-" + std::to_string(index) + ".clsn"))
      .string();
}

}  // namespace

TelemetryShardStore::TelemetryShardStore(const TraceStore& trace,
                                         TelemetryShardingOptions options)
    : grid_(trace.telemetry_grid()), options_(std::move(options)) {
  CL_CHECK_MSG(!options_.spill_dir.empty(),
               "shard store: spill_dir is required");
  shard_count_ = std::max<std::uint32_t>(1, options_.shards);
  CL_CHECK(grid_.count > 0);
  const bool hourly_ok =
      grid_.step > 0 && kHour % grid_.step == 0 &&
      grid_.count >= static_cast<std::size_t>(kHour / grid_.step);
  if (hourly_ok) {
    const std::size_t factor = static_cast<std::size_t>(kHour / grid_.step);
    hourly_grid_ = TimeGrid{grid_.start, kHour, grid_.count / factor};
  }
  router_digest_ = compute_router_digest(trace, shard_count_);

  // Router: walk VMs in id order, assigning each to its subscription's
  // shard and the next dense row within that shard. Pure function of the
  // trace + K, so the layout matches any previously spilled files.
  const std::span<const VmRecord> vms = trace.vms();
  vm_slots_.resize(vms.size());
  shards_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::size_t v = 0; v < vms.size(); ++v) {
    const std::uint32_t s =
        shard_of_subscription(vms[v].subscription, shard_count_);
    vm_slots_[v] = {s, static_cast<std::uint32_t>(shards_[s]->vms.size())};
    shards_[s]->vms.push_back(vms[v].id);
  }

  fs::create_directories(options_.spill_dir);
  auto& metrics = obs::MetricsRegistry::global();

  // Fill + spill one shard at a time: peak build memory is the largest
  // single shard, not the panel.
  std::vector<double> rows;
  std::vector<double> hourly;
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    Shard& shard = *shards_[s];
    shard.path = shard_path(options_.spill_dir, s);

    // Warm start: an existing file with a matching header is the same
    // bytes this build would produce — reuse it.
    if (fs::exists(shard.path)) {
      try {
        SnapshotMapping mapping(shard.path);
        const PanelShardView view = open_panel_shard(mapping);
        if (view.header.shard_index == s &&
            view.header.shard_count == shard_count_ &&
            view.header.row_count == shard.vms.size() &&
            view.header.hourly_count == hourly_grid_.count &&
            view.header.router_digest == router_digest_ &&
            view.header.grid.start == grid_.start &&
            view.header.grid.step == grid_.step &&
            view.header.grid.count == grid_.count) {
          shard.file_bytes = mapping.bytes().size();
          spill_bytes_ += shard.file_bytes;
          continue;
        }
      } catch (const CheckError&) {
        // Malformed or stale file: fall through and rewrite it.
      }
    }

    const std::size_t n = shard.vms.size();
    rows.assign(n * grid_.count, 0.0);
    hourly.assign(n * hourly_grid_.count, 0.0);
    const std::size_t valid_ticks = trace.sample_valid_ticks();
    parallel_for(
        n,
        [&](std::size_t i) {
          const VmRecord& vm = trace.vm(shard.vms[i]);
          const std::span<double> row{rows.data() + i * grid_.count,
                                      grid_.count};
          TelemetryPanel::fill_row(vm, grid_, row, valid_ticks);
          if (hourly_grid_.count > 0) {
            TelemetryPanel::hourly_from_row(
                row, grid_,
                {hourly.data() + i * hourly_grid_.count, hourly_grid_.count});
          }
        },
        options_.parallel);

    PanelShardHeader header;
    header.grid = grid_;
    header.shard_index = s;
    header.shard_count = shard_count_;
    header.row_count = n;
    header.hourly_count = hourly_grid_.count;
    header.router_digest = router_digest_;
    const std::string tmp = shard.path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      CL_CHECK_MSG(out.good(), "shard store: cannot write " << tmp);
      save_panel_shard_snapshot(header, rows, hourly, out);
    }
    fs::rename(tmp, shard.path);
    shard.file_bytes = static_cast<std::size_t>(fs::file_size(shard.path));
    spill_bytes_ += shard.file_bytes;
    metrics.add(obs::Counter::kPanelShardSpills);
  }
  metrics.set(obs::Gauge::kPanelShardCount,
              static_cast<double>(shard_count_));
  metrics.set(obs::Gauge::kPanelShardResidentBytes, 0.0);
}

TelemetryShardStore::~TelemetryShardStore() {
  evict_all();
  if (!options_.keep_files) {
    for (const auto& s : shards_) {
      if (!s->path.empty()) {
        std::error_code ec;
        fs::remove(s->path, ec);  // best effort
      }
    }
  }
}

std::uint32_t TelemetryShardStore::shard_of(SubscriptionId sub) const {
  return shard_of_subscription(sub, shard_count_);
}

std::uint32_t TelemetryShardStore::shard_of_vm(VmId id) const {
  return vm_slots_.at(id.value()).first;
}

std::span<const VmId> TelemetryShardStore::shard_vms(
    std::uint32_t shard) const {
  return shards_.at(shard)->vms;
}

const PanelShardView& TelemetryShardStore::acquire(std::uint32_t shard) const {
  Shard& s = *shards_[shard];
  const PanelShardView* view = s.view.load(std::memory_order_acquire);
  if (view == nullptr) {
    std::lock_guard<std::mutex> lock(residency_mutex_);
    view = s.view.load(std::memory_order_relaxed);
    if (view == nullptr) {
      s.mapping = std::make_unique<SnapshotMapping>(s.path);
      s.view_storage =
          std::make_unique<PanelShardView>(open_panel_shard(*s.mapping));
      const PanelShardHeader& h = s.view_storage->header;
      CL_CHECK_MSG(h.shard_index == shard &&
                       h.shard_count == shard_count_ &&
                       h.row_count == s.vms.size() &&
                       h.router_digest == router_digest_,
                   "shard store: spill file " << s.path
                                              << " does not match router");
      resident_bytes_.fetch_add(s.file_bytes, std::memory_order_relaxed);
      auto& metrics = obs::MetricsRegistry::global();
      metrics.add(obs::Counter::kPanelShardPageIns);
      metrics.set(obs::Gauge::kPanelShardResidentBytes,
                  static_cast<double>(
                      resident_bytes_.load(std::memory_order_relaxed)));
      view = s.view_storage.get();
      s.view.store(view, std::memory_order_release);
    }
  }
  s.last_use.store(lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  return *view;
}

std::span<const double> TelemetryShardStore::row(VmId id) const {
  const auto [shard, local] = vm_slots_.at(id.value());
  const PanelShardView& view = acquire(shard);
  obs::MetricsRegistry::global().add(obs::Counter::kPanelShardRowReads);
  return view.rows.subspan(static_cast<std::size_t>(local) * grid_.count,
                           grid_.count);
}

std::span<const double> TelemetryShardStore::hourly_row(VmId id) const {
  if (hourly_grid_.count == 0) return {};
  const auto [shard, local] = vm_slots_.at(id.value());
  const PanelShardView& view = acquire(shard);
  obs::MetricsRegistry::global().add(obs::Counter::kPanelShardRowReads);
  return view.hourly.subspan(
      static_cast<std::size_t>(local) * hourly_grid_.count,
      hourly_grid_.count);
}

void TelemetryShardStore::unmap_locked(Shard& s) const {
  if (s.view.load(std::memory_order_relaxed) == nullptr) return;
  s.view.store(nullptr, std::memory_order_release);
  s.view_storage.reset();
  s.mapping.reset();  // munmap: the pages leave RSS here
  s.last_use.store(0, std::memory_order_relaxed);
  resident_bytes_.fetch_sub(s.file_bytes, std::memory_order_relaxed);
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kPanelShardEvictions);
  metrics.set(obs::Gauge::kPanelShardResidentBytes,
              static_cast<double>(
                  resident_bytes_.load(std::memory_order_relaxed)));
}

void TelemetryShardStore::evict_over_budget() const {
  std::lock_guard<std::mutex> lock(residency_mutex_);
  while (resident_bytes_.load(std::memory_order_relaxed) >
         options_.budget_bytes) {
    Shard* oldest = nullptr;
    std::uint64_t oldest_use = std::numeric_limits<std::uint64_t>::max();
    for (const auto& sp : shards_) {
      Shard& s = *sp;
      if (s.view.load(std::memory_order_relaxed) == nullptr) continue;
      const std::uint64_t use = s.last_use.load(std::memory_order_relaxed);
      if (use < oldest_use) {
        oldest_use = use;
        oldest = &s;
      }
    }
    if (oldest == nullptr) break;
    unmap_locked(*oldest);
  }
}

void TelemetryShardStore::evict_all() const {
  std::lock_guard<std::mutex> lock(residency_mutex_);
  for (const auto& s : shards_) unmap_locked(*s);
}

}  // namespace cloudlens
