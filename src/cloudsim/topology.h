// Physical topology: regions → datacenters → clusters → racks → nodes.
//
// Matches the paper's terminology (Sec. II): clusters host either private or
// public cloud workloads (never both), are homogeneous in node SKU, live in
// datacenters placed in geographic regions, and racks serve as fault domains.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "cloudsim/sku.h"
#include "cloudsim/types.h"

namespace cloudlens {

struct Region {
  RegionId id;
  std::string name;
  /// Offset of local time from the simulation clock, in hours. Used to model
  /// time-zone-shifted user activity (Fig. 7(c)).
  double tz_offset_hours = 0;
  std::vector<DatacenterId> datacenters;
};

struct Datacenter {
  DatacenterId id;
  RegionId region;
  std::vector<ClusterId> clusters;
};

struct Cluster {
  ClusterId id;
  DatacenterId datacenter;
  RegionId region;
  CloudType cloud = CloudType::kPublic;
  NodeSku node_sku;
  std::vector<RackId> racks;
  std::vector<NodeId> nodes;
};

struct Rack {
  RackId id;
  ClusterId cluster;
  std::vector<NodeId> nodes;
};

struct Node {
  NodeId id;
  RackId rack;
  ClusterId cluster;
  RegionId region;
  CloudType cloud = CloudType::kPublic;
  double total_cores = 0;
  double total_memory_gb = 0;
};

/// Immutable physical layout (capacity bookkeeping lives in the Allocator).
class Topology {
 public:
  RegionId add_region(std::string name, double tz_offset_hours);
  DatacenterId add_datacenter(RegionId region);
  ClusterId add_cluster(DatacenterId dc, CloudType cloud, NodeSku sku);
  RackId add_rack(ClusterId cluster);
  NodeId add_node(RackId rack);

  std::span<const Region> regions() const { return regions_; }
  std::span<const Datacenter> datacenters() const { return datacenters_; }
  std::span<const Cluster> clusters() const { return clusters_; }
  std::span<const Rack> racks() const { return racks_; }
  std::span<const Node> nodes() const { return nodes_; }

  const Region& region(RegionId id) const { return regions_.at(id.value()); }
  const Datacenter& datacenter(DatacenterId id) const {
    return datacenters_.at(id.value());
  }
  const Cluster& cluster(ClusterId id) const {
    return clusters_.at(id.value());
  }
  const Rack& rack(RackId id) const { return racks_.at(id.value()); }
  const Node& node(NodeId id) const { return nodes_.at(id.value()); }

  /// All clusters of one cloud type in one region.
  std::vector<ClusterId> clusters_in(RegionId region, CloudType cloud) const;
  /// All clusters of one cloud type, any region.
  std::vector<ClusterId> clusters_of(CloudType cloud) const;

  double cluster_total_cores(ClusterId id) const;
  double region_total_cores(RegionId region, CloudType cloud) const;

 private:
  std::vector<Region> regions_;
  std::vector<Datacenter> datacenters_;
  std::vector<Cluster> clusters_;
  std::vector<Rack> racks_;
  std::vector<Node> nodes_;
};

/// Declarative shape of a symmetric topology; build_topology() expands it.
struct TopologySpec {
  /// Region names with local-time offsets (hours relative to sim clock).
  std::vector<std::pair<std::string, double>> regions;
  int datacenters_per_region = 1;
  /// Per datacenter, per cloud type.
  int clusters_per_cloud = 2;
  int racks_per_cluster = 10;
  int nodes_per_rack = 16;
  NodeSku node_sku;
};

Topology build_topology(const TopologySpec& spec);

/// A 10-region US-flavoured layout (the paper's Fig. 7(b) analysis uses
/// ~10 US regions spanning 9 time zones).
TopologySpec default_topology_spec();

}  // namespace cloudlens
