// Allocation service: places VM requests onto nodes.
//
// A simplified Protean-style rule chain (the paper's ref [10]): filter nodes
// with sufficient capacity in the requested region + cloud, prefer racks
// (fault domains) hosting the fewest VMs of the same owner (service or
// subscription), then best-fit on cores. Tracks allocation failures, which
// the paper's Insight 1 links to large private-cloud deployment sizes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "cloudsim/topology.h"
#include "cloudsim/types.h"

namespace cloudlens {

struct VmRequest {
  SubscriptionId subscription;
  ServiceId service;  ///< invalid for third-party workloads
  CloudType cloud = CloudType::kPublic;
  RegionId region;
  double cores = 1;
  double memory_gb = 4;
};

struct Placement {
  ClusterId cluster;
  RackId rack;
  NodeId node;
};

struct AllocatorOptions {
  /// Spread VMs of the same owner across fault domains (racks).
  bool spread_fault_domains = true;
};

class Allocator {
 public:
  explicit Allocator(const Topology& topology, AllocatorOptions opts = {});

  /// Try to place `vm`; returns nullopt (and counts a failure) when no node
  /// in the requested region + cloud has capacity.
  std::optional<Placement> allocate(const VmRequest& request, VmId vm);

  /// Free the resources held by `vm` (no-op if unknown).
  void release(VmId vm);

  /// Mark a node as (un)available for future placements. Existing leases
  /// on the node are unaffected (release them separately). Used by failure
  /// injection: a failed node takes no new VMs.
  void set_node_available(NodeId id, bool available);
  bool node_available(NodeId id) const;

  double node_used_cores(NodeId id) const;
  double node_used_memory_gb(NodeId id) const;
  double node_free_cores(NodeId id) const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    double failure_rate() const {
      return requests ? double(failures) / double(requests) : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Owner key for fault-domain spreading: the service when the VM belongs
  /// to one, otherwise the subscription.
  static std::uint64_t owner_key(const VmRequest& request);

  struct NodeUse {
    double cores = 0;
    double memory_gb = 0;
  };
  struct Lease {
    NodeId node;
    RackId rack;
    double cores = 0;
    double memory_gb = 0;
    std::uint64_t owner = 0;
  };

  const Topology& topo_;
  AllocatorOptions opts_;
  std::vector<NodeUse> use_;          // indexed by NodeId value
  std::vector<bool> node_available_;  // indexed by NodeId value
  // rack -> owner -> live VM count (for spreading).
  std::unordered_map<std::uint64_t, int> rack_owner_count_;
  std::unordered_map<VmId, Lease> leases_;
  Stats stats_;

  static std::uint64_t rack_owner_slot(RackId rack, std::uint64_t owner) {
    return (static_cast<std::uint64_t>(rack.value()) << 33) ^ owner;
  }
};

}  // namespace cloudlens
