#include "cloudsim/trace_io.h"

#include <algorithm>
#include <array>
#include <iostream>
#include <ostream>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace cloudlens {
namespace {

std::string pattern_label(const UtilizationModel* model) {
  return model != nullptr ? std::string(model->kind()) : "unknown";
}

}  // namespace

SampledUtilization::SampledUtilization(TimeGrid grid,
                                       std::vector<double> samples)
    : grid_(grid), samples_(std::move(samples)) {
  CL_CHECK_MSG(samples_.size() == grid_.count,
               "sample count must match the grid");
}

double SampledUtilization::at(SimTime t) const {
  if (t < grid_.start) return samples_.front();
  if (t >= grid_.end()) return samples_.back();
  return samples_[grid_.index_of(t)];
}

void SampledUtilization::sample(const TimeGrid& grid,
                                std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  // Split the request into the three monotone segments (before / inside /
  // after the backing window) once, instead of re-testing every tick.
  std::size_t i = 0;
  while (i < grid.count && grid.at(i) < grid_.start) out[i++] = samples_.front();
  const SimTime back_end = grid_.end();
  while (i < grid.count && grid.at(i) < back_end) {
    out[i] = samples_[grid_.index_of(grid.at(i))];
    ++i;
  }
  while (i < grid.count) out[i++] = samples_.back();
}

void export_topology(const Topology& topology, std::ostream& out) {
  out << "node,rack,cluster,datacenter,region,region_name,tz_offset_hours,"
         "cloud,node_cores,node_memory_gb\n";
  for (const auto& node : topology.nodes()) {
    const Cluster& cluster = topology.cluster(node.cluster);
    const Region& region = topology.region(node.region);
    out << node.id.value() << ',' << node.rack.value() << ','
        << cluster.id.value() << ',' << cluster.datacenter.value() << ','
        << region.id.value() << ',' << region.name << ','
        << region.tz_offset_hours << ',' << to_string(node.cloud) << ','
        << node.total_cores << ',' << node.total_memory_gb << '\n';
  }
}

void export_vm_table(const TraceStore& trace, std::ostream& out) {
  out << "vm,subscription,service,cloud,party,region,cluster,rack,node,"
         "cores,memory_gb,created,deleted,pattern\n";
  for (const auto& vm : trace.vms()) {
    out << vm.id.value() << ',' << vm.subscription.value() << ',';
    if (vm.service.valid()) out << vm.service.value();
    out << ',' << to_string(vm.cloud) << ',' << to_string(vm.party) << ','
        << vm.region.value() << ',' << vm.cluster.value() << ','
        << vm.rack.value() << ',' << vm.node.value() << ',' << vm.cores << ','
        << vm.memory_gb << ',' << vm.created << ',';
    if (vm.ended()) out << vm.deleted;
    out << ',' << pattern_label(vm.utilization.get()) << '\n';
  }
}

void export_utilization(const TraceStore& trace, std::ostream& out,
                        const TraceExportOptions& options) {
  CL_CHECK(options.utilization_step > 0);
  out << "vm,timestamp,avg_cpu\n";
  const TimeGrid& grid = trace.telemetry_grid();

  // Sample whole *node* populations, alternating clouds, so the export
  // preserves both the cross-cloud balance and the co-location structure
  // the node-correlation analysis (Fig. 7(a)) depends on.
  std::array<std::vector<std::pair<std::uint64_t, std::vector<VmId>>>, 2>
      node_groups;
  for (const auto& node : trace.topology().nodes()) {
    std::vector<VmId> group;
    for (const VmId id : trace.vms_on_node(node.id)) {
      if (trace.vm(id).utilization) group.push_back(id);
    }
    if (group.empty()) continue;
    // Deterministic shuffle key: without it the cap would exhaust on the
    // first region's racks and the sample would miss most regions and
    // services.
    const std::uint64_t key = SplitMix64(node.id.value() + 1).next();
    node_groups[node.cloud == CloudType::kPrivate ? 0 : 1].emplace_back(
        key, std::move(group));
  }
  for (auto& groups : node_groups) {
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  std::size_t eligible = 0;
  for (const auto& groups : node_groups) {
    for (const auto& [key, group] : groups) eligible += group.size();
  }

  std::vector<VmId> selected;
  const std::size_t cap = options.max_vms_with_utilization;
  std::array<std::size_t, 2> cursor{0, 0};
  bool progressed = true;
  while (progressed && (cap == 0 || selected.size() < cap)) {
    progressed = false;
    for (int cloud = 0; cloud < 2; ++cloud) {
      if (cursor[cloud] >= node_groups[cloud].size()) continue;
      if (cap != 0 && selected.size() >= cap) break;
      const auto& group = node_groups[cloud][cursor[cloud]++].second;
      selected.insert(selected.end(), group.begin(), group.end());
      progressed = true;
    }
  }

  // The cap drops VMs from the export; that loss used to be silent, which
  // made downstream "why does the imported trace disagree?" hunts long.
  // Surface it: a counter for tooling, a stderr note for humans.
  if (selected.size() < eligible) {
    const std::size_t dropped = eligible - selected.size();
    obs::MetricsRegistry::global().add(
        obs::Counter::kTraceIoUtilizationVmsDropped, dropped);
    std::cerr << "note: utilization export capped at " << selected.size()
              << " of " << eligible
              << " VMs with utilization models (" << dropped
              << " dropped); raise --util-vms / "
                 "TraceExportOptions.max_vms_with_utilization for full "
                 "coverage\n";
  }

  for (const VmId id : selected) {
    const auto& vm = trace.vm(id);
    for (SimTime t = grid.start; t < grid.end();
         t += options.utilization_step) {
      if (!vm.alive_at(t)) continue;
      out << vm.id.value() << ',' << t << ',' << vm.utilization->at(t)
          << '\n';
    }
  }
}

}  // namespace cloudlens
