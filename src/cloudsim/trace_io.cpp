#include "cloudsim/trace_io.h"

#include <algorithm>
#include <array>
#include <iostream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace cloudlens {
namespace {

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) out.push_back(field);
  // A trailing comma means an empty last field.
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

std::string pattern_label(const UtilizationModel* model) {
  return model != nullptr ? std::string(model->kind()) : "unknown";
}

}  // namespace

SampledUtilization::SampledUtilization(TimeGrid grid,
                                       std::vector<double> samples)
    : grid_(grid), samples_(std::move(samples)) {
  CL_CHECK_MSG(samples_.size() == grid_.count,
               "sample count must match the grid");
}

double SampledUtilization::at(SimTime t) const {
  if (t < grid_.start) return samples_.front();
  if (t >= grid_.end()) return samples_.back();
  return samples_[grid_.index_of(t)];
}

void SampledUtilization::sample(const TimeGrid& grid,
                                std::span<double> out) const {
  CL_CHECK(out.size() == grid.count);
  // Split the request into the three monotone segments (before / inside /
  // after the backing window) once, instead of re-testing every tick.
  std::size_t i = 0;
  while (i < grid.count && grid.at(i) < grid_.start) out[i++] = samples_.front();
  const SimTime back_end = grid_.end();
  while (i < grid.count && grid.at(i) < back_end) {
    out[i] = samples_[grid_.index_of(grid.at(i))];
    ++i;
  }
  while (i < grid.count) out[i++] = samples_.back();
}

void export_topology(const Topology& topology, std::ostream& out) {
  out << "node,rack,cluster,datacenter,region,region_name,tz_offset_hours,"
         "cloud,node_cores,node_memory_gb\n";
  for (const auto& node : topology.nodes()) {
    const Cluster& cluster = topology.cluster(node.cluster);
    const Region& region = topology.region(node.region);
    out << node.id.value() << ',' << node.rack.value() << ','
        << cluster.id.value() << ',' << cluster.datacenter.value() << ','
        << region.id.value() << ',' << region.name << ','
        << region.tz_offset_hours << ',' << to_string(node.cloud) << ','
        << node.total_cores << ',' << node.total_memory_gb << '\n';
  }
}

void export_vm_table(const TraceStore& trace, std::ostream& out) {
  out << "vm,subscription,service,cloud,party,region,cluster,rack,node,"
         "cores,memory_gb,created,deleted,pattern\n";
  for (const auto& vm : trace.vms()) {
    out << vm.id.value() << ',' << vm.subscription.value() << ',';
    if (vm.service.valid()) out << vm.service.value();
    out << ',' << to_string(vm.cloud) << ',' << to_string(vm.party) << ','
        << vm.region.value() << ',' << vm.cluster.value() << ','
        << vm.rack.value() << ',' << vm.node.value() << ',' << vm.cores << ','
        << vm.memory_gb << ',' << vm.created << ',';
    if (vm.ended()) out << vm.deleted;
    out << ',' << pattern_label(vm.utilization.get()) << '\n';
  }
}

void export_utilization(const TraceStore& trace, std::ostream& out,
                        const TraceExportOptions& options) {
  CL_CHECK(options.utilization_step > 0);
  out << "vm,timestamp,avg_cpu\n";
  const TimeGrid& grid = trace.telemetry_grid();

  // Sample whole *node* populations, alternating clouds, so the export
  // preserves both the cross-cloud balance and the co-location structure
  // the node-correlation analysis (Fig. 7(a)) depends on.
  std::array<std::vector<std::pair<std::uint64_t, std::vector<VmId>>>, 2>
      node_groups;
  for (const auto& node : trace.topology().nodes()) {
    std::vector<VmId> group;
    for (const VmId id : trace.vms_on_node(node.id)) {
      if (trace.vm(id).utilization) group.push_back(id);
    }
    if (group.empty()) continue;
    // Deterministic shuffle key: without it the cap would exhaust on the
    // first region's racks and the sample would miss most regions and
    // services.
    const std::uint64_t key = SplitMix64(node.id.value() + 1).next();
    node_groups[node.cloud == CloudType::kPrivate ? 0 : 1].emplace_back(
        key, std::move(group));
  }
  for (auto& groups : node_groups) {
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  std::size_t eligible = 0;
  for (const auto& groups : node_groups) {
    for (const auto& [key, group] : groups) eligible += group.size();
  }

  std::vector<VmId> selected;
  const std::size_t cap = options.max_vms_with_utilization;
  std::array<std::size_t, 2> cursor{0, 0};
  bool progressed = true;
  while (progressed && (cap == 0 || selected.size() < cap)) {
    progressed = false;
    for (int cloud = 0; cloud < 2; ++cloud) {
      if (cursor[cloud] >= node_groups[cloud].size()) continue;
      if (cap != 0 && selected.size() >= cap) break;
      const auto& group = node_groups[cloud][cursor[cloud]++].second;
      selected.insert(selected.end(), group.begin(), group.end());
      progressed = true;
    }
  }

  // The cap drops VMs from the export; that loss used to be silent, which
  // made downstream "why does the imported trace disagree?" hunts long.
  // Surface it: a counter for tooling, a stderr note for humans.
  if (selected.size() < eligible) {
    const std::size_t dropped = eligible - selected.size();
    obs::MetricsRegistry::global().add(
        obs::Counter::kTraceIoUtilizationVmsDropped, dropped);
    std::cerr << "note: utilization export capped at " << selected.size()
              << " of " << eligible
              << " VMs with utilization models (" << dropped
              << " dropped); raise --util-vms / "
                 "TraceExportOptions.max_vms_with_utilization for full "
                 "coverage\n";
  }

  for (const VmId id : selected) {
    const auto& vm = trace.vm(id);
    for (SimTime t = grid.start; t < grid.end();
         t += options.utilization_step) {
      if (!vm.alive_at(t)) continue;
      out << vm.id.value() << ',' << t << ',' << vm.utilization->at(t)
          << '\n';
    }
  }
}

ImportedTrace import_trace(std::istream& topology_csv, std::istream& vm_csv,
                           std::istream* utilization_csv, TimeGrid grid) {
  ImportedTrace result;
  result.topology = std::make_unique<Topology>();
  Topology& topo = *result.topology;

  // --- topology ----------------------------------------------------------
  std::string line;
  CL_CHECK_MSG(std::getline(topology_csv, line), "empty topology CSV");
  CL_CHECK_MSG(line.rfind("node,", 0) == 0, "unexpected topology header");
  while (std::getline(topology_csv, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    CL_CHECK_MSG(f.size() == 10, "malformed topology row: " << line);
    const auto region_id = std::stoul(f[4]);
    const auto dc_id = std::stoul(f[3]);
    const auto cluster_id = std::stoul(f[2]);
    const auto rack_id = std::stoul(f[1]);
    const auto node_id = std::stoul(f[0]);
    const CloudType cloud =
        f[7] == "private" ? CloudType::kPrivate : CloudType::kPublic;

    // Entities must appear in creation (id) order; create on first sight.
    if (region_id == topo.regions().size()) {
      topo.add_region(f[5], std::stod(f[6]));
    }
    CL_CHECK_MSG(region_id < topo.regions().size(),
                 "region ids out of order in topology CSV");
    if (dc_id == topo.datacenters().size()) {
      topo.add_datacenter(RegionId(static_cast<RegionId::underlying>(region_id)));
    }
    CL_CHECK(dc_id < topo.datacenters().size());
    if (cluster_id == topo.clusters().size()) {
      NodeSku sku;
      sku.cores = std::stod(f[8]);
      sku.memory_gb = std::stod(f[9]);
      topo.add_cluster(
          DatacenterId(static_cast<DatacenterId::underlying>(dc_id)), cloud,
          sku);
    }
    CL_CHECK(cluster_id < topo.clusters().size());
    if (rack_id == topo.racks().size()) {
      topo.add_rack(ClusterId(static_cast<ClusterId::underlying>(cluster_id)));
    }
    CL_CHECK(rack_id < topo.racks().size());
    const NodeId created =
        topo.add_node(RackId(static_cast<RackId::underlying>(rack_id)));
    CL_CHECK_MSG(created.value() == node_id,
                 "node ids must be dense and in order");
  }

  result.trace = std::make_unique<TraceStore>(result.topology.get(), grid);
  TraceStore& trace = *result.trace;

  // --- vm table: first pass gathers the ownership universe ---------------
  CL_CHECK_MSG(std::getline(vm_csv, line), "empty vmtable CSV");
  CL_CHECK_MSG(line.rfind("vm,", 0) == 0, "unexpected vmtable header");
  struct VmRow {
    std::vector<std::string> fields;
  };
  std::vector<VmRow> rows;
  std::size_t max_sub = 0;
  std::size_t max_svc = 0;
  bool any_svc = false;
  while (std::getline(vm_csv, line)) {
    if (line.empty()) continue;
    VmRow row{split(line)};
    CL_CHECK_MSG(row.fields.size() == 14, "malformed vmtable row: " << line);
    max_sub = std::max(max_sub, std::stoul(row.fields[1]) + 1);
    if (!row.fields[2].empty()) {
      any_svc = true;
      max_svc = std::max(max_svc, std::stoul(row.fields[2]) + 1);
    }
    rows.push_back(std::move(row));
  }

  // Dense id spaces: create placeholder services/subscriptions, then refine
  // from the VM rows that reference them.
  std::vector<ServiceInfo> services(any_svc ? max_svc : 0);
  std::vector<SubscriptionInfo> subscriptions(max_sub);
  for (const auto& row : rows) {
    const auto& f = row.fields;
    const auto sub = std::stoul(f[1]);
    const CloudType cloud =
        f[3] == "private" ? CloudType::kPrivate : CloudType::kPublic;
    const PartyType party = f[4] == "first-party" ? PartyType::kFirstParty
                                                  : PartyType::kThirdParty;
    subscriptions[sub].cloud = cloud;
    subscriptions[sub].party = party;
    if (!f[2].empty()) {
      const auto svc = std::stoul(f[2]);
      subscriptions[sub].service =
          ServiceId(static_cast<ServiceId::underlying>(svc));
      services[svc].cloud = cloud;
      if (services[svc].name.empty())
        services[svc].name = "svc-" + f[2];
    }
  }
  for (auto& svc : services) {
    if (svc.name.empty()) svc.name = "svc-unreferenced";
    trace.add_service(svc);
  }
  for (const auto& sub : subscriptions) trace.add_subscription(sub);

  // --- utilization (optional) ---------------------------------------------
  std::unordered_map<std::uint32_t, std::shared_ptr<SampledUtilization>>
      samples;
  if (utilization_csv != nullptr) {
    CL_CHECK_MSG(std::getline(*utilization_csv, line),
                 "empty utilization CSV");
    CL_CHECK_MSG(line.rfind("vm,", 0) == 0, "unexpected utilization header");
    std::unordered_map<std::uint32_t, std::vector<double>> buffers;
    while (std::getline(*utilization_csv, line)) {
      if (line.empty()) continue;
      const auto f = split(line);
      CL_CHECK_MSG(f.size() == 3, "malformed utilization row: " << line);
      const auto vm = static_cast<std::uint32_t>(std::stoul(f[0]));
      const SimTime t = std::stoll(f[1]);
      if (!grid.contains(t)) continue;
      auto& buf = buffers[vm];
      if (buf.empty()) buf.assign(grid.count, 0.0);
      buf[grid.index_of(t)] = std::stod(f[2]);
    }
    for (auto& [vm, buf] : buffers) {
      samples.emplace(
          vm, std::make_shared<SampledUtilization>(grid, std::move(buf)));
    }
  }

  // --- materialize VM records (must be in id order) -----------------------
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& f = rows[i].fields;
    const auto vm_id = std::stoul(f[0]);
    CL_CHECK_MSG(vm_id == i, "vm ids must be dense and in order");
    VmRecord rec;
    rec.subscription = SubscriptionId(
        static_cast<SubscriptionId::underlying>(std::stoul(f[1])));
    if (!f[2].empty())
      rec.service =
          ServiceId(static_cast<ServiceId::underlying>(std::stoul(f[2])));
    rec.cloud = f[3] == "private" ? CloudType::kPrivate : CloudType::kPublic;
    rec.party = f[4] == "first-party" ? PartyType::kFirstParty
                                      : PartyType::kThirdParty;
    rec.region =
        RegionId(static_cast<RegionId::underlying>(std::stoul(f[5])));
    rec.cluster =
        ClusterId(static_cast<ClusterId::underlying>(std::stoul(f[6])));
    rec.rack = RackId(static_cast<RackId::underlying>(std::stoul(f[7])));
    rec.node = NodeId(static_cast<NodeId::underlying>(std::stoul(f[8])));
    rec.cores = std::stod(f[9]);
    rec.memory_gb = std::stod(f[10]);
    rec.created = std::stoll(f[11]);
    rec.deleted = f[12].empty() ? kNoEnd : std::stoll(f[12]);
    const auto it = samples.find(static_cast<std::uint32_t>(vm_id));
    if (it != samples.end()) rec.utilization = it->second;
    trace.add_vm(std::move(rec));
  }
  return result;
}

}  // namespace cloudlens
