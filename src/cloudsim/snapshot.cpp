#include "cloudsim/snapshot.h"

#include <bit>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "cloudsim/trace_io.h"
#include "common/check.h"

namespace cloudlens {

static_assert(std::endian::native == std::endian::little,
              "snapshot encoding assumes a little-endian host");

namespace snapshot_codec {

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

namespace {
template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}
}  // namespace

void append_u32(std::string& out, std::uint32_t v) { append_raw(out, v); }
void append_u64(std::string& out, std::uint64_t v) { append_raw(out, v); }
void append_i64(std::string& out, std::int64_t v) { append_raw(out, v); }
void append_f64(std::string& out, double v) {
  append_raw(out, std::bit_cast<std::uint64_t>(v));
}

void append_string(std::string& out, std::string_view s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::string_view Reader::raw(std::size_t n) {
  CL_CHECK_MSG(pos_ <= bytes_.size() && n <= bytes_.size() - pos_,
               "truncated snapshot payload");
  const std::string_view v = bytes_.substr(pos_, n);
  pos_ += n;
  return v;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(raw(1)[0]);
}

namespace {
template <typename T>
T read_raw(Reader& r) {
  T v;
  const std::string_view bytes = r.raw(sizeof(T));
  std::memcpy(&v, bytes.data(), sizeof(T));
  return v;
}
}  // namespace

std::uint32_t Reader::u32() { return read_raw<std::uint32_t>(*this); }
std::uint64_t Reader::u64() { return read_raw<std::uint64_t>(*this); }
std::int64_t Reader::i64() { return read_raw<std::int64_t>(*this); }
double Reader::f64() {
  return std::bit_cast<double>(read_raw<std::uint64_t>(*this));
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  return std::string(raw(n));
}

}  // namespace snapshot_codec

namespace {

using snapshot_codec::append_f64;
using snapshot_codec::append_i64;
using snapshot_codec::append_string;
using snapshot_codec::append_u32;
using snapshot_codec::append_u64;
using snapshot_codec::append_u8;
using snapshot_codec::Reader;

// Section ids. Values are part of the on-disk format; never renumber.
enum Section : std::uint32_t {
  kGrid = 1,
  kTopology = 2,
  kServices = 3,
  kSubscriptions = 4,
  kModels = 5,
  kVms = 6,
  kPanel = 7,
};

// Native model tags (< kFirstCustomModelTag).
constexpr std::uint8_t kModelConstant = 1;
constexpr std::uint8_t kModelSampled = 2;

constexpr std::uint32_t kNoModel = 0xFFFFFFFFu;

void append_grid(std::string& out, const TimeGrid& grid) {
  append_i64(out, grid.start);
  append_i64(out, grid.step);
  append_u64(out, grid.count);
}

TimeGrid read_grid(Reader& r) {
  TimeGrid grid;
  grid.start = r.i64();
  grid.step = r.i64();
  grid.count = static_cast<std::size_t>(r.u64());
  return grid;
}

std::string encode_grid_section(const TraceStore& trace) {
  std::string out;
  append_grid(out, trace.telemetry_grid());
  return out;
}

std::string encode_topology(const Topology& topo) {
  std::string out;
  append_u64(out, topo.regions().size());
  for (const Region& r : topo.regions()) {
    append_string(out, r.name);
    append_f64(out, r.tz_offset_hours);
  }
  append_u64(out, topo.datacenters().size());
  for (const Datacenter& dc : topo.datacenters()) {
    append_u32(out, dc.region.value());
  }
  append_u64(out, topo.clusters().size());
  for (const Cluster& c : topo.clusters()) {
    append_u32(out, c.datacenter.value());
    append_u8(out, c.cloud == CloudType::kPrivate ? 0 : 1);
    append_string(out, c.node_sku.name);
    append_f64(out, c.node_sku.cores);
    append_f64(out, c.node_sku.memory_gb);
  }
  append_u64(out, topo.racks().size());
  for (const Rack& r : topo.racks()) append_u32(out, r.cluster.value());
  append_u64(out, topo.nodes().size());
  for (const Node& n : topo.nodes()) append_u32(out, n.rack.value());
  return out;
}

std::unique_ptr<Topology> decode_topology(Reader& r) {
  auto topo = std::make_unique<Topology>();
  const std::uint64_t regions = r.u64();
  for (std::uint64_t i = 0; i < regions; ++i) {
    const std::string name = r.str();
    const double tz = r.f64();
    topo->add_region(name, tz);
  }
  const std::uint64_t dcs = r.u64();
  for (std::uint64_t i = 0; i < dcs; ++i) {
    topo->add_datacenter(RegionId(r.u32()));
  }
  const std::uint64_t clusters = r.u64();
  for (std::uint64_t i = 0; i < clusters; ++i) {
    const DatacenterId dc(r.u32());
    const CloudType cloud = r.u8() == 0 ? CloudType::kPrivate
                                        : CloudType::kPublic;
    NodeSku sku;
    sku.name = r.str();
    sku.cores = r.f64();
    sku.memory_gb = r.f64();
    topo->add_cluster(dc, cloud, std::move(sku));
  }
  const std::uint64_t racks = r.u64();
  for (std::uint64_t i = 0; i < racks; ++i) topo->add_rack(ClusterId(r.u32()));
  const std::uint64_t nodes = r.u64();
  for (std::uint64_t i = 0; i < nodes; ++i) topo->add_node(RackId(r.u32()));
  return topo;
}

std::string encode_services(const TraceStore& trace) {
  std::string out;
  append_u64(out, trace.services().size());
  for (const ServiceInfo& s : trace.services()) {
    append_string(out, s.name);
    append_u8(out, s.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(out, static_cast<std::uint8_t>(s.model));
    append_u8(out, s.region_agnostic ? 1 : 0);
  }
  return out;
}

void decode_services(Reader& r, TraceStore& trace) {
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    ServiceInfo s;
    s.name = r.str();
    s.cloud = r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    const std::uint8_t model = r.u8();
    CL_CHECK_MSG(model <= static_cast<std::uint8_t>(ServiceModel::kSaaS),
                 "snapshot: bad service model");
    s.model = static_cast<ServiceModel>(model);
    s.region_agnostic = r.u8() != 0;
    trace.add_service(std::move(s));
  }
}

std::string encode_subscriptions(const TraceStore& trace) {
  std::string out;
  append_u64(out, trace.subscriptions().size());
  for (const SubscriptionInfo& s : trace.subscriptions()) {
    append_u8(out, s.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(out, s.party == PartyType::kFirstParty ? 0 : 1);
    append_u32(out, s.service.value());
  }
  return out;
}

void decode_subscriptions(Reader& r, TraceStore& trace) {
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    SubscriptionInfo s;
    s.cloud = r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    s.party = r.u8() == 0 ? PartyType::kFirstParty : PartyType::kThirdParty;
    s.service = ServiceId(r.u32());
    trace.add_subscription(s);
  }
}

/// One model record: [u8 tag][u32 payload size][payload bytes].
void encode_model(const UtilizationModel& model, const TimeGrid& grid,
                  const SnapshotModelCodec* codec, std::string& out) {
  std::string payload;
  std::uint8_t tag = 0;
  if (const auto* c = dynamic_cast<const ConstantUtilization*>(&model)) {
    tag = kModelConstant;
    append_f64(payload, c->level());
  } else if (const auto* s = dynamic_cast<const SampledUtilization*>(&model)) {
    tag = kModelSampled;
    append_grid(payload, s->grid());
    payload.append(reinterpret_cast<const char*>(s->samples().data()),
                   s->samples().size_bytes());
  } else if (codec != nullptr && (tag = codec->encode(model, payload)) != 0) {
    CL_CHECK_MSG(tag >= kFirstCustomModelTag,
                 "model codec returned a reserved tag");
  } else {
    // Unknown model type: degrade to explicit samples over the telemetry
    // grid (exact at every grid tick, step-interpolated elsewhere).
    tag = kModelSampled;
    payload.clear();
    append_grid(payload, grid);
    std::vector<double> samples(grid.count);
    model.sample(grid, samples);
    payload.append(reinterpret_cast<const char*>(samples.data()),
                   samples.size() * sizeof(double));
  }
  append_u8(out, tag);
  append_string(out, payload);
}

std::shared_ptr<const UtilizationModel> decode_model(
    Reader& r, const SnapshotModelCodec* codec) {
  const std::uint8_t tag = r.u8();
  const std::string payload = r.str();
  Reader body(payload);
  switch (tag) {
    case kModelConstant:
      return std::make_shared<ConstantUtilization>(body.f64());
    case kModelSampled: {
      const TimeGrid grid = read_grid(body);
      std::vector<double> samples(grid.count);
      const std::string_view raw = body.raw(grid.count * sizeof(double));
      std::memcpy(samples.data(), raw.data(), raw.size());
      return std::make_shared<SampledUtilization>(grid, std::move(samples));
    }
    default: {
      CL_CHECK_MSG(tag >= kFirstCustomModelTag,
                   "snapshot: unknown native model tag "
                       << static_cast<int>(tag));
      std::shared_ptr<const UtilizationModel> model =
          codec != nullptr ? codec->decode(tag, payload) : nullptr;
      CL_CHECK_MSG(model != nullptr,
                   "snapshot: no codec for custom model tag "
                       << static_cast<int>(tag)
                       << " (pass the codec used to save)");
      return model;
    }
  }
}

std::string encode_panel(const TelemetryPanel& panel) {
  std::string out;
  append_grid(out, panel.grid());
  append_u64(out, panel.vm_count());
  out.reserve(out.size() + panel.memory_bytes() + 16);
  for (std::size_t v = 0; v < panel.vm_count(); ++v) {
    const auto row = panel.row(VmId(static_cast<VmId::underlying>(v)));
    out.append(reinterpret_cast<const char*>(row.data()), row.size_bytes());
  }
  for (std::size_t v = 0; v < panel.vm_count(); ++v) {
    const auto row = panel.hourly_row(VmId(static_cast<VmId::underlying>(v)));
    out.append(reinterpret_cast<const char*>(row.data()), row.size_bytes());
  }
  return out;
}

std::unique_ptr<TelemetryPanel> decode_panel(Reader& r) {
  const TimeGrid grid = read_grid(r);
  const std::size_t rows = static_cast<std::size_t>(r.u64());
  // The hourly grid is a pure function of the base grid; recompute its
  // size the way TelemetryPanel does instead of trusting the payload.
  std::size_t hourly_count = 0;
  if (grid.step > 0 && kHour % grid.step == 0 &&
      grid.count >= static_cast<std::size_t>(kHour / grid.step)) {
    hourly_count = grid.count / static_cast<std::size_t>(kHour / grid.step);
  }
  std::vector<double> data(rows * grid.count);
  {
    const std::string_view raw = r.raw(data.size() * sizeof(double));
    std::memcpy(data.data(), raw.data(), raw.size());
  }
  std::vector<double> hourly(rows * hourly_count);
  {
    const std::string_view raw = r.raw(hourly.size() * sizeof(double));
    std::memcpy(hourly.data(), raw.data(), raw.size());
  }
  return std::make_unique<TelemetryPanel>(grid, rows, std::move(data),
                                          std::move(hourly));
}

/// Writes the container: header, section table, payloads.
void write_container(
    std::ostream& out,
    const std::vector<std::pair<std::uint32_t, std::string>>& sections) {
  std::string header;
  append_u32(header, kSnapshotMagic);
  append_u32(header, kSnapshotFormatVersion);
  append_u32(header, static_cast<std::uint32_t>(sections.size()));
  append_u32(header, 0);
  const std::size_t table_bytes = sections.size() * 24;
  std::uint64_t offset = header.size() + table_bytes;
  std::string table;
  for (const auto& [id, payload] : sections) {
    append_u32(table, id);
    append_u32(table, 0);
    append_u64(table, offset);
    append_u64(table, payload.size());
    offset += payload.size();
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(table.data(), static_cast<std::streamsize>(table.size()));
  for (const auto& [id, payload] : sections) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  CL_CHECK_MSG(out.good(), "snapshot: write failed");
}

struct Container {
  std::string bytes;
  /// Section id -> payload view into `bytes`.
  std::vector<std::pair<std::uint32_t, std::string_view>> sections;

  std::string_view section(std::uint32_t id) const {
    for (const auto& [sid, view] : sections) {
      if (sid == id) return view;
    }
    CL_CHECK_MSG(false, "snapshot: missing section " << id);
    return {};
  }
  bool has_section(std::uint32_t id) const {
    for (const auto& [sid, view] : sections) {
      if (sid == id) return true;
    }
    return false;
  }
};

Container read_container(std::istream& in) {
  Container c;
  // Bulk-slurp the stream when it is seekable: istreambuf iterators walk
  // one char at a time, which on a GB-sized panel section is the
  // difference between tens of seconds and disk speed.
  const std::streampos start = in.tellg();
  if (start != std::streampos(-1) && in.seekg(0, std::ios::end)) {
    const std::streampos end = in.tellg();
    in.seekg(start);
    c.bytes.resize(static_cast<std::size_t>(end - start));
    in.read(c.bytes.data(), static_cast<std::streamsize>(c.bytes.size()));
    CL_CHECK_MSG(static_cast<std::size_t>(in.gcount()) == c.bytes.size(),
                 "snapshot: short read");
  } else {
    in.clear();
    c.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  Reader header(c.bytes);
  CL_CHECK_MSG(header.u32() == kSnapshotMagic,
               "snapshot: bad magic (not a cloudlens snapshot)");
  const std::uint32_t version = header.u32();
  CL_CHECK_MSG(version == kSnapshotFormatVersion,
               "snapshot: format version " << version << " != supported "
                                           << kSnapshotFormatVersion);
  const std::uint32_t count = header.u32();
  header.u32();  // reserved
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = header.u32();
    header.u32();  // reserved
    const std::uint64_t offset = header.u64();
    const std::uint64_t size = header.u64();
    CL_CHECK_MSG(offset <= c.bytes.size() && size <= c.bytes.size() - offset,
                 "snapshot: section " << id << " out of bounds");
    c.sections.emplace_back(
        id, std::string_view(c.bytes).substr(offset, size));
  }
  return c;
}

}  // namespace

void save_trace_snapshot(const Topology& topology, const TraceStore& trace,
                         std::ostream& out,
                         const SnapshotWriteOptions& options) {
  CL_CHECK_MSG(&trace.topology() == &topology,
               "snapshot: trace does not reference the given topology");
  const TimeGrid& grid = trace.telemetry_grid();

  // Deduplicated model table: first-occurrence order over the VM list, so
  // identical traces produce identical bytes and shared model instances
  // stay shared after a round trip.
  std::string models;
  std::unordered_map<const UtilizationModel*, std::uint32_t> model_index;
  std::string vms;
  append_u64(vms, trace.vms().size());
  std::uint32_t next_model = 0;
  std::string model_records;
  for (const VmRecord& vm : trace.vms()) {
    append_u32(vms, vm.subscription.value());
    append_u32(vms, vm.service.value());
    append_u8(vms, vm.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(vms, vm.party == PartyType::kFirstParty ? 0 : 1);
    append_u32(vms, vm.region.value());
    append_u32(vms, vm.cluster.value());
    append_u32(vms, vm.rack.value());
    append_u32(vms, vm.node.value());
    append_f64(vms, vm.cores);
    append_f64(vms, vm.memory_gb);
    append_i64(vms, vm.created);
    append_i64(vms, vm.deleted);
    if (vm.utilization == nullptr) {
      append_u32(vms, kNoModel);
      continue;
    }
    const auto [it, inserted] =
        model_index.emplace(vm.utilization.get(), next_model);
    if (inserted) {
      encode_model(*vm.utilization, grid, options.model_codec, model_records);
      ++next_model;
    }
    append_u32(vms, it->second);
  }
  append_u64(models, next_model);
  models += model_records;

  std::vector<std::pair<std::uint32_t, std::string>> sections;
  sections.emplace_back(kGrid, encode_grid_section(trace));
  sections.emplace_back(kTopology, encode_topology(topology));
  sections.emplace_back(kServices, encode_services(trace));
  sections.emplace_back(kSubscriptions, encode_subscriptions(trace));
  sections.emplace_back(kModels, std::move(models));
  sections.emplace_back(kVms, std::move(vms));
  if (options.include_panel) {
    const TelemetryPanel* panel = trace.telemetry_panel();
    CL_CHECK_MSG(panel != nullptr,
                 "snapshot: panel requested but disabled on the trace");
    sections.emplace_back(kPanel, encode_panel(*panel));
  }
  write_container(out, sections);
}

LoadedSnapshot load_trace_snapshot(std::istream& in,
                                   const SnapshotModelCodec* codec) {
  const Container c = read_container(in);
  LoadedSnapshot result;

  Reader grid_r(c.section(kGrid));
  const TimeGrid grid = read_grid(grid_r);

  Reader topo_r(c.section(kTopology));
  result.topology = decode_topology(topo_r);
  result.trace = std::make_unique<TraceStore>(result.topology.get(), grid);
  TraceStore& trace = *result.trace;

  Reader svc_r(c.section(kServices));
  decode_services(svc_r, trace);
  Reader sub_r(c.section(kSubscriptions));
  decode_subscriptions(sub_r, trace);

  Reader model_r(c.section(kModels));
  const std::uint64_t model_count = model_r.u64();
  std::vector<std::shared_ptr<const UtilizationModel>> models;
  models.reserve(model_count);
  for (std::uint64_t i = 0; i < model_count; ++i) {
    models.push_back(decode_model(model_r, codec));
  }

  Reader vm_r(c.section(kVms));
  const std::uint64_t vm_count = vm_r.u64();
  for (std::uint64_t i = 0; i < vm_count; ++i) {
    VmRecord rec;
    rec.subscription = SubscriptionId(vm_r.u32());
    rec.service = ServiceId(vm_r.u32());
    rec.cloud = vm_r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    rec.party = vm_r.u8() == 0 ? PartyType::kFirstParty
                               : PartyType::kThirdParty;
    rec.region = RegionId(vm_r.u32());
    rec.cluster = ClusterId(vm_r.u32());
    rec.rack = RackId(vm_r.u32());
    rec.node = NodeId(vm_r.u32());
    rec.cores = vm_r.f64();
    rec.memory_gb = vm_r.f64();
    rec.created = vm_r.i64();
    rec.deleted = vm_r.i64();
    const std::uint32_t model = vm_r.u32();
    if (model != kNoModel) {
      CL_CHECK_MSG(model < models.size(), "snapshot: bad model index");
      rec.utilization = models[model];
    }
    trace.add_vm(std::move(rec));
  }

  if (c.has_section(kPanel)) {
    Reader panel_r(c.section(kPanel));
    result.panel_loaded =
        trace.adopt_telemetry_panel(decode_panel(panel_r));
  }
  return result;
}

void save_panel_snapshot(const TelemetryPanel& panel, std::ostream& out) {
  std::vector<std::pair<std::uint32_t, std::string>> sections;
  std::string grid;
  append_grid(grid, panel.grid());
  sections.emplace_back(kGrid, std::move(grid));
  sections.emplace_back(kPanel, encode_panel(panel));
  write_container(out, sections);
}

std::unique_ptr<TelemetryPanel> load_panel_snapshot(std::istream& in) {
  const Container c = read_container(in);
  Reader panel_r(c.section(kPanel));
  return decode_panel(panel_r);
}

}  // namespace cloudlens
