#include "cloudsim/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define CLOUDLENS_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CLOUDLENS_SNAPSHOT_HAS_MMAP 0
#endif

#include "cloudsim/trace_io.h"
#include "common/check.h"

namespace cloudlens {

static_assert(std::endian::native == std::endian::little,
              "snapshot encoding assumes a little-endian host");

namespace snapshot_codec {

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

namespace {
template <typename T>
void append_raw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}
}  // namespace

void append_u32(std::string& out, std::uint32_t v) { append_raw(out, v); }
void append_u64(std::string& out, std::uint64_t v) { append_raw(out, v); }
void append_i64(std::string& out, std::int64_t v) { append_raw(out, v); }
void append_f64(std::string& out, double v) {
  append_raw(out, std::bit_cast<std::uint64_t>(v));
}

void append_string(std::string& out, std::string_view s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::string_view Reader::raw(std::size_t n) {
  CL_CHECK_MSG(pos_ <= bytes_.size() && n <= bytes_.size() - pos_,
               "truncated snapshot payload");
  const std::string_view v = bytes_.substr(pos_, n);
  pos_ += n;
  return v;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(raw(1)[0]);
}

namespace {
template <typename T>
T read_raw(Reader& r) {
  T v;
  const std::string_view bytes = r.raw(sizeof(T));
  std::memcpy(&v, bytes.data(), sizeof(T));
  return v;
}
}  // namespace

std::uint32_t Reader::u32() { return read_raw<std::uint32_t>(*this); }
std::uint64_t Reader::u64() { return read_raw<std::uint64_t>(*this); }
std::int64_t Reader::i64() { return read_raw<std::int64_t>(*this); }
double Reader::f64() {
  return std::bit_cast<double>(read_raw<std::uint64_t>(*this));
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  return std::string(raw(n));
}

}  // namespace snapshot_codec

namespace {

using snapshot_codec::append_f64;
using snapshot_codec::append_i64;
using snapshot_codec::append_string;
using snapshot_codec::append_u32;
using snapshot_codec::append_u64;
using snapshot_codec::append_u8;
using snapshot_codec::Reader;

// Section ids. Values are part of the on-disk format; never renumber.
// Ids 11-15 belong to the population shard files and are defined publicly
// in snapshot.h (snapshot_sections) for cloudsim/population.cpp.
enum Section : std::uint32_t {
  kGrid = 1,
  kTopology = 2,
  kServices = 3,
  kSubscriptions = 4,
  kModels = 5,
  kVms = 6,
  kPanel = 7,
  kShardMeta = 8,
  kShardRows = 9,
  kShardHourly = 10,
  // 11-15: population meta / subscriptions / vms / models / node index.
};

// Native model tags (< kFirstCustomModelTag).
constexpr std::uint8_t kModelConstant = 1;
constexpr std::uint8_t kModelSampled = 2;

constexpr std::uint32_t kNoModel = 0xFFFFFFFFu;

void append_grid(std::string& out, const TimeGrid& grid) {
  append_i64(out, grid.start);
  append_i64(out, grid.step);
  append_u64(out, grid.count);
}

TimeGrid read_grid(Reader& r) {
  TimeGrid grid;
  grid.start = r.i64();
  grid.step = r.i64();
  grid.count = static_cast<std::size_t>(r.u64());
  return grid;
}

std::string encode_grid_section(const TraceStore& trace) {
  std::string out;
  append_grid(out, trace.telemetry_grid());
  return out;
}

std::string encode_topology(const Topology& topo) {
  std::string out;
  append_u64(out, topo.regions().size());
  for (const Region& r : topo.regions()) {
    append_string(out, r.name);
    append_f64(out, r.tz_offset_hours);
  }
  append_u64(out, topo.datacenters().size());
  for (const Datacenter& dc : topo.datacenters()) {
    append_u32(out, dc.region.value());
  }
  append_u64(out, topo.clusters().size());
  for (const Cluster& c : topo.clusters()) {
    append_u32(out, c.datacenter.value());
    append_u8(out, c.cloud == CloudType::kPrivate ? 0 : 1);
    append_string(out, c.node_sku.name);
    append_f64(out, c.node_sku.cores);
    append_f64(out, c.node_sku.memory_gb);
  }
  append_u64(out, topo.racks().size());
  for (const Rack& r : topo.racks()) append_u32(out, r.cluster.value());
  append_u64(out, topo.nodes().size());
  for (const Node& n : topo.nodes()) append_u32(out, n.rack.value());
  return out;
}

std::unique_ptr<Topology> decode_topology(Reader& r) {
  auto topo = std::make_unique<Topology>();
  const std::uint64_t regions = r.u64();
  for (std::uint64_t i = 0; i < regions; ++i) {
    const std::string name = r.str();
    const double tz = r.f64();
    topo->add_region(name, tz);
  }
  const std::uint64_t dcs = r.u64();
  for (std::uint64_t i = 0; i < dcs; ++i) {
    topo->add_datacenter(RegionId(r.u32()));
  }
  const std::uint64_t clusters = r.u64();
  for (std::uint64_t i = 0; i < clusters; ++i) {
    const DatacenterId dc(r.u32());
    const CloudType cloud = r.u8() == 0 ? CloudType::kPrivate
                                        : CloudType::kPublic;
    NodeSku sku;
    sku.name = r.str();
    sku.cores = r.f64();
    sku.memory_gb = r.f64();
    topo->add_cluster(dc, cloud, std::move(sku));
  }
  const std::uint64_t racks = r.u64();
  for (std::uint64_t i = 0; i < racks; ++i) topo->add_rack(ClusterId(r.u32()));
  const std::uint64_t nodes = r.u64();
  for (std::uint64_t i = 0; i < nodes; ++i) topo->add_node(RackId(r.u32()));
  return topo;
}

std::string encode_services(const TraceStore& trace) {
  std::string out;
  append_u64(out, trace.services().size());
  for (const ServiceInfo& s : trace.services()) {
    append_string(out, s.name);
    append_u8(out, s.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(out, static_cast<std::uint8_t>(s.model));
    append_u8(out, s.region_agnostic ? 1 : 0);
  }
  return out;
}

void decode_services(Reader& r, TraceStore& trace) {
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    ServiceInfo s;
    s.name = r.str();
    s.cloud = r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    const std::uint8_t model = r.u8();
    CL_CHECK_MSG(model <= static_cast<std::uint8_t>(ServiceModel::kSaaS),
                 "snapshot: bad service model");
    s.model = static_cast<ServiceModel>(model);
    s.region_agnostic = r.u8() != 0;
    trace.add_service(std::move(s));
  }
}

std::string encode_subscriptions(const TraceStore& trace) {
  std::string out;
  append_u64(out, trace.subscriptions().size());
  for (const SubscriptionInfo& s : trace.subscriptions()) {
    append_u8(out, s.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(out, s.party == PartyType::kFirstParty ? 0 : 1);
    append_u32(out, s.service.value());
  }
  return out;
}

void decode_subscriptions(Reader& r, TraceStore& trace) {
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    SubscriptionInfo s;
    s.cloud = r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    s.party = r.u8() == 0 ? PartyType::kFirstParty : PartyType::kThirdParty;
    s.service = ServiceId(r.u32());
    trace.add_subscription(s);
  }
}

/// One model record: [u8 tag][u32 payload size][payload bytes].
void encode_model(const UtilizationModel& model, const TimeGrid& grid,
                  const SnapshotModelCodec* codec, std::string& out,
                  std::size_t valid_ticks = SIZE_MAX) {
  std::string payload;
  std::uint8_t tag = 0;
  if (const auto* c = dynamic_cast<const ConstantUtilization*>(&model)) {
    tag = kModelConstant;
    append_f64(payload, c->level());
  } else if (const auto* s = dynamic_cast<const SampledUtilization*>(&model)) {
    tag = kModelSampled;
    append_grid(payload, s->grid());
    payload.append(reinterpret_cast<const char*>(s->samples().data()),
                   s->samples().size_bytes());
  } else if (codec != nullptr && (tag = codec->encode(model, payload)) != 0) {
    CL_CHECK_MSG(tag >= kFirstCustomModelTag,
                 "model codec returned a reserved tag");
  } else {
    // Unknown model type: degrade to explicit samples over the telemetry
    // grid (exact at every grid tick, step-interpolated elsewhere). Only
    // the first `valid_ticks` ticks are sampled — zeros beyond, matching
    // the live trace's valid-ticks clamp — so models whose backing store
    // is still being appended to (serve) are never read past the clamp.
    tag = kModelSampled;
    payload.clear();
    append_grid(payload, grid);
    std::vector<double> samples(grid.count, 0.0);
    const std::size_t head = std::min(grid.count, valid_ticks);
    if (head > 0) {
      const TimeGrid head_grid{grid.start, grid.step, head};
      model.sample(head_grid, std::span<double>(samples).first(head));
    }
    payload.append(reinterpret_cast<const char*>(samples.data()),
                   samples.size() * sizeof(double));
  }
  append_u8(out, tag);
  append_string(out, payload);
}

std::shared_ptr<const UtilizationModel> decode_model(
    Reader& r, const SnapshotModelCodec* codec) {
  const std::uint8_t tag = r.u8();
  const std::string payload = r.str();
  Reader body(payload);
  switch (tag) {
    case kModelConstant:
      return std::make_shared<ConstantUtilization>(body.f64());
    case kModelSampled: {
      const TimeGrid grid = read_grid(body);
      std::vector<double> samples(grid.count);
      const std::string_view raw = body.raw(grid.count * sizeof(double));
      std::memcpy(samples.data(), raw.data(), raw.size());
      return std::make_shared<SampledUtilization>(grid, std::move(samples));
    }
    default: {
      CL_CHECK_MSG(tag >= kFirstCustomModelTag,
                   "snapshot: unknown native model tag "
                       << static_cast<int>(tag));
      std::shared_ptr<const UtilizationModel> model =
          codec != nullptr ? codec->decode(tag, payload) : nullptr;
      CL_CHECK_MSG(model != nullptr,
                   "snapshot: no codec for custom model tag "
                       << static_cast<int>(tag)
                       << " (pass the codec used to save)");
      return model;
    }
  }
}

std::string encode_panel(const TelemetryPanel& panel) {
  std::string out;
  append_grid(out, panel.grid());
  append_u64(out, panel.vm_count());
  out.reserve(out.size() + panel.memory_bytes() + 16);
  for (std::size_t v = 0; v < panel.vm_count(); ++v) {
    const auto row = panel.row(VmId(static_cast<VmId::underlying>(v)));
    out.append(reinterpret_cast<const char*>(row.data()), row.size_bytes());
  }
  for (std::size_t v = 0; v < panel.vm_count(); ++v) {
    const auto row = panel.hourly_row(VmId(static_cast<VmId::underlying>(v)));
    out.append(reinterpret_cast<const char*>(row.data()), row.size_bytes());
  }
  return out;
}

std::unique_ptr<TelemetryPanel> decode_panel(Reader& r) {
  const TimeGrid grid = read_grid(r);
  const std::size_t rows = static_cast<std::size_t>(r.u64());
  // The hourly grid is a pure function of the base grid; recompute its
  // size the way TelemetryPanel does instead of trusting the payload.
  std::size_t hourly_count = 0;
  if (grid.step > 0 && kHour % grid.step == 0 &&
      grid.count >= static_cast<std::size_t>(kHour / grid.step)) {
    hourly_count = grid.count / static_cast<std::size_t>(kHour / grid.step);
  }
  std::vector<double> data(rows * grid.count);
  {
    const std::string_view raw = r.raw(data.size() * sizeof(double));
    std::memcpy(data.data(), raw.data(), raw.size());
  }
  std::vector<double> hourly(rows * hourly_count);
  {
    const std::string_view raw = r.raw(hourly.size() * sizeof(double));
    std::memcpy(hourly.data(), raw.data(), raw.size());
  }
  return std::make_unique<TelemetryPanel>(grid, rows, std::move(data),
                                          std::move(hourly));
}

/// Writes the container: header, section table, payloads.
void write_container(
    std::ostream& out,
    const std::vector<std::pair<std::uint32_t, std::string>>& sections) {
  std::string header;
  append_u32(header, kSnapshotMagic);
  append_u32(header, kSnapshotFormatVersion);
  append_u32(header, static_cast<std::uint32_t>(sections.size()));
  append_u32(header, 0);
  const std::size_t table_bytes = sections.size() * 24;
  std::uint64_t offset = header.size() + table_bytes;
  std::string table;
  for (const auto& [id, payload] : sections) {
    append_u32(table, id);
    append_u32(table, 0);
    append_u64(table, offset);
    append_u64(table, payload.size());
    offset += payload.size();
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(table.data(), static_cast<std::streamsize>(table.size()));
  for (const auto& [id, payload] : sections) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  CL_CHECK_MSG(out.good(), "snapshot: write failed");
}

/// Validates the container header and section table over `bytes` and
/// returns id -> payload views into it. Shared by the buffered reader and
/// SnapshotMapping, so both paths reject the same malformed inputs.
std::vector<std::pair<std::uint32_t, std::string_view>> parse_sections(
    std::string_view bytes) {
  Reader header(bytes);
  CL_CHECK_MSG(header.u32() == kSnapshotMagic,
               "snapshot: bad magic (not a cloudlens snapshot)");
  const std::uint32_t version = header.u32();
  CL_CHECK_MSG(version == kSnapshotFormatVersion,
               "snapshot: format version " << version << " != supported "
                                           << kSnapshotFormatVersion);
  const std::uint32_t count = header.u32();
  header.u32();  // reserved
  std::vector<std::pair<std::uint32_t, std::string_view>> sections;
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = header.u32();
    header.u32();  // reserved
    const std::uint64_t offset = header.u64();
    const std::uint64_t size = header.u64();
    CL_CHECK_MSG(offset <= bytes.size() && size <= bytes.size() - offset,
                 "snapshot: section " << id << " out of bounds");
    sections.emplace_back(id, bytes.substr(offset, size));
  }
  return sections;
}

std::string_view find_section(
    const std::vector<std::pair<std::uint32_t, std::string_view>>& sections,
    std::uint32_t id, bool* found) {
  for (const auto& [sid, view] : sections) {
    if (sid == id) {
      if (found != nullptr) *found = true;
      return view;
    }
  }
  if (found != nullptr) {
    *found = false;
    return {};
  }
  CL_CHECK_MSG(false, "snapshot: missing section " << id);
  return {};
}

struct Container {
  std::string bytes;
  /// Section id -> payload view into `bytes`.
  std::vector<std::pair<std::uint32_t, std::string_view>> sections;

  std::string_view section(std::uint32_t id) const {
    return find_section(sections, id, nullptr);
  }
  bool has_section(std::uint32_t id) const {
    bool found = false;
    find_section(sections, id, &found);
    return found;
  }
};

Container read_container(std::istream& in) {
  Container c;
  // Bulk-slurp the stream when it is seekable: istreambuf iterators walk
  // one char at a time, which on a GB-sized panel section is the
  // difference between tens of seconds and disk speed.
  const std::streampos start = in.tellg();
  if (start != std::streampos(-1) && in.seekg(0, std::ios::end)) {
    const std::streampos end = in.tellg();
    in.seekg(start);
    c.bytes.resize(static_cast<std::size_t>(end - start));
    in.read(c.bytes.data(), static_cast<std::streamsize>(c.bytes.size()));
    CL_CHECK_MSG(static_cast<std::size_t>(in.gcount()) == c.bytes.size(),
                 "snapshot: short read");
  } else {
    in.clear();
    c.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  c.sections = parse_sections(c.bytes);
  return c;
}

}  // namespace

void encode_model_record(const UtilizationModel& model,
                         const TimeGrid& fallback_grid,
                         const SnapshotModelCodec* codec, std::string& out,
                         std::size_t valid_ticks) {
  encode_model(model, fallback_grid, codec, out, valid_ticks);
}

std::shared_ptr<const UtilizationModel> decode_model_record(
    snapshot_codec::Reader& r, const SnapshotModelCodec* codec) {
  return decode_model(r, codec);
}

void save_trace_snapshot(const Topology& topology, const TraceStore& trace,
                         std::ostream& out,
                         const SnapshotWriteOptions& options) {
  CL_CHECK_MSG(&trace.topology() == &topology,
               "snapshot: trace does not reference the given topology");
  const TimeGrid& grid = trace.telemetry_grid();

  // Deduplicated model table: first-occurrence order over the VM list, so
  // identical traces produce identical bytes and shared model instances
  // stay shared after a round trip.
  std::string models;
  std::unordered_map<const UtilizationModel*, std::uint32_t> model_index;
  std::string vms;
  append_u64(vms, trace.vms().size());
  std::uint32_t next_model = 0;
  std::string model_records;
  for (const VmRecord& vm : trace.vms()) {
    append_u32(vms, vm.subscription.value());
    append_u32(vms, vm.service.value());
    append_u8(vms, vm.cloud == CloudType::kPrivate ? 0 : 1);
    append_u8(vms, vm.party == PartyType::kFirstParty ? 0 : 1);
    append_u32(vms, vm.region.value());
    append_u32(vms, vm.cluster.value());
    append_u32(vms, vm.rack.value());
    append_u32(vms, vm.node.value());
    append_f64(vms, vm.cores);
    append_f64(vms, vm.memory_gb);
    append_i64(vms, vm.created);
    append_i64(vms, vm.deleted);
    if (vm.utilization == nullptr) {
      append_u32(vms, kNoModel);
      continue;
    }
    const auto [it, inserted] =
        model_index.emplace(vm.utilization.get(), next_model);
    if (inserted) {
      encode_model(*vm.utilization, grid, options.model_codec, model_records,
                   trace.sample_valid_ticks());
      ++next_model;
    }
    append_u32(vms, it->second);
  }
  append_u64(models, next_model);
  models += model_records;

  std::vector<std::pair<std::uint32_t, std::string>> sections;
  sections.emplace_back(kGrid, encode_grid_section(trace));
  sections.emplace_back(kTopology, encode_topology(topology));
  sections.emplace_back(kServices, encode_services(trace));
  sections.emplace_back(kSubscriptions, encode_subscriptions(trace));
  sections.emplace_back(kModels, std::move(models));
  sections.emplace_back(kVms, std::move(vms));
  if (options.include_panel) {
    const TelemetryPanel* panel = trace.telemetry_panel();
    CL_CHECK_MSG(panel != nullptr,
                 "snapshot: panel requested but disabled on the trace");
    sections.emplace_back(kPanel, encode_panel(*panel));
  }
  write_container(out, sections);
}

namespace {

/// Shared by the stream and mapping overloads: `c` is anything with
/// section(id)/has_section(id) views over a validated container.
template <typename Sections>
LoadedSnapshot load_trace_sections(const Sections& c,
                                   const SnapshotModelCodec* codec) {
  LoadedSnapshot result;

  Reader grid_r(c.section(kGrid));
  const TimeGrid grid = read_grid(grid_r);

  Reader topo_r(c.section(kTopology));
  result.topology = decode_topology(topo_r);
  result.trace = std::make_unique<TraceStore>(result.topology.get(), grid);
  TraceStore& trace = *result.trace;

  Reader svc_r(c.section(kServices));
  decode_services(svc_r, trace);
  Reader sub_r(c.section(kSubscriptions));
  decode_subscriptions(sub_r, trace);

  Reader model_r(c.section(kModels));
  const std::uint64_t model_count = model_r.u64();
  std::vector<std::shared_ptr<const UtilizationModel>> models;
  models.reserve(model_count);
  for (std::uint64_t i = 0; i < model_count; ++i) {
    models.push_back(decode_model(model_r, codec));
  }

  Reader vm_r(c.section(kVms));
  const std::uint64_t vm_count = vm_r.u64();
  for (std::uint64_t i = 0; i < vm_count; ++i) {
    VmRecord rec;
    rec.subscription = SubscriptionId(vm_r.u32());
    rec.service = ServiceId(vm_r.u32());
    rec.cloud = vm_r.u8() == 0 ? CloudType::kPrivate : CloudType::kPublic;
    rec.party = vm_r.u8() == 0 ? PartyType::kFirstParty
                               : PartyType::kThirdParty;
    rec.region = RegionId(vm_r.u32());
    rec.cluster = ClusterId(vm_r.u32());
    rec.rack = RackId(vm_r.u32());
    rec.node = NodeId(vm_r.u32());
    rec.cores = vm_r.f64();
    rec.memory_gb = vm_r.f64();
    rec.created = vm_r.i64();
    rec.deleted = vm_r.i64();
    const std::uint32_t model = vm_r.u32();
    if (model != kNoModel) {
      CL_CHECK_MSG(model < models.size(), "snapshot: bad model index");
      rec.utilization = models[model];
    }
    trace.add_vm(std::move(rec));
  }

  if (c.has_section(kPanel)) {
    Reader panel_r(c.section(kPanel));
    result.panel_loaded =
        trace.adopt_telemetry_panel(decode_panel(panel_r));
  }
  return result;
}

}  // namespace

LoadedSnapshot load_trace_snapshot(std::istream& in,
                                   const SnapshotModelCodec* codec) {
  const Container c = read_container(in);
  return load_trace_sections(c, codec);
}

LoadedSnapshot load_trace_snapshot(const SnapshotMapping& mapping,
                                   const SnapshotModelCodec* codec) {
  return load_trace_sections(mapping, codec);
}

std::unique_ptr<TelemetryPanel> load_panel_snapshot(
    const SnapshotMapping& mapping) {
  Reader panel_r(mapping.section(kPanel));
  return decode_panel(panel_r);
}

void save_panel_snapshot(const TelemetryPanel& panel, std::ostream& out) {
  std::vector<std::pair<std::uint32_t, std::string>> sections;
  std::string grid;
  append_grid(grid, panel.grid());
  sections.emplace_back(kGrid, std::move(grid));
  sections.emplace_back(kPanel, encode_panel(panel));
  write_container(out, sections);
}

std::unique_ptr<TelemetryPanel> load_panel_snapshot(std::istream& in) {
  const Container c = read_container(in);
  Reader panel_r(c.section(kPanel));
  return decode_panel(panel_r);
}

// --- SnapshotMapping -----------------------------------------------------

namespace {

bool mmap_disabled_by_env() {
  const char* v = std::getenv("CLOUDLENS_NO_MMAP");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

SnapshotMapping::SnapshotMapping(const std::string& path) {
#if CLOUDLENS_SNAPSHOT_HAS_MMAP
  if (!mmap_disabled_by_env()) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
        const auto length = static_cast<std::size_t>(st.st_size);
        void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          map_base_ = base;
          map_length_ = length;
        }
      }
      ::close(fd);
    }
  }
#endif
  if (map_base_ != nullptr) {
    bytes_ = std::string_view(static_cast<const char*>(map_base_),
                              map_length_);
  } else {
    // Graceful fallback: buffered read of the whole file. Same validation,
    // same views — just not demand-paged.
    std::ifstream in(path, std::ios::binary);
    CL_CHECK_MSG(in.good(), "snapshot: cannot open " << path);
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    in.seekg(0);
    buffer_.resize(end == std::streampos(-1)
                       ? 0
                       : static_cast<std::size_t>(end));
    in.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    CL_CHECK_MSG(static_cast<std::size_t>(in.gcount()) == buffer_.size(),
                 "snapshot: short read of " << path);
    bytes_ = buffer_;
  }
  try {
    sections_ = parse_sections(bytes_);
  } catch (...) {
    reset();  // the destructor will not run for a throwing constructor
    throw;
  }
}

SnapshotMapping::~SnapshotMapping() { reset(); }

void SnapshotMapping::reset() noexcept {
#if CLOUDLENS_SNAPSHOT_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
#endif
  map_base_ = nullptr;
  map_length_ = 0;
  buffer_.clear();
  bytes_ = {};
  sections_.clear();
}

SnapshotMapping::SnapshotMapping(SnapshotMapping&& other) noexcept
    : map_base_(other.map_base_),
      map_length_(other.map_length_),
      buffer_(std::move(other.buffer_)),
      sections_(std::move(other.sections_)) {
  bytes_ = map_base_ != nullptr
               ? std::string_view(static_cast<const char*>(map_base_),
                                  map_length_)
               : std::string_view(buffer_);
  other.map_base_ = nullptr;
  other.map_length_ = 0;
  other.buffer_.clear();
  other.bytes_ = {};
  other.sections_.clear();
}

SnapshotMapping& SnapshotMapping::operator=(SnapshotMapping&& other) noexcept {
  if (this != &other) {
    reset();
    map_base_ = other.map_base_;
    map_length_ = other.map_length_;
    buffer_ = std::move(other.buffer_);
    sections_ = std::move(other.sections_);
    bytes_ = map_base_ != nullptr
                 ? std::string_view(static_cast<const char*>(map_base_),
                                    map_length_)
                 : std::string_view(buffer_);
    other.map_base_ = nullptr;
    other.map_length_ = 0;
    other.buffer_.clear();
    other.bytes_ = {};
    other.sections_.clear();
  }
  return *this;
}

std::string_view SnapshotMapping::section(std::uint32_t id) const {
  return find_section(sections_, id, nullptr);
}

bool SnapshotMapping::has_section(std::uint32_t id) const {
  bool found = false;
  find_section(sections_, id, &found);
  return found;
}

// --- panel shard files ---------------------------------------------------

void save_panel_shard_snapshot(const PanelShardHeader& header,
                               std::span<const double> rows,
                               std::span<const double> hourly,
                               std::ostream& out) {
  CL_CHECK_MSG(rows.size() == header.row_count * header.grid.count,
               "shard snapshot: rows span size mismatch");
  CL_CHECK_MSG(hourly.size() == header.row_count * header.hourly_count,
               "shard snapshot: hourly span size mismatch");
  std::string meta;
  append_grid(meta, header.grid);
  append_u64(meta, header.shard_index);
  append_u64(meta, header.shard_count);
  append_u64(meta, header.row_count);
  append_u64(meta, header.hourly_count);
  append_u64(meta, header.router_digest);

  std::string head;
  append_u32(head, kSnapshotMagic);
  append_u32(head, kSnapshotFormatVersion);
  append_u32(head, 3);  // SHARD_META, SHARD_ROWS, SHARD_HOURLY
  append_u32(head, 0);
  const std::uint64_t meta_off = head.size() + 3 * 24;
  const std::uint64_t rows_off = meta_off + meta.size();
  const std::uint64_t rows_bytes = rows.size_bytes();
  const std::uint64_t hourly_off = rows_off + rows_bytes;
  // Alignment contract: the double payloads must start on 8-byte file
  // offsets so a mapped shard can serve them in place. Header + table is
  // 88 bytes and meta is fixed-width u64s, so this holds by construction;
  // keep it checked against future meta growth.
  CL_CHECK_MSG(rows_off % alignof(double) == 0 &&
                   hourly_off % alignof(double) == 0,
               "shard snapshot: misaligned payload layout");
  std::string table;
  append_u32(table, kShardMeta);
  append_u32(table, 0);
  append_u64(table, meta_off);
  append_u64(table, meta.size());
  append_u32(table, kShardRows);
  append_u32(table, 0);
  append_u64(table, rows_off);
  append_u64(table, rows_bytes);
  append_u32(table, kShardHourly);
  append_u32(table, 0);
  append_u64(table, hourly_off);
  append_u64(table, hourly.size_bytes());

  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  out.write(table.data(), static_cast<std::streamsize>(table.size()));
  out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
  // Payload spans stream straight to the file: no staging copy, so the
  // writer's transient memory stays O(header) even for GB shards.
  out.write(reinterpret_cast<const char*>(rows.data()),
            static_cast<std::streamsize>(rows.size_bytes()));
  out.write(reinterpret_cast<const char*>(hourly.data()),
            static_cast<std::streamsize>(hourly.size_bytes()));
  CL_CHECK_MSG(out.good(), "shard snapshot: write failed");
}

namespace {

std::span<const double> shard_payload_span(std::string_view payload,
                                           std::uint64_t expected,
                                           const char* what) {
  CL_CHECK_MSG(payload.size() == expected * sizeof(double),
               "shard snapshot: " << what << " payload size "
                                  << payload.size() << " != expected "
                                  << expected * sizeof(double));
  CL_CHECK_MSG(reinterpret_cast<std::uintptr_t>(payload.data()) %
                       alignof(double) ==
                   0,
               "shard snapshot: misaligned " << what << " payload");
  return {reinterpret_cast<const double*>(payload.data()),
          static_cast<std::size_t>(expected)};
}

}  // namespace

PanelShardView open_panel_shard(const SnapshotMapping& mapping) {
  PanelShardView view;
  Reader meta(mapping.section(kShardMeta));
  view.header.grid = read_grid(meta);
  view.header.shard_index = meta.u64();
  view.header.shard_count = meta.u64();
  view.header.row_count = meta.u64();
  view.header.hourly_count = meta.u64();
  view.header.router_digest = meta.u64();
  CL_CHECK_MSG(meta.done(), "shard snapshot: trailing meta bytes");
  CL_CHECK_MSG(view.header.shard_count > 0 &&
                   view.header.shard_index < view.header.shard_count,
               "shard snapshot: bad shard index");
  view.rows = shard_payload_span(
      mapping.section(kShardRows),
      view.header.row_count * view.header.grid.count, "rows");
  view.hourly = shard_payload_span(
      mapping.section(kShardHourly),
      view.header.row_count * view.header.hourly_count, "hourly");
  return view;
}

}  // namespace cloudlens
