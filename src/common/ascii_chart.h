// ASCII chart rendering so bench binaries can show the *shape* of each
// reproduced figure directly in the console (line series, CDF overlays,
// bar charts, and box-plots).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cloudlens {

struct ChartOptions {
  int width = 72;    ///< plot area columns (excluding axis labels)
  int height = 14;   ///< plot area rows
  double y_min = 0;  ///< used only when fixed_y_range
  double y_max = 1;
  bool fixed_y_range = false;
  std::string title;
};

/// Render one or more series over a shared x-index as an ASCII line chart.
/// Each series gets a distinct glyph; a legend line is appended.
/// Series may have different lengths; x is the sample index scaled to width.
std::string render_lines(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const ChartOptions& opts = {});

/// Render a horizontal bar chart: one labeled bar per entry.
std::string render_bars(
    const std::vector<std::pair<std::string, double>>& bars, int width = 48,
    const std::string& title = {});

/// Render box-plot summaries side by side (median, quartiles, whiskers).
struct BoxSpec {
  std::string label;
  double whisker_lo = 0, q1 = 0, median = 0, q3 = 0, whisker_hi = 0;
};
std::string render_boxes(const std::vector<BoxSpec>& boxes, int width = 60,
                         const std::string& title = {});

/// Render a 2-D intensity grid (heatmap) using density glyphs " .:-=+*#%@".
/// values[r][c]; row 0 is drawn at the bottom (natural y orientation).
std::string render_heatmap(const std::vector<std::vector<double>>& values,
                           const std::string& title = {},
                           const std::string& x_label = {},
                           const std::string& y_label = {});

}  // namespace cloudlens
