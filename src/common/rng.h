// Deterministic random number generation for cloudlens.
//
// We implement our own engine (xoshiro256**) and our own distribution
// samplers instead of relying on <random>'s distributions, whose output is
// implementation-defined: a cloudlens trace generated with a given seed must
// be bit-identical on every platform so that experiments are reproducible.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"

namespace cloudlens {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seed of the `index`-th parallel shard of a stream family, derived from a
/// master seed by pure SplitMix64 hashing — no sequential generator
/// advancement — so any shard's stream can be reconstructed independently
/// of execution order or thread count. `salt` distinguishes stream
/// families rooted at the same master (e.g. "standing emission" vs
/// "churn emission"); seeding SplitMix64 at `h + i*gamma` is the canonical
/// split: consecutive indexes read consecutive outputs of the stream at h.
inline std::uint64_t shard_seed(std::uint64_t master, std::uint64_t salt,
                                std::uint64_t index) {
  SplitMix64 master_mix(master);
  const std::uint64_t h = master_mix.next() ^ SplitMix64(salt).next();
  return SplitMix64(h + 0x9e3779b97f4a7c15ULL * (index + 1)).next();
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6c6f75646c656e73ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream; used to give each simulated entity
  /// its own generator so entity insertion order does not perturb others.
  Rng fork() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  // --- Uniform variates -----------------------------------------------

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform_int(std::uint64_t n) {
    CL_CHECK(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CL_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  // --- Continuous distributions ---------------------------------------

  /// Standard normal via Marsaglia polar method (deterministic given stream).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal: exp(N(mu, sigma)). mu/sigma are the parameters of the
  /// underlying normal, matching the usual parameterization.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  double exponential(double rate);

  /// Pareto (Type I) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang.
  double gamma(double k, double theta);

  /// Beta(a, b) via two gammas.
  double beta(double a, double b);

  // --- Discrete distributions -----------------------------------------

  /// Poisson with given mean; Knuth for small means, PTRS-like normal
  /// approximation with rejection for large means.
  std::uint64_t poisson(double mean);

  /// Zipf on {0, ..., n-1} with exponent s >= 0 (s = 0 is uniform).
  /// O(log n) inversion over precomputed weights is provided by ZipfSampler;
  /// this convenience method is O(n) set-up and intended for one-off draws.
  std::uint64_t zipf_once(std::uint64_t n, double s);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Walker alias method for O(1) draws from a fixed categorical distribution.
class AliasTable {
 public:
  AliasTable() = default;
  /// Weights must be non-negative with a positive sum; they are normalized.
  explicit AliasTable(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Zipf sampler over {0..n-1} with exponent s, O(1) amortized draws via an
/// alias table built once.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);
  std::uint64_t sample(Rng& rng) const { return table_.sample(rng); }
  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  AliasTable table_;
};

}  // namespace cloudlens
