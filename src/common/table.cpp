#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace cloudlens {

std::string format_double(double v, int precision) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CL_CHECK(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  CL_CHECK_MSG(!rows_.empty(), "call row() before add()");
  CL_CHECK_MSG(rows_.back().size() < header_.size(),
               "row has more cells than header columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double v, int precision) {
  return add(format_double(v, precision));
}

TextTable& TextTable::add(std::int64_t v) { return add(std::to_string(v)); }
TextTable& TextTable::add(std::uint64_t v) { return add(std::to_string(v)); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << cell
         << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = header_.size() > 0 ? (header_.size() - 1) * 2 : 0;
  for (auto w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c ? "," : "") << escape(cells[c]);
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace cloudlens
