#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace cloudlens {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: rejection from the unit disk.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  CL_CHECK(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) {
  CL_CHECK(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  CL_CHECK(lo > 0.0 && hi > lo && alpha > 0.0);
  // Inverse-CDF of the truncated Pareto.
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::gamma(double k, double theta) {
  CL_CHECK(k > 0.0 && theta > 0.0);
  // Marsaglia–Tsang (2000). For k < 1 boost with U^(1/k).
  if (k < 1.0) {
    const double u = uniform();
    return gamma(k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * theta;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * theta;
  }
}

double Rng::beta(double a, double b) {
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

std::uint64_t Rng::poisson(double mean) {
  CL_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero;
  // adequate for the arrival-rate magnitudes used in the simulator.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::zipf_once(std::uint64_t n, double s) {
  CL_CHECK(n > 0);
  double total = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) total += std::pow(double(i), -s);
  double u = uniform() * total;
  for (std::uint64_t i = 1; i <= n; ++i) {
    u -= std::pow(double(i), -s);
    if (u <= 0.0) return i - 1;
  }
  return n - 1;
}

AliasTable::AliasTable(std::span<const double> weights) {
  CL_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  CL_CHECK_MSG(sum > 0.0, "alias table requires a positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; "small" hold < 1, "large" hold >= 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    CL_CHECK_MSG(weights[i] >= 0.0, "negative weight in alias table");
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const auto i : large) prob_[i] = 1.0;
  for (const auto i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  CL_CHECK(!prob_.empty());
  const std::size_t i = rng.uniform_int(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  CL_CHECK(n > 0 && s >= 0.0);
  std::vector<double> w(n);
  for (std::uint64_t i = 0; i < n; ++i)
    w[i] = std::pow(static_cast<double>(i + 1), -s);
  table_ = AliasTable(w);
}

}  // namespace cloudlens
