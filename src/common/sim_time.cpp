#include "common/sim_time.h"

#include <array>
#include <cstdio>

namespace cloudlens {

std::string format_sim_time(SimTime t) {
  static constexpr std::array<const char*, 7> kDays = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  const int week = static_cast<int>(t / kWeek);
  const int dow = day_of_week(t);
  const int hh = hour_of_day(t);
  const int mm = minute_of_hour(t);
  char buf[32];
  if (week == 0) {
    std::snprintf(buf, sizeof(buf), "%s %02d:%02d", kDays[dow], hh, mm);
  } else {
    std::snprintf(buf, sizeof(buf), "w%d %s %02d:%02d", week, kDays[dow], hh,
                  mm);
  }
  return buf;
}

}  // namespace cloudlens
