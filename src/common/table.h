// Console table and CSV rendering for bench/example output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cloudlens {

/// A simple aligned text table. Columns are sized to fit their widest cell.
/// Numeric formatting is up to the caller (use cell(double, precision)).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row; subsequent add() calls fill it left to right.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(double v, int precision = 3);
  TextTable& add(std::int64_t v);
  TextTable& add(std::uint64_t v);
  TextTable& add(int v) { return add(static_cast<std::int64_t>(v)); }

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a header rule; each data row on its own line.
  std::string to_string() const;
  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision, trimming trailing zeros is NOT done
/// (stable column widths matter more for console output).
std::string format_double(double v, int precision = 3);

}  // namespace cloudlens
