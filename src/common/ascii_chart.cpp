#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace cloudlens {
namespace {

constexpr const char* kGlyphs = "*o+x#@%&";

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

std::string render_lines(
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const ChartOptions& opts) {
  CL_CHECK(!series.empty());
  double lo = opts.y_min, hi = opts.y_max;
  if (!opts.fixed_y_range) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const auto& [_, ys] : series) {
      for (double y : ys) {
        if (!std::isfinite(y)) continue;
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
    }
    if (!std::isfinite(lo)) {
      lo = 0;
      hi = 1;
    }
    if (hi == lo) hi = lo + 1;
  }

  const int W = std::max(8, opts.width);
  const int H = std::max(4, opts.height);
  std::vector<std::string> canvas(H, std::string(W, ' '));

  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& ys = series[s].second;
    if (ys.empty()) continue;
    const char glyph = kGlyphs[s % 8];
    for (int col = 0; col < W; ++col) {
      // Map column to nearest sample index.
      const std::size_t i =
          ys.size() == 1
              ? 0
              : static_cast<std::size_t>(std::llround(
                    double(col) * double(ys.size() - 1) / double(W - 1)));
      const double y = ys[i];
      if (!std::isfinite(y)) continue;
      const double norm = clamp01((y - lo) / (hi - lo));
      const int r = static_cast<int>(std::llround(norm * (H - 1)));
      canvas[H - 1 - r][col] = glyph;
    }
  }

  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << '\n';
  for (int r = 0; r < H; ++r) {
    const double y = hi - (hi - lo) * double(r) / double(H - 1);
    std::string lbl = format_double(y, 2);
    if (lbl.size() < 9) lbl = std::string(9 - lbl.size(), ' ') + lbl;
    os << lbl << " |" << canvas[r] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(W, '-') << '\n';
  os << std::string(11, ' ');
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << (s ? "   " : "") << kGlyphs[s % 8] << ' ' << series[s].first;
  }
  os << '\n';
  return os.str();
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                        int width, const std::string& title) {
  CL_CHECK(!bars.empty());
  double hi = 0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    hi = std::max(hi, v);
    label_w = std::max(label_w, label.size());
  }
  if (hi <= 0) hi = 1;
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (const auto& [label, v] : bars) {
    const int n =
        static_cast<int>(std::llround(clamp01(v / hi) * double(width)));
    os << label << std::string(label_w - label.size(), ' ') << " |"
       << std::string(n, '#') << ' ' << format_double(v, 3) << '\n';
  }
  return os.str();
}

std::string render_boxes(const std::vector<BoxSpec>& boxes, int width,
                         const std::string& title) {
  CL_CHECK(!boxes.empty());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  std::size_t label_w = 0;
  for (const auto& b : boxes) {
    lo = std::min(lo, b.whisker_lo);
    hi = std::max(hi, b.whisker_hi);
    label_w = std::max(label_w, b.label.size());
  }
  if (hi == lo) hi = lo + 1;
  auto col = [&](double v) {
    return static_cast<int>(
        std::llround(clamp01((v - lo) / (hi - lo)) * double(width - 1)));
  };
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (const auto& b : boxes) {
    std::string line(width, ' ');
    for (int c = col(b.whisker_lo); c <= col(b.whisker_hi); ++c)
      line[c] = '-';
    for (int c = col(b.q1); c <= col(b.q3); ++c) line[c] = '=';
    line[col(b.whisker_lo)] = '|';
    line[col(b.whisker_hi)] = '|';
    line[col(b.median)] = 'M';
    os << b.label << std::string(label_w - b.label.size(), ' ') << " [" << line
       << "]  med=" << format_double(b.median, 3)
       << " iqr=[" << format_double(b.q1, 3) << ", " << format_double(b.q3, 3)
       << "]\n";
  }
  os << std::string(label_w, ' ') << "  " << format_double(lo, 2)
     << std::string(std::max(1, width - 12), ' ') << format_double(hi, 2)
     << '\n';
  return os.str();
}

std::string render_heatmap(const std::vector<std::vector<double>>& values,
                           const std::string& title, const std::string& x_label,
                           const std::string& y_label) {
  CL_CHECK(!values.empty());
  static constexpr const char* kDensity = " .:-=+*#%@";
  double hi = 0;
  for (const auto& row : values)
    for (double v : row) hi = std::max(hi, v);
  if (hi <= 0) hi = 1;
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  if (!y_label.empty()) os << y_label << '\n';
  for (std::size_t r = values.size(); r-- > 0;) {
    os << "  |";
    for (double v : values[r]) {
      const int level =
          static_cast<int>(std::llround(clamp01(v / hi) * 9.0));
      os << kDensity[level] << kDensity[level];
    }
    os << '\n';
  }
  os << "  +" << std::string(values[0].size() * 2, '-') << "> " << x_label
     << '\n';
  return os.str();
}

}  // namespace cloudlens
