// Strong ID types.
//
// Every entity in the simulator (region, cluster, node, subscription, VM,
// service) is referenced by a distinct, non-interchangeable integer ID so
// that "passed a node where a cluster was expected" is a compile error.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace cloudlens {

template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = static_cast<underlying>(-1);

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : value_(v) {}

  constexpr underlying value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << Tag::prefix() << id.value_;
  }

 private:
  underlying value_ = kInvalid;
};

struct RegionTag {
  static constexpr const char* prefix() { return "region-"; }
};
struct DatacenterTag {
  static constexpr const char* prefix() { return "dc-"; }
};
struct ClusterTag {
  static constexpr const char* prefix() { return "cluster-"; }
};
struct RackTag {
  static constexpr const char* prefix() { return "rack-"; }
};
struct NodeTag {
  static constexpr const char* prefix() { return "node-"; }
};
struct SubscriptionTag {
  static constexpr const char* prefix() { return "sub-"; }
};
struct VmTag {
  static constexpr const char* prefix() { return "vm-"; }
};
struct ServiceTag {
  static constexpr const char* prefix() { return "svc-"; }
};

using RegionId = Id<RegionTag>;
using DatacenterId = Id<DatacenterTag>;
using ClusterId = Id<ClusterTag>;
using RackId = Id<RackTag>;
using NodeId = Id<NodeTag>;
using SubscriptionId = Id<SubscriptionTag>;
using VmId = Id<VmTag>;
using ServiceId = Id<ServiceTag>;

}  // namespace cloudlens

namespace std {
template <typename Tag>
struct hash<cloudlens::Id<Tag>> {
  std::size_t operator()(cloudlens::Id<Tag> id) const noexcept {
    return std::hash<typename cloudlens::Id<Tag>::underlying>{}(id.value());
  }
};
}  // namespace std
