// Deterministic parallel execution engine.
//
// cloudlens promises bit-identical outputs for a given seed no matter how
// the work is scheduled, so the parallel primitives here are built around a
// single contract:
//
//   *Results never depend on the number of threads.*
//
// The primitives achieve this in two ways:
//   - `parallel_for` / `parallel_map` only parallelize loops whose
//     iterations write disjoint results (slot i of the output); any
//     interleaving produces the same bits, and the per-index results are
//     merged in index order by the caller.
//   - `parallel_reduce` accumulates in *fixed* chunks whose boundaries are
//     a pure function of `n` (never of the thread count), and merges the
//     chunk partials serially in chunk order. Floating-point accumulation
//     is therefore reproducible at any thread count, including 1.
//
// Thread-count policy: every entry point takes a `ParallelConfig`.
// `threads == 0` (default) resolves to `std::thread::hardware_concurrency()`;
// `threads == 1` runs inline on the calling thread without touching the
// pool — the exact serial code path, useful for debugging and as the
// reference side of the parallel-equivalence test suite.
//
// The global pool is created lazily on first parallel call and lives for
// the process. Nested parallel calls (a task that itself calls
// `parallel_for`) are safe: they detect that they already run inside a
// parallel region and execute inline instead of re-entering the pool.
//
// RNG discipline for parallel generation sites: never share one sequential
// generator across shards. Derive one independent stream per shard with
// `shard_seed(master, salt, index)` (SplitMix64 hashing, see rng.h) so a
// shard's stream depends only on (master seed, site, shard index) — not on
// execution order.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace cloudlens {

/// Per-call-site parallelism knob.
struct ParallelConfig {
  /// Worker threads to use: 0 = all hardware threads, 1 = serial (inline
  /// on the calling thread, no pool involvement).
  std::size_t threads = 0;

  /// The effective thread count (>= 1).
  std::size_t resolved() const;

  static ParallelConfig serial() { return ParallelConfig{1}; }
  static ParallelConfig with_threads(std::size_t n) {
    return ParallelConfig{n};
  }
};

/// A lazily-started, process-wide pool of worker threads. User code should
/// normally go through `parallel_for`/`parallel_map`/`parallel_reduce`;
/// the pool is exposed for tests and specialized call sites.
class ThreadPool {
 public:
  /// The process-wide pool (hardware_concurrency workers, min 1), started
  /// on first use.
  static ThreadPool& global();

  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Run `task(0) .. task(count-1)`, distributing indexes dynamically over
  /// at most `concurrency` threads (the calling thread participates).
  /// Blocks until every task finished. The first exception thrown by any
  /// task is rethrown here after the batch has drained; remaining tasks
  /// still claimed are executed (exceptions beyond the first are dropped).
  /// Reentrant calls from inside a task run inline (serially).
  void run(std::size_t count, std::size_t concurrency,
           const std::function<void(std::size_t)>& task);

  /// True while the calling thread is executing inside a pool batch (used
  /// to make nested parallel calls degrade to inline execution).
  static bool inside_parallel_region();

 private:
  struct Impl;
  struct Batch;
  void worker_loop(std::size_t worker_index);

  Impl* impl_;
  std::vector<std::thread> threads_;
};

namespace detail {

/// Chunk grid used by parallel_reduce: boundaries depend on n only.
/// Returns the half-open [begin, end) bounds of `chunk` out of
/// `reduce_chunk_count(n)` chunks.
std::size_t reduce_chunk_count(std::size_t n);
std::pair<std::size_t, std::size_t> reduce_chunk_bounds(std::size_t n,
                                                        std::size_t chunk);

/// Core block-scheduled loop: runs fn over [0, n) using the global pool.
/// Serial (inline, in index order) when the resolved thread count is 1,
/// n < 2, or the caller is already inside a parallel region.
void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       const ParallelConfig& config);

}  // namespace detail

/// Apply `fn(i)` for every i in [0, n). Iterations must be independent
/// (write disjoint data); any interleaving must be acceptable. Exceptions
/// from `fn` propagate to the caller.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, const ParallelConfig& config = {}) {
  detail::parallel_for_impl(n, std::function<void(std::size_t)>(fn), config);
}

/// Collect `fn(i)` for every i into a vector, in index order. `T` must be
/// default-constructible and movable. Because slot i only ever holds
/// result i, the output is bit-identical at any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                            const ParallelConfig& config = {}) {
  std::vector<T> out(n);
  detail::parallel_for_impl(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, config);
  return out;
}

/// Order-independent reduction with deterministic chunked merging.
///
/// The index range [0, n) is cut into a fixed chunk grid (a pure function
/// of n — see detail::reduce_chunk_bounds). For each chunk, `chunk_fn`
/// folds the chunk serially into a fresh accumulator seeded from `init`:
///     Acc acc = init; for (i in [begin, end)) chunk_fn(acc, i);
/// Chunk partials are then merged serially in ascending chunk order with
/// `merge(total, partial)`. The same grid and merge order are used at
/// every thread count (including 1), so the result — floating point
/// included — is bit-identical regardless of parallelism.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc parallel_reduce(std::size_t n, Acc init, ChunkFn&& chunk_fn,
                    MergeFn&& merge, const ParallelConfig& config = {}) {
  if (n == 0) return init;
  const std::size_t chunks = detail::reduce_chunk_count(n);
  std::vector<Acc> partials(chunks, init);
  detail::parallel_for_impl(
      chunks,
      [&](std::size_t c) {
        const auto [begin, end] = detail::reduce_chunk_bounds(n, c);
        for (std::size_t i = begin; i < end; ++i) chunk_fn(partials[c], i);
      },
      config);
  Acc total = std::move(partials[0]);
  for (std::size_t c = 1; c < chunks; ++c) merge(total, partials[c]);
  return total;
}

}  // namespace cloudlens
