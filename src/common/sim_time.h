// Simulation time for cloudlens.
//
// Time is an integer count of seconds since the simulation epoch, which is
// defined to be 00:00 on a Monday. The paper's dataset is one ordinary week
// sampled at 5-minute granularity; these helpers encode that calendar.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace cloudlens {

/// Seconds since simulation epoch (Monday 00:00). Signed so that durations
/// and differences are well-behaved.
using SimTime = std::int64_t;
/// A span of simulated seconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 3600;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kWeek = 7 * kDay;
/// Telemetry granularity used throughout the paper's dataset.
inline constexpr SimDuration kTelemetryInterval = 5 * kMinute;

/// Hour-of-day in [0, 24), in the *local* frame of the caller.
inline int hour_of_day(SimTime t) {
  const SimTime m = ((t % kDay) + kDay) % kDay;
  return static_cast<int>(m / kHour);
}

/// Fractional hour-of-day in [0, 24).
inline double frac_hour_of_day(SimTime t) {
  const SimTime m = ((t % kDay) + kDay) % kDay;
  return static_cast<double>(m) / kHour;
}

/// Day-of-week with 0 = Monday ... 6 = Sunday.
inline int day_of_week(SimTime t) {
  const SimTime d = ((t / kDay) % 7 + 7) % 7;
  return static_cast<int>(d);
}

inline bool is_weekend(SimTime t) { return day_of_week(t) >= 5; }

/// Minute-of-hour in [0, 60).
inline int minute_of_hour(SimTime t) {
  const SimTime m = ((t % kHour) + kHour) % kHour;
  return static_cast<int>(m / kMinute);
}

/// "Tue 14:35" style rendering for logs and bench output.
std::string format_sim_time(SimTime t);

/// A regular grid of sample instants: start, start+step, ...,
/// start+(count-1)*step. The canonical telemetry grid is
/// TimeGrid{0, kTelemetryInterval, kWeek / kTelemetryInterval}.
struct TimeGrid {
  SimTime start = 0;
  SimDuration step = kTelemetryInterval;
  std::size_t count = 0;

  SimTime at(std::size_t i) const {
    CL_CHECK(i < count);
    return start + static_cast<SimTime>(i) * step;
  }
  SimTime end() const { return start + static_cast<SimTime>(count) * step; }

  /// Index of the grid slot containing time t (t must lie in [start, end)).
  std::size_t index_of(SimTime t) const {
    CL_CHECK(t >= start && t < end());
    return static_cast<std::size_t>((t - start) / step);
  }

  bool contains(SimTime t) const { return t >= start && t < end(); }

  /// Number of grid points per hour (step must divide an hour evenly or
  /// vice versa — used for hourly aggregation).
  std::size_t points_per_hour() const {
    CL_CHECK(step > 0 && kHour % step == 0);
    return static_cast<std::size_t>(kHour / step);
  }

  bool operator==(const TimeGrid&) const = default;
};

/// The one-week, 5-minute grid used by default across cloudlens
/// (2016 samples).
inline TimeGrid week_telemetry_grid() {
  return TimeGrid{0, kTelemetryInterval,
                  static_cast<std::size_t>(kWeek / kTelemetryInterval)};
}

/// One-week hourly grid (168 samples).
inline TimeGrid week_hourly_grid() {
  return TimeGrid{0, kHour, static_cast<std::size_t>(kWeek / kHour)};
}

}  // namespace cloudlens
