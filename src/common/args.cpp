#include "common/args.h"

#include <cstdlib>
#include <utility>

namespace cloudlens::args {

namespace {

/// Numeric parse helper: the whole token must convert, so "12x" and "" are
/// rejected rather than silently truncated (std::atof semantics would hide
/// typos like `--scale 0..3`).
template <typename T, typename Convert>
std::function<bool(const std::string&)> numeric(T* target, Convert convert) {
  return [target, convert](const std::string& value) {
    if (value.empty()) return false;
    char* end = nullptr;
    const auto parsed = convert(value.c_str(), &end);
    if (end != value.c_str() + value.size()) return false;
    *target = static_cast<T>(parsed);
    return true;
  };
}

std::function<bool(const std::string&)> with_seen(
    std::function<bool(const std::string&)> apply, bool* seen) {
  if (seen == nullptr) return apply;
  return [apply = std::move(apply), seen](const std::string& value) {
    if (!apply(value)) return false;
    *seen = true;
    return true;
  };
}

}  // namespace

FlagSet& FlagSet::add(Flag flag) {
  flags_.push_back(std::move(flag));
  return *this;
}

const FlagSet::Flag* FlagSet::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

FlagSet& FlagSet::flag(std::string name, bool* target) {
  Flag f;
  f.name = std::move(name);
  f.presence = target;
  return add(std::move(f));
}

FlagSet& FlagSet::value(std::string name, std::string* target, bool* seen) {
  return value(std::move(name), with_seen(
                                    [target](const std::string& v) {
                                      *target = v;
                                      return true;
                                    },
                                    seen));
}

FlagSet& FlagSet::value(std::string name, double* target, bool* seen) {
  return value(std::move(name),
               with_seen(numeric(target, [](const char* s, char** end) {
                           return std::strtod(s, end);
                         }),
                         seen),
               "want a number");
}

FlagSet& FlagSet::value(std::string name, std::uint64_t* target, bool* seen) {
  return value(std::move(name),
               with_seen(numeric(target, [](const char* s, char** end) {
                           return std::strtoull(s, end, 10);
                         }),
                         seen),
               "want an unsigned integer");
}

FlagSet& FlagSet::value(std::string name, std::uint32_t* target, bool* seen) {
  return value(std::move(name),
               with_seen(numeric(target, [](const char* s, char** end) {
                           return std::strtoull(s, end, 10);
                         }),
                         seen),
               "want an unsigned integer");
}

FlagSet& FlagSet::value(std::string name,
                        std::function<bool(const std::string&)> apply,
                        std::string hint) {
  Flag f;
  f.name = std::move(name);
  f.takes_value = true;
  f.apply = std::move(apply);
  f.hint = std::move(hint);
  return add(std::move(f));
}

bool FlagSet::parse(int argc, char** argv, int start) {
  error_.clear();
  for (int i = start; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 && !(token.size() > 1 && token[0] == '-')) {
      error_ = "unexpected argument: " + token;
      return false;
    }
    // Split the --flag=VALUE spelling.
    std::string name = token;
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
      has_inline = true;
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      error_ = "unknown flag: " + name;
      return false;
    }
    if (!flag->takes_value) {
      if (has_inline) {
        error_ = "flag takes no value: " + token;
        return false;
      }
      *flag->presence = true;
      continue;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      error_ = "missing value for " + name;
      return false;
    }
    if (!flag->apply(value)) {
      error_ = "invalid value for " + name + ": '" + value + "'";
      if (!flag->hint.empty()) error_ += " (" + flag->hint + ")";
      return false;
    }
  }
  return true;
}

}  // namespace cloudlens::args
