#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"  // obs::now_ns

namespace cloudlens {
namespace {

/// True while the current thread executes a task of some pool batch (worker
/// or participating caller). Nested parallel calls check this and run
/// inline, which makes reentrancy safe by construction.
thread_local bool t_inside_parallel_region = false;

}  // namespace

std::size_t ParallelConfig::resolved() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// ---------------------------------------------------------------------------
// ThreadPool

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  /// Worker threads allowed to help (the submitting caller always
  /// participates on top of these).
  std::size_t helper_limit = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  /// Worker threads currently inside work(); guarded by Impl::mutex. The
  /// submitting caller waits for done == count AND active == 0, so the
  /// stack-allocated Batch cannot be destroyed while any worker still
  /// holds a pointer into it.
  std::size_t active = 0;
  std::mutex error_mutex;
  std::exception_ptr error;  ///< first exception thrown by any task

  /// Claim-and-run loop shared by workers and the submitting caller.
  void work() {
    // Per-lane busy time: one histogram sample per participating thread
    // per batch. Metrics are a write-only side channel — recording them
    // cannot influence which indexes a lane claims or what tasks compute,
    // so results stay bit-identical with metrics on or off.
    auto& metrics = obs::MetricsRegistry::global();
    const bool timed = metrics.enabled();
    const std::uint64_t t0 = timed ? obs::now_ns() : 0;
    std::uint64_t claimed = 0;
    t_inside_parallel_region = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      ++claimed;
      try {
        (*task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
    t_inside_parallel_region = false;
    if (timed && claimed > 0) {
      metrics.observe_seconds(
          obs::Histogram::kParallelWorkerBusySeconds,
          static_cast<double>(obs::now_ns() - t0) * 1e-9);
    }
  }

  bool finished() const {
    return done.load(std::memory_order_acquire) >= count;
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;      ///< workers wait here for a batch
  std::condition_variable drained;   ///< run() waits here for completion
  std::mutex run_mutex;              ///< serializes concurrent run() calls
  Batch* batch = nullptr;            ///< currently published batch
  std::uint64_t generation = 0;      ///< bumped per published batch
  bool stop = false;
};

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(ParallelConfig{}.resolved());
  return pool;
}

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  // The submitting thread always participates, so `workers - 1` background
  // threads saturate `workers` lanes; keep at least one background worker
  // so the pool is a real pool even on single-core hosts.
  const std::size_t background = workers > 1 ? workers - 1 : 1;
  threads_.reserve(background);
  for (std::size_t w = 0; w < background; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& t : threads_) t.join();
  delete impl_;
}

bool ThreadPool::inside_parallel_region() { return t_inside_parallel_region; }

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  for (;;) {
    impl_->wake.wait(lock, [&] {
      return impl_->stop ||
             (impl_->batch != nullptr && impl_->generation != seen);
    });
    if (impl_->stop) return;
    seen = impl_->generation;
    Batch* batch = impl_->batch;
    if (worker_index >= batch->helper_limit) continue;  // capped batch
    ++batch->active;
    lock.unlock();
    batch->work();
    lock.lock();
    --batch->active;
    impl_->drained.notify_all();
  }
}

void ThreadPool::run(std::size_t count, std::size_t concurrency,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  auto& metrics = obs::MetricsRegistry::global();
  if (t_inside_parallel_region || concurrency <= 1 || count == 1 ||
      threads_.empty()) {
    // Inline serial path (also the nested-call path): index order.
    metrics.add(obs::Counter::kParallelInlineBatches);
    metrics.add(obs::Counter::kParallelTasks, count);
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  metrics.add(obs::Counter::kParallelBatches);
  metrics.add(obs::Counter::kParallelTasks, count);
  metrics.set(obs::Gauge::kParallelPoolWorkers,
              static_cast<double>(workers()));

  std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
  Batch batch;
  batch.task = &task;
  batch.count = count;
  batch.helper_limit = std::min(threads_.size(), concurrency - 1);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->batch = &batch;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  batch.work();  // the caller is one of the lanes

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->drained.wait(
        lock, [&] { return batch.finished() && batch.active == 0; });
    impl_->batch = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

// ---------------------------------------------------------------------------
// Free functions

namespace detail {

std::size_t reduce_chunk_count(std::size_t n) {
  // Fixed grid: enough chunks for good load balance on common machines,
  // independent of the runtime thread count so that merge order — and with
  // it floating-point accumulation — is a pure function of n.
  constexpr std::size_t kMaxChunks = 64;
  return std::min(n, kMaxChunks);
}

std::pair<std::size_t, std::size_t> reduce_chunk_bounds(std::size_t n,
                                                        std::size_t chunk) {
  const std::size_t chunks = reduce_chunk_count(n);
  CL_CHECK(chunk < chunks);
  // Balanced split: the first n % chunks chunks get one extra element.
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = chunk * base + std::min(chunk, extra);
  const std::size_t len = base + (chunk < extra ? 1 : 0);
  return {begin, begin + len};
}

void parallel_for_impl(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       const ParallelConfig& config) {
  if (n == 0) return;
  const std::size_t threads = std::min(config.resolved(), n);
  if (threads <= 1 || ThreadPool::inside_parallel_region()) {
    auto& metrics = obs::MetricsRegistry::global();
    metrics.add(obs::Counter::kParallelInlineBatches);
    metrics.add(obs::Counter::kParallelTasks, n);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Block scheduling keeps per-task dispatch overhead low for fine-grained
  // loops; the block layout never influences results (iterations are
  // independent by contract).
  const std::size_t block = std::max<std::size_t>(1, n / (threads * 8));
  const std::size_t blocks = (n + block - 1) / block;
  ThreadPool::global().run(blocks, threads, [&](std::size_t b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(n, begin + block);
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace detail
}  // namespace cloudlens
