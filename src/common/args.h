// Declarative command-line flag parsing shared by the cloudlens tools.
//
// A FlagSet is a table of flag registrations; parse() walks argv against it.
// Both `--flag VALUE` and `--flag=VALUE` spellings are accepted for every
// value-taking flag. Errors (unknown flag, missing value, rejected value)
// always name the offending token so the user sees exactly which argument
// failed, via error().
//
//   args::FlagSet flags;
//   flags.flag("--no-cache", &no_cache);          // presence flag
//   flags.value("--scale", &scale);               // double
//   flags.value("--out", &dir);                   // string
//   flags.value("--kernels", [](const std::string& v) {
//     return set_tier_from_string(v);             // false => rejected value
//   });
//   if (!flags.parse(argc, argv, /*start=*/2)) {
//     std::cerr << flags.error() << "\n"; ...
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cloudlens::args {

/// A registry of flags plus the parse loop over argv. Registrations borrow
/// the target pointers, so the FlagSet must not outlive the variables it
/// writes into (in practice both live on the same stack frame).
class FlagSet {
 public:
  /// Presence flag: `--name` sets *target to true. No value is consumed,
  /// and the `--name=...` spelling is rejected as an unknown token.
  FlagSet& flag(std::string name, bool* target);

  /// Value flags: `--name VALUE` or `--name=VALUE`. Numeric conversions
  /// follow strtod/strtoull; a non-numeric value is a parse error naming
  /// the token. The `seen` pointer, when given, is set to true once the
  /// flag appears (for "was this flag passed at all?" distinctions).
  FlagSet& value(std::string name, std::string* target, bool* seen = nullptr);
  FlagSet& value(std::string name, double* target, bool* seen = nullptr);
  FlagSet& value(std::string name, std::uint64_t* target,
                 bool* seen = nullptr);
  FlagSet& value(std::string name, std::uint32_t* target,
                 bool* seen = nullptr);

  /// Custom value flag: apply() returns false to reject the value, which
  /// surfaces as `invalid value for --name: 'VALUE'` (append a hint with
  /// the optional third argument, e.g. "want strict|fast").
  FlagSet& value(std::string name, std::function<bool(const std::string&)>,
                 std::string hint = {});

  /// Parses argv[start..argc). Returns false on the first offending token;
  /// error() then describes it. Tokens that do not start with "--" are
  /// rejected as unexpected positional arguments.
  bool parse(int argc, char** argv, int start);

  const std::string& error() const { return error_; }

 private:
  struct Flag {
    std::string name;
    bool takes_value = false;
    std::string hint;                               ///< for rejected values
    std::function<bool(const std::string&)> apply;  ///< value flags
    bool* presence = nullptr;                       ///< presence flags
  };

  FlagSet& add(Flag flag);
  const Flag* find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::string error_;
};

}  // namespace cloudlens::args
