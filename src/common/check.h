// Lightweight invariant checking for cloudlens.
//
// CL_CHECK is enabled in all build types: violations indicate programmer
// error or corrupted inputs and throw cloudlens::CheckError so tests can
// assert on failure paths without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cloudlens {

/// Thrown when a CL_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace cloudlens

#define CL_CHECK(cond)                                                 \
  do {                                                                 \
    if (!(cond))                                                       \
      ::cloudlens::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CL_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::cloudlens::detail::check_failed(#cond, __FILE__, __LINE__,     \
                                        os_.str());                    \
    }                                                                  \
  } while (0)
