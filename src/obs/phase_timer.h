// phase_timer: the one-liner that instruments a phase.
//
//   obs::PhaseTimer timer("analysis.classify_population",
//                         obs::Histogram::kAnalysisPassSeconds,
//                         obs::Counter::kAnalysisPasses,
//                         &registry, &sink);
//
// On destruction it (a) bumps the phase counter, (b) records the phase's
// wall time into the latency histogram, and (c) emits a trace span with
// the phase name — each part independently gated on its backend's enabled
// flag, so any combination of metrics-only / tracing-only / both / neither
// works and costs nothing when everything is off (the clock is read only
// when at least one backend is enabled).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace cloudlens::obs {

class PhaseTimer {
 public:
  PhaseTimer(std::string_view name, Histogram histogram, Counter counter,
             MetricsRegistry* metrics = nullptr, TraceSink* sink = nullptr)
      : metrics_(metrics != nullptr ? metrics : &MetricsRegistry::global()),
        sink_(sink != nullptr ? sink : &TraceSink::global()),
        histogram_(histogram),
        counter_(counter) {
    const bool metrics_on = metrics_->enabled();
    const bool trace_on = sink_->enabled();
    if (!metrics_on && !trace_on) {
      metrics_ = nullptr;
      sink_ = nullptr;
      return;
    }
    if (!metrics_on) metrics_ = nullptr;
    if (!trace_on) sink_ = nullptr;
    name_.assign(name);
    start_ns_ = now_ns();
  }

  ~PhaseTimer() {
    if (metrics_ == nullptr && sink_ == nullptr) return;
    const std::uint64_t end = now_ns();
    const std::uint64_t dur = end >= start_ns_ ? end - start_ns_ : 0;
    if (metrics_ != nullptr) {
      metrics_->add(counter_);
      metrics_->observe_seconds(histogram_,
                                static_cast<double>(dur) * 1e-9);
    }
    if (sink_ != nullptr) sink_->record(name_, "phase", start_ns_, dur);
  }

  PhaseTimer(PhaseTimer&& other) noexcept
      : metrics_(other.metrics_),
        sink_(other.sink_),
        histogram_(other.histogram_),
        counter_(other.counter_),
        name_(std::move(other.name_)),
        start_ns_(other.start_ns_) {
    other.metrics_ = nullptr;
    other.sink_ = nullptr;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  PhaseTimer& operator=(PhaseTimer&&) = delete;

 private:
  MetricsRegistry* metrics_;  ///< null when metrics were off at start
  TraceSink* sink_;           ///< null when tracing was off at start
  Histogram histogram_;
  Counter counter_;
  std::string name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace cloudlens::obs
