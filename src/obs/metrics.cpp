#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <limits>
#include <ostream>

namespace cloudlens::obs {
namespace {

constexpr std::string_view kCounterNames[] = {
#define CLOUDLENS_OBS_NAME(id, name) name,
    CLOUDLENS_OBS_COUNTERS(CLOUDLENS_OBS_NAME)
#undef CLOUDLENS_OBS_NAME
};
constexpr std::string_view kGaugeNames[] = {
#define CLOUDLENS_OBS_NAME(id, name) name,
    CLOUDLENS_OBS_GAUGES(CLOUDLENS_OBS_NAME)
#undef CLOUDLENS_OBS_NAME
};
constexpr std::string_view kHistogramNames[] = {
#define CLOUDLENS_OBS_NAME(id, name) name,
    CLOUDLENS_OBS_HISTOGRAMS(CLOUDLENS_OBS_NAME)
#undef CLOUDLENS_OBS_NAME
};

/// Bucket index for a sample of `ns` nanoseconds: bucket i covers
/// (2^(i-1), 2^i] microseconds, bucket 0 covers [0, 1us], the last bucket
/// is unbounded. Purely integer arithmetic — no float rounding, so the
/// same sample always lands in the same bucket.
std::size_t bucket_for_ns(std::uint64_t ns) {
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    if (ns <= histogram_bucket_upper_ns(i)) return i;
  }
  return kHistogramBuckets - 1;
}

}  // namespace

std::string_view name_of(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}
std::string_view name_of(Gauge g) {
  return kGaugeNames[static_cast<std::size_t>(g)];
}
std::string_view name_of(Histogram h) {
  return kHistogramNames[static_cast<std::size_t>(h)];
}

std::uint64_t histogram_bucket_upper_ns(std::size_t i) {
  if (i + 1 >= kHistogramBuckets)
    return std::numeric_limits<std::uint64_t>::max();
  return std::uint64_t{1000} << i;  // 2^i microseconds, in ns
}

std::size_t thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads may record during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::shard() {
  const std::size_t slot = thread_index() % kMaxShards;
  Shard* s = shards_[slot].load(std::memory_order_acquire);
  if (s == nullptr) {
    auto* fresh = new Shard();
    if (shards_[slot].compare_exchange_strong(s, fresh,
                                              std::memory_order_acq_rel)) {
      s = fresh;
    } else {
      delete fresh;  // another thread mapped onto the same slot first
    }
  }
  return *s;
}

void MetricsRegistry::set(Gauge g, double value) {
  if (!enabled()) return;
  gauges_[static_cast<std::size_t>(g)].store(std::bit_cast<std::uint64_t>(value),
                                             std::memory_order_relaxed);
}

void MetricsRegistry::observe_seconds(Histogram h, double seconds) {
  if (!enabled()) return;
  if (!(seconds > 0)) seconds = 0;  // clamp negatives and NaN to zero
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  HistogramShard& hist = shard().histograms[static_cast<std::size_t>(h)];
  hist.buckets[bucket_for_ns(ns)].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum_ns.fetch_add(ns, std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  for (auto& slot : shards_) {
    Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->histograms) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum_ns.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  constexpr std::size_t nc = static_cast<std::size_t>(Counter::kCount);
  constexpr std::size_t ng = static_cast<std::size_t>(Gauge::kCount);
  constexpr std::size_t nh = static_cast<std::size_t>(Histogram::kCount);

  std::array<std::uint64_t, nc> counters{};
  std::array<HistogramSnapshot, nh> hists{};
  // Merge order contract: shards are visited in ascending index order.
  // All merges are integer sums, so the totals are independent of which
  // thread recorded what — only the multiset of samples matters.
  for (std::size_t slot = 0; slot < kMaxShards; ++slot) {
    const Shard* s = shards_[slot].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (std::size_t c = 0; c < nc; ++c)
      counters[c] += s->counters[c].load(std::memory_order_relaxed);
    for (std::size_t h = 0; h < nh; ++h) {
      const HistogramShard& hs = s->histograms[h];
      hists[h].count += hs.count.load(std::memory_order_relaxed);
      hists[h].sum_ns += hs.sum_ns.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        hists[h].buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
    }
  }

  snap.counters.reserve(nc);
  for (std::size_t c = 0; c < nc; ++c)
    snap.counters.emplace_back(kCounterNames[c], counters[c]);
  snap.gauges.reserve(ng);
  for (std::size_t g = 0; g < ng; ++g)
    snap.gauges.emplace_back(
        kGaugeNames[g],
        std::bit_cast<double>(gauges_[g].load(std::memory_order_relaxed)));
  snap.histograms.reserve(nh);
  for (std::size_t h = 0; h < nh; ++h) {
    hists[h].name = kHistogramNames[h];
    snap.histograms.push_back(hists[h]);
  }
  return snap;
}

std::uint64_t MetricsRegistry::Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? "," : "") << "\n    \"" << snap.counters[i].first
        << "\": " << snap.counters[i].second;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const double v = snap.gauges[i].second;
    out << (i ? "," : "") << "\n    \"" << snap.gauges[i].first
        << "\": " << (std::isfinite(v) ? v : 0.0);
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    out << (i ? "," : "") << "\n    \"" << h.name << "\": {\"count\": "
        << h.count << ", \"sum_seconds\": " << h.sum_seconds()
        << ", \"mean_seconds\": " << h.mean_seconds() << ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      out << (b ? "," : "") << h.buckets[b];
    out << "]}";
  }
  out << "\n  }\n}\n";
}

}  // namespace cloudlens::obs
