#include "obs/trace_sink.h"

#include <chrono>
#include <ostream>

#include "obs/metrics.h"

namespace cloudlens::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

/// Microseconds with zero-padded nanosecond fraction ("12.005").
void write_us(std::ostream& out, std::uint64_t ns) {
  const std::uint64_t whole = ns / 1000;
  const std::uint64_t frac = ns % 1000;
  out << whole << '.' << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
void write_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::uint64_t now_ns() {
  // Capture the epoch before reading the clock: operand evaluation order
  // is unspecified, and on the very first call the epoch-initializing read
  // must happen-before the "now" read or the subtraction underflows.
  const std::uint64_t epoch = process_epoch_ns();
  return steady_ns() - epoch;
}

TraceSink& TraceSink::global() {
  // Leaked on purpose: spans may end during static teardown.
  static TraceSink* sink = new TraceSink();
  return *sink;
}

void TraceSink::record(std::string_view name, std::string_view category,
                       std::uint64_t start_ns, std::uint64_t duration_ns) {
  if (!enabled()) return;
  Event event;
  event.name.assign(name);
  event.category.assign(category);
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.tid = static_cast<std::uint32_t>(thread_index());
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceSink::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceSink::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    out << (i ? ",\n" : "\n") << "  {\"name\": \"";
    write_escaped(out, e.name);
    out << "\", \"cat\": \"";
    write_escaped(out, e.category);
    // Chrome's ts/dur are microseconds; keep nanosecond precision via the
    // fractional part.
    out << "\", \"ph\": \"X\", \"ts\": ";
    write_us(out, e.start_ns);
    out << ", \"dur\": ";
    write_us(out, e.duration_ns);
    out << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

Span::Span(std::string_view name, TraceSink* sink, std::string_view category) {
  TraceSink* target = sink != nullptr ? sink : &TraceSink::global();
  if (!target->enabled()) return;  // sink_ stays null: destructor is a no-op
  sink_ = target;
  name_.assign(name);
  category_.assign(category);
  start_ns_ = now_ns();
}

Span::Span(Span&& other) noexcept
    : sink_(other.sink_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      start_ns_(other.start_ns_) {
  other.sink_ = nullptr;
}

Span::~Span() {
  if (sink_ == nullptr) return;
  const std::uint64_t end = now_ns();
  sink_->record(name_, category_, start_ns_,
                end >= start_ns_ ? end - start_ns_ : 0);
}

double Span::seconds_elapsed() const {
  if (sink_ == nullptr) return 0.0;
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

}  // namespace cloudlens::obs
