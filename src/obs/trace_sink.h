// RAII trace spans emitting Chrome Trace Event / Perfetto-compatible JSON.
//
// A `Span` measures one region of code on one thread; when it ends it
// records a complete event ("ph": "X") into a `TraceSink`. The sink's
// `write_json` output loads directly into chrome://tracing or
// https://ui.perfetto.dev, giving a per-thread flame view of a
// characterization run: generation, simulation, panel build, and every
// analysis pass, nested by call structure.
//
// Spans are coarse by design — one per phase or analysis pass, never one
// per VM or per tick — so the sink can afford a mutex-guarded append (the
// metrics hot path stays lock-free; see obs/metrics.h). A disabled sink
// reduces Span construction/destruction to one relaxed load each.
//
// Determinism contract: like metrics, tracing is a write-only side
// channel. Timestamps vary run to run, but span *structure* (which spans
// exist, how they nest on a thread) is a pure function of the workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloudlens::obs {

/// Monotonic nanoseconds since the first obs clock read in this process.
std::uint64_t now_ns();

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Process-wide default sink (starts disabled).
  static TraceSink& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Record one completed span. `tid` defaults to obs::thread_index().
  void record(std::string_view name, std::string_view category,
              std::uint64_t start_ns, std::uint64_t duration_ns);

  std::size_t event_count() const;
  void reset();

  /// Chrome Trace Event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Each event carries name, cat, ph ("X"), ts/dur (microseconds),
  /// pid, and tid. Events are written in recording order.
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::uint32_t tid = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// RAII span over the enclosing scope. Copies its name only when the sink
/// is enabled; a span against a disabled sink is two relaxed loads.
class Span {
 public:
  explicit Span(std::string_view name, TraceSink* sink = nullptr,
                std::string_view category = "cloudlens");
  ~Span();

  Span(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// Seconds elapsed since construction; 0 when the sink was disabled at
  /// construction time (no clock was read). PhaseTimer keeps its own clock
  /// so histograms work with tracing off.
  double seconds_elapsed() const;

 private:
  TraceSink* sink_ = nullptr;  ///< null once ended/moved-from or disabled
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace cloudlens::obs
