// Deterministic metrics substrate: counters, gauges, and fixed-bucket
// latency histograms behind one `MetricsRegistry`.
//
// Design constraints, in priority order:
//
//   1. *Enabling metrics never perturbs results.* Instrumentation is a
//      write-only side channel: no analysis code ever reads a metric, and
//      recording a sample allocates nothing and takes no lock on the hot
//      path. The deterministic parallel engine (common/parallel.h) stays
//      bit-identical with metrics on or off.
//   2. *Lock-free hot path.* Each thread records into its own shard (a
//      fixed-size block of relaxed atomics, claimed once per thread);
//      concurrent writers never contend on a cache line they both own.
//      Shards are merged in ascending shard-index order at snapshot time,
//      so a snapshot of deterministic inputs is itself deterministic:
//      counter and histogram-bucket merges are integer sums, and histogram
//      value sums are accumulated in integer nanoseconds — no
//      floating-point reassociation anywhere in the merge.
//   3. *Near-zero cost when disabled.* Every record call starts with one
//      relaxed load of the enabled flag; the default-off registry costs a
//      predicted-not-taken branch per call site.
//
// The metric catalog is compiled in (see the X-macro lists below): every
// instrumented subsystem — the thread pool, the simulator and allocator,
// the telemetry panel, the workload generator, the analysis passes, the
// knowledge extractor, and the policy advisor — records under a fixed
// dotted name, so consumers (`--metrics-out`, bench_obs, tests) can rely
// on a stable schema. Ids are plain enum values; recording is an array
// index plus one relaxed atomic RMW.
//
// A process-global registry (`MetricsRegistry::global()`) backs code that
// has no context parameter (the thread pool, the simulator); analysis
// entry points route through `AnalysisContext`, which defaults to the
// global registry but can be pointed at a private one (tests do this to
// assert exact counts in isolation).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cloudlens::obs {

// ---------------------------------------------------------------------------
// Metric catalog. One X-macro list per metric kind keeps the enum and the
// exported name table in sync by construction.

// Counters: monotonically increasing event counts.
#define CLOUDLENS_OBS_COUNTERS(X)                              \
  /* common/parallel: the deterministic thread pool */         \
  X(kParallelBatches, "parallel.batches")                      \
  X(kParallelTasks, "parallel.tasks")                          \
  X(kParallelInlineBatches, "parallel.inline_batches")         \
  /* cloudsim/simulator: event replay */                       \
  X(kSimRuns, "sim.runs")                                      \
  X(kSimEvents, "sim.events")                                  \
  X(kSimRequested, "sim.requests")                             \
  X(kSimPlaced, "sim.placed")                                  \
  X(kSimAllocationFailures, "sim.allocation_failures")         \
  X(kSimOutageKills, "sim.outage_kills")                       \
  X(kSimResubmits, "sim.resubmits")                            \
  /* cloudsim/allocator: placement rule chain */               \
  X(kAllocAttempts, "alloc.attempts")                          \
  X(kAllocFailures, "alloc.failures")                          \
  X(kAllocReleases, "alloc.releases")                          \
  X(kAllocNodesScanned, "alloc.nodes_scanned")                 \
  /* cloudsim/telemetry_panel: columnar cache */               \
  X(kPanelBuilds, "panel.builds")                              \
  X(kPanelRowsFilled, "panel.rows_filled")                     \
  X(kPanelRowHits, "panel.row_hits")                           \
  X(kPanelRowMisses, "panel.row_misses")                       \
  /* cloudsim/shard: out-of-core telemetry shard store */      \
  X(kPanelShardSpills, "panel.shard_spills")                   \
  X(kPanelShardPageIns, "panel.shard_page_ins")                \
  X(kPanelShardEvictions, "panel.shard_evictions")             \
  X(kPanelShardRowReads, "panel.shard_row_reads")              \
  /* cloudsim/population: out-of-core record shard store */    \
  X(kPopulationShardSpills, "population.shard_spills")         \
  X(kPopulationShardPageIns, "population.shard_page_ins")      \
  X(kPopulationShardEvictions, "population.shard_evictions")   \
  X(kPopulationShardRecordReads, "population.shard_record_reads") \
  /* workloads/generator */                                    \
  X(kGenRuns, "gen.runs")                                      \
  X(kGenOwners, "gen.owners")                                  \
  X(kGenRequests, "gen.requests")                              \
  X(kGenStandingRequests, "gen.standing_requests")             \
  X(kGenChurnRequests, "gen.churn_requests")                   \
  /* analysis passes */                                        \
  X(kAnalysisPasses, "analysis.passes")                        \
  X(kAnalysisVmsClassified, "analysis.vms_classified")         \
  X(kAnalysisCorrelations, "analysis.correlations")            \
  X(kAnalysisSeriesRolledUp, "analysis.series_rolled_up")      \
  X(kAnalysisReports, "analysis.reports")                      \
  /* kb extraction */                                          \
  X(kKbExtractions, "kb.extractions")                          \
  X(kKbRecords, "kb.records_extracted")                        \
  /* pipeline: stage-graph runs + artifact cache */            \
  X(kPipelineStageRuns, "pipeline.stage_runs")                 \
  X(kPipelineCacheHits, "pipeline.cache_hits")                 \
  X(kPipelineCacheMisses, "pipeline.cache_misses")             \
  X(kPipelineCacheStores, "pipeline.cache_stores")             \
  X(kPipelineCacheBytesWritten, "pipeline.cache_bytes_written") \
  X(kPipelineCacheBytesRead, "pipeline.cache_bytes_read")      \
  /* stats/kernels: SIMD kernel tier */                        \
  X(kKernelPearsonCalls, "kernels.pearson_calls")              \
  X(kKernelBandCalls, "kernels.band_calls")                    \
  X(kKernelFftStages, "kernels.fft_stages")                    \
  X(kKernelNoiseFills, "kernels.noise_fills")                  \
  X(kKernelTierFallbacks, "kernels.tier_fallbacks")            \
  /* cloudsim/trace_io: CSV bridge */                          \
  X(kTraceIoUtilizationVmsDropped, "trace_io.utilization_vms_dropped") \
  /* ingest: real-trace backends + chunked parallel CSV decode */ \
  X(kIngestImports, "ingest.imports")                          \
  X(kIngestFiles, "ingest.files")                              \
  X(kIngestBytes, "ingest.bytes_decoded")                      \
  X(kIngestRows, "ingest.rows_decoded")                        \
  X(kIngestChunks, "ingest.chunks_decoded")                    \
  X(kIngestRowsSkipped, "ingest.rows_skipped")                 \
  X(kIngestVms, "ingest.vms")                                  \
  X(kIngestSamples, "ingest.samples")                          \
  X(kIngestFidelityEvents, "ingest.fidelity_events")           \
  X(kIngestFidelityViolations, "ingest.fidelity_violations")   \
  /* serve: streaming ingest + incremental analysis engine */  \
  X(kServeEventsIngested, "serve.events_ingested")             \
  X(kServeVmsCreated, "serve.vms_created")                     \
  X(kServeVmsDeleted, "serve.vms_deleted")                     \
  X(kServeSamplesIngested, "serve.samples_ingested")           \
  X(kServeSnapshotsBuilt, "serve.snapshots_built")             \
  X(kServeSnapshotReuses, "serve.snapshot_reuses")             \
  X(kServePopulationFreezes, "serve.population_freezes")       \
  X(kServePopulationReuses, "serve.population_reuses")         \
  X(kServeQueries, "serve.queries")                            \
  X(kServeKbReused, "serve.kb_records_reused")                 \
  X(kServeKbRecomputed, "serve.kb_records_recomputed")         \
  X(kServeWindowRolls, "serve.window_rolls")                   \
  X(kServeCheckpoints, "serve.checkpoints")                    \
  /* policies: advisor decisions */                            \
  X(kPolicyRecommendations, "policy.recommendations")          \
  X(kPolicySpot, "policy.spot_adoptions")                      \
  X(kPolicyOversub, "policy.oversubscriptions")                \
  X(kPolicyDeferral, "policy.deferrals")                       \
  X(kPolicyPreprovision, "policy.preprovisions")               \
  X(kPolicyRebalance, "policy.region_rebalances")

// Gauges: last-written (or max-tracked) instantaneous values.
#define CLOUDLENS_OBS_GAUGES(X)                                \
  X(kParallelPoolWorkers, "parallel.pool_workers")             \
  X(kPanelBytes, "panel.bytes")                                \
  X(kPanelVms, "panel.vms")                                    \
  X(kPanelShardCount, "panel.shard_count")                     \
  X(kPanelShardResidentBytes, "panel.shard_resident_bytes")    \
  X(kPopulationShardCount, "population.shard_count")           \
  X(kPopulationShardResidentBytes, "population.shard_resident_bytes") \
  /* resolved kernel dispatch: Tier / Mode enum values */      \
  X(kKernelTier, "kernels.tier")                               \
  X(kKernelMode, "kernels.mode")                               \
  /* serve: instantaneous engine state */                      \
  X(kServeEpoch, "serve.epoch_ticks")                          \
  X(kServeIngestLagSeconds, "serve.ingest_lag_seconds")        \
  X(kServeVmsResident, "serve.vms_resident")

// Histograms: latency distributions over fixed power-of-two buckets.
#define CLOUDLENS_OBS_HISTOGRAMS(X)                            \
  X(kParallelWorkerBusySeconds, "parallel.worker_busy_seconds") \
  X(kPanelBuildSeconds, "panel.build_seconds")                 \
  X(kAnalysisPassSeconds, "analysis.pass_seconds")             \
  X(kSimRunSeconds, "sim.run_seconds")                         \
  X(kGenSeconds, "gen.generate_seconds")                       \
  X(kKbExtractSeconds, "kb.extract_seconds")                   \
  X(kReportSeconds, "analysis.report_seconds")                 \
  X(kPipelineStageSeconds, "pipeline.stage_seconds")           \
  X(kPipelineSnapshotIoSeconds, "pipeline.snapshot_io_seconds") \
  X(kKernelBandSeconds, "kernels.band_seconds")                \
  X(kIngestDecodeSeconds, "ingest.decode_seconds")             \
  X(kServeIngestBatchSeconds, "serve.ingest_batch_seconds")    \
  X(kServeSnapshotBuildSeconds, "serve.snapshot_build_seconds") \
  X(kServeQuerySeconds, "serve.query_seconds")

enum class Counter : std::uint16_t {
#define CLOUDLENS_OBS_ENUM(id, name) id,
  CLOUDLENS_OBS_COUNTERS(CLOUDLENS_OBS_ENUM)
#undef CLOUDLENS_OBS_ENUM
      kCount
};

enum class Gauge : std::uint16_t {
#define CLOUDLENS_OBS_ENUM(id, name) id,
  CLOUDLENS_OBS_GAUGES(CLOUDLENS_OBS_ENUM)
#undef CLOUDLENS_OBS_ENUM
      kCount
};

enum class Histogram : std::uint16_t {
#define CLOUDLENS_OBS_ENUM(id, name) id,
  CLOUDLENS_OBS_HISTOGRAMS(CLOUDLENS_OBS_ENUM)
#undef CLOUDLENS_OBS_ENUM
      kCount
};

/// Exported dotted name of a metric (stable across runs and versions).
std::string_view name_of(Counter c);
std::string_view name_of(Gauge g);
std::string_view name_of(Histogram h);

/// Fixed histogram bucket grid: bucket i holds samples whose value (in
/// nanoseconds) is <= kBucketUpperNs[i]; the last bucket is unbounded.
/// Bounds are powers of two microseconds: 1us, 2us, 4us, ... ~67s, +inf.
inline constexpr std::size_t kHistogramBuckets = 28;

/// Upper bound (inclusive, nanoseconds) of bucket `i`; the last bucket
/// returns UINT64_MAX.
std::uint64_t histogram_bucket_upper_ns(std::size_t i);

/// Maximum per-thread shards a registry keeps. Threads beyond this share
/// shards (index wraps), which stays correct — every slot is atomic —
/// and only reduces the contention benefit.
inline constexpr std::size_t kMaxShards = 64;

/// Small dense per-thread index (stable for the thread's lifetime),
/// shared by the metrics shards and the trace sink's tid field.
std::size_t thread_index();

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (starts disabled).
  static MetricsRegistry& global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Zero every counter, gauge, and histogram (shards stay claimed).
  void reset();

  // --- hot-path recording (no-ops while disabled) ------------------------

  void add(Counter c, std::uint64_t delta = 1) {
    if (!enabled()) return;
    shard().counters[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Last write wins; typically set from one thread (sizes, capacities).
  void set(Gauge g, double value);

  /// Record one latency sample. Sub-nanosecond values land in bucket 0;
  /// negative values are clamped to 0.
  void observe_seconds(Histogram h, double seconds);

  // --- snapshot / export -------------------------------------------------

  struct HistogramSnapshot {
    std::string_view name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;  ///< exact integer sum of all samples
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    double sum_seconds() const { return double(sum_ns) * 1e-9; }
    double mean_seconds() const {
      return count ? sum_seconds() / double(count) : 0.0;
    }
  };

  struct Snapshot {
    std::vector<std::pair<std::string_view, std::uint64_t>> counters;
    std::vector<std::pair<std::string_view, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /// Counter value by exported name (0 when absent/never incremented).
    std::uint64_t counter(std::string_view name) const;
  };

  /// Merge all shards in ascending shard-index order. Safe to call while
  /// other threads record (every slot is atomic); for exact totals call it
  /// after the parallel work has drained (ThreadPool::run blocks until it
  /// has).
  Snapshot snapshot() const;

  /// One JSON document: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum_seconds, mean_seconds, buckets}}}.
  void write_json(std::ostream& out) const;

 private:
  struct HistogramShard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>,
               static_cast<std::size_t>(Counter::kCount)>
        counters{};
    std::array<HistogramShard, static_cast<std::size_t>(Histogram::kCount)>
        histograms{};
  };

  Shard& shard();

  std::atomic<bool> enabled_{false};
  /// Gauge values as bit-cast doubles (registry-level, not sharded:
  /// gauges are "last write wins" and written rarely).
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Gauge::kCount)>
      gauges_{};
  /// Lazily claimed per-thread shards; merged in index order.
  std::array<std::atomic<Shard*>, kMaxShards> shards_{};
};

}  // namespace cloudlens::obs
