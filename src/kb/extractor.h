// Knowledge extraction: telemetry + trace -> SubscriptionKnowledge records.
#pragma once

#include <optional>
#include <vector>

#include "cloudsim/trace.h"
#include "kb/record.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::kb {

struct ExtractorOptions {
  /// VMs sampled per subscription for pattern classification.
  std::size_t max_classified_vms = 6;
  /// VMs sampled per region for cross-region correlation.
  std::size_t max_vms_per_region = 15;
  /// Lifetime below this is "short" (the shortest bin edge).
  SimDuration short_lifetime_edge = 30 * kMinute;
  /// Cross-region correlation above this marks region-agnostic.
  double region_agnostic_correlation = 0.7;
  analysis::ClassifierOptions classifier;

  // Policy-hint thresholds.
  double spot_short_share_min = 0.60;
  std::size_t spot_min_ended_vms = 5;
  double oversub_p95_max = 0.50;
  double deferral_peak_to_mean_min = 1.8;
};

/// Extract one record for a subscription; returns nullopt when the
/// subscription has no VMs in the trace.
std::optional<SubscriptionKnowledge> extract_subscription(
    const AnalysisContext& ctx, SubscriptionId sub,
    const ExtractorOptions& options = {});

/// Extract records for every subscription with at least one VM.
/// Subscriptions fan out over the context's ParallelConfig (one slot each,
/// concatenated in subscription order), so the record list is bit-identical
/// at any thread count. Records one "kb.extract" phase plus
/// `kb.records_extracted` against the context's write-only metrics.
std::vector<SubscriptionKnowledge> extract_all(
    const AnalysisContext& ctx, const ExtractorOptions& options = {});

/// Recompute the derived policy hints of a record from its knowledge
/// fields (shared by extraction and kb::refresh so both apply one
/// definition of each hint).
void apply_policy_hints(SubscriptionKnowledge& record,
                        const ExtractorOptions& options);

}  // namespace cloudlens::kb
