#include "kb/record.h"

#include <sstream>

#include "common/table.h"

namespace cloudlens::kb {

std::string csv_header() {
  return "subscription,cloud,party,service,vm_count,total_cores,"
         "region_count,short_lifetime_share,ended_vms,dominant_pattern,"
         "pattern_confidence,mean_utilization,p95_utilization,"
         "cross_region_correlation,region_agnostic,spot_candidate,"
         "oversubscription_candidate,deferral_target,preprovision_target";
}

std::string to_csv_row(const SubscriptionKnowledge& r) {
  std::ostringstream os;
  os << r.subscription.value() << ',' << to_string(r.cloud) << ','
     << to_string(r.party) << ','
     << (r.service.valid() ? std::to_string(r.service.value()) : "-") << ','
     << r.vm_count << ',' << format_double(r.total_cores, 1) << ','
     << r.region_count << ',' << format_double(r.short_lifetime_share, 4)
     << ',' << r.ended_vms << ',' << analysis::to_string(r.dominant_pattern)
     << ',' << format_double(r.pattern_confidence, 4) << ','
     << format_double(r.mean_utilization, 4) << ','
     << format_double(r.p95_utilization, 4) << ','
     << format_double(r.cross_region_correlation, 4) << ','
     << (r.region_agnostic ? 1 : 0) << ',' << (r.spot_candidate ? 1 : 0)
     << ',' << (r.oversubscription_candidate ? 1 : 0) << ','
     << (r.deferral_target ? 1 : 0) << ',' << (r.preprovision_target ? 1 : 0);
  return os.str();
}

}  // namespace cloudlens::kb
