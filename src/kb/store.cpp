#include "kb/store.h"

#include <sstream>

#include "common/check.h"

namespace cloudlens::kb {
namespace {

std::vector<std::string> split(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, delim)) out.push_back(field);
  return out;
}

analysis::UtilizationClass parse_pattern(const std::string& s) {
  if (s == "diurnal") return analysis::UtilizationClass::kDiurnal;
  if (s == "stable") return analysis::UtilizationClass::kStable;
  if (s == "irregular") return analysis::UtilizationClass::kIrregular;
  CL_CHECK_MSG(s == "hourly-peak", "unknown pattern class: " << s);
  return analysis::UtilizationClass::kHourlyPeak;
}

}  // namespace

KnowledgeBase::KnowledgeBase(std::vector<SubscriptionKnowledge> records) {
  for (auto& r : records) upsert(std::move(r));
}

void KnowledgeBase::upsert(SubscriptionKnowledge record) {
  const auto it = index_.find(record.subscription);
  if (it != index_.end()) {
    records_[it->second] = std::move(record);
    return;
  }
  index_.emplace(record.subscription, records_.size());
  records_.push_back(std::move(record));
}

const SubscriptionKnowledge* KnowledgeBase::find(SubscriptionId sub) const {
  const auto it = index_.find(sub);
  return it == index_.end() ? nullptr : &records_[it->second];
}

std::vector<const SubscriptionKnowledge*> KnowledgeBase::where(
    const std::function<bool(const SubscriptionKnowledge&)>& pred) const {
  std::vector<const SubscriptionKnowledge*> out;
  for (const auto& r : records_) {
    if (pred(r)) out.push_back(&r);
  }
  return out;
}

std::vector<const SubscriptionKnowledge*> KnowledgeBase::by_cloud(
    CloudType cloud) const {
  return where([cloud](const auto& r) { return r.cloud == cloud; });
}

std::vector<const SubscriptionKnowledge*> KnowledgeBase::by_pattern(
    analysis::UtilizationClass pattern) const {
  return where(
      [pattern](const auto& r) { return r.dominant_pattern == pattern; });
}

std::vector<const SubscriptionKnowledge*> KnowledgeBase::spot_candidates(
    CloudType cloud) const {
  return where([cloud](const auto& r) {
    return r.cloud == cloud && r.spot_candidate;
  });
}

std::vector<const SubscriptionKnowledge*>
KnowledgeBase::oversubscription_candidates(CloudType cloud) const {
  return where([cloud](const auto& r) {
    return r.cloud == cloud && r.oversubscription_candidate;
  });
}

std::vector<const SubscriptionKnowledge*>
KnowledgeBase::region_agnostic_subscriptions(CloudType cloud) const {
  return where([cloud](const auto& r) {
    return r.cloud == cloud && r.region_agnostic;
  });
}

KnowledgeBase::CloudSummary KnowledgeBase::summarize(CloudType cloud) const {
  CloudSummary s;
  for (const auto& r : records_) {
    if (r.cloud != cloud) continue;
    ++s.subscriptions;
    s.vms += r.vm_count;
    s.spot_candidate_share += r.spot_candidate ? 1 : 0;
    s.oversub_candidate_share += r.oversubscription_candidate ? 1 : 0;
    s.region_agnostic_share += r.region_agnostic ? 1 : 0;
    s.preprovision_share += r.preprovision_target ? 1 : 0;
  }
  if (s.subscriptions > 0) {
    const auto n = static_cast<double>(s.subscriptions);
    s.spot_candidate_share /= n;
    s.oversub_candidate_share /= n;
    s.region_agnostic_share /= n;
    s.preprovision_share /= n;
  }
  return s;
}

std::string KnowledgeBase::to_csv() const {
  std::ostringstream os;
  os << csv_header() << '\n';
  for (const auto& r : records_) os << to_csv_row(r) << '\n';
  return os.str();
}

KnowledgeBase KnowledgeBase::from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  CL_CHECK_MSG(std::getline(is, line), "empty knowledge base CSV");
  CL_CHECK_MSG(line == csv_header(), "unexpected CSV header");

  KnowledgeBase kb;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    CL_CHECK_MSG(f.size() == 19, "malformed knowledge base row: " << line);
    SubscriptionKnowledge r;
    r.subscription = SubscriptionId(
        static_cast<SubscriptionId::underlying>(std::stoul(f[0])));
    r.cloud = f[1] == "private" ? CloudType::kPrivate : CloudType::kPublic;
    r.party = f[2] == "first-party" ? PartyType::kFirstParty
                                    : PartyType::kThirdParty;
    if (f[3] != "-")
      r.service =
          ServiceId(static_cast<ServiceId::underlying>(std::stoul(f[3])));
    r.vm_count = std::stoul(f[4]);
    r.total_cores = std::stod(f[5]);
    r.region_count = std::stoul(f[6]);
    r.short_lifetime_share = std::stod(f[7]);
    r.ended_vms = std::stoul(f[8]);
    r.dominant_pattern = parse_pattern(f[9]);
    r.pattern_confidence = std::stod(f[10]);
    r.mean_utilization = std::stod(f[11]);
    r.p95_utilization = std::stod(f[12]);
    r.cross_region_correlation = std::stod(f[13]);
    r.region_agnostic = f[14] == "1";
    r.spot_candidate = f[15] == "1";
    r.oversubscription_candidate = f[16] == "1";
    r.deferral_target = f[17] == "1";
    r.preprovision_target = f[18] == "1";
    kb.upsert(std::move(r));
  }
  return kb;
}

}  // namespace cloudlens::kb
