// Workload knowledge records.
//
// Section V of the paper motivates a *centralized workload knowledge base*
// that "continuously extracts workload knowledge from telemetry signals
// (e.g., CPU utilization, VM lifetime) and feeds them into the ...
// optimization policies". A SubscriptionKnowledge record is one such unit
// of extracted knowledge.
#pragma once

#include <string>

#include "analysis/classifier.h"
#include "common/ids.h"
#include "cloudsim/types.h"

namespace cloudlens::kb {

struct SubscriptionKnowledge {
  SubscriptionId subscription;
  CloudType cloud = CloudType::kPublic;
  PartyType party = PartyType::kThirdParty;
  ServiceId service;  ///< invalid for third-party subscriptions

  // --- Deployment knowledge -------------------------------------------
  std::size_t vm_count = 0;        ///< VMs observed during the window
  double total_cores = 0;          ///< cores allocated at window peak usage
  std::size_t region_count = 0;    ///< distinct deployed regions

  // --- Temporal knowledge ----------------------------------------------
  /// Share of this owner's *ended* VMs in the shortest lifetime bin.
  double short_lifetime_share = 0;
  std::size_t ended_vms = 0;

  // --- Utilization knowledge --------------------------------------------
  analysis::UtilizationClass dominant_pattern =
      analysis::UtilizationClass::kIrregular;
  /// Fraction of sampled VMs agreeing with the dominant pattern.
  double pattern_confidence = 0;
  double mean_utilization = 0;
  double p95_utilization = 0;

  // --- Spatial knowledge --------------------------------------------------
  /// Minimum cross-region utilization correlation (1 region -> 1.0).
  double cross_region_correlation = 1.0;
  bool region_agnostic = false;

  // --- Derived policy hints ----------------------------------------------
  /// Short-lived churn-heavy owner: candidate for spot VMs (Sec. III-B
  /// implication for the public cloud).
  bool spot_candidate = false;
  /// Stable low utilization: candidate for resource oversubscription.
  bool oversubscription_candidate = false;
  /// Diurnal with deep valleys: target for valley-filling deferral.
  bool deferral_target = false;
  /// Hourly-peak: needs predictive pre-provisioning / overclocking.
  bool preprovision_target = false;
};

/// One CSV row (matches SubscriptionKnowledge field order). See
/// kb/store.h for serialization of whole knowledge bases.
std::string to_csv_row(const SubscriptionKnowledge& record);
std::string csv_header();

}  // namespace cloudlens::kb
