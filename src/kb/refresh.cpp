#include "kb/refresh.h"

#include <algorithm>
#include <utility>

#include "analysis/context.h"
#include "common/check.h"

namespace cloudlens::kb {

bool fold_record(KnowledgeBase& kb, SubscriptionKnowledge fresh,
                 const RefreshOptions& options) {
  CL_CHECK(options.ewma_alpha > 0 && options.ewma_alpha <= 1.0);
  const double a = options.ewma_alpha;
  const SubscriptionKnowledge* old = kb.find(fresh.subscription);
  if (old == nullptr) {
    kb.upsert(std::move(fresh));
    return true;
  }
  SubscriptionKnowledge blended = fresh;  // categorical fields: newest win
  // Numeric knowledge: EWMA toward the new observation.
  blended.total_cores = a * fresh.total_cores + (1 - a) * old->total_cores;
  blended.short_lifetime_share = a * fresh.short_lifetime_share +
                                 (1 - a) * old->short_lifetime_share;
  blended.pattern_confidence =
      a * fresh.pattern_confidence + (1 - a) * old->pattern_confidence;
  blended.mean_utilization =
      a * fresh.mean_utilization + (1 - a) * old->mean_utilization;
  blended.p95_utilization =
      a * fresh.p95_utilization + (1 - a) * old->p95_utilization;
  blended.cross_region_correlation =
      a * fresh.cross_region_correlation +
      (1 - a) * old->cross_region_correlation;
  // Counts reflect the latest window (they are per-window observations,
  // not cumulative state).
  blended.region_agnostic =
      blended.cross_region_correlation >=
      options.extractor.region_agnostic_correlation &&
      blended.region_count >= 2;
  apply_policy_hints(blended, options.extractor);
  kb.upsert(std::move(blended));
  return false;
}

RefreshStats refresh(KnowledgeBase& kb, const AnalysisContext& ctx,
                     const RefreshOptions& options) {
  CL_CHECK(options.ewma_alpha > 0 && options.ewma_alpha <= 1.0);
  RefreshStats stats;
  for (auto& fresh : extract_all(ctx, options.extractor)) {
    if (fold_record(kb, std::move(fresh), options)) {
      ++stats.added;
    } else {
      ++stats.updated;
    }
  }
  return stats;
}

}  // namespace cloudlens::kb
