#include "kb/extractor.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "analysis/context.h"
#include "analysis/shard_stream.h"
#include "analysis/spatial.h"
#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace cloudlens::kb {

std::optional<SubscriptionKnowledge> extract_subscription(
    const AnalysisContext& ctx, SubscriptionId sub,
    const ExtractorOptions& options) {
  const TraceStore& trace = ctx.trace();
  const auto vm_ids = trace.vms_of_subscription(sub);
  if (vm_ids.empty()) return std::nullopt;

  const SubscriptionInfo& info = trace.subscription(sub);
  const TimeGrid& grid = trace.telemetry_grid();

  SubscriptionKnowledge rec;
  rec.subscription = sub;
  rec.cloud = info.cloud;
  rec.party = info.party;
  rec.service = info.service;

  // Deployment knowledge.
  std::unordered_set<RegionId> regions;
  std::vector<VmId> covering;
  for (const VmId id : vm_ids) {
    const auto& vm = trace.vm(id);
    ++rec.vm_count;
    rec.total_cores += vm.cores;
    regions.insert(vm.region);
    if (vm.covers(grid) && vm.utilization) covering.push_back(id);
    if (vm.ended() && vm.created >= grid.start && vm.deleted <= grid.end()) {
      ++rec.ended_vms;
      if (vm.lifetime() < options.short_lifetime_edge)
        rec.short_lifetime_share += 1.0;
    }
  }
  rec.region_count = regions.size();
  if (rec.ended_vms > 0)
    rec.short_lifetime_share /= static_cast<double>(rec.ended_vms);

  // Utilization knowledge over a sample of window-covering VMs.
  std::array<std::size_t, 4> votes{};
  stats::StreamingMoments util_moments;
  std::vector<double> all_samples;
  std::size_t stride = 1;
  if (options.max_classified_vms > 0 &&
      covering.size() > options.max_classified_vms)
    stride = covering.size() / options.max_classified_vms;
  std::size_t classified = 0;
  // Stream panel rows (or scratch evaluations when the panel is off): one
  // contiguous read per VM feeds both the classifier and the moments, with
  // no per-VM TimeSeries materialization. In out-of-core mode the rows
  // come off the mapped shard instead — and because the router hashes the
  // subscription id, every row below lives in the *same* shard.
  const TelemetryPanel* panel = trace.telemetry_panel();
  const TelemetryShardStore* shards = trace.telemetry_shards();
  std::vector<double> scratch;
  for (std::size_t i = 0; i < covering.size(); i += stride) {
    const std::span<const double> row =
        shards != nullptr
            ? shards->row(covering[i])
            : vm_telemetry_row(trace, panel, covering[i], grid, scratch);
    const auto cls = analysis::classify(row, grid, options.classifier);
    ++votes[static_cast<std::size_t>(cls)];
    ++classified;
    for (const double v : row) {
      util_moments.add(v);
      all_samples.push_back(v);
    }
  }
  if (classified > 0) {
    const auto best =
        std::max_element(votes.begin(), votes.end()) - votes.begin();
    rec.dominant_pattern = static_cast<analysis::UtilizationClass>(best);
    rec.pattern_confidence = static_cast<double>(votes[best]) /
                             static_cast<double>(classified);
    rec.mean_utilization = util_moments.mean();
    rec.p95_utilization = stats::quantile(all_samples, 0.95);
  }

  // Spatial knowledge.
  if (rec.region_count >= 2 && !covering.empty()) {
    const auto profiles = analysis::subscription_region_profiles(
        ctx, sub, options.max_vms_per_region);
    double min_corr = 1.0;
    for (std::size_t a = 0; a < profiles.size(); ++a) {
      for (std::size_t b = a + 1; b < profiles.size(); ++b) {
        min_corr = std::min(
            min_corr,
            stats::pearson_fused(profiles[a].hourly_utilization.values(),
                                 profiles[b].hourly_utilization.values()));
      }
    }
    rec.cross_region_correlation = profiles.size() >= 2 ? min_corr : 0.0;
    rec.region_agnostic =
        profiles.size() >= 2 &&
        min_corr >= options.region_agnostic_correlation;
  }

  // Policy hints (Sec. III-B / IV implications); shared with kb::refresh.
  apply_policy_hints(rec, options);
  return rec;
}

void apply_policy_hints(SubscriptionKnowledge& rec,
                        const ExtractorOptions& options) {
  rec.spot_candidate =
      rec.short_lifetime_share >= options.spot_short_share_min &&
      rec.ended_vms >= options.spot_min_ended_vms;
  rec.oversubscription_candidate =
      rec.dominant_pattern == analysis::UtilizationClass::kStable &&
      rec.p95_utilization <= options.oversub_p95_max &&
      rec.pattern_confidence > 0;
  rec.deferral_target =
      rec.dominant_pattern == analysis::UtilizationClass::kDiurnal &&
      rec.mean_utilization > 0 &&
      rec.p95_utilization / std::max(1e-9, rec.mean_utilization) >=
          options.deferral_peak_to_mean_min;
  rec.preprovision_target =
      rec.dominant_pattern == analysis::UtilizationClass::kHourlyPeak;
}

std::vector<SubscriptionKnowledge> extract_all(
    const AnalysisContext& ctx, const ExtractorOptions& options) {
  auto phase = ctx.phase("kb.extract", obs::Histogram::kKbExtractSeconds,
                         obs::Counter::kKbExtractions);
  const TraceStore& trace = ctx.trace();
  // Subscription ids are dense in [0, count) in every mode, so the fan-out
  // runs over indices — no resident subscription span needed.
  const std::size_t sub_count = trace.subscription_count();
  const auto sub_id = [](std::size_t i) {
    return SubscriptionId(static_cast<SubscriptionId::underlying>(i));
  };
  // Serial warm-up of the lazily-built shared state (subscription index,
  // telemetry panel) before fanning out; workers then only read.
  if (sub_count > 0) trace.vms_of_subscription(sub_id(0));
  trace.telemetry_panel();

  // One slot per subscription; extraction of each subscription is
  // independent and deterministic, and slots are concatenated in
  // subscription order below, so the record list is bit-identical to the
  // old serial loop at any thread count. In out-of-core modes the
  // subscriptions are processed grouped by shard (every subscription's
  // rows — and, under population sharding, its records — live in exactly
  // one shard, by the router contract), with budget eviction between
  // shards — same slots, bounded RSS.
  std::vector<std::optional<SubscriptionKnowledge>> slots;
  if (const TelemetryShardStore* shards = trace.telemetry_shards()) {
    slots.resize(sub_count);
    analysis::stream_by_shard(
        *shards, sub_count,
        [&](std::size_t i) { return shards->shard_of(sub_id(i)); },
        [&](std::size_t i) {
          slots[i] = extract_subscription(ctx, sub_id(i), options);
        },
        ctx.parallel());
  } else if (const PopulationShardStore* pop = trace.population_shards()) {
    slots.resize(sub_count);
    analysis::stream_by_shard(
        *pop, sub_count,
        [&](std::size_t i) { return pop->shard_of(sub_id(i)); },
        [&](std::size_t i) {
          slots[i] = extract_subscription(ctx, sub_id(i), options);
        },
        ctx.parallel());
  } else {
    slots = parallel_map<std::optional<SubscriptionKnowledge>>(
        sub_count,
        [&](std::size_t i) {
          return extract_subscription(ctx, sub_id(i), options);
        },
        ctx.parallel());
  }

  std::vector<SubscriptionKnowledge> out;
  out.reserve(slots.size());
  for (const auto& rec : slots) {
    if (rec) out.push_back(*rec);
  }
  ctx.count(obs::Counter::kKbRecords, out.size());
  return out;
}

}  // namespace cloudlens::kb
