// The centralized workload knowledge base (Sec. V).
//
// Holds extracted SubscriptionKnowledge records, answers the queries the
// optimization policies need, and round-trips to CSV so knowledge can be
// persisted between analysis runs.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/record.h"

namespace cloudlens::kb {

class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  explicit KnowledgeBase(std::vector<SubscriptionKnowledge> records);

  /// Insert or replace (keyed by subscription id).
  void upsert(SubscriptionKnowledge record);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  std::span<const SubscriptionKnowledge> records() const { return records_; }

  const SubscriptionKnowledge* find(SubscriptionId sub) const;

  // --- Queries used by the policy layer ---------------------------------
  std::vector<const SubscriptionKnowledge*> by_cloud(CloudType cloud) const;
  std::vector<const SubscriptionKnowledge*> by_pattern(
      analysis::UtilizationClass pattern) const;
  std::vector<const SubscriptionKnowledge*> spot_candidates(
      CloudType cloud) const;
  std::vector<const SubscriptionKnowledge*> oversubscription_candidates(
      CloudType cloud) const;
  std::vector<const SubscriptionKnowledge*> region_agnostic_subscriptions(
      CloudType cloud) const;
  std::vector<const SubscriptionKnowledge*> where(
      const std::function<bool(const SubscriptionKnowledge&)>& pred) const;

  /// Aggregate summary per cloud (counts + candidate shares).
  struct CloudSummary {
    std::size_t subscriptions = 0;
    std::size_t vms = 0;
    double spot_candidate_share = 0;
    double oversub_candidate_share = 0;
    double region_agnostic_share = 0;
    double preprovision_share = 0;
  };
  CloudSummary summarize(CloudType cloud) const;

  // --- Persistence --------------------------------------------------------
  std::string to_csv() const;
  /// Parse a CSV produced by to_csv(); throws CheckError on malformed input.
  static KnowledgeBase from_csv(const std::string& csv);

 private:
  std::vector<SubscriptionKnowledge> records_;
  std::unordered_map<SubscriptionId, std::size_t> index_;
};

}  // namespace cloudlens::kb
