// Continuous knowledge refresh (Sec. V: the knowledge base "continuously
// extracts workload knowledge from telemetry signals ... and feeds them
// into the ... optimization policies").
//
// refresh() re-extracts records from the latest observation window and
// folds them into an existing KnowledgeBase: numeric knowledge is blended
// with an exponentially weighted moving average (so one anomalous week
// cannot flip a subscription's profile), categorical knowledge
// (dominant pattern, region-agnosticism) follows the newest extraction,
// and the policy hints are recomputed from the blended values.
#pragma once

#include "kb/extractor.h"
#include "kb/store.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::kb {

struct RefreshOptions {
  /// Weight of the *new* observation in the blend (1.0 = replace).
  double ewma_alpha = 0.3;
  ExtractorOptions extractor;
};

struct RefreshStats {
  std::size_t added = 0;    ///< subscriptions seen for the first time
  std::size_t updated = 0;  ///< existing records blended
};

/// Fold one freshly-extracted record into `kb` (EWMA blend of the numeric
/// knowledge, newest-wins categorical fields, recomputed policy hints).
/// Returns true when the subscription was seen for the first time. Shared
/// by batch refresh() and the serve engine's window-eviction fold.
bool fold_record(KnowledgeBase& kb, SubscriptionKnowledge fresh,
                 const RefreshOptions& options = {});

/// Extract fresh records from the context's trace and fold them into `kb`.
/// Extraction fans out over the context's ParallelConfig; folding runs in
/// subscription order, so the resulting store is bit-identical at any
/// thread count.
RefreshStats refresh(KnowledgeBase& kb, const AnalysisContext& ctx,
                     const RefreshOptions& options = {});

}  // namespace cloudlens::kb
