// Radix-2 FFT and periodogram.
//
// The periodicity detector (periodicity.h) follows the paper's reference
// [18] (Vlachos et al., ICDM 2005): periodogram candidates validated on the
// autocorrelation function. Both need an FFT; we implement our own to stay
// dependency-free.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace cloudlens::stats {

/// In-place iterative radix-2 Cooley–Tukey. data.size() must be a power of 2.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Periodogram of a real series: P[k] = |X_k|^2 / N for k = 0..N/2, where X
/// is the DFT of the mean-removed, zero-padded input. Index k corresponds to
/// period N_padded / k samples.
std::vector<double> periodogram(std::span<const double> xs);

/// Autocorrelation function via FFT (biased estimator, normalized so
/// acf[0] == 1 for non-constant input). Returns lags 0..n-1.
std::vector<double> autocorrelation(std::span<const double> xs);

}  // namespace cloudlens::stats
