// Box-plot summaries with 1.5-IQR whiskers (the convention Fig. 1(b) and
// Fig. 3(d) state explicitly).
#pragma once

#include <span>
#include <vector>

namespace cloudlens::stats {

struct BoxStats {
  std::size_t count = 0;
  double q1 = 0, median = 0, q3 = 0;
  /// Whiskers: furthest data points within 1.5 * IQR of the box.
  double whisker_lo = 0, whisker_hi = 0;
  /// Data outside the whiskers.
  std::vector<double> outliers;
};

BoxStats box_stats(std::span<const double> xs);

}  // namespace cloudlens::stats
