#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cloudlens::stats {

BinAxis::BinAxis(double lo, double hi, std::size_t bins, BinScale scale)
    : lo_(lo), hi_(hi), bins_(bins), scale_(scale) {
  CL_CHECK(bins > 0);
  CL_CHECK(hi > lo);
  if (scale == BinScale::kLog) CL_CHECK_MSG(lo > 0, "log axis requires lo > 0");
}

std::size_t BinAxis::index(double x) const {
  double t;
  if (scale_ == BinScale::kLinear) {
    t = (x - lo_) / (hi_ - lo_);
  } else {
    if (x <= lo_) return 0;
    t = std::log(x / lo_) / std::log(hi_ / lo_);
  }
  if (t < 0) return 0;
  const auto b = static_cast<std::size_t>(t * static_cast<double>(bins_));
  return std::min(b, bins_ - 1);
}

double BinAxis::lower_edge(std::size_t bin) const {
  CL_CHECK(bin < bins_);
  const double t = static_cast<double>(bin) / static_cast<double>(bins_);
  if (scale_ == BinScale::kLinear) return lo_ + t * (hi_ - lo_);
  return lo_ * std::pow(hi_ / lo_, t);
}

double BinAxis::upper_edge(std::size_t bin) const {
  CL_CHECK(bin < bins_);
  const double t = static_cast<double>(bin + 1) / static_cast<double>(bins_);
  if (scale_ == BinScale::kLinear) return lo_ + t * (hi_ - lo_);
  return lo_ * std::pow(hi_ / lo_, t);
}

double BinAxis::center(std::size_t bin) const {
  if (scale_ == BinScale::kLinear)
    return 0.5 * (lower_edge(bin) + upper_edge(bin));
  return std::sqrt(lower_edge(bin) * upper_edge(bin));
}

Histogram1D::Histogram1D(double lo, double hi, std::size_t bins, BinScale scale)
    : axis_(lo, hi, bins, scale), bin_weight_(bins, 0.0) {}

void Histogram1D::add(double x, double weight) {
  CL_CHECK(!bin_weight_.empty());
  bin_weight_[axis_.index(x)] += weight;
  ++count_;
  weight_ += weight;
}

std::vector<double> Histogram1D::normalized() const {
  std::vector<double> out(bin_weight_.size(), 0.0);
  if (weight_ <= 0) return out;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = bin_weight_[i] / weight_;
  return out;
}

std::vector<double> Histogram1D::cumulative() const {
  std::vector<double> out = normalized();
  double run = 0;
  for (auto& v : out) {
    run += v;
    v = run;
  }
  return out;
}

Histogram2D::Histogram2D(BinAxis x_axis, BinAxis y_axis)
    : x_(x_axis), y_(y_axis), cells_(x_axis.bins() * y_axis.bins(), 0.0) {}

void Histogram2D::add(double x, double y, double weight) {
  CL_CHECK(!cells_.empty());
  cells_[y_.index(y) * x_.bins() + x_.index(x)] += weight;
  ++count_;
}

double Histogram2D::weight_at(std::size_t xbin, std::size_t ybin) const {
  CL_CHECK(xbin < x_.bins() && ybin < y_.bins());
  return cells_[ybin * x_.bins() + xbin];
}

std::vector<std::vector<double>> Histogram2D::normalized_grid() const {
  std::vector<std::vector<double>> grid(y_.bins(),
                                        std::vector<double>(x_.bins(), 0.0));
  double hi = 0;
  for (double c : cells_) hi = std::max(hi, c);
  if (hi <= 0) return grid;
  for (std::size_t yb = 0; yb < y_.bins(); ++yb)
    for (std::size_t xb = 0; xb < x_.bins(); ++xb)
      grid[yb][xb] = cells_[yb * x_.bins() + xb] / hi;
  return grid;
}

}  // namespace cloudlens::stats
