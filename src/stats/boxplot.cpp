#include "stats/boxplot.h"

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::stats {

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  b.count = xs.size();
  if (xs.empty()) return b;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;

  // Whiskers extend to the most extreme data points inside the fences.
  b.whisker_lo = b.q1;
  b.whisker_hi = b.q3;
  for (double x : sorted) {
    if (x >= lo_fence) {
      b.whisker_lo = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < b.whisker_lo || x > b.whisker_hi) b.outliers.push_back(x);
  }
  return b;
}

}  // namespace cloudlens::stats
