#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "stats/kernels/kernels.h"

namespace cloudlens::stats {
namespace {

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  CL_CHECK_MSG(x.size() == y.size(), "pearson requires equal-length series");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;

  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);

  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  const double r = sxy / std::sqrt(sxx * syy);
  // Clamp tiny numerical excursions outside [-1, 1].
  return std::min(1.0, std::max(-1.0, r));
}

double pearson_fused(std::span<const double> x, std::span<const double> y) {
  CL_CHECK_MSG(x.size() == y.size(), "pearson requires equal-length series");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;

  // Single fused pass: five co-moment accumulators, one load of each
  // operand per tick, no temporary series. The accumulation runs through
  // the dispatched kernel tier (strict mode keeps the serial scalar
  // order; fast mode may use SIMD lane accumulators).
  const kernels::PearsonSums s = kernels::pearson_sums(x, y);
  const double dn = static_cast<double>(n);
  const double cxx = s.sxx - s.sx * s.sx / dn;
  const double cyy = s.syy - s.sy * s.sy / dn;
  const double cxy = s.sxy - s.sx * s.sy / dn;
  if (cxx <= 0.0 || cyy <= 0.0) return 0.0;
  const double r = cxy / std::sqrt(cxx * cyy);
  return std::min(1.0, std::max(-1.0, r));
}

double spearman(std::span<const double> x, std::span<const double> y) {
  CL_CHECK_MSG(x.size() == y.size(), "spearman requires equal-length series");
  if (x.size() < 2) return 0.0;
  const auto rx = fractional_ranks(x);
  const auto ry = fractional_ranks(y);
  return pearson(rx, ry);
}

}  // namespace cloudlens::stats
