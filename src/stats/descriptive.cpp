#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace cloudlens::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  CL_CHECK(!sorted.empty());
  CL_CHECK(p >= 0.0 && p <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> xs, double p) {
  CL_CHECK(!xs.empty());
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

void StreamingMoments::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingMoments::merge(const StreamingMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StreamingMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p50 = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

}  // namespace cloudlens::stats
