// Descriptive statistics: moments, quantiles, coefficient of variation.
#pragma once

#include <span>
#include <vector>

namespace cloudlens::stats {

double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Coefficient of variation = stddev / mean. The paper (Sec. III-B) uses the
/// CV of hourly VM-creation counts to quantify burstiness across regions.
/// Returns 0 when the mean is 0 (an all-zero series is "perfectly regular").
double coefficient_of_variation(std::span<const double> xs);

/// Linear-interpolation quantile (type 7, the numpy/R default), p in [0, 1].
/// The input need not be sorted; an internal copy is sorted.
double quantile(std::span<const double> xs, double p);

/// Quantile over data the caller has already sorted ascending (no copy).
double quantile_sorted(std::span<const double> sorted, double p);

/// Welford's online algorithm: numerically stable streaming moments.
class StreamingMoments {
 public:
  void add(double x);
  void merge(const StreamingMoments& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0, stddev = 0;
  double min = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0, p99 = 0, max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace cloudlens::stats
