// Correlation measures.
//
// Pearson correlation of CPU-utilization series is the paper's similarity
// metric both at the node level (Fig. 7(a)) and across regions (Fig. 7(b)).
#pragma once

#include <span>

namespace cloudlens::stats {

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series is constant (no linear relationship can be
/// measured; this also matches how flat telemetry is treated in practice).
/// Two-pass (centered) formulation — the numerically conservative
/// reference implementation.
double pearson(std::span<const double> x, std::span<const double> y);

/// Single-pass fused Pearson: one traversal accumulates the raw co-moments
/// (Σx, Σy, Σx², Σy², Σxy) so contiguous telemetry-panel rows stream
/// through once, instead of the three passes (two means + one co-moment
/// loop) of `pearson`. For telemetry in [0, 1] over a few thousand ticks
/// the raw-moment formulation is well conditioned; results agree with the
/// two-pass kernel to ~1e-12 (property-tested). This is the kernel the
/// correlation analyses (Fig. 7) run on panel rows.
double pearson_fused(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace cloudlens::stats
