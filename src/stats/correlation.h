// Correlation measures.
//
// Pearson correlation of CPU-utilization series is the paper's similarity
// metric both at the node level (Fig. 7(a)) and across regions (Fig. 7(b)).
#pragma once

#include <span>

namespace cloudlens::stats {

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series is constant (no linear relationship can be
/// measured; this also matches how flat telemetry is treated in practice).
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace cloudlens::stats
