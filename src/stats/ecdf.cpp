#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  CL_CHECK(!sorted_.empty());
  return quantile_sorted(sorted_, p);
}

double Ecdf::min() const {
  CL_CHECK(!sorted_.empty());
  return sorted_.front();
}

double Ecdf::max() const {
  CL_CHECK(!sorted_.empty());
  return sorted_.back();
}

std::vector<double> Ecdf::curve(std::size_t points) const {
  CL_CHECK(points >= 2);
  std::vector<double> ys(points, 0.0);
  if (sorted_.empty()) return ys;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    ys[i] = at(x);
  }
  return ys;
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  CL_CHECK(!a.empty() && !b.empty());
  // Evaluate both CDFs at every jump point of either sample.
  double d = 0.0;
  for (double x : a.sorted()) d = std::max(d, std::abs(a.at(x) - b.at(x)));
  for (double x : b.sorted()) d = std::max(d, std::abs(a.at(x) - b.at(x)));
  return d;
}

}  // namespace cloudlens::stats
