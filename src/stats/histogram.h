// Fixed-bin 1-D and 2-D histograms (linear or logarithmic binning).
//
// Histogram2D backs the core×memory VM-size heatmaps of Fig. 2; log binning
// matches the paper's wide dynamic range of VM shapes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cloudlens::stats {

enum class BinScale { kLinear, kLog };

/// Bin-edge layout shared by both histogram classes.
class BinAxis {
 public:
  BinAxis() = default;
  /// [lo, hi) divided into `bins` intervals. For kLog, lo must be > 0.
  BinAxis(double lo, double hi, std::size_t bins, BinScale scale);

  std::size_t bins() const { return bins_; }
  /// Bin index for x; values outside [lo, hi) are clamped to the edge bins.
  std::size_t index(double x) const;
  double lower_edge(std::size_t bin) const;
  double upper_edge(std::size_t bin) const;
  double center(std::size_t bin) const;

 private:
  double lo_ = 0, hi_ = 1;
  std::size_t bins_ = 1;
  BinScale scale_ = BinScale::kLinear;
};

class Histogram1D {
 public:
  Histogram1D() = default;
  Histogram1D(double lo, double hi, std::size_t bins,
              BinScale scale = BinScale::kLinear);

  void add(double x, double weight = 1.0);
  std::uint64_t total_count() const { return count_; }
  double total_weight() const { return weight_; }

  const BinAxis& axis() const { return axis_; }
  std::span<const double> weights() const { return bin_weight_; }
  /// Bin weights normalized to sum to 1 (empty histogram → all zeros).
  std::vector<double> normalized() const;
  /// Running normalized cumulative sum — a binned CDF.
  std::vector<double> cumulative() const;

 private:
  BinAxis axis_;
  std::vector<double> bin_weight_;
  std::uint64_t count_ = 0;
  double weight_ = 0;
};

class Histogram2D {
 public:
  Histogram2D() = default;
  Histogram2D(BinAxis x_axis, BinAxis y_axis);

  void add(double x, double y, double weight = 1.0);
  std::uint64_t total_count() const { return count_; }

  const BinAxis& x_axis() const { return x_; }
  const BinAxis& y_axis() const { return y_; }
  double weight_at(std::size_t xbin, std::size_t ybin) const;

  /// grid[y][x], normalized so the max cell is 1 (for heatmap rendering).
  std::vector<std::vector<double>> normalized_grid() const;

 private:
  BinAxis x_, y_;
  std::vector<double> cells_;  // row-major [y * x_.bins() + x]
  std::uint64_t count_ = 0;
};

}  // namespace cloudlens::stats
