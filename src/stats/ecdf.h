// Empirical cumulative distribution functions.
//
// Most figures in the paper are CDF overlays of a private-cloud and a
// public-cloud sample; Ecdf is the shared representation behind them.
#pragma once

#include <span>
#include <vector>

namespace cloudlens::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Build from an arbitrary sample (copied and sorted).
  explicit Ecdf(std::span<const double> sample);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF (quantile), p in [0, 1].
  double inverse(double p) const;

  double min() const;
  double max() const;

  /// Evaluate F at `points` evenly spaced x-values spanning [min, max] —
  /// the series form used to draw the CDF curves of Figs. 1, 3, 4, 7.
  std::vector<double> curve(std::size_t points) const;

  /// The sorted sample (for exact-step plotting or KS computation).
  std::span<const double> sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Two-sample Kolmogorov–Smirnov statistic: sup |F1 - F2|. Used by tests
/// and benches to quantify how far apart the private and public curves are
/// (the paper's figures show visually separated CDFs).
double ks_statistic(const Ecdf& a, const Ecdf& b);

}  // namespace cloudlens::stats
