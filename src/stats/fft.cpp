#include "stats/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "stats/descriptive.h"
#include "stats/kernels/kernels.h"

namespace cloudlens::stats {

std::size_t next_pow2(std::size_t n) {
  CL_CHECK(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  CL_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies on raw components (std::complex<double> is
  // layout-compatible with double[2]). Two wins over the operator-based
  // loop, with bit-identical results: the per-stage twiddle recurrence is
  // hoisted into a table (each block used to re-run the same serial
  // w *= wlen chain, which also stalled the butterfly pipeline), and the
  // manual multiply avoids the library complex-multiply call while
  // computing the exact same (ac - bd, ad + bc) expressions.
  auto* d = reinterpret_cast<double*>(data.data());
  std::vector<double> twiddle(n);  // interleaved re/im, sized for len == n
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const double wr0 = std::cos(angle);
    const double wi0 = std::sin(angle);
    double wr = 1.0, wi = 0.0;
    for (std::size_t k = 0; k < half; ++k) {
      twiddle[2 * k] = wr;
      twiddle[2 * k + 1] = wi;
      const double next_wr = wr * wr0 - wi * wi0;
      wi = wr * wi0 + wi * wr0;
      wr = next_wr;
    }
    // Dispatched butterfly stage; every tier computes the exact scalar
    // expressions per lane, so the transform is bit-identical across
    // tiers and modes.
    kernels::fft_stage(d, n, len, twiddle.data());
  }
  if (inverse) {
    const double inv = static_cast<double>(n);
    for (std::size_t i = 0; i < 2 * n; ++i) d[i] /= inv;
  }
}

std::vector<double> periodogram(std::span<const double> xs) {
  CL_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  const std::size_t n = next_pow2(xs.size());
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) buf[i] = xs[i] - m;
  fft_inplace(buf, /*inverse=*/false);
  std::vector<double> p(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k)
    p[k] = std::norm(buf[k]) / static_cast<double>(n);
  return p;
}

std::vector<double> autocorrelation(std::span<const double> xs) {
  CL_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  const std::size_t n = xs.size();
  // Zero-pad to 2n to avoid circular wrap-around.
  const std::size_t padded = next_pow2(2 * n);
  std::vector<std::complex<double>> buf(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) buf[i] = xs[i] - m;
  fft_inplace(buf, false);
  for (auto& x : buf) x = std::complex<double>(std::norm(x), 0.0);
  fft_inplace(buf, true);

  std::vector<double> acf(n, 0.0);
  const double denom = buf[0].real();
  if (denom <= 0.0) {
    acf[0] = 1.0;  // constant series: define ACF as delta
    return acf;
  }
  for (std::size_t lag = 0; lag < n; ++lag)
    acf[lag] = buf[lag].real() / denom;
  return acf;
}

}  // namespace cloudlens::stats
