// Period detection for utilization time series.
//
// Implements the scheme of Vlachos, Yu & Castelli, "On periodicity detection
// and structural periodic similarity" (ICDM 2005) — the paper's ref [18] and
// the method it says is used to detect both the diurnal and the hourly-peak
// utilization patterns: candidate periods are taken from the periodogram and
// validated/refined on the autocorrelation function (a candidate is accepted
// only if it lands on an ACF hill of sufficient height).
#pragma once

#include <vector>

#include "common/sim_time.h"
#include "stats/series.h"

namespace cloudlens::stats {

struct PeriodDetection {
  bool periodic = false;
  /// Best validated period (seconds); 0 when !periodic.
  SimDuration period = 0;
  /// ACF height at the validated period lag, in [-1, 1]. Higher = stronger.
  double strength = 0.0;
};

struct PeriodDetectorOptions {
  /// Candidates outside [min_period, max_period] are ignored.
  SimDuration min_period = 30 * kMinute;
  SimDuration max_period = 2 * kDay;
  /// Periodogram peaks below mean_power * power_threshold are ignored.
  double power_threshold = 3.0;
  /// Minimum ACF hill height for a candidate to be declared periodic.
  double min_strength = 0.25;
  /// Maximum number of periodogram candidates to validate.
  std::size_t max_candidates = 8;
};

/// Full Vlachos-style detection over a series.
PeriodDetection detect_period(const TimeSeries& series,
                              const PeriodDetectorOptions& opts = {});

/// ACF-based score for one *specific* candidate period: the ACF value at the
/// hill nearest to the candidate lag, minus the ACF at the half-period
/// valley. Positive and large (→1) means a clean periodicity at `period`.
/// Used by the classifier to test "is this series daily?" / "hourly?".
double periodicity_score(const TimeSeries& series, SimDuration period);

/// The same score computed on a precomputed autocorrelation function (lags
/// 0..n-1 of a series sampled at `step`; see stats::autocorrelation).
/// Callers probing several candidate periods of one series — the pattern
/// classifier tests 1 hour and then 24 hours — pay for a single FFT-based
/// ACF instead of one per probe. Bit-identical to periodicity_score on the
/// series the ACF came from.
double periodicity_score_acf(std::span<const double> acf, SimDuration step,
                             SimDuration period);

}  // namespace cloudlens::stats
