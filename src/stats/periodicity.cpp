#include "stats/periodicity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"
#include "stats/fft.h"

namespace cloudlens::stats {
namespace {

/// Hill-climb on the ACF from `lag` to the nearest local maximum.
std::size_t climb_to_hill(const std::vector<double>& acf, std::size_t lag) {
  const std::size_t n = acf.size();
  if (lag >= n) lag = n - 1;
  if (lag == 0) lag = 1;
  bool moved = true;
  while (moved) {
    moved = false;
    if (lag + 1 < n && acf[lag + 1] > acf[lag]) {
      ++lag;
      moved = true;
    } else if (lag > 1 && acf[lag - 1] > acf[lag]) {
      --lag;
      moved = true;
    }
  }
  return lag;
}

/// ACF value at the valley between lag 0 and the hill (minimum over
/// (0, hill)). A true periodicity has a pronounced valley before the hill.
double valley_before(const std::vector<double>& acf, std::size_t hill) {
  double lo = 1.0;
  for (std::size_t i = 1; i < hill; ++i) lo = std::min(lo, acf[i]);
  return hill > 1 ? lo : acf[hill];
}

}  // namespace

PeriodDetection detect_period(const TimeSeries& series,
                              const PeriodDetectorOptions& opts) {
  PeriodDetection best;
  const std::size_t n = series.size();
  if (n < 8) return best;
  const SimDuration step = series.grid().step;

  const auto pgram = periodogram(series.values());
  const auto acf = autocorrelation(series.values());
  const std::size_t padded = (pgram.size() - 1) * 2;

  // Mean periodogram power (excluding DC) for the significance threshold.
  double mean_power = 0.0;
  for (std::size_t k = 1; k < pgram.size(); ++k) mean_power += pgram[k];
  if (pgram.size() > 1) mean_power /= static_cast<double>(pgram.size() - 1);
  if (mean_power <= 0.0) return best;  // constant series

  // Collect candidate frequencies above the power threshold, strongest first.
  std::vector<std::size_t> candidates;
  for (std::size_t k = 1; k < pgram.size(); ++k) {
    if (pgram[k] > opts.power_threshold * mean_power) candidates.push_back(k);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) { return pgram[a] > pgram[b]; });
  if (candidates.size() > opts.max_candidates)
    candidates.resize(opts.max_candidates);

  for (const std::size_t k : candidates) {
    // Periodogram bin k ↔ period padded/k samples.
    const double period_samples =
        static_cast<double>(padded) / static_cast<double>(k);
    const auto period_seconds =
        static_cast<SimDuration>(std::llround(period_samples * double(step)));
    if (period_seconds < opts.min_period || period_seconds > opts.max_period)
      continue;
    auto lag = static_cast<std::size_t>(std::llround(period_samples));
    if (lag < 1 || lag >= n) continue;

    // Validate on the ACF: climb to the nearest hill and require both a
    // sufficient hill height and a hill-vs-valley contrast.
    const std::size_t hill = climb_to_hill(acf, lag);
    const double height = acf[hill];
    const double contrast = height - valley_before(acf, hill);
    if (height < opts.min_strength || contrast < opts.min_strength / 2)
      continue;

    const auto refined =
        static_cast<SimDuration>(hill) * static_cast<SimDuration>(step);
    if (refined < opts.min_period || refined > opts.max_period) continue;
    if (!best.periodic || height > best.strength) {
      best.periodic = true;
      best.period = refined;
      best.strength = height;
    }
  }
  return best;
}

double periodicity_score(const TimeSeries& series, SimDuration period) {
  CL_CHECK(period > 0);
  const SimDuration step = series.grid().step;
  CL_CHECK(step > 0);
  const auto lag0 = static_cast<std::size_t>(period / step);
  const std::size_t n = series.size();
  // A period of one sample has no hill/valley structure to assess, and a
  // period beyond half the series cannot repeat enough to validate.
  if (lag0 < 2 || lag0 * 2 >= n) return 0.0;
  return periodicity_score_acf(autocorrelation(series.values()), step,
                               period);
}

double periodicity_score_acf(std::span<const double> acf, SimDuration step,
                             SimDuration period) {
  CL_CHECK(period > 0);
  CL_CHECK(step > 0);
  const auto lag0 = static_cast<std::size_t>(period / step);
  const std::size_t n = acf.size();
  // Same guards as periodicity_score (n equals the series length: the ACF
  // carries one value per lag 0..n-1).
  if (lag0 < 2 || lag0 * 2 >= n) return 0.0;

  // Hill: the ACF maximum within ±10% of the nominal lag.
  const std::size_t slack = std::max<std::size_t>(1, lag0 / 10);
  double hill = -1.0;
  for (std::size_t l = lag0 > slack ? lag0 - slack : 1;
       l <= lag0 + slack && l < n; ++l)
    hill = std::max(hill, acf[l]);

  // Valley: the ACF minimum over (lag/4, lag). A genuinely periodic series
  // dips between repetitions; a merely *smooth* series (e.g. a diurnal
  // curve probed at a 1-hour lag) stays high throughout this window, which
  // correctly drives the hill-minus-valley score to ~0.
  double valley = 1.0;
  const std::size_t v_lo = std::max<std::size_t>(1, lag0 / 4);
  for (std::size_t l = v_lo; l < lag0 && l < n; ++l)
    valley = std::min(valley, acf[l]);
  if (lag0 <= 1) valley = 0.0;

  return hill - valley;
}

}  // namespace cloudlens::stats
