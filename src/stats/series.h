// Regularly-sampled time series on a TimeGrid, plus the aggregation
// operations the paper's figures need (hourly means, hour-of-day profiles,
// per-timepoint percentile bands).
#pragma once

#include <span>
#include <vector>

#include "common/sim_time.h"

namespace cloudlens::stats {

/// A value per grid point. Values are typically CPU utilization in [0, 1]
/// or counts; the class itself is unit-agnostic.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// All-zero series over `grid`.
  explicit TimeSeries(TimeGrid grid) : grid_(grid), values_(grid.count, 0.0) {}
  TimeSeries(TimeGrid grid, std::vector<double> values);

  const TimeGrid& grid() const { return grid_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double& operator[](std::size_t i) { return values_[i]; }
  double operator[](std::size_t i) const { return values_[i]; }
  std::span<const double> values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  double value_at(SimTime t) const { return values_[grid_.index_of(t)]; }

  double mean() const;
  double max() const;

  /// Element-wise accumulate (grids must match).
  void add(const TimeSeries& other, double scale = 1.0);
  void scale(double factor);
  void clamp(double lo, double hi);

  /// Mean over consecutive windows of `factor` samples; grid step multiplies.
  TimeSeries downsample_mean(std::size_t factor) const;

  /// Hourly means (convenience over downsample_mean for 5-min grids).
  TimeSeries hourly_mean() const;

  /// Mean value per hour-of-day (24 buckets), averaged across all days in
  /// the series — the shape plotted in Figs. 6(c,d) and 7(c).
  std::vector<double> hour_of_day_profile() const;

  /// Restrict to the sub-grid of samples with index in [first, first+count).
  TimeSeries slice(std::size_t first, std::size_t count) const;

 private:
  TimeGrid grid_;
  std::vector<double> values_;
};

/// Per-timepoint percentile bands across a population of aligned series —
/// the representation behind the shaded percentile plots of Fig. 6.
struct PercentileBands {
  TimeGrid grid;
  std::vector<double> p25, p50, p75, p95;
};

PercentileBands percentile_bands(std::span<const TimeSeries> population);

}  // namespace cloudlens::stats
