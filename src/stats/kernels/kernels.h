// The four hot kernel families behind the characterization suite, each
// runtime-dispatched across {scalar, sse2, avx2} × {strict, fast}.
// See dispatch.h for the tier/mode contract. Public entry points here
// dispatch on the active() configuration; the `_with` variants force a
// (tier, mode) pair and exist for the differential test harness, the
// property suites, and bench_simd.
//
// Every family's scalar implementation is the byte-level oracle: it is
// the exact loop the pre-kernel-tier code ran, so routing the callers
// through this seam changes no output in strict mode.
#pragma once

#include <cstdint>
#include <span>

#include "stats/kernels/dispatch.h"

namespace cloudlens::stats::kernels {

// --- Family 1: fused Pearson co-moments ---------------------------------

/// Raw co-moment sums of two equal-length series accumulated in one pass:
/// Σx, Σy, Σx², Σy², Σxy. The strict contract is the serial left-to-right
/// accumulation order of the scalar loop; fast mode may reassociate.
struct PearsonSums {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
};

PearsonSums pearson_sums(std::span<const double> x, std::span<const double> y);
PearsonSums pearson_sums_with(Config config, std::span<const double> x,
                              std::span<const double> y);

// --- Family 2: per-column percentile bands ------------------------------

/// Output spans for band_percentiles; each must hold `cols` doubles.
struct BandOutputs {
  std::span<double> p25, p50, p75, p95;
};

/// For every column t of the `rows.size()` × `cols` matrix given as row
/// pointers (each row holds `cols` contiguous doubles), computes the
/// type-7 p25/p50/p75/p95 quantiles over the column. SIMD tiers gather
/// columns in transposed blocks for locality; the per-column sort makes
/// the result independent of gather order, so every tier is bit-exact in
/// both modes. Inputs must be finite (telemetry is [0, 1]); rows must be
/// non-empty.
void band_percentiles(std::span<const double* const> rows, std::size_t cols,
                      const BandOutputs& out);
void band_percentiles_with(Config config, std::span<const double* const> rows,
                           std::size_t cols, const BandOutputs& out);

// --- Family 3: FFT butterfly stage --------------------------------------

/// One radix-2 butterfly stage of length `len` over `n` interleaved
/// complex doubles (`data` holds 2n doubles); `twiddle` holds len/2
/// interleaved (re, im) factors for this stage. Strict-safe at every
/// tier: the vector lanes evaluate exactly the scalar expressions
/// (vr = xr·tr − xi·ti, vi = xi·tr + xr·ti — IEEE add/mul are
/// commutative), so the transform is bit-identical in both modes.
void fft_stage(double* data, std::size_t n, std::size_t len,
               const double* twiddle);
void fft_stage_with(Config config, double* data, std::size_t n,
                    std::size_t len, const double* twiddle);

// --- Family 4: batched pattern-noise fill -------------------------------

/// out[i] = hash_normal(seed, keys[i]): the Irwin–Hall(4) approximate
/// normal from a SplitMix64 stream keyed by (seed, key) that every
/// utilization pattern model draws per telemetry tick. The SIMD tiers
/// run 2/4 SplitMix64 lanes with an exact 64-bit multiply emulation and
/// an exact u64→f64 conversion, so all tiers are bit-identical in both
/// modes. This is the single source of truth for the hash —
/// workloads::hash_normal delegates to hash_normal_one.
void hash_normal_fill(std::uint64_t seed, std::span<const std::int64_t> keys,
                      std::span<double> out);
void hash_normal_fill_with(Config config, std::uint64_t seed,
                           std::span<const std::int64_t> keys,
                           std::span<double> out);

/// Scalar single-key hash_normal (the oracle's per-element function).
double hash_normal_one(std::uint64_t seed, std::int64_t key);

}  // namespace cloudlens::stats::kernels
