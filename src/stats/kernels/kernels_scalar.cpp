// Scalar reference tier: the byte-level oracle for every kernel family.
//
// These loops are verbatim the code the callers ran before the kernel
// seam existed (correlation.cpp's fused pass, series.cpp's column
// gather, fft.cpp's butterfly inner loop, patterns.cpp's hash_normal) —
// strict mode pins every other tier to these bytes.
#include <cmath>

#include "common/rng.h"
#include "stats/kernels/kernels.h"
#include "stats/kernels/kernels_impl.h"

namespace cloudlens::stats::kernels {

double hash_normal_one(std::uint64_t seed, std::int64_t key) {
  // Irwin–Hall with n = 4: mean 2, variance 4/12; rescale to N(0,1) approx.
  SplitMix64 sm(seed ^
                (static_cast<std::uint64_t>(key) * 0x2545f4914f6cdd1dULL));
  double sum = 0;
  for (int i = 0; i < 4; ++i)
    sum += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return (sum - 2.0) * std::sqrt(3.0);
}

namespace detail {

PearsonSums pearson_sums_scalar(const double* x, const double* y,
                                std::size_t n) {
  PearsonSums s;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    s.sx += xi;
    s.sy += yi;
    s.sxx += xi * xi;
    s.syy += yi * yi;
    s.sxy += xi * yi;
  }
  return s;
}

void fft_stage_scalar(double* data, std::size_t n, std::size_t len,
                      const double* twiddle) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const std::size_t a = 2 * (i + k);
      const std::size_t b = 2 * (i + k + half);
      const double ur = data[a], ui = data[a + 1];
      const double xr = data[b], xi = data[b + 1];
      const double tr = twiddle[2 * k], ti = twiddle[2 * k + 1];
      const double vr = xr * tr - xi * ti;
      const double vi = xr * ti + xi * tr;
      data[a] = ur + vr;
      data[a + 1] = ui + vi;
      data[b] = ur - vr;
      data[b + 1] = ui - vi;
    }
  }
}

void gather_columns_scalar(const double* const* rows, std::size_t nrows,
                           std::size_t c0, std::size_t bw, double* colbuf) {
  for (std::size_t r = 0; r < nrows; ++r) {
    const double* row = rows[r] + c0;
    for (std::size_t j = 0; j < bw; ++j) colbuf[j * nrows + r] = row[j];
  }
}

void hash_normal_fill_scalar(std::uint64_t seed, const std::int64_t* keys,
                             std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = hash_normal_one(seed, keys[i]);
}

}  // namespace detail
}  // namespace cloudlens::stats::kernels
