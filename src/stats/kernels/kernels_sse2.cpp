// SSE2 kernel tier.
//
// SSE2 is part of the x86-64 baseline, so this TU compiles with the
// project's default flags (no ODR hazard). It exists as the portable
// 128-bit tier: two double lanes (or two 64-bit integer lanes) per
// vector. All four families here are bit-exact with the scalar oracle
// except the *fast-mode* Pearson reduction, which reassociates into two
// lane accumulators.
#include "stats/kernels/kernels.h"
#include "stats/kernels/kernels_impl.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cloudlens::stats::kernels::detail {

#if defined(__SSE2__)

namespace {

/// Exact 64×64→low-64 multiply from 32-bit partial products.
inline __m128i mul64(__m128i a, __m128i b) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a_hi, b), _mm_mul_epu32(a, b_hi));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

/// Exact u64→f64 for values < 2^53 (split into 32-bit halves, each
/// converted exactly via the 2^52 magic-number trick; the recombining
/// multiply-add is exact because the value is representable).
inline __m128d u64_to_f64(__m128i x) {
  const __m128d magic = _mm_set1_pd(0x1.0p52);
  const __m128i magic_bits = _mm_castpd_si128(magic);
  const __m128i lo32 = _mm_and_si128(x, _mm_set1_epi64x(0xFFFFFFFFLL));
  const __m128i hi32 = _mm_srli_epi64(x, 32);
  const __m128d d_lo =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(lo32, magic_bits)), magic);
  const __m128d d_hi =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(hi32, magic_bits)), magic);
  return _mm_add_pd(_mm_mul_pd(d_hi, _mm_set1_pd(0x1.0p32)), d_lo);
}

/// One SplitMix64 output per lane; advances the state in place.
inline __m128i splitmix_next(__m128i& state) {
  state = _mm_add_epi64(state, _mm_set1_epi64x(0x9e3779b97f4a7c15LL));
  __m128i z = state;
  z = mul64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
            _mm_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
            _mm_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

/// Uniform [0,1) from one SplitMix64 draw (same bits as Rng::uniform).
inline __m128d splitmix_uniform(__m128i& state) {
  return _mm_mul_pd(u64_to_f64(_mm_srli_epi64(splitmix_next(state), 11)),
                    _mm_set1_pd(0x1.0p-53));
}

}  // namespace

PearsonSums pearson_sums_sse2_fast(const double* x, const double* y,
                                   std::size_t n) {
  __m128d sx = _mm_setzero_pd(), sy = _mm_setzero_pd();
  __m128d sxx = _mm_setzero_pd(), syy = _mm_setzero_pd();
  __m128d sxy = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vx = _mm_loadu_pd(x + i);
    const __m128d vy = _mm_loadu_pd(y + i);
    sx = _mm_add_pd(sx, vx);
    sy = _mm_add_pd(sy, vy);
    sxx = _mm_add_pd(sxx, _mm_mul_pd(vx, vx));
    syy = _mm_add_pd(syy, _mm_mul_pd(vy, vy));
    sxy = _mm_add_pd(sxy, _mm_mul_pd(vx, vy));
  }
  // Reduction order (documented, fast-mode only): lane0 + lane1, then the
  // scalar tail appended serially.
  PearsonSums s;
  s.sx = _mm_cvtsd_f64(sx) + _mm_cvtsd_f64(_mm_unpackhi_pd(sx, sx));
  s.sy = _mm_cvtsd_f64(sy) + _mm_cvtsd_f64(_mm_unpackhi_pd(sy, sy));
  s.sxx = _mm_cvtsd_f64(sxx) + _mm_cvtsd_f64(_mm_unpackhi_pd(sxx, sxx));
  s.syy = _mm_cvtsd_f64(syy) + _mm_cvtsd_f64(_mm_unpackhi_pd(syy, syy));
  s.sxy = _mm_cvtsd_f64(sxy) + _mm_cvtsd_f64(_mm_unpackhi_pd(sxy, sxy));
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    s.sx += xi;
    s.sy += yi;
    s.sxx += xi * xi;
    s.syy += yi * yi;
    s.sxy += xi * yi;
  }
  return s;
}

void fft_stage_sse2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle) {
  const std::size_t half = len / 2;
  // Sign mask that negates only the low (real) lane: turns
  // [xi·ti, xr·ti] into [−xi·ti, xr·ti] so one add yields the exact
  // scalar expressions vr = xr·tr − xi·ti, vi = xi·tr + xr·ti.
  const __m128d neg_re = _mm_set_pd(0.0, -0.0);
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      double* pa = data + 2 * (i + k);
      double* pb = data + 2 * (i + k + half);
      const __m128d u = _mm_loadu_pd(pa);
      const __m128d xv = _mm_loadu_pd(pb);
      const __m128d t = _mm_loadu_pd(twiddle + 2 * k);
      const __m128d t_re = _mm_unpacklo_pd(t, t);
      const __m128d t_im = _mm_unpackhi_pd(t, t);
      const __m128d x_sw = _mm_shuffle_pd(xv, xv, 1);
      const __m128d v = _mm_add_pd(
          _mm_mul_pd(xv, t_re),
          _mm_xor_pd(_mm_mul_pd(x_sw, t_im), neg_re));
      _mm_storeu_pd(pa, _mm_add_pd(u, v));
      _mm_storeu_pd(pb, _mm_sub_pd(u, v));
    }
  }
}

void gather_columns_sse2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf) {
  if (bw != kBandBlockCols) {
    gather_columns_scalar(rows, nrows, c0, bw, colbuf);
    return;
  }
  std::size_t r = 0;
  for (; r + 2 <= nrows; r += 2) {
    const double* row0 = rows[r] + c0;
    const double* row1 = rows[r + 1] + c0;
    const __m128d a0 = _mm_loadu_pd(row0);      // [r0c0 r0c1]
    const __m128d a1 = _mm_loadu_pd(row0 + 2);  // [r0c2 r0c3]
    const __m128d b0 = _mm_loadu_pd(row1);
    const __m128d b1 = _mm_loadu_pd(row1 + 2);
    _mm_storeu_pd(colbuf + 0 * nrows + r, _mm_unpacklo_pd(a0, b0));
    _mm_storeu_pd(colbuf + 1 * nrows + r, _mm_unpackhi_pd(a0, b0));
    _mm_storeu_pd(colbuf + 2 * nrows + r, _mm_unpacklo_pd(a1, b1));
    _mm_storeu_pd(colbuf + 3 * nrows + r, _mm_unpackhi_pd(a1, b1));
  }
  for (; r < nrows; ++r) {
    const double* row = rows[r] + c0;
    for (std::size_t j = 0; j < 4; ++j) colbuf[j * nrows + r] = row[j];
  }
}

void hash_normal_fill_sse2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out) {
  const __m128i vseed = _mm_set1_epi64x(static_cast<long long>(seed));
  const __m128i mix =
      _mm_set1_epi64x(static_cast<long long>(0x2545f4914f6cdd1dULL));
  const __m128d two = _mm_set1_pd(2.0);
  const __m128d sqrt3 = _mm_set1_pd(1.7320508075688772);  // sqrt(3.0)
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i k = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys + i));
    __m128i state = _mm_xor_si128(vseed, mul64(k, mix));
    __m128d sum = splitmix_uniform(state);
    sum = _mm_add_pd(sum, splitmix_uniform(state));
    sum = _mm_add_pd(sum, splitmix_uniform(state));
    sum = _mm_add_pd(sum, splitmix_uniform(state));
    _mm_storeu_pd(out + i, _mm_mul_pd(_mm_sub_pd(sum, two), sqrt3));
  }
  if (i < n) hash_normal_fill_scalar(seed, keys + i, n - i, out + i);
}

#else  // !defined(__SSE2__): non-x86 builds fall back to the oracle.

PearsonSums pearson_sums_sse2_fast(const double* x, const double* y,
                                   std::size_t n) {
  return pearson_sums_scalar(x, y, n);
}
void fft_stage_sse2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle) {
  fft_stage_scalar(data, n, len, twiddle);
}
void gather_columns_sse2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf) {
  gather_columns_scalar(rows, nrows, c0, bw, colbuf);
}
void hash_normal_fill_sse2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out) {
  hash_normal_fill_scalar(seed, keys, n, out);
}

#endif

}  // namespace cloudlens::stats::kernels::detail
