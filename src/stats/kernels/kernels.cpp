// Dispatched kernel entry points.
//
// This TU is compiled with baseline flags and owns everything that is
// not pure lane arithmetic: tier selection, per-family call counters,
// and — for the band family — the sort + quantile driver that runs over
// the tier-gathered column blocks (std::sort must never be instantiated
// in an ISA-flagged TU; see kernels_impl.h).
#include "stats/kernels/kernels.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "stats/descriptive.h"
#include "stats/kernels/kernels_impl.h"

namespace cloudlens::stats::kernels {
namespace {

/// Strict-mode Pearson must reproduce the scalar serial accumulation
/// order at every tier, so only fast mode ever runs a SIMD reduction.
bool use_simd_pearson(Config config) {
  return config.mode == Mode::kFast && config.tier != Tier::kScalar;
}

}  // namespace

PearsonSums pearson_sums_with(Config config, std::span<const double> x,
                              std::span<const double> y) {
  CL_CHECK_MSG(x.size() == y.size(), "pearson_sums: length mismatch");
  obs::MetricsRegistry::global().add(obs::Counter::kKernelPearsonCalls);
  if (use_simd_pearson(config)) {
    if (config.tier == Tier::kAvx2)
      return detail::pearson_sums_avx2_fast(x.data(), y.data(), x.size());
    return detail::pearson_sums_sse2_fast(x.data(), y.data(), x.size());
  }
  return detail::pearson_sums_scalar(x.data(), y.data(), x.size());
}

PearsonSums pearson_sums(std::span<const double> x,
                         std::span<const double> y) {
  return pearson_sums_with(active(), x, y);
}

void band_percentiles_with(Config config, std::span<const double* const> rows,
                           std::size_t cols, const BandOutputs& out) {
  CL_CHECK_MSG(!rows.empty(), "band_percentiles: need at least one row");
  CL_CHECK_MSG(out.p25.size() >= cols && out.p50.size() >= cols &&
                   out.p75.size() >= cols && out.p95.size() >= cols,
               "band_percentiles: output spans too short");
  obs::PhaseTimer timer("kernels.band_percentiles",
                        obs::Histogram::kKernelBandSeconds,
                        obs::Counter::kKernelBandCalls);
  const std::size_t nrows = rows.size();

  // quantile_sorted(p) reads only order statistics floor(h) and
  // floor(h)+1 with h = p*(n-1), so the four fixed quantiles need at most
  // eight exact positions per column — an nth_element cascade instead of
  // a full O(n log n) sort. Each nth_element places an exact order
  // statistic and partitions everything smaller below it, so later calls
  // run on the shrinking upper range only.
  std::array<std::size_t, 8> need{};
  std::size_t nneed = 0;
  for (const double p : {0.25, 0.50, 0.75, 0.95}) {
    const double h = p * static_cast<double>(nrows - 1);
    const auto lo = static_cast<std::size_t>(h);
    need[nneed++] = lo;
    if (lo + 1 < nrows) need[nneed++] = lo + 1;
  }
  // Tiny insertion sort + dedup over the <= 8 positions (std::sort on the
  // sub-array trips GCC's -Warray-bounds via its insertion threshold).
  for (std::size_t i = 1; i < nneed; ++i) {
    const std::size_t v = need[i];
    std::size_t j = i;
    for (; j > 0 && need[j - 1] > v; --j) need[j] = need[j - 1];
    need[j] = v;
  }
  std::size_t uniq = 0;
  for (std::size_t i = 0; i < nneed; ++i) {
    if (uniq == 0 || need[i] != need[uniq - 1]) need[uniq++] = need[i];
  }
  nneed = uniq;

  std::vector<double> colbuf(detail::kBandBlockCols * nrows);
  for (std::size_t c0 = 0; c0 < cols; c0 += detail::kBandBlockCols) {
    const std::size_t bw = std::min(detail::kBandBlockCols, cols - c0);
    switch (config.tier) {
      case Tier::kAvx2:
        detail::gather_columns_avx2(rows.data(), nrows, c0, bw, colbuf.data());
        break;
      case Tier::kSse2:
        detail::gather_columns_sse2(rows.data(), nrows, c0, bw, colbuf.data());
        break;
      default:
        detail::gather_columns_scalar(rows.data(), nrows, c0, bw,
                                      colbuf.data());
        break;
    }
    for (std::size_t j = 0; j < bw; ++j) {
      double* col = colbuf.data() + j * nrows;
      // Selecting exact order statistics erases gather order (the k-th
      // smallest value is the same whatever order the tier gathered in),
      // which is what keeps this family bit-exact at every tier in both
      // modes — same property the full sort used to provide.
      std::size_t from = 0;
      for (std::size_t i = 0; i < nneed; ++i) {
        const std::size_t idx = need[i];
        std::nth_element(col + from, col + idx, col + nrows);
        from = idx + 1;
      }
      const std::span<const double> sorted(col, nrows);
      out.p25[c0 + j] = quantile_sorted(sorted, 0.25);
      out.p50[c0 + j] = quantile_sorted(sorted, 0.50);
      out.p75[c0 + j] = quantile_sorted(sorted, 0.75);
      out.p95[c0 + j] = quantile_sorted(sorted, 0.95);
    }
  }
}

void band_percentiles(std::span<const double* const> rows, std::size_t cols,
                      const BandOutputs& out) {
  band_percentiles_with(active(), rows, cols, out);
}

void fft_stage_with(Config config, double* data, std::size_t n,
                    std::size_t len, const double* twiddle) {
  obs::MetricsRegistry::global().add(obs::Counter::kKernelFftStages);
  switch (config.tier) {
    case Tier::kAvx2:
      detail::fft_stage_avx2(data, n, len, twiddle);
      break;
    case Tier::kSse2:
      detail::fft_stage_sse2(data, n, len, twiddle);
      break;
    default:
      detail::fft_stage_scalar(data, n, len, twiddle);
      break;
  }
}

void fft_stage(double* data, std::size_t n, std::size_t len,
               const double* twiddle) {
  fft_stage_with(active(), data, n, len, twiddle);
}

void hash_normal_fill_with(Config config, std::uint64_t seed,
                           std::span<const std::int64_t> keys,
                           std::span<double> out) {
  CL_CHECK_MSG(out.size() >= keys.size(),
               "hash_normal_fill: output span too short");
  obs::MetricsRegistry::global().add(obs::Counter::kKernelNoiseFills);
  switch (config.tier) {
    case Tier::kAvx2:
      detail::hash_normal_fill_avx2(seed, keys.data(), keys.size(),
                                    out.data());
      break;
    case Tier::kSse2:
      detail::hash_normal_fill_sse2(seed, keys.data(), keys.size(),
                                    out.data());
      break;
    default:
      detail::hash_normal_fill_scalar(seed, keys.data(), keys.size(),
                                      out.data());
      break;
  }
}

void hash_normal_fill(std::uint64_t seed, std::span<const std::int64_t> keys,
                      std::span<double> out) {
  hash_normal_fill_with(active(), seed, keys, out);
}

}  // namespace cloudlens::stats::kernels
