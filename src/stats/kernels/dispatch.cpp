#include "stats/kernels/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace cloudlens::stats::kernels {
namespace {

/// Packed (tier, mode) so the hot-path read is one relaxed atomic load.
/// -1 means "not yet resolved from the environment".
std::atomic<int> g_config{-1};

int pack(Config c) {
  return (static_cast<int>(c.tier) << 1) | static_cast<int>(c.mode);
}

Config unpack(int v) {
  return Config{static_cast<Tier>(v >> 1), static_cast<Mode>(v & 1)};
}

/// Publish the resolved config to the metrics gauges so a run's metrics
/// snapshot records which kernel tier produced it.
void record_config(Config c) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set(obs::Gauge::kKernelTier, static_cast<double>(c.tier));
  metrics.set(obs::Gauge::kKernelMode, static_cast<double>(c.mode));
}

Config resolve_env() {
  Config config{best_supported_tier(), Mode::kStrict};
  if (const char* env = std::getenv("CLOUDLENS_KERNELS");
      env != nullptr && env[0] != '\0' && std::string_view(env) != "auto") {
    if (const auto tier = parse_tier(env); tier.has_value()) {
      if (tier_supported(*tier)) {
        config.tier = *tier;
      } else {
        obs::MetricsRegistry::global().add(obs::Counter::kKernelTierFallbacks);
        std::fprintf(stderr,
                     "cloudlens: CLOUDLENS_KERNELS=%s not supported by this "
                     "CPU; using %s\n",
                     env, std::string(to_string(config.tier)).c_str());
      }
    } else {
      std::fprintf(stderr,
                   "cloudlens: unrecognized CLOUDLENS_KERNELS=%s "
                   "(want scalar|sse2|avx2|auto); using auto\n",
                   env);
    }
  }
  if (const char* env = std::getenv("CLOUDLENS_KERNEL_MODE");
      env != nullptr && env[0] != '\0') {
    if (const auto mode = parse_mode(env); mode.has_value()) {
      config.mode = *mode;
    } else {
      std::fprintf(stderr,
                   "cloudlens: unrecognized CLOUDLENS_KERNEL_MODE=%s "
                   "(want strict|fast); using strict\n",
                   env);
    }
  }
  return config;
}

}  // namespace

std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    default: return "avx2";
  }
}

std::string_view to_string(Mode m) {
  return m == Mode::kStrict ? "strict" : "fast";
}

std::optional<Tier> parse_tier(std::string_view s) {
  if (s == "scalar") return Tier::kScalar;
  if (s == "sse2") return Tier::kSse2;
  if (s == "avx2") return Tier::kAvx2;
  return std::nullopt;
}

std::optional<Mode> parse_mode(std::string_view s) {
  if (s == "strict") return Mode::kStrict;
  if (s == "fast") return Mode::kFast;
  return std::nullopt;
}

bool tier_supported(Tier t) {
  if (t == Tier::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  // CPUID, cached by the builtin after the first query.
  if (t == Tier::kSse2) return __builtin_cpu_supports("sse2") != 0;
  return __builtin_cpu_supports("avx2") != 0;
#else
  (void)t;
  return false;  // non-x86: only the scalar reference tier exists
#endif
}

Tier best_supported_tier() {
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kSse2)) return Tier::kSse2;
  return Tier::kScalar;
}

Config active() {
  int packed = g_config.load(std::memory_order_relaxed);
  if (packed < 0) {
    // First use (or post-reset): resolve from the environment. Racing
    // threads resolve to the same value, so the store order is benign.
    const Config config = resolve_env();
    record_config(config);
    packed = pack(config);
    g_config.store(packed, std::memory_order_relaxed);
  }
  return unpack(packed);
}

void set_active(Config config) {
  if (!tier_supported(config.tier)) {
    obs::MetricsRegistry::global().add(obs::Counter::kKernelTierFallbacks);
    config.tier = best_supported_tier();
  }
  record_config(config);
  g_config.store(pack(config), std::memory_order_relaxed);
}

bool set_tier_from_string(std::string_view s) {
  Config config = active();
  if (s == "auto") {
    config.tier = best_supported_tier();
  } else if (const auto tier = parse_tier(s); tier.has_value()) {
    config.tier = *tier;
  } else {
    return false;
  }
  set_active(config);
  return true;
}

bool set_mode_from_string(std::string_view s) {
  Config config = active();
  const auto mode = parse_mode(s);
  if (!mode.has_value()) return false;
  config.mode = *mode;
  set_active(config);
  return true;
}

void reset_from_env() {
  g_config.store(-1, std::memory_order_relaxed);
  set_active(resolve_env());
}

}  // namespace cloudlens::stats::kernels
