// Runtime-dispatched SIMD kernel seam for the hot stats kernels.
//
// The characterization suite spends most of its time in four kernel
// families (the fused Pearson co-moments, per-timepoint percentile
// bands, FFT butterfly stages, and the batched pattern-noise fills).
// Each family ships three ISA tiers — a scalar reference (the oracle
// every differential test compares against), an SSE2 variant, and an
// AVX2 variant — selected once at startup from CPUID and overridable
// via the CLOUDLENS_KERNELS environment variable or the CLI:
//
//   CLOUDLENS_KERNELS=scalar|sse2|avx2|auto      (default: auto)
//   CLOUDLENS_KERNEL_MODE=strict|fast            (default: strict)
//
// Numeric-mode contract:
//
//   strict  Every kernel produces bytes identical to the scalar
//           reference. Element-wise kernels (FFT butterflies, the
//           hash-normal noise fill) and permutation-invariant kernels
//           (band percentiles, which sort) vectorize bit-exactly, so
//           strict mode still benefits from SIMD; reduction kernels
//           (the Pearson co-moment sums) would need to reassociate the
//           accumulation, so in strict mode they run the scalar loop at
//           every tier. Strict is the default and the mode all
//           equivalence/cache contracts are pinned in.
//
//   fast    Reductions may reassociate (multi-lane accumulators with a
//           documented tolerance: for telemetry in [0,1] over n ticks
//           the co-moment error is O(n·eps), giving |Δr| < 1e-9 for
//           n ≤ 1e6 — the differential suite enforces 1e-9 at n=2016).
//           Element-wise kernels are unchanged (still bit-exact).
//           Fast-mode artifact bytes may depend on the active tier, so
//           cached pipeline stages that consume reductions segregate
//           their keys by (mode, tier); strict keys are unchanged.
//
// A requested tier the CPU cannot execute is clamped to the best
// supported tier (recorded in the kernels.tier_fallbacks counter);
// tests that force AVX2 first ask tier_supported() and skip-with-message
// on hardware without it.
#pragma once

#include <optional>
#include <string_view>

namespace cloudlens::stats::kernels {

/// ISA tiers, ordered: a higher tier implies the lower ones.
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Numeric modes. See the contract above.
enum class Mode : int { kStrict = 0, kFast = 1 };

struct Config {
  Tier tier = Tier::kScalar;
  Mode mode = Mode::kStrict;
  bool operator==(const Config&) const = default;
};

std::string_view to_string(Tier t);
std::string_view to_string(Mode m);

/// Parses "scalar" | "sse2" | "avx2" (NOT "auto" — callers decide how to
/// resolve auto); nullopt on anything else.
std::optional<Tier> parse_tier(std::string_view s);
/// Parses "strict" | "fast"; nullopt on anything else.
std::optional<Mode> parse_mode(std::string_view s);

/// True when this CPU can execute `t` (scalar is always true).
bool tier_supported(Tier t);
/// Highest tier this CPU supports.
Tier best_supported_tier();

/// The active configuration. First use resolves CLOUDLENS_KERNELS /
/// CLOUDLENS_KERNEL_MODE (unset or "auto" → best supported tier, strict).
Config active();

/// Overrides the active configuration (CLI flags, tests). An unsupported
/// tier is clamped to best_supported_tier() and counted as a fallback.
void set_active(Config config);

/// Sets the tier from a CLI/env spelling ("scalar|sse2|avx2|auto");
/// returns false (and changes nothing) on an unrecognized value.
bool set_tier_from_string(std::string_view s);
/// Sets the mode from "strict|fast"; false on an unrecognized value.
bool set_mode_from_string(std::string_view s);

/// Re-reads the environment (tests flip CLOUDLENS_KERNELS and call this).
/// Unset variables mean auto/strict. Unrecognized values fall back to
/// auto/strict with a one-line stderr note.
void reset_from_env();

}  // namespace cloudlens::stats::kernels
