// Internal per-tier kernel entry points.
//
// Deliberately a raw-pointer C-style API: the sse2/avx2 translation units
// are compiled with ISA-specific flags, and any shared inline/template
// code they instantiate (std::span accessors, std::sort<double*>, ...)
// would be emitted with that ISA and could be the copy the linker keeps
// for *every* TU — an ODR trap that turns a scalar-tier run into an
// illegal-instruction crash on older CPUs. Keeping the tier TUs to plain
// pointers + intrinsics (and doing all sorting/quantile work in the
// baseline-compiled dispatcher) avoids the whole class of bug.
//
// gather_columns_*: copies columns [c0, c0+bw) of the rows×cols matrix
// given as row pointers into `colbuf`, column j (0-based within the
// block) occupying colbuf[j*nrows .. j*nrows+nrows). bw is at most
// kBandBlockCols. The SIMD tiers use in-register block transposes so the
// row-major matrix streams through cache line by line.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cloudlens::stats::kernels {

struct PearsonSums;

namespace detail {

/// Column-block width the band-percentile driver gathers at a time.
inline constexpr std::size_t kBandBlockCols = 4;

// Scalar reference tier (the oracle).
PearsonSums pearson_sums_scalar(const double* x, const double* y,
                                std::size_t n);
void fft_stage_scalar(double* data, std::size_t n, std::size_t len,
                      const double* twiddle);
void gather_columns_scalar(const double* const* rows, std::size_t nrows,
                           std::size_t c0, std::size_t bw, double* colbuf);
void hash_normal_fill_scalar(std::uint64_t seed, const std::int64_t* keys,
                             std::size_t n, double* out);

// SSE2 tier. On non-x86 builds these forward to the scalar reference.
PearsonSums pearson_sums_sse2_fast(const double* x, const double* y,
                                   std::size_t n);
void fft_stage_sse2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle);
void gather_columns_sse2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf);
void hash_normal_fill_sse2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out);

// AVX2 tier. Falls back to scalar when the compiler cannot target AVX2;
// runtime dispatch guarantees these only execute on AVX2 hardware.
PearsonSums pearson_sums_avx2_fast(const double* x, const double* y,
                                   std::size_t n);
void fft_stage_avx2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle);
void gather_columns_avx2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf);
void hash_normal_fill_avx2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out);

}  // namespace detail
}  // namespace cloudlens::stats::kernels
