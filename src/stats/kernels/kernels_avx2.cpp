// AVX2 kernel tier (four double / four 64-bit integer lanes).
//
// This translation unit is compiled with -mavx2 when the compiler
// supports it. To keep AVX2 code from leaking into other TUs through
// COMDAT folding, nothing here touches shared inline/template code: the
// bodies are raw pointers and intrinsics only (see kernels_impl.h for
// the rationale). Runtime dispatch guarantees these functions only run
// after __builtin_cpu_supports("avx2") returned true.
//
// Bit-exactness notes:
//  - fft_stage: _mm256_addsub_pd yields exactly the scalar expressions
//    vr = xr·tr − xi·ti and vi = xi·tr + xr·ti per lane.
//  - hash_normal_fill: 64-bit lane multiplies are emulated exactly from
//    32-bit partial products, and u64→f64 uses an exact split
//    conversion, so the SplitMix64 stream is bit-identical per lane.
//  - pearson fast: four lane accumulators; reduction order is
//    (lane0+lane2) + (lane1+lane3), then the scalar tail serially.
#include "stats/kernels/kernels.h"
#include "stats/kernels/kernels_impl.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace cloudlens::stats::kernels::detail {

#if defined(__AVX2__)

namespace {

/// Exact 64×64→low-64 multiply from 32-bit partial products.
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Exact u64→f64 for values < 2^53 (32-bit halves via the 2^52
/// magic-number trick; recombination is exact below 2^53).
inline __m256d u64_to_f64(__m256i x) {
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256i lo32 = _mm256_and_si256(x, _mm256_set1_epi64x(0xFFFFFFFFLL));
  const __m256i hi32 = _mm256_srli_epi64(x, 32);
  const __m256d d_lo =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo32, magic_bits)),
                    magic);
  const __m256d d_hi =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi32, magic_bits)),
                    magic);
  return _mm256_add_pd(_mm256_mul_pd(d_hi, _mm256_set1_pd(0x1.0p32)), d_lo);
}

/// One SplitMix64 output per lane; advances the state in place.
inline __m256i splitmix_next(__m256i& state) {
  state = _mm256_add_epi64(state, _mm256_set1_epi64x(0x9e3779b97f4a7c15LL));
  __m256i z = state;
  z = mul64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Uniform [0,1) from one SplitMix64 draw (same bits as Rng::uniform).
inline __m256d splitmix_uniform(__m256i& state) {
  return _mm256_mul_pd(u64_to_f64(_mm256_srli_epi64(splitmix_next(state), 11)),
                       _mm256_set1_pd(0x1.0p-53));
}

/// (lane0 + lane2) + (lane1 + lane3).
inline double hsum(__m256d v) {
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

}  // namespace

PearsonSums pearson_sums_avx2_fast(const double* x, const double* y,
                                   std::size_t n) {
  __m256d sx = _mm256_setzero_pd(), sy = _mm256_setzero_pd();
  __m256d sxx = _mm256_setzero_pd(), syy = _mm256_setzero_pd();
  __m256d sxy = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    sx = _mm256_add_pd(sx, vx);
    sy = _mm256_add_pd(sy, vy);
    sxx = _mm256_add_pd(sxx, _mm256_mul_pd(vx, vx));
    syy = _mm256_add_pd(syy, _mm256_mul_pd(vy, vy));
    sxy = _mm256_add_pd(sxy, _mm256_mul_pd(vx, vy));
  }
  PearsonSums s;
  s.sx = hsum(sx);
  s.sy = hsum(sy);
  s.sxx = hsum(sxx);
  s.syy = hsum(syy);
  s.sxy = hsum(sxy);
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    s.sx += xi;
    s.sy += yi;
    s.sxx += xi * xi;
    s.syy += yi * yi;
    s.sxy += xi * yi;
  }
  return s;
}

void fft_stage_avx2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle) {
  if (len < 4) {
    // half == 1: a ymm vector would span two butterflies' worth of
    // non-adjacent data. The scalar loop is already optimal here.
    fft_stage_scalar(data, n, len, twiddle);
    return;
  }
  const std::size_t half = len / 2;  // >= 2, always even below
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; k += 2) {
      double* pa = data + 2 * (i + k);
      double* pb = data + 2 * (i + k + half);
      const __m256d u = _mm256_loadu_pd(pa);
      const __m256d xv = _mm256_loadu_pd(pb);
      const __m256d t = _mm256_loadu_pd(twiddle + 2 * k);
      const __m256d t_re = _mm256_movedup_pd(t);       // [tr0 tr0 tr1 tr1]
      const __m256d t_im = _mm256_permute_pd(t, 0xF);  // [ti0 ti0 ti1 ti1]
      const __m256d x_sw = _mm256_permute_pd(xv, 0x5);  // swap re/im pairs
      // addsub: even lanes subtract, odd lanes add →
      // [xr·tr − xi·ti, xi·tr + xr·ti] per complex: exactly vr, vi.
      const __m256d v = _mm256_addsub_pd(_mm256_mul_pd(xv, t_re),
                                         _mm256_mul_pd(x_sw, t_im));
      _mm256_storeu_pd(pa, _mm256_add_pd(u, v));
      _mm256_storeu_pd(pb, _mm256_sub_pd(u, v));
    }
  }
}

void gather_columns_avx2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf) {
  if (bw != kBandBlockCols) {
    gather_columns_scalar(rows, nrows, c0, bw, colbuf);
    return;
  }
  std::size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    // 4×4 in-register transpose: four row fragments → four column slices.
    const __m256d r0 = _mm256_loadu_pd(rows[r] + c0);
    const __m256d r1 = _mm256_loadu_pd(rows[r + 1] + c0);
    const __m256d r2 = _mm256_loadu_pd(rows[r + 2] + c0);
    const __m256d r3 = _mm256_loadu_pd(rows[r + 3] + c0);
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // [r0c0 r1c0 r0c2 r1c2]
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // [r0c1 r1c1 r0c3 r1c3]
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    _mm256_storeu_pd(colbuf + 0 * nrows + r,
                     _mm256_permute2f128_pd(t0, t2, 0x20));
    _mm256_storeu_pd(colbuf + 1 * nrows + r,
                     _mm256_permute2f128_pd(t1, t3, 0x20));
    _mm256_storeu_pd(colbuf + 2 * nrows + r,
                     _mm256_permute2f128_pd(t0, t2, 0x31));
    _mm256_storeu_pd(colbuf + 3 * nrows + r,
                     _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; r < nrows; ++r) {
    const double* row = rows[r] + c0;
    for (std::size_t j = 0; j < 4; ++j) colbuf[j * nrows + r] = row[j];
  }
}

void hash_normal_fill_avx2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out) {
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i mix =
      _mm256_set1_epi64x(static_cast<long long>(0x2545f4914f6cdd1dULL));
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d sqrt3 = _mm256_set1_pd(1.7320508075688772);  // sqrt(3.0)
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    __m256i state = _mm256_xor_si256(vseed, mul64(k, mix));
    __m256d sum = splitmix_uniform(state);
    sum = _mm256_add_pd(sum, splitmix_uniform(state));
    sum = _mm256_add_pd(sum, splitmix_uniform(state));
    sum = _mm256_add_pd(sum, splitmix_uniform(state));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_sub_pd(sum, two), sqrt3));
  }
  if (i < n) hash_normal_fill_scalar(seed, keys + i, n - i, out + i);
}

#else  // compiler cannot target AVX2: forward to the oracle. Dispatch
       // never selects the AVX2 tier in this build (tier_supported still
       // reflects hardware, so set_active clamps; see dispatch.cpp).

PearsonSums pearson_sums_avx2_fast(const double* x, const double* y,
                                   std::size_t n) {
  return pearson_sums_scalar(x, y, n);
}
void fft_stage_avx2(double* data, std::size_t n, std::size_t len,
                    const double* twiddle) {
  fft_stage_scalar(data, n, len, twiddle);
}
void gather_columns_avx2(const double* const* rows, std::size_t nrows,
                         std::size_t c0, std::size_t bw, double* colbuf) {
  gather_columns_scalar(rows, nrows, c0, bw, colbuf);
}
void hash_normal_fill_avx2(std::uint64_t seed, const std::int64_t* keys,
                           std::size_t n, double* out) {
  hash_normal_fill_scalar(seed, keys, n, out);
}

#endif

}  // namespace cloudlens::stats::kernels::detail
