#include "stats/series.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"
#include "stats/kernels/kernels.h"

namespace cloudlens::stats {

TimeSeries::TimeSeries(TimeGrid grid, std::vector<double> values)
    : grid_(grid), values_(std::move(values)) {
  CL_CHECK_MSG(values_.size() == grid_.count,
               "value count must match grid size");
}

double TimeSeries::mean() const { return stats::mean(values_); }

double TimeSeries::max() const {
  double hi = 0;
  for (double v : values_) hi = std::max(hi, v);
  return hi;
}

void TimeSeries::add(const TimeSeries& other, double scale) {
  CL_CHECK_MSG(other.grid_ == grid_, "grid mismatch in TimeSeries::add");
  for (std::size_t i = 0; i < values_.size(); ++i)
    values_[i] += scale * other.values_[i];
}

void TimeSeries::scale(double factor) {
  for (auto& v : values_) v *= factor;
}

void TimeSeries::clamp(double lo, double hi) {
  for (auto& v : values_) v = std::min(hi, std::max(lo, v));
}

TimeSeries TimeSeries::downsample_mean(std::size_t factor) const {
  CL_CHECK(factor > 0 && !values_.empty());
  const std::size_t out_count = values_.size() / factor;
  CL_CHECK_MSG(out_count > 0, "series shorter than downsample window");
  TimeGrid out_grid{grid_.start, grid_.step * static_cast<SimDuration>(factor),
                    out_count};
  std::vector<double> out(out_count, 0.0);
  for (std::size_t i = 0; i < out_count; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < factor; ++j) acc += values_[i * factor + j];
    out[i] = acc / static_cast<double>(factor);
  }
  return TimeSeries(out_grid, std::move(out));
}

TimeSeries TimeSeries::hourly_mean() const {
  CL_CHECK(grid_.step > 0 && kHour % grid_.step == 0);
  return downsample_mean(static_cast<std::size_t>(kHour / grid_.step));
}

std::vector<double> TimeSeries::hour_of_day_profile() const {
  std::vector<double> sum(24, 0.0);
  std::vector<std::size_t> n(24, 0);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const int h = hour_of_day(grid_.at(i));
    sum[h] += values_[i];
    ++n[h];
  }
  for (int h = 0; h < 24; ++h) {
    if (n[h] > 0) sum[h] /= static_cast<double>(n[h]);
  }
  return sum;
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  CL_CHECK(first + count <= values_.size());
  TimeGrid g{grid_.at(first), grid_.step, count};
  return TimeSeries(
      g, std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(first),
                             values_.begin() +
                                 static_cast<std::ptrdiff_t>(first + count)));
}

PercentileBands percentile_bands(std::span<const TimeSeries> population) {
  PercentileBands out;
  CL_CHECK(!population.empty());
  out.grid = population.front().grid();
  for (const auto& s : population)
    CL_CHECK_MSG(s.grid() == out.grid, "population series must share a grid");

  const std::size_t t_count = out.grid.count;
  out.p25.resize(t_count);
  out.p50.resize(t_count);
  out.p75.resize(t_count);
  out.p95.resize(t_count);

  // The dispatched band kernel gathers timepoint columns in transposed
  // blocks (SIMD tiers stream the row-major population cache-friendly),
  // then sorts each column — bit-identical to the old per-timepoint
  // gather/sort loop at every tier.
  std::vector<const double*> rows(population.size());
  for (std::size_t i = 0; i < population.size(); ++i)
    rows[i] = population[i].values().data();
  kernels::band_percentiles(
      rows, t_count,
      kernels::BandOutputs{out.p25, out.p50, out.p75, out.p95});
  return out;
}

}  // namespace cloudlens::stats
