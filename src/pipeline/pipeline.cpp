#include "pipeline/pipeline.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "cloudsim/snapshot.h"
#include "common/check.h"
#include "common/table.h"
#include "obs/phase_timer.h"

namespace cloudlens::pipeline {

std::shared_ptr<void> StageInputs::get_raw(const std::string& name) const {
  const Stage& stage = runner_->stage_of(*stage_);
  bool declared = false;
  for (const std::string& input : stage.inputs) {
    if (input == name) {
      declared = true;
      break;
    }
  }
  CL_CHECK_MSG(declared, "stage reads an undeclared input");
  return runner_->artifact_of(name);
}

const ParallelConfig& StageInputs::parallel() const {
  return runner_->parallel_;
}

obs::MetricsRegistry& StageInputs::metrics() const {
  return *runner_->metrics_;
}

obs::TraceSink& StageInputs::trace_sink() const { return *runner_->sink_; }

const char* to_string(StageReport::Source source) {
  switch (source) {
    case StageReport::Source::kComputed:
      return "computed";
    case StageReport::Source::kCacheHit:
      return "hit";
    case StageReport::Source::kComputedAndStored:
      return "miss+stored";
  }
  return "?";
}

PipelineRunner::PipelineRunner(ArtifactCache cache, ParallelConfig parallel,
                               obs::MetricsRegistry* metrics,
                               obs::TraceSink* sink)
    : cache_(std::move(cache)),
      parallel_(parallel),
      metrics_(metrics != nullptr ? metrics : &obs::MetricsRegistry::global()),
      sink_(sink != nullptr ? sink : &obs::TraceSink::global()) {}

void PipelineRunner::add(Stage stage) {
  CL_CHECK_MSG(!stage.name.empty(), "stage needs a name");
  CL_CHECK_MSG(stage.compute != nullptr, "stage needs a compute function");
  CL_CHECK_MSG((stage.save == nullptr) == (stage.load == nullptr),
               "stage must define both save and load, or neither");
  const std::string name = stage.name;
  const bool inserted = stages_.emplace(name, std::move(stage)).second;
  CL_CHECK_MSG(inserted, "duplicate stage name");
}

const Stage& PipelineRunner::stage_of(const std::string& name) const {
  const auto it = stages_.find(name);
  CL_CHECK_MSG(it != stages_.end(), "unknown pipeline stage");
  return it->second;
}

std::shared_ptr<void> PipelineRunner::artifact_of(
    const std::string& name) const {
  const auto it = artifacts_.find(name);
  CL_CHECK_MSG(it != artifacts_.end(), "input stage not resolved yet");
  return it->second;
}

const std::string& PipelineRunner::key_hex(const std::string& name) {
  const auto memo = keys_.find(name);
  if (memo != keys_.end()) return memo->second;

  const Stage& stage = stage_of(name);
  ContentHash h;
  h.u32(kPipelineKeyVersion);
  h.u32(kSnapshotFormatVersion);
  h.str(stage.name);
  for (const std::string& input : stage.inputs) h.str(key_hex(input));
  if (stage.key_extra) stage.key_extra(h);
  return keys_.emplace(name, h.hex()).first->second;
}

std::shared_ptr<void> PipelineRunner::resolve(const std::string& name) {
  const auto memo = artifacts_.find(name);
  if (memo != artifacts_.end()) return memo->second;

  CL_CHECK_MSG(!resolving_.contains(name), "stage dependency cycle");
  resolving_.insert(name);
  const Stage& stage = stage_of(name);
  for (const std::string& input : stage.inputs) resolve(input);
  resolving_.erase(name);

  const bool cacheable =
      cache_.enabled() && stage.save != nullptr && stage.load != nullptr;

  StageReport report;
  report.name = name;
  if (cacheable) report.key_hex = key_hex(name);

  const StageInputs inputs(*this, stage.name);
  std::shared_ptr<void> artifact;

  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::PhaseTimer phase("pipeline." + name,
                          obs::Histogram::kPipelineStageSeconds,
                          obs::Counter::kPipelineStageRuns, metrics_, sink_);

    if (cacheable) {
      const std::uint64_t size = cache_.lookup_size(name, report.key_hex);
      if (size > 0) {
        obs::PhaseTimer io("pipeline." + name + ".load",
                           obs::Histogram::kPipelineSnapshotIoSeconds,
                           obs::Counter::kPipelineCacheHits, metrics_, sink_);
        std::ifstream in(cache_.path_for(name, report.key_hex),
                         std::ios::binary);
        CL_CHECK_MSG(in.good(), "cannot open cached artifact");
        artifact = stage.load(inputs, in);
        CL_CHECK_MSG(artifact != nullptr, "stage load returned null");
        report.source = StageReport::Source::kCacheHit;
        report.artifact_bytes = size;
        metrics_->add(obs::Counter::kPipelineCacheBytesRead, size);
      }
    }

    if (artifact == nullptr) {
      if (cacheable) metrics_->add(obs::Counter::kPipelineCacheMisses);
      artifact = stage.compute(inputs);
      CL_CHECK_MSG(artifact != nullptr, "stage compute returned null");
      report.source = StageReport::Source::kComputed;
      if (cacheable) {
        obs::PhaseTimer io("pipeline." + name + ".store",
                           obs::Histogram::kPipelineSnapshotIoSeconds,
                           obs::Counter::kPipelineCacheStores, metrics_,
                           sink_);
        const std::uint64_t bytes =
            cache_.store(name, report.key_hex, [&](std::ostream& out) {
              stage.save(artifact, inputs, out);
            });
        if (bytes > 0) {
          report.source = StageReport::Source::kComputedAndStored;
          report.artifact_bytes = bytes;
          metrics_->add(obs::Counter::kPipelineCacheBytesWritten, bytes);
        }
      }
    }
  }
  report.millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  reports_.push_back(report);
  artifacts_.emplace(name, artifact);
  return artifact;
}

std::string render_stage_table(const std::vector<StageReport>& reports) {
  TextTable table({"stage", "source", "ms", "key", "bytes"});
  for (const StageReport& r : reports) {
    table.row()
        .add(r.name)
        .add(to_string(r.source))
        .add(r.millis, 1)
        .add(r.key_hex.empty() ? std::string("-")
                               : r.key_hex.substr(0, 12) + "..")
        .add(r.artifact_bytes);
  }
  std::ostringstream out;
  out << table;
  return out.str();
}

}  // namespace cloudlens::pipeline
