// Stage-graph run pipeline with content-keyed artifact caching.
//
// Every CLI command used to be an ad-hoc script: regenerate (or re-import)
// the trace, rebuild the telemetry panel, re-extract knowledge, then do
// its real work. The pipeline factors that shared prefix into an explicit
// graph of *stages* — named units with declared inputs, a deterministic
// content key, and optional serialization — executed by a memoizing
// runner:
//
//   Stage    name + input stage names + key_extra (hashes the stage's own
//            configuration into its cache key) + compute (builds the
//            artifact from resolved inputs) + optional save/load (streams
//            the artifact to/from bytes; both present <=> cacheable).
//   Runner   resolve("x") resolves inputs depth-first (memoized, cycle-
//            checked), derives x's key, and either loads the cached
//            artifact or computes-and-stores it, recording a StageReport
//            either way.
//
// Cache-key discipline — the invariants the equivalence tests pin:
//
//   key(x) = H(key-derivation version, snapshot format version, stage
//             name, keys of all input stages, key_extra bytes)
//
//   * Everything that can change the artifact's *content* must reach the
//     key (profile bytes, seed, scale, horizon, grid, options).
//   * Nothing that cannot change content may reach it: thread counts,
//     observability switches, output paths. A warm cache must hit across
//     `--threads 1` and `--threads 8` precisely because results are
//     bit-identical at any thread count.
//   * Format evolution is handled by versioning, not invalidation: a new
//     kSnapshotFormatVersion or kPipelineKeyVersion shifts every key, so
//     old entries become unreachable rather than misread.
//
// Observability: each resolve records `pipeline.stage_runs` +
// `pipeline.stage_seconds` (span "pipeline.<stage>"), and the cache path
// records hit/miss/store counters plus `pipeline.snapshot_io_seconds`
// around artifact IO. Metrics are write-only; caching decisions never read
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/content_hash.h"

namespace cloudlens::pipeline {

/// Bump when the key-derivation scheme itself changes (what gets hashed,
/// or in what order) so stale cache entries become unreachable.
inline constexpr std::uint32_t kPipelineKeyVersion = 1;

class PipelineRunner;

/// Handle passed to stage callbacks: resolved upstream artifacts plus the
/// runner's execution environment.
class StageInputs {
 public:
  /// The resolved artifact of a declared input stage (CheckError if
  /// `name` was not declared in Stage::inputs).
  template <typename T>
  std::shared_ptr<T> get(const std::string& name) const {
    return std::static_pointer_cast<T>(get_raw(name));
  }
  std::shared_ptr<void> get_raw(const std::string& name) const;

  const ParallelConfig& parallel() const;
  obs::MetricsRegistry& metrics() const;
  obs::TraceSink& trace_sink() const;

 private:
  friend class PipelineRunner;
  StageInputs(const PipelineRunner& runner, const std::string& stage)
      : runner_(&runner), stage_(&stage) {}
  const PipelineRunner* runner_;
  const std::string* stage_;
};

struct Stage {
  std::string name;
  /// Names of stages whose artifacts this stage consumes. Their keys are
  /// mixed into this stage's key; they are resolved before compute/load.
  std::vector<std::string> inputs;
  /// Hash this stage's own configuration (options, source bytes) into the
  /// cache key. May be null when the input keys already cover identity.
  std::function<void(ContentHash&)> key_extra;
  /// Build the artifact from resolved inputs. Must return non-null.
  std::function<std::shared_ptr<void>(const StageInputs&)> compute;
  /// Serialize / reconstruct the artifact. A stage is cacheable iff both
  /// are set; leave them null for stages whose artifacts are views into
  /// other stages' state with no standalone representation.
  std::function<void(const std::shared_ptr<void>&, const StageInputs&,
                     std::ostream&)>
      save;
  std::function<std::shared_ptr<void>(const StageInputs&, std::istream&)> load;
};

/// What one resolve did for one stage, for the CLI's per-stage table and
/// the pipeline tests.
struct StageReport {
  enum class Source {
    kComputed,           ///< ran compute; not stored (uncacheable/disabled)
    kCacheHit,           ///< loaded the cached artifact
    kComputedAndStored,  ///< ran compute and published to the cache
  };
  std::string name;
  Source source = Source::kComputed;
  /// Wall time of the resolve (load or compute+store), excluding inputs.
  double millis = 0.0;
  /// Content key; empty when the stage is uncacheable or caching is off.
  std::string key_hex;
  /// Serialized artifact size (0 when not cached).
  std::uint64_t artifact_bytes = 0;
};

const char* to_string(StageReport::Source source);

class PipelineRunner {
 public:
  /// Null observability pointers resolve to the process-global instances.
  explicit PipelineRunner(ArtifactCache cache, ParallelConfig parallel = {},
                          obs::MetricsRegistry* metrics = nullptr,
                          obs::TraceSink* sink = nullptr);

  /// Register a stage (names must be unique; inputs may be registered in
  /// any order but must exist by the time the stage is resolved).
  void add(Stage stage);

  /// Resolve a stage (and, transitively, its inputs), returning its
  /// artifact. Memoized: a second resolve of the same name is free and
  /// appends no report.
  std::shared_ptr<void> resolve(const std::string& name);

  template <typename T>
  std::shared_ptr<T> resolve_as(const std::string& name) {
    return std::static_pointer_cast<T>(resolve(name));
  }

  /// The stage's content key (derives and memoizes it; does not run the
  /// stage). Empty string when caching is disabled.
  const std::string& key_hex(const std::string& name);

  /// One entry per executed stage, in completion order.
  const std::vector<StageReport>& reports() const { return reports_; }

  const ArtifactCache& cache() const { return cache_; }
  const ParallelConfig& parallel() const { return parallel_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TraceSink& trace_sink() const { return *sink_; }

 private:
  friend class StageInputs;

  const Stage& stage_of(const std::string& name) const;
  std::shared_ptr<void> artifact_of(const std::string& name) const;

  ArtifactCache cache_;
  ParallelConfig parallel_;
  obs::MetricsRegistry* metrics_;
  obs::TraceSink* sink_;

  std::map<std::string, Stage> stages_;
  std::map<std::string, std::shared_ptr<void>> artifacts_;
  std::map<std::string, std::string> keys_;
  std::set<std::string> resolving_;  ///< cycle detection
  std::vector<StageReport> reports_;
};

/// Render the per-stage hit/miss + timing table the CLI prints after a
/// cached run (also embedded in bench_pipeline's output).
std::string render_stage_table(const std::vector<StageReport>& reports);

}  // namespace cloudlens::pipeline
