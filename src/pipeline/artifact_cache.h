// On-disk content-addressed artifact store.
//
// One flat directory; each artifact lives at `<dir>/<stage>-<key>.bin`
// where `key` is the 32-hex-digit content hash the pipeline derived for
// the stage (see pipeline.h for what goes into a key). Because the name
// *is* the identity, there is no index, no manifest, and no invalidation
// protocol: a changed input hashes to a new name and the stale file is
// simply never read again (`rm -rf` of the directory is always safe).
//
// Stores are atomic against concurrent readers and writers: the payload
// streams into a process-unique `.tmp` sibling which is then renamed over
// the final path (rename within a directory is atomic on POSIX), so a
// reader never observes a half-written artifact. A failed store (disk
// full, permissions) warns on stderr and leaves the cache untouched —
// caching is an accelerator, never a correctness dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace cloudlens::pipeline {

class ArtifactCache {
 public:
  /// Disabled cache: every lookup misses and every store is a no-op.
  ArtifactCache() = default;

  /// Cache rooted at `dir` (created on first store; empty dir = disabled).
  explicit ArtifactCache(std::string dir, bool enabled = true)
      : dir_(std::move(dir)), enabled_(enabled && !dir_.empty()) {}

  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }

  /// Path the artifact for (stage, key) would occupy; the file may or may
  /// not exist. Valid only on an enabled cache.
  std::string path_for(const std::string& stage,
                       const std::string& key_hex) const;

  /// Size of the stored artifact, or 0 when absent (artifacts are never
  /// empty — every snapshot carries at least a header).
  std::uint64_t lookup_size(const std::string& stage,
                            const std::string& key_hex) const;

  /// Atomically publish an artifact: `write` streams the payload into a
  /// temp file which is renamed into place. Returns the byte count, or 0
  /// when the cache is disabled or the write failed (warned on stderr).
  std::uint64_t store(const std::string& stage, const std::string& key_hex,
                      const std::function<void(std::ostream&)>& write) const;

 private:
  std::string dir_;
  bool enabled_ = false;
};

}  // namespace cloudlens::pipeline
