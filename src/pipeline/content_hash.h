// Content hashing for the artifact cache's keys.
//
// A cache key must change whenever any byte of any keyed input changes and
// must be identical across runs, platforms, and thread counts, so the hash
// is a fixed streaming function over an explicit byte encoding — no
// std::hash (unspecified), no pointer or container-order dependence.
// Two independent 128-bit-total FNV-1a lanes (distinct offset bases, the
// second lane whitening each byte) give a 32-hex-digit key whose
// accidental-collision probability is negligible at cache scale; this is
// an integrity/identity hash, not a cryptographic one.
//
// Callers feed *typed* values through the helpers below rather than raw
// memory: strings are length-prefixed (so {"ab","c"} != {"a","bc"}),
// doubles hash as IEEE bit patterns (so -0.0 != +0.0 and every NaN is
// itself), and every field sequence should start with a version or tag
// byte when its layout may evolve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/sim_time.h"

namespace cloudlens::pipeline {

class ContentHash {
 public:
  /// Hash `n` raw bytes.
  void bytes(const void* data, std::size_t n);

  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern; bit-for-bit equality, not numeric equality.
  void f64(double v);
  /// Length-prefixed, so concatenations cannot collide.
  void str(std::string_view s);
  void grid(const TimeGrid& g);

  /// 32 lowercase hex digits (both lanes, big-endian nibble order).
  std::string hex() const;

 private:
  // FNV-1a 64-bit offset basis / prime, plus an arbitrary second basis.
  static constexpr std::uint64_t kOffset1 = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kOffset2 = 0x9AE16A3B2F90404Full;
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;

  std::uint64_t lane1_ = kOffset1;
  std::uint64_t lane2_ = kOffset2;
};

}  // namespace cloudlens::pipeline
