// The CLI's shared run plan: trace -> panel -> kb as pipeline stages.
//
// Every cloudlens command needs some prefix of the same three artifacts:
//
//   trace   Topology + TraceStore. Two source modes:
//             generated — make_scenario(seed, scale, horizon, profiles);
//               keyed by the profiles' canonical config bytes
//               (CloudProfile::append_config_bytes) + seed + scale +
//               horizon. Cached as a binary snapshot whose parametric
//               models round-trip exactly, so a cache hit reproduces
//               generation bit-for-bit.
//             csv — an ingest backend (ingest/backend.h) decodes the
//               backend's input files from `trace_dir`; keyed by the
//               backend name + the raw bytes of those files (editing any
//               row is a new key) + the telemetry grid.
//   panel   The materialized TelemetryPanel for the trace (input: trace).
//           Cached as a GRID+PANEL snapshot and adopted back into the
//           TraceStore on a hit, so warm analysis commands skip the
//           panel build entirely.
//   kb      SubscriptionKnowledge records (input: trace), keyed by every
//           ExtractorOptions field; cached as the kb CSV.
//
// Thread counts, metrics, and cache location are execution environment,
// not identity: none of them reach any key (results are bit-identical at
// any thread count, so a warm cache must hit across --threads values).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloudsim/topology.h"
#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "common/sim_time.h"
#include "ingest/backend.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "pipeline/pipeline.h"
#include "workloads/generator.h"

namespace cloudlens::pipeline {

struct RunPlanOptions {
  /// CSV mode when non-empty: import from this directory. Otherwise
  /// generated mode using `scenario`.
  std::string trace_dir;
  /// Ingest backend for CSV mode: "cloudlens" (default), "azure", or
  /// "google" (see ingest/backend.h). The backend name and its input
  /// files' raw bytes form the trace stage's cache key — except for the
  /// default backend, whose key layout predates backends and is kept
  /// byte-identical so existing caches stay warm.
  std::string trace_backend;
  /// Generated-mode scenario (its `parallel` member is ignored in favour
  /// of `parallel` below, which is also what keeps threads out of keys).
  workloads::ScenarioOptions scenario;
  /// CSV-mode telemetry grid (generated mode derives its own from the
  /// scenario horizon).
  TimeGrid csv_grid = week_telemetry_grid();

  /// Resolve the panel stage (materialized telemetry matrices).
  bool want_panel = true;
  /// Out-of-core telemetry: when > 0 the panel stage is replaced by a
  /// "shards" stage that spills K mmap-ready shard snapshots and puts the
  /// TraceStore into sharded mode (telemetry_panel() stays null; the
  /// streaming analyses page shards in under a mapped-bytes budget).
  /// Outputs are bit-identical either way, so downstream stage keys (kb)
  /// are unchanged; only K reaches the shards stage's key — the budget,
  /// like thread counts, is execution environment.
  std::uint32_t panel_shards = 0;
  /// Mapped-bytes residency budget for sharded mode, in MiB.
  std::size_t panel_budget_mib = 256;
  /// Resolve the kb stage.
  bool want_kb = false;
  kb::ExtractorOptions kb_options;

  /// Artifact cache root; empty disables caching (as does enabled=false,
  /// the CLI's --no-cache).
  std::string cache_dir;
  bool cache_enabled = true;

  ParallelConfig parallel;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = process-global
  obs::TraceSink* sink = nullptr;           ///< null = process-global
};

/// The trace stage's artifact. Mutable TraceStore so the panel stage can
/// adopt cached matrices into it.
struct TraceArtifact {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  /// What the import saw (CSV mode, cache miss only — a warm hit loads
  /// the snapshot without re-decoding, so `ingest.rows == 0` then).
  ingest::IngestReport ingest;
};

struct ResolvedRun {
  std::shared_ptr<TraceArtifact> trace;
  /// Non-null iff want_kb.
  std::shared_ptr<const kb::KnowledgeBase> knowledge;
  std::vector<StageReport> reports;
};

/// Build the stage graph for `options`, resolve the requested artifacts,
/// and return them with the per-stage reports.
ResolvedRun run_trace_plan(const RunPlanOptions& options);

}  // namespace cloudlens::pipeline
