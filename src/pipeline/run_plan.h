// The CLI's shared run plan: trace -> panel -> kb as pipeline stages.
//
// Every cloudlens command needs some prefix of the same three artifacts:
//
//   trace   Topology + TraceStore. Two source modes:
//             generated — make_scenario(seed, scale, horizon, profiles);
//               keyed by the profiles' canonical config bytes
//               (CloudProfile::append_config_bytes) + seed + scale +
//               horizon. Cached as a binary snapshot whose parametric
//               models round-trip exactly, so a cache hit reproduces
//               generation bit-for-bit.
//             csv — an ingest backend (ingest/backend.h) decodes the
//               backend's input files from `trace_dir`; keyed by the
//               backend name + the raw bytes of those files (editing any
//               row is a new key) + the telemetry grid.
//   panel   The materialized TelemetryPanel for the trace (input: trace).
//           Cached as a GRID+PANEL snapshot and adopted back into the
//           TraceStore on a hit, so warm analysis commands skip the
//           panel build entirely.
//   kb      SubscriptionKnowledge records (input: trace), keyed by every
//           ExtractorOptions field; cached as the kb CSV.
//
// Thread counts, metrics, and cache location are execution environment,
// not identity: none of them reach any key (results are bit-identical at
// any thread count, so a warm cache must hit across --threads values).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloudsim/topology.h"
#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "common/sim_time.h"
#include "ingest/backend.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "pipeline/pipeline.h"
#include "workloads/generator.h"

namespace cloudlens::pipeline {

struct RunPlanOptions {
  /// CSV mode when non-empty: import from this directory. Otherwise
  /// generated mode using `scenario`.
  std::string trace_dir;
  /// Ingest backend for CSV mode: "cloudlens" (default), "azure", or
  /// "google" (see ingest/backend.h). The backend name and its input
  /// files' raw bytes form the trace stage's cache key — except for the
  /// default backend, whose key layout predates backends and is kept
  /// byte-identical so existing caches stay warm.
  std::string trace_backend;
  /// Generated-mode scenario (its `parallel` member is ignored in favour
  /// of `parallel` below, which is also what keeps threads out of keys).
  workloads::ScenarioOptions scenario;
  /// CSV-mode telemetry grid (generated mode derives its own from the
  /// scenario horizon).
  TimeGrid csv_grid = week_telemetry_grid();

  /// Resolve the panel stage (materialized telemetry matrices).
  bool want_panel = true;
  /// Out-of-core telemetry: when > 0 the panel stage is replaced by a
  /// "shards" stage that spills K mmap-ready shard snapshots and puts the
  /// TraceStore into sharded mode (telemetry_panel() stays null; the
  /// streaming analyses page shards in under a mapped-bytes budget).
  /// Outputs are bit-identical either way, so downstream stage keys (kb)
  /// are unchanged; only K reaches the shards stage's key — the budget,
  /// like thread counts, is execution environment.
  std::uint32_t panel_shards = 0;
  /// Out-of-core VM/subscription records: when > 0 the trace runs
  /// population-sharded (cloudsim/population.h) with this many record
  /// shards. With caching enabled the trace stage stays a cached resident
  /// snapshot and a "pop-shards" stage converts it (warm-reusing spill
  /// files via the router digest); with caching disabled the records
  /// stream straight into the shards during generation/import and the
  /// resident record vector never materializes. Mutually exclusive with
  /// panel_shards and want_panel (population mode streams rows on
  /// demand). Outputs are byte-identical either way; only K reaches the
  /// stage key.
  std::uint32_t record_shards = 0;
  /// Shared residency budget for the out-of-core stores (mapped telemetry
  /// shards and decoded population shards), in MiB. Like thread counts it
  /// is execution environment, never part of a cache key.
  std::size_t shard_budget_mib = 256;
  /// Resolve the kb stage.
  bool want_kb = false;
  kb::ExtractorOptions kb_options;

  /// Artifact cache root; empty disables caching (as does enabled=false,
  /// the CLI's --no-cache).
  std::string cache_dir;
  bool cache_enabled = true;

  ParallelConfig parallel;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = process-global
  obs::TraceSink* sink = nullptr;           ///< null = process-global
};

/// The trace stage's artifact. Mutable TraceStore so the panel stage can
/// adopt cached matrices into it.
struct TraceArtifact {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<TraceStore> trace;
  /// What the import saw (CSV mode, cache miss only — a warm hit loads
  /// the snapshot without re-decoding, so `ingest.rows == 0` then).
  ingest::IngestReport ingest;
};

struct ResolvedRun {
  std::shared_ptr<TraceArtifact> trace;
  /// Non-null iff want_kb.
  std::shared_ptr<const kb::KnowledgeBase> knowledge;
  std::vector<StageReport> reports;
};

/// Build the stage graph for `options`, resolve the requested artifacts,
/// and return them with the per-stage reports.
ResolvedRun run_trace_plan(const RunPlanOptions& options);

/// CLI flag-compat shim: `--shard-budget-mib` is the shared residency
/// budget for both out-of-core stores; `--panel-budget-mib` is its
/// deprecated warning-emitting alias. Returns the effective budget —
/// the new flag when given (the alias is then ignored, with a warning),
/// else the alias value (with a deprecation warning), else `fallback`.
std::size_t resolve_shard_budget_mib(bool shard_flag_given,
                                     std::size_t shard_budget_mib,
                                     bool panel_flag_given,
                                     std::size_t panel_budget_mib,
                                     std::ostream& warnings,
                                     std::size_t fallback = 256);

}  // namespace cloudlens::pipeline
