#include "pipeline/run_plan.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "analysis/context.h"
#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/snapshot.h"
#include "common/check.h"
#include "ingest/backend.h"
#include "stats/kernels/dispatch.h"
#include "workloads/pattern_snapshot.h"
#include "workloads/profiles.h"

namespace cloudlens::pipeline {
namespace {

/// The panel stage's artifact: a view into the trace stage's TraceStore
/// (the panel lives inside it either way; this pins *that it is built*).
struct PanelArtifact {
  const TelemetryPanel* panel = nullptr;
};

/// The shards stage's artifact: a view into the TraceStore's shard store.
struct ShardArtifact {
  const TelemetryShardStore* shards = nullptr;
};

/// The pop-shards stage's artifact: a view into the TraceStore's
/// population shard store.
struct PopulationArtifact {
  const PopulationShardStore* shards = nullptr;
};

/// Stream a file's bytes into the hash (length first, so consecutive
/// files cannot collide by shifting bytes across the boundary). Absent
/// files hash as a marker — "no utilization.csv" is a distinct identity.
void hash_file(ContentHash& h, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    h.str("absent");
    return;
  }
  h.str("present");
  char buffer[1 << 16];
  std::uint64_t total = 0;
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    h.bytes(buffer, static_cast<std::size_t>(n));
    total += static_cast<std::uint64_t>(n);
    if (in.eof()) break;
  }
  h.u64(total);
}

PopulationShardingOptions streaming_population_options(std::uint32_t shards,
                                                       std::size_t budget_mib);

Stage make_trace_stage(const RunPlanOptions& options) {
  Stage stage;
  stage.name = "trace";
  // Record-sharded runs without a cache stream the records straight into
  // the shards as they are generated/imported — the resident vector never
  // materializes. With a cache the trace stage must stay a saveable
  // resident snapshot, so the pop-shards stage converts it instead
  // (warm-reusing spill files via the router digest).
  const bool cache_effective =
      options.cache_enabled && !options.cache_dir.empty();
  const bool stream_records = options.record_shards > 0 && !cache_effective;
  const std::uint32_t record_shards = options.record_shards;
  const std::size_t budget_mib = options.shard_budget_mib;

  if (options.trace_dir.empty()) {
    workloads::ScenarioOptions scenario = options.scenario;
    scenario.parallel = options.parallel;
    stage.key_extra = [scenario](ContentHash& h) {
      h.str("generated");
      h.u8(1);  // key layout version for this stage
      std::string config;
      scenario.private_profile.append_config_bytes(config);
      scenario.public_profile.append_config_bytes(config);
      h.str(config);
      h.u64(scenario.seed);
      h.f64(scenario.scale);
      h.i64(scenario.horizon);
    };
    stage.compute = [scenario, stream_records, record_shards,
                     budget_mib](const StageInputs&) {
      workloads::ScenarioOptions run = scenario;
      PopulationShardingOptions po;
      if (stream_records) {
        po = streaming_population_options(record_shards, budget_mib);
        run.population_sharding = &po;
      }
      auto result = workloads::make_scenario(run);
      auto artifact = std::make_shared<TraceArtifact>();
      artifact->topology = std::move(result.topology);
      artifact->trace = std::move(result.trace);
      return artifact;
    };
  } else {
    const std::string dir = options.trace_dir;
    const TimeGrid grid = options.csv_grid;
    const ingest::IngestBackend* backend =
        ingest::find_backend(options.trace_backend);
    CL_CHECK_MSG(backend != nullptr,
                 "unknown ingest backend: " << options.trace_backend);
    const bool default_backend = backend == &ingest::cloudlens_backend();
    stage.key_extra = [dir, grid, backend, default_backend](ContentHash& h) {
      h.str("csv");
      h.u8(1);
      // The default (cloudlens) backend keeps the pre-backend key layout
      // byte-for-byte, so caches populated before backends existed still
      // hit. Other backends mix in their name first — a different decoder
      // over the same bytes is a different artifact.
      if (!default_backend) {
        h.str("backend");
        h.str(backend->name());
      }
      for (const std::string& name : backend->input_files()) {
        h.str(name);
        hash_file(h, dir + "/" + name);
      }
      h.grid(grid);
    };
    stage.compute = [dir, grid, backend, stream_records, record_shards,
                     budget_mib](const StageInputs& inputs) {
      ingest::IngestOptions ingest_options;
      ingest_options.grid = grid;
      ingest_options.parallel = inputs.parallel();
      ingest_options.metrics = &inputs.metrics();
      ingest_options.sink = &inputs.trace_sink();
      PopulationShardingOptions po;
      if (stream_records) {
        po = streaming_population_options(record_shards, budget_mib);
        ingest_options.population_sharding = &po;
      }
      ingest::IngestResult imported =
          backend->import_dir(dir, ingest_options);
      auto artifact = std::make_shared<TraceArtifact>();
      artifact->topology = std::move(imported.topology);
      artifact->trace = std::move(imported.trace);
      artifact->ingest = std::move(imported.report);
      return artifact;
    };
  }

  stage.save = [](const std::shared_ptr<void>& artifact,
                  const StageInputs&, std::ostream& out) {
    const auto& trace = *std::static_pointer_cast<TraceArtifact>(artifact);
    SnapshotWriteOptions snapshot;
    snapshot.include_panel = false;
    snapshot.model_codec = &workloads::pattern_snapshot_codec();
    save_trace_snapshot(*trace.topology, *trace.trace, out, snapshot);
  };
  stage.load = [parallel = options.parallel](const StageInputs&,
                                             std::istream& in) {
    LoadedSnapshot loaded =
        load_trace_snapshot(in, &workloads::pattern_snapshot_codec());
    auto artifact = std::make_shared<TraceArtifact>();
    artifact->topology = std::move(loaded.topology);
    artifact->trace = std::move(loaded.trace);
    artifact->trace->set_telemetry_parallel(parallel);
    return artifact;
  };
  return stage;
}

Stage make_panel_stage() {
  Stage stage;
  stage.name = "panel";
  stage.inputs = {"trace"};
  // No key_extra: the panel is a pure function of the trace and its grid,
  // both already covered by the trace stage's key.
  stage.compute = [](const StageInputs& inputs) {
    const auto trace = inputs.get<TraceArtifact>("trace");
    trace->trace->set_telemetry_parallel(inputs.parallel());
    const TelemetryPanel* panel = trace->trace->telemetry_panel();
    CL_CHECK_MSG(panel != nullptr,
                 "panel stage requires the telemetry panel enabled");
    return std::make_shared<PanelArtifact>(PanelArtifact{panel});
  };
  stage.save = [](const std::shared_ptr<void>& artifact, const StageInputs&,
                  std::ostream& out) {
    save_panel_snapshot(
        *std::static_pointer_cast<PanelArtifact>(artifact)->panel, out);
  };
  stage.load = [](const StageInputs& inputs, std::istream& in) {
    const auto trace = inputs.get<TraceArtifact>("trace");
    std::unique_ptr<TelemetryPanel> panel = load_panel_snapshot(in);
    CL_CHECK_MSG(trace->trace->adopt_telemetry_panel(std::move(panel)),
                 "cached panel does not match the trace");
    return std::make_shared<PanelArtifact>(
        PanelArtifact{trace->trace->telemetry_panel()});
  };
  return stage;
}

/// Spill directory for the shard files. With caching on, the directory is
/// named by the *trace stage's content key*, which covers everything that
/// can change shard bytes (profiles, seed, scale, grid, CSV bytes) —
/// including model internals the router digest deliberately leaves out —
/// so warm reuse across runs is sound, and the files are kept. With
/// caching off, a per-process temp directory is used and removed with the
/// store.
std::string shard_spill_dir(bool cache_enabled, const std::string& cache_dir,
                            const std::string& trace_key_hex,
                            const std::string& prefix) {
  if (cache_enabled && !trace_key_hex.empty()) {
    return (std::filesystem::path(cache_dir) /
            (prefix + "-" + trace_key_hex))
        .string();
  }
  std::string pid = "0";
#if defined(__unix__) || defined(__APPLE__)
  pid = std::to_string(static_cast<unsigned long>(::getpid()));
#endif
  return (std::filesystem::temp_directory_path() /
          ("cloudlens-" + prefix + "-" + pid))
      .string();
}

///// Streaming spill options for record-sharded runs with caching off: the
/// records route straight to shard logs in a per-process temp dir during
/// generation/import, and the files are removed with the store.
PopulationShardingOptions streaming_population_options(
    std::uint32_t shards, std::size_t budget_mib) {
  PopulationShardingOptions po;
  po.shards = shards;
  po.budget_bytes = budget_mib << 20;
  po.spill_dir = shard_spill_dir(false, "", "", "pop-shards");
  po.keep_files = false;
  po.model_codec = &workloads::pattern_snapshot_codec();
  return po;
}

/// The out-of-core replacement for the panel stage. Uncacheable as a
///// pipeline artifact on purpose: the spill files themselves are the
/// persistent form, revalidated by the router digest in their headers, so
/// save/load would only duplicate them.
Stage make_shards_stage(const RunPlanOptions& options,
                        PipelineRunner* runner) {
  Stage stage;
  stage.name = "shards";
  stage.inputs = {"trace"};
  const std::uint32_t shards = options.panel_shards;
  stage.key_extra = [shards](ContentHash& h) {
    h.u8(1);  // key layout version for this stage
    h.u64(shards);
    // The residency budget never reaches the key: like thread counts, it
    // changes how the run executes, not what the artifacts contain.
  };
  const bool cache_enabled =
      options.cache_enabled && !options.cache_dir.empty();
  const std::string cache_dir = options.cache_dir;
  const std::size_t budget_mib = options.shard_budget_mib;
  stage.compute = [shards, cache_enabled, cache_dir, budget_mib,
                   runner](const StageInputs& inputs) {
    const auto trace = inputs.get<TraceArtifact>("trace");
    TelemetryShardingOptions so;
    so.shards = shards;
    so.budget_bytes = budget_mib << 20;
    so.spill_dir = shard_spill_dir(cache_enabled, cache_dir,
                                   runner->key_hex("trace"), "panel-shards");
    so.keep_files = cache_enabled;
    so.parallel = inputs.parallel();
    trace->trace->set_telemetry_sharding(so);
    const TelemetryShardStore* store = trace->trace->telemetry_shards();
    CL_CHECK_MSG(store != nullptr, "shards stage failed to build the store");
    return std::make_shared<ShardArtifact>(ShardArtifact{store});
  };
  return stage;
}

/// The out-of-core population stage, keyed like the telemetry shards
/// stage: only K reaches the key; the budget is execution environment.
/// Uncacheable as a pipeline artifact on purpose — the spill files are
/// the persistent form, revalidated against the population router digest
/// in their headers on warm adoption. When the trace stage already
/// streamed the records into shards (cache off), this stage is just the
/// published view.
Stage make_population_stage(const RunPlanOptions& options,
                            PipelineRunner* runner) {
  Stage stage;
  stage.name = "pop-shards";
  stage.inputs = {"trace"};
  const std::uint32_t shards = options.record_shards;
  stage.key_extra = [shards](ContentHash& h) {
    h.u8(1);  // key layout version for this stage
    h.u64(shards);
    // The residency budget never reaches the key: like thread counts, it
    // changes how the run executes, not what the artifacts contain.
  };
  const bool cache_enabled =
      options.cache_enabled && !options.cache_dir.empty();
  const std::string cache_dir = options.cache_dir;
  const std::size_t budget_mib = options.shard_budget_mib;
  stage.compute = [shards, cache_enabled, cache_dir, budget_mib,
                   runner](const StageInputs& inputs) {
    const auto trace = inputs.get<TraceArtifact>("trace");
    if (!trace->trace->population_sharded()) {
      PopulationShardingOptions po;
      po.shards = shards;
      po.budget_bytes = budget_mib << 20;
      po.spill_dir = shard_spill_dir(cache_enabled, cache_dir,
                                     runner->key_hex("trace"), "pop-shards");
      po.keep_files = cache_enabled;
      po.model_codec = &workloads::pattern_snapshot_codec();
      trace->trace->set_population_sharding(po);
    }
    const PopulationShardStore* store = trace->trace->population_shards();
    CL_CHECK_MSG(store != nullptr,
                 "pop-shards stage failed to build the store");
    return std::make_shared<PopulationArtifact>(PopulationArtifact{store});
  };
  return stage;
}

Stage make_kb_stage(const RunPlanOptions& options) {
  Stage stage;
  stage.name = "kb";
  stage.inputs = {"trace"};
  const kb::ExtractorOptions ex = options.kb_options;
  stage.key_extra = [ex](ContentHash& h) {
    h.u8(1);  // key layout version for this stage
    h.u64(ex.max_classified_vms);
    h.u64(ex.max_vms_per_region);
    h.i64(ex.short_lifetime_edge);
    h.f64(ex.region_agnostic_correlation);
    h.f64(ex.classifier.stable_stddev_max);
    h.f64(ex.classifier.hourly_score_min);
    h.f64(ex.classifier.diurnal_score_min);
    h.f64(ex.spot_short_share_min);
    h.u64(ex.spot_min_ended_vms);
    h.f64(ex.oversub_p95_max);
    h.f64(ex.deferral_peak_to_mean_min);
    // Kernel dispatch: strict mode is bit-identical at every tier, so
    // strict keys stay exactly as before (existing caches keep hitting).
    // Fast mode reassociates the Pearson reduction, so its artifacts are
    // (mode, tier)-specific and must not share cache entries with strict
    // runs or with other tiers.
    const auto kc = stats::kernels::active();
    if (kc.mode == stats::kernels::Mode::kFast) {
      h.str("kernels-fast");
      h.u8(static_cast<std::uint8_t>(kc.tier));
    }
  };
  stage.compute = [ex](const StageInputs& inputs) {
    const auto trace = inputs.get<TraceArtifact>("trace");
    const AnalysisContext ctx(*trace->trace, inputs.parallel(),
                              &inputs.metrics(), &inputs.trace_sink());
    return std::make_shared<kb::KnowledgeBase>(kb::extract_all(ctx, ex));
  };
  stage.save = [](const std::shared_ptr<void>& artifact, const StageInputs&,
                  std::ostream& out) {
    out << std::static_pointer_cast<kb::KnowledgeBase>(artifact)->to_csv();
  };
  stage.load = [](const StageInputs&, std::istream& in) {
    const std::string csv{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
    return std::make_shared<kb::KnowledgeBase>(
        kb::KnowledgeBase::from_csv(csv));
  };
  return stage;
}

}  // namespace

ResolvedRun run_trace_plan(const RunPlanOptions& options) {
  PipelineRunner runner(
      ArtifactCache(options.cache_dir, options.cache_enabled),
      options.parallel, options.metrics, options.sink);
  const bool sharded = options.panel_shards > 0;
  const bool record_sharded = options.record_shards > 0;
  CL_CHECK_MSG(!(sharded && record_sharded),
               "panel sharding and record sharding are mutually exclusive "
               "(population mode already streams rows on demand)");
  runner.add(make_trace_stage(options));
  if (record_sharded) {
    runner.add(make_population_stage(options, &runner));
  } else if (sharded) {
    runner.add(make_shards_stage(options, &runner));
  } else if (options.want_panel) {
    runner.add(make_panel_stage());
  }
  if (options.want_kb) runner.add(make_kb_stage(options));

  ResolvedRun run;
  run.trace = runner.resolve_as<TraceArtifact>("trace");
  // Out-of-core modes replace the resident panel: their stage must
  // resolve before kb so extraction streams over the spill files.
  if (record_sharded) {
    runner.resolve("pop-shards");
  } else if (sharded) {
    runner.resolve("shards");
  } else if (options.want_panel) {
    runner.resolve("panel");
  }
  if (options.want_kb) {
    run.knowledge = runner.resolve_as<kb::KnowledgeBase>("kb");
  }
  run.reports = runner.reports();
  return run;
}

std::size_t resolve_shard_budget_mib(bool shard_flag_given,
                                     std::size_t shard_budget_mib,
                                     bool panel_flag_given,
                                     std::size_t panel_budget_mib,
                                     std::ostream& warnings,
                                     std::size_t fallback) {
  if (shard_flag_given) {
    if (panel_flag_given && panel_budget_mib != shard_budget_mib) {
      warnings << "warning: --panel-budget-mib is ignored when "
                  "--shard-budget-mib is given\n";
    }
    return shard_budget_mib;
  }
  if (panel_flag_given) {
    warnings << "warning: --panel-budget-mib is deprecated; use "
                "--shard-budget-mib (it budgets both --panel-shards and "
                "--record-shards)\n";
    return panel_budget_mib;
  }
  return fallback;
}

}  // namespace cloudlens::pipeline
