#include "pipeline/content_hash.h"

#include <bit>

namespace cloudlens::pipeline {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void append_hex_u64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(v >> shift) & 0xF]);
  }
}

}  // namespace

void ContentHash::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t l1 = lane1_;
  std::uint64_t l2 = lane2_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t b = p[i];
    l1 = (l1 ^ b) * kPrime;
    l2 = (l2 ^ (b ^ 0xA5u)) * kPrime;
  }
  lane1_ = l1;
  lane2_ = l2;
}

void ContentHash::u32(std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(b, sizeof b);
}

void ContentHash::u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(b, sizeof b);
}

void ContentHash::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ContentHash::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void ContentHash::grid(const TimeGrid& g) {
  i64(g.start);
  i64(g.step);
  u64(g.count);
}

std::string ContentHash::hex() const {
  std::string out;
  out.reserve(32);
  append_hex_u64(out, lane1_);
  append_hex_u64(out, lane2_);
  return out;
}

}  // namespace cloudlens::pipeline
