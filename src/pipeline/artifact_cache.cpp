#include "pipeline/artifact_cache.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <system_error>

#include "common/check.h"

namespace cloudlens::pipeline {

namespace fs = std::filesystem;

std::string ArtifactCache::path_for(const std::string& stage,
                                    const std::string& key_hex) const {
  CL_CHECK_MSG(enabled_, "path_for on a disabled cache");
  return (fs::path(dir_) / (stage + "-" + key_hex + ".bin")).string();
}

std::uint64_t ArtifactCache::lookup_size(const std::string& stage,
                                         const std::string& key_hex) const {
  if (!enabled_) return 0;
  std::error_code ec;
  const auto size = fs::file_size(path_for(stage, key_hex), ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::uint64_t ArtifactCache::store(
    const std::string& stage, const std::string& key_hex,
    const std::function<void(std::ostream&)>& write) const {
  if (!enabled_) return 0;

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    std::cerr << "warning: cannot create cache dir " << dir_ << ": "
              << ec.message() << " (artifact not cached)\n";
    return 0;
  }

  // Process- and call-unique temp name so concurrent cloudlens invocations
  // sharing one cache directory never stream into the same file.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string final_path = path_for(stage, key_hex);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));

  std::uint64_t bytes = 0;
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      std::cerr << "warning: cannot open " << tmp_path
                << " for writing (artifact not cached)\n";
      return 0;
    }
    write(out);
    out.flush();
    const bool ok = out.good();
    const auto pos = out.tellp();
    out.close();
    if (!ok || pos < 0) {
      std::cerr << "warning: write to " << tmp_path
                << " failed (artifact not cached)\n";
      fs::remove(tmp_path, ec);
      return 0;
    }
    bytes = static_cast<std::uint64_t>(pos);
  }

  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::cerr << "warning: cannot publish cache artifact " << final_path
              << ": " << ec.message() << "\n";
    fs::remove(tmp_path, ec);
    return 0;
  }
  return bytes;
}

}  // namespace cloudlens::pipeline
