#include "analysis/spatial.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "stats/correlation.h"

namespace cloudlens::analysis {
namespace {

/// Hourly-mean utilization averaged over a set of VMs (unweighted mean,
/// matching the paper's "averaged utilization computed at the region
/// level").
stats::TimeSeries average_hourly_utilization(const TraceStore& trace,
                                             std::span<const VmId> vms,
                                             const TimeGrid& grid) {
  CL_CHECK(!vms.empty());
  stats::TimeSeries sum(grid);
  for (const VmId id : vms) sum.add(trace.vm_utilization(id, grid));
  sum.scale(1.0 / static_cast<double>(vms.size()));
  return sum.hourly_mean();
}

}  // namespace

std::vector<double> node_vm_correlations(const TraceStore& trace,
                                         CloudType cloud,
                                         std::size_t max_nodes) {
  const TimeGrid& grid = trace.telemetry_grid();

  // Candidate nodes: host >= 2 window-covering VMs of this cloud.
  std::vector<std::pair<NodeId, std::vector<VmId>>> candidates;
  for (const auto& node : trace.topology().nodes()) {
    if (node.cloud != cloud) continue;
    std::vector<VmId> covering;
    for (const VmId id : trace.vms_on_node(node.id)) {
      const auto& vm = trace.vm(id);
      if (vm.covers(grid) && vm.utilization) covering.push_back(id);
    }
    if (covering.size() >= 2)
      candidates.emplace_back(node.id, std::move(covering));
  }

  std::size_t stride = 1;
  if (max_nodes > 0 && candidates.size() > max_nodes)
    stride = candidates.size() / max_nodes;

  std::vector<double> out;
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    const auto& [node_id, vms] = candidates[i];
    const auto node_series = trace.node_utilization(node_id, grid);
    for (const VmId id : vms) {
      const auto vm_series = trace.vm_utilization(id, grid);
      out.push_back(
          stats::pearson(vm_series.values(), node_series.values()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RegionProfile> subscription_region_profiles(
    const TraceStore& trace, SubscriptionId sub,
    std::size_t max_vms_per_region) {
  const TimeGrid& grid = trace.telemetry_grid();
  std::unordered_map<RegionId, std::vector<VmId>> by_region;
  for (const VmId id : trace.vms_of_subscription(sub)) {
    const auto& vm = trace.vm(id);
    if (!vm.covers(grid) || !vm.utilization) continue;
    auto& bucket = by_region[vm.region];
    if (max_vms_per_region == 0 || bucket.size() < max_vms_per_region)
      bucket.push_back(id);
  }
  std::vector<RegionProfile> out;
  for (auto& [region, vms] : by_region) {
    RegionProfile p;
    p.region = region;
    p.vms_used = vms.size();
    p.hourly_utilization = average_hourly_utilization(trace, vms, grid);
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const RegionProfile& a, const RegionProfile& b) {
              return a.region < b.region;
            });
  return out;
}

std::vector<double> cross_region_correlations(const TraceStore& trace,
                                              CloudType cloud,
                                              std::size_t max_subscriptions,
                                              std::size_t max_vms_per_region) {
  // Multi-region candidate subscriptions.
  std::vector<SubscriptionId> candidates;
  for (const auto& sub : trace.subscriptions()) {
    if (sub.cloud != cloud) continue;
    candidates.push_back(sub.id);
  }

  std::vector<double> out;
  std::size_t used = 0;
  for (const SubscriptionId sub : candidates) {
    if (max_subscriptions > 0 && used >= max_subscriptions) break;
    const auto profiles =
        subscription_region_profiles(trace, sub, max_vms_per_region);
    if (profiles.size() < 2) continue;
    ++used;
    for (std::size_t a = 0; a < profiles.size(); ++a) {
      for (std::size_t b = a + 1; b < profiles.size(); ++b) {
        out.push_back(
            stats::pearson(profiles[a].hourly_utilization.values(),
                           profiles[b].hourly_utilization.values()));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RegionAgnosticVerdict> detect_region_agnostic_services(
    const TraceStore& trace, CloudType cloud, double min_correlation,
    std::size_t max_vms_per_region) {
  const TimeGrid& grid = trace.telemetry_grid();

  // Pool the window-covering VMs of each service by region.
  std::unordered_map<ServiceId,
                     std::unordered_map<RegionId, std::vector<VmId>>>
      by_service;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.service.valid()) continue;
    if (!vm.covers(grid) || !vm.utilization) continue;
    auto& bucket = by_service[vm.service][vm.region];
    if (max_vms_per_region == 0 || bucket.size() < max_vms_per_region)
      bucket.push_back(vm.id);
  }

  std::vector<RegionAgnosticVerdict> out;
  for (auto& [service, regions] : by_service) {
    if (regions.size() < 2) continue;
    std::vector<stats::TimeSeries> profiles;
    for (auto& [_, vms] : regions)
      profiles.push_back(average_hourly_utilization(trace, vms, grid));

    RegionAgnosticVerdict v;
    v.service = service;
    v.regions = regions.size();
    double min_corr = 1.0, sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < profiles.size(); ++a) {
      for (std::size_t b = a + 1; b < profiles.size(); ++b) {
        const double r =
            stats::pearson(profiles[a].values(), profiles[b].values());
        min_corr = std::min(min_corr, r);
        sum += r;
        ++pairs;
      }
    }
    v.min_pair_correlation = min_corr;
    v.mean_pair_correlation = pairs ? sum / static_cast<double>(pairs) : 0.0;
    v.region_agnostic = min_corr >= min_correlation;
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(),
            [](const RegionAgnosticVerdict& a, const RegionAgnosticVerdict& b) {
              return a.service < b.service;
            });
  return out;
}

}  // namespace cloudlens::analysis
