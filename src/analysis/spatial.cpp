#include "analysis/spatial.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "analysis/shard_stream.h"
#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "common/check.h"
#include "stats/correlation.h"

namespace cloudlens::analysis {
namespace {

/// Hourly-mean utilization averaged over a set of VMs (unweighted mean,
/// matching the paper's "averaged utilization computed at the region
/// level"). Consumes the panel's hourly companion view: one 168-sample
/// row accumulation per VM instead of re-rolling 12-tick windows over a
/// freshly evaluated 2016-sample series per subscription. In out-of-core
/// mode (`shards` non-null) the hourly rows come off the mapped shard
/// instead — identical bits, since both are produced by the same
/// hourly_from_row kernel.
stats::TimeSeries average_hourly_utilization(const TraceStore& trace,
                                             const TelemetryPanel* panel,
                                             const TelemetryShardStore* shards,
                                             std::span<const VmId> vms,
                                             const TimeGrid& grid) {
  CL_CHECK(!vms.empty());
  CL_CHECK(grid.step > 0 && kHour % grid.step == 0);
  const std::size_t factor = static_cast<std::size_t>(kHour / grid.step);
  const TimeGrid hourly_grid{grid.start, kHour, grid.count / factor};
  stats::TimeSeries sum(hourly_grid);
  auto& values = sum.mutable_values();
  std::vector<double> row_scratch, hourly_scratch;
  for (const VmId id : vms) {
    const std::span<const double> hourly =
        shards != nullptr
            ? shards->hourly_row(id)
            : vm_hourly_row(trace, panel, id, grid, row_scratch,
                            hourly_scratch);
    for (std::size_t i = 0; i < values.size(); ++i) values[i] += hourly[i];
  }
  sum.scale(1.0 / static_cast<double>(vms.size()));
  return sum;
}

}  // namespace

std::vector<double> node_vm_correlations(const AnalysisContext& ctx,
                                         CloudType cloud,
                                         std::size_t max_nodes) {
  auto phase = ctx.phase("analysis.node_vm_correlations");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  const TimeGrid& grid = trace.telemetry_grid();
  // Opt into the columnar telemetry cache (and build it serially, before
  // the fan-out), alongside the node index warm-up below.
  const TelemetryPanel* panel = trace.telemetry_panel();

  // Candidate nodes: host >= 2 window-covering VMs of this cloud. (This
  // enumeration also builds the node index serially, before the fan-out.)
  std::vector<std::pair<NodeId, std::vector<VmId>>> candidates;
  const PopulationShardStore* pop = trace.population_shards();
  for (const auto& node : trace.topology().nodes()) {
    if (node.cloud != cloud) continue;
    std::vector<VmId> covering;
    for (const VmId id : trace.vms_on_node(node.id)) {
      const auto& vm = trace.vm(id);
      if (vm.covers(grid) && vm.utilization) covering.push_back(id);
    }
    if (covering.size() >= 2)
      candidates.emplace_back(node.id, std::move(covering));
    // Serial loop: safe to shed record shards the lookups paged in.
    if (pop != nullptr) pop->evict_over_budget();
  }

  std::size_t stride = 1;
  if (max_nodes > 0 && candidates.size() > max_nodes)
    stride = candidates.size() / max_nodes;

  const std::size_t sampled =
      candidates.empty() ? 0 : (candidates.size() + stride - 1) / stride;

  std::vector<double> out;
  const TelemetryShardStore* shards = trace.telemetry_shards();
  if (shards != nullptr) {
    // Out-of-core mode. The node roll-ups come first (they evaluate VM
    // models into per-task scratch — small and shard-independent), one
    // slot per sampled node. Then every (node, VM) Pearson becomes a pair
    // item laid out node-major — exactly the order the resident path
    // concatenates per_node — and the pairs stream shard by shard, so the
    // sorted result is bit-identical with one-to-two shards mapped.
    const auto node_series = parallel_map<stats::TimeSeries>(
        sampled,
        [&](std::size_t k) {
          return trace.node_utilization(candidates[k * stride].first, grid);
        },
        parallel);
    std::vector<std::uint32_t> pair_node;
    std::vector<VmId> pair_vm;
    for (std::size_t k = 0; k < sampled; ++k) {
      for (const VmId id : candidates[k * stride].second) {
        pair_node.push_back(static_cast<std::uint32_t>(k));
        pair_vm.push_back(id);
      }
    }
    out.assign(pair_vm.size(), 0.0);
    stream_by_shard(
        *shards, pair_vm.size(),
        [&](std::size_t p) { return shards->shard_of_vm(pair_vm[p]); },
        [&](std::size_t p) {
          out[p] = stats::pearson_fused(shards->row(pair_vm[p]),
                                        node_series[pair_node[p]].values());
        },
        parallel);
  } else {
    // Hot path: one node-utilization roll-up plus one fused Pearson per
    // hosted VM, streaming panel rows — no per-VM series materialization.
    // Each strided node fills its own slot; slots are concatenated in node
    // order below, so output is independent of scheduling.
    const auto per_node = parallel_map<std::vector<double>>(
        sampled,
        [&](std::size_t k) {
          const auto& [node_id, vms] = candidates[k * stride];
          const auto node_series = trace.node_utilization(node_id, grid);
          std::vector<double> rs;
          rs.reserve(vms.size());
          std::vector<double> scratch;
          for (const VmId id : vms) {
            const std::span<const double> row =
                vm_telemetry_row(trace, panel, id, grid, scratch);
            rs.push_back(stats::pearson_fused(row, node_series.values()));
          }
          return rs;
        },
        parallel);
    for (const auto& rs : per_node)
      out.insert(out.end(), rs.begin(), rs.end());
    // The fan-out paged in whatever shards its row evaluations touched;
    // the pool has drained, so release them here.
    if (pop != nullptr) pop->evict_over_budget();
  }
  std::sort(out.begin(), out.end());
  ctx.count(obs::Counter::kAnalysisCorrelations, out.size());
  return out;
}

std::vector<RegionProfile> subscription_region_profiles(
    const AnalysisContext& ctx, SubscriptionId sub,
    std::size_t max_vms_per_region) {
  // No phase span here: this runs inside the per-subscription fan-outs of
  // cross_region_correlations and kb extraction, where per-call spans
  // would swamp the trace; the roll-up counter is lock-free and cheap.
  const TraceStore& trace = ctx.trace();
  const TimeGrid& grid = trace.telemetry_grid();
  const TelemetryPanel* panel = trace.telemetry_panel();
  // A subscription's VMs all live in one shard (the router hashes the
  // subscription id), so in out-of-core mode this whole call touches at
  // most one mapped shard.
  const TelemetryShardStore* shards = trace.telemetry_shards();
  std::unordered_map<RegionId, std::vector<VmId>> by_region;
  for (const VmId id : trace.vms_of_subscription(sub)) {
    const auto& vm = trace.vm(id);
    if (!vm.covers(grid) || !vm.utilization) continue;
    auto& bucket = by_region[vm.region];
    if (max_vms_per_region == 0 || bucket.size() < max_vms_per_region)
      bucket.push_back(id);
  }
  std::vector<RegionProfile> out;
  for (auto& [region, vms] : by_region) {
    RegionProfile p;
    p.region = region;
    p.vms_used = vms.size();
    p.hourly_utilization =
        average_hourly_utilization(trace, panel, shards, vms, grid);
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const RegionProfile& a, const RegionProfile& b) {
              return a.region < b.region;
            });
  ctx.count(obs::Counter::kAnalysisSeriesRolledUp, out.size());
  return out;
}

std::vector<double> cross_region_correlations(const AnalysisContext& ctx,
                                              CloudType cloud,
                                              std::size_t max_subscriptions,
                                              std::size_t max_vms_per_region) {
  auto phase = ctx.phase("analysis.cross_region_correlations");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  // Multi-region candidate subscriptions, in ascending id order in every
  // mode (the population branch collects per shard, then sorts — the same
  // set the resident scan yields, in the same order).
  std::vector<SubscriptionId> candidates;
  if (const PopulationShardStore* pop = trace.population_shards()) {
    for (std::uint32_t s = 0; s < pop->shard_count(); ++s) {
      for (const auto& sub : pop->view(s).subscriptions()) {
        if (sub.cloud != cloud) continue;
        candidates.push_back(sub.id);
      }
      pop->evict_over_budget();
    }
    std::sort(candidates.begin(), candidates.end());
  } else {
    for (const auto& sub : trace.subscriptions()) {
      if (sub.cloud != cloud) continue;
      candidates.push_back(sub.id);
    }
  }
  // Warm the subscription index and the telemetry panel serially before
  // fanning out.
  if (!candidates.empty()) trace.vms_of_subscription(candidates.front());
  trace.telemetry_panel();

  // The region profiles (up to 25 VM roll-ups per region) dominate the
  // cost; the pairwise Pearsons over hourly series are cheap. Profiles are
  // computed in parallel block by block, while the `max_subscriptions` cap
  // is applied by the serial selection walk below in candidate order —
  // exactly the subscriptions the serial code would use, at any thread
  // count. Each block is sliced to the *remaining* budget before the
  // fan-out, so once the cap fills no block remainder is ever computed
  // (a candidate beyond the budget cannot be selected).
  std::vector<double> out;
  std::size_t used = 0;
  const std::size_t block =
      max_subscriptions > 0 ? std::max<std::size_t>(std::size_t{64},
                                                    max_subscriptions)
                            : std::max<std::size_t>(std::size_t{1},
                                                    candidates.size());
  for (std::size_t start = 0; start < candidates.size();) {
    std::size_t budget = block;
    if (max_subscriptions > 0) {
      if (used >= max_subscriptions) break;
      budget = std::min(block, max_subscriptions - used);
    }
    const std::size_t count = std::min(budget, candidates.size() - start);
    const auto profile_block = parallel_map<std::vector<RegionProfile>>(
        count,
        [&](std::size_t k) {
          return subscription_region_profiles(ctx, candidates[start + k],
                                              max_vms_per_region);
        },
        parallel);
    // Serial point between blocks: drop mapped shards back under budget
    // before the next fan-out pages more in.
    if (const TelemetryShardStore* shards = trace.telemetry_shards())
      shards->evict_over_budget();
    if (const PopulationShardStore* pop = trace.population_shards())
      pop->evict_over_budget();
    for (const auto& profiles : profile_block) {
      if (max_subscriptions > 0 && used >= max_subscriptions) break;
      if (profiles.size() < 2) continue;
      ++used;
      for (std::size_t a = 0; a < profiles.size(); ++a) {
        for (std::size_t b = a + 1; b < profiles.size(); ++b) {
          out.push_back(stats::pearson_fused(
              profiles[a].hourly_utilization.values(),
              profiles[b].hourly_utilization.values()));
        }
      }
    }
    start += count;
  }
  std::sort(out.begin(), out.end());
  ctx.count(obs::Counter::kAnalysisCorrelations, out.size());
  return out;
}

std::vector<RegionAgnosticVerdict> detect_region_agnostic_services(
    const AnalysisContext& ctx, CloudType cloud, double min_correlation,
    std::size_t max_vms_per_region) {
  auto phase = ctx.phase("analysis.detect_region_agnostic");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  const TimeGrid& grid = trace.telemetry_grid();
  // Serial panel warm-up before the per-service fan-out.
  const TelemetryPanel* panel = trace.telemetry_panel();

  // Membership first: eligible (id, service, region) triples in global id
  // order — the order the old resident scan visited VMs in — then the
  // per-(service, region) caps applied by a serial walk over that order,
  // so the pooled members are exactly the resident ones in every mode.
  struct Member {
    VmId id;
    ServiceId service;
    RegionId region;
  };
  std::vector<Member> eligible;
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.service.valid()) continue;
      if (!vm.covers(grid) || !vm.utilization) continue;
      eligible.push_back({vm.id, vm.service, vm.region});
    }
  });
  if (trace.population_sharded()) {
    std::sort(eligible.begin(), eligible.end(),
              [](const Member& a, const Member& b) {
                return a.id.value() < b.id.value();
              });
  }
  // Pool by service, keyed by sorted region id so the per-service pair
  // enumeration order is a pure function of the trace (never of hash-map
  // iteration or scheduling).
  std::unordered_map<ServiceId, std::map<RegionId, std::vector<VmId>>>
      by_service;
  for (const Member& m : eligible) {
    auto& bucket = by_service[m.service][m.region];
    if (max_vms_per_region == 0 || bucket.size() < max_vms_per_region)
      bucket.push_back(m.id);
  }

  // Multi-region services in deterministic (service id) order.
  std::vector<const std::map<RegionId, std::vector<VmId>>*> region_sets;
  std::vector<ServiceId> services;
  for (auto& [service, regions] : by_service) {
    if (regions.size() < 2) continue;
    services.push_back(service);
  }
  std::sort(services.begin(), services.end());
  region_sets.reserve(services.size());
  for (const ServiceId service : services)
    region_sets.push_back(&by_service.at(service));

  // Every pooled member's hourly row lands in its own slot. Slotting the
  // rows gives this analysis the stream_by_shard shape the other
  // out-of-core passes use — services span subscriptions (and so shards)
  // arbitrarily, but the *rows* group cleanly by shard — so in sharded
  // modes the rows come off the stores with eviction at every shard
  // boundary instead of the scratch fallback the old single fan-out was
  // pinned to.
  CL_CHECK(grid.step > 0 && kHour % grid.step == 0);
  const std::size_t factor = static_cast<std::size_t>(kHour / grid.step);
  const std::size_t hours = grid.count / factor;
  std::vector<VmId> member_vm;
  // Per service, each region pool as (first slot, member count), in the
  // same sorted-region order the maps iterate below.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> pools(
      services.size());
  for (std::size_t s = 0; s < services.size(); ++s) {
    for (const auto& [_, vms] : *region_sets[s]) {
      pools[s].emplace_back(member_vm.size(), vms.size());
      member_vm.insert(member_vm.end(), vms.begin(), vms.end());
    }
  }
  std::vector<double> rows(member_vm.size() * hours, 0.0);
  const auto fill_slot = [&](std::size_t p) {
    std::vector<double> row_scratch, hourly_scratch;
    const std::span<const double> hourly = vm_hourly_row(
        trace, panel, member_vm[p], grid, row_scratch, hourly_scratch);
    std::copy(hourly.begin(), hourly.end(),
              rows.begin() + static_cast<std::ptrdiff_t>(p * hours));
  };
  if (const TelemetryShardStore* shards = trace.telemetry_shards()) {
    stream_by_shard(
        *shards, member_vm.size(),
        [&](std::size_t p) { return shards->shard_of_vm(member_vm[p]); },
        [&](std::size_t p) {
          const std::span<const double> hourly =
              shards->hourly_row(member_vm[p]);
          std::copy(hourly.begin(), hourly.end(),
                    rows.begin() + static_cast<std::ptrdiff_t>(p * hours));
        },
        parallel);
  } else if (const PopulationShardStore* pop = trace.population_shards()) {
    stream_by_shard(
        *pop, member_vm.size(),
        [&](std::size_t p) { return pop->shard_of_vm(member_vm[p]); },
        fill_slot, parallel);
  } else {
    parallel_for(member_vm.size(), fill_slot, parallel);
  }

  // Per-service verdicts over the slots: each region profile sums its
  // members in pool order — the same accumulation order
  // average_hourly_utilization used, so the profiles are bit-identical.
  auto out = parallel_map<RegionAgnosticVerdict>(
      services.size(),
      [&](std::size_t s) {
        std::vector<std::vector<double>> profiles;
        profiles.reserve(pools[s].size());
        for (const auto& [first, count] : pools[s]) {
          std::vector<double> prof(hours, 0.0);
          for (std::size_t i = 0; i < count; ++i) {
            const double* row = rows.data() + (first + i) * hours;
            for (std::size_t h = 0; h < hours; ++h) prof[h] += row[h];
          }
          const double inv = 1.0 / static_cast<double>(count);
          for (double& v : prof) v *= inv;
          profiles.push_back(std::move(prof));
        }

        RegionAgnosticVerdict v;
        v.service = services[s];
        v.regions = profiles.size();
        double min_corr = 1.0, sum = 0.0;
        std::size_t pairs = 0;
        for (std::size_t a = 0; a < profiles.size(); ++a) {
          for (std::size_t b = a + 1; b < profiles.size(); ++b) {
            const double r =
                stats::pearson_fused(profiles[a], profiles[b]);
            min_corr = std::min(min_corr, r);
            sum += r;
            ++pairs;
          }
        }
        v.min_pair_correlation = min_corr;
        v.mean_pair_correlation =
            pairs ? sum / static_cast<double>(pairs) : 0.0;
        v.region_agnostic = min_corr >= min_correlation;
        return v;
      },
      parallel);
  ctx.count(obs::Counter::kAnalysisCorrelations, out.size());
  return out;
}

}  // namespace cloudlens::analysis
