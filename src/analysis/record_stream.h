// Mode-agnostic iteration over VM records.
//
// The analyses historically walked `trace.vms()` — a span over the
// resident record vector. In population-sharded mode (cloudsim/
// population.h) that span does not exist: records live in K spill files
// and page in a shard at a time. These helpers express the three access
// shapes the analyses actually use so each analysis is written once and
// runs bounded-RSS in either mode:
//
//   for_each_vm_group: visit every record exactly once, as one span per
//     group (resident: a single group = the whole span; sharded: one
//     group per shard in ascending shard order, with a budget eviction
//     between groups). Group boundaries are the only mode-dependent
//     artifact — any consumer whose reduction is group-order-invariant
//     (per-VM slot writes, commutative-over-VM-id sums assembled in id
//     order afterwards) produces identical bits in both modes.
//
//   collect_vm_ids: the ids passing a predicate, in ascending id order in
//     both modes — the drop-in replacement for "scan vms() and collect",
//     where downstream logic (membership caps, sampling) depends on the
//     global scan order.
//
//   any_vm: short-circuit existence check.
//
// References and spans obtained inside a group callback follow the shard
// store's lifetime rules: valid within the callback, not across groups.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "cloudsim/population.h"
#include "cloudsim/trace.h"

namespace cloudlens::analysis {

/// Calls group_fn(std::span<const VmRecord>) for disjoint groups covering
/// every VM exactly once; ids ascend within a group. Serial — parallelize
/// *within* the callback (per-VM output slots), never across groups.
template <typename Fn>
void for_each_vm_group(const TraceStore& trace, Fn&& group_fn) {
  const PopulationShardStore* pop = trace.population_shards();
  if (pop == nullptr) {
    group_fn(trace.vms());
    return;
  }
  for (std::uint32_t s = 0; s < pop->shard_count(); ++s) {
    group_fn(pop->view(s).vms());
    pop->evict_over_budget();
  }
}

/// Ids of the VMs satisfying `pred`, ascending — the same order a resident
/// vms() scan yields, regardless of shard interleaving.
template <typename Pred>
std::vector<VmId> collect_vm_ids(const TraceStore& trace, Pred&& pred) {
  std::vector<VmId> ids;
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const VmRecord& vm : vms) {
      if (pred(vm)) ids.push_back(vm.id);
    }
  });
  if (trace.population_sharded()) {
    std::sort(ids.begin(), ids.end(),
              [](VmId a, VmId b) { return a.value() < b.value(); });
  }
  return ids;
}

/// True when any VM satisfies `pred` (stops at the first hit).
template <typename Pred>
bool any_vm(const TraceStore& trace, Pred&& pred) {
  const PopulationShardStore* pop = trace.population_shards();
  if (pop == nullptr) {
    const std::span<const VmRecord> vms = trace.vms();
    return std::any_of(vms.begin(), vms.end(), pred);
  }
  for (std::uint32_t s = 0; s < pop->shard_count(); ++s) {
    const std::span<const VmRecord> vms = pop->view(s).vms();
    if (std::any_of(vms.begin(), vms.end(), pred)) return true;
    pop->evict_over_budget();
  }
  return false;
}

}  // namespace cloudlens::analysis
