// Remaining-lifetime prediction from empirical lifetime distributions.
//
// The paper's introduction motivates workload knowledge with exactly this
// use case: when migrating VMs off a node with unhealthy signals, "with
// knowledge of the lifetime of VMs running on this node, the cloud platform
// can optimize this procedure by only migrating out VMs with long remaining
// time". The predictor estimates P(L > a) and E[L - a | L > a] from the
// lifetimes observed in a trace (the Resource-Central-style knowledge the
// paper's ref [8] extracts at scale).
#pragma once

#include <vector>

#include "cloudsim/trace.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

class LifetimePredictor {
 public:
  /// Fit from raw lifetime samples (seconds). Samples are copied & sorted.
  explicit LifetimePredictor(std::vector<double> lifetimes);

  /// Fit from the ended VMs of one cloud in a trace. The context overload
  /// is primary (records one "analysis.lifetime_fit" phase); the trace
  /// spelling forwards to it.
  static LifetimePredictor fit(const AnalysisContext& ctx, CloudType cloud);
  static LifetimePredictor fit(const TraceStore& trace, CloudType cloud);

  std::size_t sample_count() const { return sorted_.size(); }

  /// Survival function P(L > age).
  double survival(double age_seconds) const;

  /// E[L - a | L > a]: expected remaining lifetime at age a. When no
  /// observed lifetime exceeds a (deep in the tail), falls back to `a`
  /// itself — old VMs keep living (the empirical Lindy behaviour of
  /// long-running service roles).
  double expected_remaining(double age_seconds) const;

  /// Median of (L - a | L > a); same tail fallback as expected_remaining.
  double median_remaining(double age_seconds) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cloudlens::analysis
