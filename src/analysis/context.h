// AnalysisContext: the one execution-environment handle every analysis
// entry point takes.
//
// Before this API, each analysis function grew its own parameter soup —
// `(trace, Options, ParallelConfig)` in assorted orders, with some batch
// passes silently ignoring the parallel knob because nobody threaded it
// through. The context bundles what an analysis needs to *run* (as
// opposed to what it should *compute*, which stays in per-pass Options
// structs):
//
//   - the borrowed TraceStore (non-owning; the caller keeps it alive),
//   - the ParallelConfig for every fan-out inside the pass,
//   - the observability backends: a MetricsRegistry and a TraceSink,
//     both defaulting to the process-global instances (which start
//     disabled, so an un-configured context records nothing).
//
// Determinism: the context only *carries* the parallel and observability
// knobs; neither changes results. Analyses remain bit-identical at any
// thread count and with metrics/tracing on or off (pinned by
// obs_determinism_test and the parallel-equivalence suite).
//
// Every `src/analysis/*` and `kb` entry point takes the context as its
// first parameter; the historical `(const TraceStore&, ..., ParallelConfig)`
// forwarder overloads are gone. Call sites that only have a TraceStore
// construct a context inline — `f(AnalysisContext(trace), ...)` — which
// binds fine as a temporary to the `const AnalysisContext&` parameter.
#pragma once

#include <string_view>

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/trace_sink.h"

namespace cloudlens {

class AnalysisContext {
 public:
  /// Borrow `trace` (must outlive the context). Null observability
  /// pointers resolve to the process-global registry/sink.
  explicit AnalysisContext(const TraceStore& trace,
                           ParallelConfig parallel = {},
                           obs::MetricsRegistry* metrics = nullptr,
                           obs::TraceSink* trace_sink = nullptr)
      : trace_(&trace),
        parallel_(parallel),
        metrics_(metrics != nullptr ? metrics
                                    : &obs::MetricsRegistry::global()),
        sink_(trace_sink != nullptr ? trace_sink : &obs::TraceSink::global()) {
  }

  const TraceStore& trace() const { return *trace_; }
  const ParallelConfig& parallel() const { return parallel_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TraceSink& trace_sink() const { return *sink_; }

  /// Fluent copies for call sites that need to tweak one knob.
  AnalysisContext with_parallel(ParallelConfig parallel) const {
    AnalysisContext copy = *this;
    copy.parallel_ = parallel;
    return copy;
  }

  /// Count an event against this context's registry (no-op when metrics
  /// are disabled).
  void count(obs::Counter c, std::uint64_t delta = 1) const {
    metrics_->add(c, delta);
  }

  /// RAII timer for one analysis pass: counter + latency histogram +
  /// trace span, each gated on its backend's enabled flag.
  obs::PhaseTimer phase(
      std::string_view name,
      obs::Histogram histogram = obs::Histogram::kAnalysisPassSeconds,
      obs::Counter counter = obs::Counter::kAnalysisPasses) const {
    return obs::PhaseTimer(name, histogram, counter, metrics_, sink_);
  }

 private:
  const TraceStore* trace_;
  ParallelConfig parallel_;
  obs::MetricsRegistry* metrics_;
  obs::TraceSink* sink_;
};

}  // namespace cloudlens
